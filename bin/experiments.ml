(* Regenerate the paper's tables and figures.  See DESIGN.md for the
   experiment index. *)

let run_table1 () =
  let runs = Report.Experiments.run_corpus () in
  print_endline (Report.Experiments.table1 runs)

let run_table2 () =
  let runs = Report.Experiments.run_corpus () in
  print_endline (Report.Experiments.table2 runs)

let run_solverstats () =
  let runs = Report.Experiments.run_corpus () in
  print_endline (Report.Experiments.solver_stats runs)

let run_casestudy () = print_endline (Report.Experiments.case_study ())

let run_figures () = print_endline (Report.Experiments.figures ())

let run_ablations () = print_endline (Report.Experiments.ablations ())

let run_soundness apps seed = print_endline (Report.Experiments.soundness_sweep ~apps ~seed ())

let run_scalability () = print_endline (Report.Experiments.scalability ())

let run_all () =
  let runs = Report.Experiments.run_corpus () in
  print_endline (Report.Experiments.table1 runs);
  print_newline ();
  print_endline (Report.Experiments.table2 runs);
  print_newline ();
  print_endline (Report.Experiments.solver_stats runs);
  print_newline ();
  print_endline (Report.Experiments.case_study ());
  print_newline ();
  print_endline (Report.Experiments.ablations ());
  print_newline ();
  print_endline (Report.Experiments.soundness_sweep ())

open Cmdliner

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let soundness_cmd =
  let apps = Arg.(value & opt int 25 & info [ "apps" ] ~doc:"Number of random apps to test.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "soundness" ~doc:"Dynamic-oracle soundness sweep over random apps and the corpus.")
    Term.(const run_soundness $ apps $ seed)

let () =
  let default = Term.(const run_all $ const ()) in
  let info = Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures." in
  let cmds =
    [
      simple "table1" "Table 1: app features and constraint-graph populations." run_table1;
      simple "table2" "Table 2: analysis time and average solution sizes." run_table2;
      simple "solverstats" "Solver work counters: delta scheduling vs naive re-iteration."
        run_solverstats;
      simple "casestudy" "Section 5 precision case study against the dynamic oracle." run_casestudy;
      simple "figures" "Figures 1/3/4: ConnectBot facts and constraint graph." run_figures;
      simple "ablations" "Precision impact of disabling each refinement." run_ablations;
      simple "scalability" "Analysis cost vs application size." run_scalability;
      soundness_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
