(* Regenerate the paper's tables and figures.  See DESIGN.md for the
   experiment index. *)

(* [jobs = None] lets the corpus driver pick the default pool size
   (recommended domain count capped by [Config.jobs]); [--jobs 1]
   takes the exact sequential path. *)
let corpus jobs fail_apps = Report.Experiments.run_corpus ?jobs ~fail_apps ()

(* Injected failures are expected (the smoke test asserts the batch
   survives them); only an app that failed on its own flips the exit
   code. *)
let exit_code fail_apps results =
  let unexpected r =
    Result.is_error r.Report.Experiments.cs_run
    && not (List.mem r.Report.Experiments.cs_spec.Corpus.Spec.sp_name fail_apps)
  in
  if List.exists unexpected results then 1 else 0

let run_table1 jobs fail_apps =
  let results = corpus jobs fail_apps in
  print_endline (Report.Experiments.table1 results);
  exit (exit_code fail_apps results)

let run_table2 jobs fail_apps =
  let results = corpus jobs fail_apps in
  print_endline (Report.Experiments.table2 results);
  exit (exit_code fail_apps results)

let run_solverstats jobs fail_apps =
  let results = corpus jobs fail_apps in
  print_endline (Report.Experiments.solver_stats results);
  exit (exit_code fail_apps results)

let run_casestudy () = print_endline (Report.Experiments.case_study ())

let run_figures () = print_endline (Report.Experiments.figures ())

let run_ablations () = print_endline (Report.Experiments.ablations ())

let run_soundness apps seed = print_endline (Report.Experiments.soundness_sweep ~apps ~seed ())

let run_scalability () = print_endline (Report.Experiments.scalability ())

let run_precision () =
  print_endline (Report.Experiments.context_precision ());
  print_newline ();
  print_endline (Report.Experiments.top_pollution ())

(* CI smoke, part 2: a warm (incremental) re-solve of a patched app
   must be bit-identical to a from-scratch solve of the same app —
   checked through a snapshot round-trip, on a seed-level patch of the
   corpus outlier and on a cycle-splitting edit of a cycle-heavy app
   (the worst case for the condensation-based invalidation). *)
let verify_incremental name app patch =
  let config = Gator.Config.default in
  let _, solved = Gator.Incremental.analyze_solved ~config app in
  let state = Filename.temp_file "gator_verify" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove state)
    (fun () ->
      Gator.Snapshot.save solved state;
      let prev =
        match Gator.Snapshot.load state with
        | Ok prev -> prev
        | Error e ->
            Fmt.epr "verify: snapshot round-trip failed on %s: %s@." name e;
            exit 1
      in
      let patched =
        match Corpus.Patch.apply app patch with
        | Ok patched -> patched
        | Error e ->
            Fmt.epr "verify: patch failed to apply on %s: %s@." name e;
            exit 1
      in
      let warm, _ = Gator.Incremental.analyze_incremental ~config ~prev patched in
      let cold = Gator.Analysis.analyze ~config patched in
      let d = Gator.Diff.compare cold warm in
      if not (Gator.Diff.is_empty d) then begin
        Fmt.epr "verify: warm solution DIFFERS from cold on patched %s:@.%a@." name Gator.Diff.pp
          d;
        exit 1
      end;
      let s = warm.Gator.Analysis.stats in
      if not s.Gator.Solve.warm_solve then begin
        Fmt.epr "verify: incremental solve of patched %s was not warm (fallback: %s)@." name
          (Option.value ~default:"-" s.Gator.Solve.fallback);
        exit 1
      end;
      Printf.printf "verify: incremental (warm) = from-scratch on patched %s (%d dirty / %d \
                     reused of %d components)\n"
        name s.Gator.Solve.dirty_comps s.Gator.Solve.reused_comps s.Gator.Solve.scc_count)

(* CI smoke, part 3: the query daemon's full dispatch — load XBMC,
   query a node, patch, re-query, shutdown — through the exact handler
   the socket loop runs.  The patched-in allocation must be invisible
   before the patch (a structured unknown-node error), resolve to its
   one Button allocation after, and both the patch and the query must
   take the cheap path (warm incremental solve, backward walk without
   budget fallback — both asserted from the responses). *)
let verify_daemon () =
  let module J = Util.Json in
  let t = Server.Daemon.create ~log:false ~socket:"(in-process)" () in
  let rpc name payload =
    match J.of_string (Server.Daemon.handle t (J.to_string payload)) with
    | Ok j -> j
    | Error e ->
        Fmt.epr "verify: daemon %s: response is not JSON: %s@." name e;
        exit 1
  in
  let fail name resp =
    Fmt.epr "verify: daemon %s: unexpected response %s@." name (J.to_string resp);
    exit 1
  in
  let expect_ok name resp =
    match (J.member "error" resp, J.member "ok" resp) with
    | None, Some payload -> payload
    | _ -> fail name resp
  in
  let expect_error name code resp =
    match Option.bind (J.member "error" resp) (J.member "code") with
    | Some (J.String c) when c = code -> ()
    | _ -> fail (Printf.sprintf "%s (wanted error %s)" name code) resp
  in
  let int_field name field payload =
    match J.member field payload with Some (J.Int n) -> n | _ -> fail name payload
  in
  let node =
    J.Obj
      [
        ( "var",
          J.Obj
            [
              ("cls", J.String "Activity_0");
              ("meth", J.String "onCreate");
              ("arity", J.Int 0);
              ("name", J.String "verify_daemon_tmp");
            ] );
      ]
  in
  let query =
    J.Obj
      [ ("method", J.String "points-to-of-node"); ("app", J.String "XBMC"); ("node", node) ]
  in
  ignore (expect_ok "load" (rpc "load" (J.Obj [ ("method", J.String "load"); ("app", J.String "XBMC") ])));
  expect_error "pre-patch query" "unknown-node" (rpc "pre-patch query" query);
  let edits =
    J.List
      [
        J.Obj
          [
            ("edit", J.String "add_stmt");
            ("cls", J.String "Activity_0");
            ("meth", J.String "onCreate");
            ("arity", J.Int 0);
            ( "stmt",
              J.Obj
                [
                  ( "new",
                    J.List [ J.String "verify_daemon_tmp"; J.String "android.widget.Button" ] );
                ] );
          ];
      ]
  in
  let patched =
    expect_ok "patch"
      (rpc "patch"
         (J.Obj [ ("method", J.String "patch"); ("app", J.String "XBMC"); ("edits", edits) ]))
  in
  (match J.member "warm" patched with
  | Some (J.Bool true) -> ()
  | _ -> fail "patch (wanted a warm incremental solve)" patched);
  let answer = rpc "post-patch query" query in
  (match expect_ok "post-patch query" answer with
  | J.List [ J.String _ ] -> ()
  | payload -> fail "post-patch query (wanted exactly one value)" payload);
  (match J.member "generation" answer with
  | Some (J.Int 1) -> ()
  | _ -> fail "post-patch query (wanted generation 1)" answer);
  let stats =
    expect_ok "stats"
      (rpc "stats" (J.Obj [ ("method", J.String "stats"); ("app", J.String "XBMC") ]))
  in
  if int_field "stats" "expanded" stats < 1 then fail "stats (backward walk never expanded)" stats;
  if int_field "stats" "budget_fallbacks" stats <> 0 then
    fail "stats (query fell back to the forward solution)" stats;
  ignore (expect_ok "shutdown" (rpc "shutdown" (J.Obj [ ("method", J.String "shutdown") ])));
  Printf.printf
    "verify: daemon load/query/patch/re-query round-trip OK on XBMC (warm patch to generation 1, \
     backward query without fallback)\n"

(* CI smoke, part 4: the streaming pipeline — a small stream at jobs 4
   must produce exactly one row per app, byte-identical (after order
   normalization) to the batch pool over the same specs with private
   interners, without ever writing the frozen shared tier. *)
let verify_stream () =
  let apps = 24 and seed = 77 and jobs = 4 in
  let tier = Gator.Intern.shared_tier () in
  let frozen_before = Gator.Intern.shared_counts tier in
  let rows = ref [] in
  let stats =
    Report.Experiments.run_stream ~jobs ~timings:false ~seed ~apps
      ~emit:(fun line -> rows := line :: !rows)
      ()
  in
  if stats.Pool.Stream.st_consumed <> apps || List.length !rows <> apps then begin
    Fmt.epr "verify: stream produced %d rows for %d apps@." (List.length !rows) apps;
    exit 1
  end;
  if stats.Pool.Stream.st_failed <> 0 then begin
    Fmt.epr "verify: stream reported %d failed apps@." stats.Pool.Stream.st_failed;
    exit 1
  end;
  let frozen_after = Gator.Intern.shared_counts tier in
  if frozen_before <> frozen_after then begin
    Fmt.epr "verify: frozen tier grew during the stream: (%d,%d) -> (%d,%d)@."
      (fst frozen_before) (snd frozen_before) (fst frozen_after) (snd frozen_after);
    exit 1
  end;
  (* differential: same specs through the batch pool with fully
     private interners must yield the same rows *)
  let specs = List.init apps (Corpus.Gen.stream_spec ~seed) in
  let config = { Gator.Config.default with shared_intern = false } in
  let batch =
    Report.Experiments.run_specs ~config ~jobs specs
    |> List.map (Report.Experiments.jsonl_row ~timings:false)
  in
  let norm rows = List.sort String.compare rows in
  if norm !rows <> norm batch then begin
    Fmt.epr "verify: stream (shared tier) rows differ from batch (private) rows@.";
    exit 1
  end;
  Printf.printf
    "verify: stream = batch on %d generated apps (jobs %d, peak queue %d, %d steals, frozen tier \
     %d+%d entries untouched)\n"
    apps jobs stats.Pool.Stream.st_max_queued stats.Pool.Stream.st_steals (fst frozen_after)
    (snd frozen_after)

(* CI smoke, part 5: sound mode on the reflection-heavy family.  The
   ⊤ markers make the static solution an over-approximation of every
   possible concrete resolution, so the check sweeps the dynamic
   oracle over all candidate layouts and view ids (plus the
   no-resolution run) and requires full coverage each time.  The
   engines and interner tiers must also agree bit-for-bit — solution
   sets AND imprecision taint tables — and the batch pool must solve
   the family identically at jobs 1 and 4. *)
let verify_reflection () =
  let layouts = 3 in
  let app = Corpus.Gen.reflective_app ~name:"ReflHeavy" ~layouts ~seed:2014 () in
  let analyze config = Gator.Analysis.analyze ~config app in
  let naive = analyze { Gator.Config.default with solver = Gator.Config.Naive } in
  if not (Gator.Graph.has_top naive.Gator.Analysis.graph) then begin
    Fmt.epr "verify: ReflHeavy minted no unknown-id markers@.";
    exit 1
  end;
  let taint_table (r : Gator.Analysis.t) =
    List.sort compare
      (List.map
         (fun (node, vs) ->
           ( Fmt.str "%a" Gator.Node.pp node,
             List.sort compare
               (List.map (Fmt.str "%a" Gator.Node.pp_value) (Gator.Graph.VS.elements vs)) ))
         (Gator.Graph.tainted_nodes r.Gator.Analysis.graph))
  in
  let check_same label candidate =
    let d = Gator.Diff.compare naive candidate in
    if not (Gator.Diff.is_empty d) then begin
      Fmt.epr "verify: %s solution DIFFERS from naive on ReflHeavy:@.%a@." label Gator.Diff.pp d;
      exit 1
    end;
    if taint_table naive <> taint_table candidate then begin
      Fmt.epr "verify: %s taint table DIFFERS from naive on ReflHeavy@." label;
      exit 1
    end
  in
  check_same "delta" (analyze { Gator.Config.default with solver = Gator.Config.Delta });
  check_same "interned" (analyze { Gator.Config.default with solver = Gator.Config.Interned });
  check_same "private-tier" (analyze { Gator.Config.default with shared_intern = false });
  (* the soundness anchor: every concrete resolution of the reflective
     lookups must be covered by the one static solution *)
  let layout_cands =
    None :: List.init layouts (fun i -> Some (Printf.sprintf "ReflHeavy_lyt%d" i))
  in
  let view_cands =
    None
    :: List.concat
         (List.init layouts (fun i ->
              [ Some (Printf.sprintf "vid_root%d" i); Some (Printf.sprintf "vid_btn%d" i) ]))
  in
  let resolutions = ref 0 in
  List.iter
    (fun top_layout ->
      List.iter
        (fun top_view ->
          incr resolutions;
          let options = { Dynamic.Interp.default_options with top_layout; top_view } in
          let c = Dynamic.Oracle.check naive (Dynamic.Interp.run ~options app) in
          if not (Dynamic.Oracle.is_sound c) then begin
            Fmt.epr "verify: sound mode UNSOUND on ReflHeavy at layout=%s view=%s:@.%a@."
              (Option.value ~default:"-" top_layout)
              (Option.value ~default:"-" top_view)
              Dynamic.Oracle.pp_coverage c;
            exit 1
          end)
        view_cands)
    layout_cands;
  (* the pool must not perturb ⊤ solving: a small reflective family
     fingerprints identically on the sequential path and on 4 domains
     (tasks generate their own apps — App.t caches are unsynchronized) *)
  let fingerprint (r : Gator.Analysis.t) =
    let graph = r.Gator.Analysis.graph in
    (List.sort compare
       (List.map
          (fun node ->
            Fmt.str "%a = %a" Gator.Node.pp node
              Fmt.(Dump.list Gator.Node.pp_value)
              (List.sort Gator.Node.compare_value
                 (Gator.Graph.VS.elements (Gator.Graph.set_of graph node))))
          (Gator.Graph.locations graph)),
      taint_table r,
      Gator.Analysis.pollution r )
  in
  let family = [ 1; 2; 3; 4 ] in
  let run_family jobs =
    Pool.map ~jobs
      (fun layouts ->
        let app =
          Corpus.Gen.reflective_app
            ~name:(Printf.sprintf "ReflJobs%d" layouts)
            ~layouts ~seed:(100 + layouts) ()
        in
        fingerprint (Gator.Analysis.analyze app))
      family
    |> List.map Pool.value_exn
  in
  if run_family 1 <> run_family 4 then begin
    Fmt.epr "verify: reflective family solved differently at jobs 1 vs jobs 4@.";
    exit 1
  end;
  let polluted, nonempty = Gator.Analysis.pollution naive in
  Printf.printf
    "verify: sound mode covers all %d oracle resolutions on ReflHeavy (engines + tiers \
     bit-identical with taints, %d/%d sets top-polluted, jobs 1 = jobs 4 on %d reflective apps)\n"
    !resolutions polluted nonempty (List.length family)

(* CI smoke: the interned engine must agree bit-for-bit with the naive
   executable specification on the largest corpus app. *)
let run_verify () =
  let with_solver solver = { Gator.Config.default with Gator.Config.solver } in
  let check name app =
    let naive = Gator.Analysis.analyze ~config:(with_solver Gator.Config.Naive) app in
    let interned = Gator.Analysis.analyze ~config:(with_solver Gator.Config.Interned) app in
    let d = Gator.Diff.compare naive interned in
    if Gator.Diff.is_empty d then begin
      let s = Gator.Metrics.solver_stats interned in
      Printf.printf
        "verify: interned (scc-condensed) = naive on %s (%d ops, %d values, %d set words, %d \
         sccs, largest %d)\n"
        name s.Gator.Metrics.sv_ops s.Gator.Metrics.sv_interned_values
        s.Gator.Metrics.sv_bitset_words s.Gator.Metrics.sv_scc_count
        s.Gator.Metrics.sv_largest_scc
    end
    else begin
      Fmt.epr "verify: interned solution DIFFERS from naive on %s:@.%a@." name Gator.Diff.pp d;
      exit 1
    end
  in
  let spec =
    match Corpus.Apps.by_name "XBMC" with
    | Some spec -> spec
    | None -> failwith "corpus app XBMC not found"
  in
  check spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec);
  (* the frozen shared tier only relabels ids — the solution must not
     move at all relative to a fully private interner *)
  let xbmc = Corpus.Gen.generate spec in
  let shared = Gator.Analysis.analyze ~config:{ Gator.Config.default with shared_intern = true } xbmc in
  let private_ = Gator.Analysis.analyze ~config:{ Gator.Config.default with shared_intern = false } xbmc in
  let d = Gator.Diff.compare shared private_ in
  if not (Gator.Diff.is_empty d) then begin
    Fmt.epr "verify: shared-tier solution DIFFERS from private-tier on XBMC:@.%a@." Gator.Diff.pp d;
    exit 1
  end;
  Printf.printf "verify: shared interner tier = private tier on XBMC (watermarks %d values / %d rids)\n"
    (fst (Gator.Intern.shared_counts (Gator.Intern.shared_tier ())))
    (snd (Gator.Intern.shared_counts (Gator.Intern.shared_tier ())));
  (* the condensation earns its keep on cyclic flow, so check it where
     the direct-edge graph is one big tangle of rings *)
  let cycle_heavy =
    Corpus.Gen.cyclic_app ~name:"CycleHeavy" ~chains:4 ~chain_len:24 ~two_cycles:6 ~bridges:8
      ~seed:2014 ()
  in
  check "CycleHeavy" cycle_heavy;
  (* context-keyed context sensitivity: the id-space clone expansion
     must agree bit-for-bit with extraction-time inlining *)
  let check_cs name app =
    List.iter
      (fun depth ->
        let cs ctx_keyed =
          { Gator.Config.default with Gator.Config.inline_depth = depth; ctx_keyed }
        in
        let keyed = Gator.Analysis.analyze ~config:(cs true) app in
        let inlined = Gator.Analysis.analyze ~config:(cs false) app in
        let d = Gator.Diff.compare keyed inlined in
        if not (Gator.Diff.is_empty d) then begin
          Fmt.epr "verify: context-keyed solution DIFFERS from inlined on %s (depth %d):@.%a@."
            name depth Gator.Diff.pp d;
          exit 1
        end;
        let s = Gator.Metrics.solver_stats keyed in
        Printf.printf
          "verify: context-keyed = inlined on %s at depth %d (%d contexts, %d ctx keys)\n" name
          depth s.Gator.Metrics.sv_ctx_count s.Gator.Metrics.sv_ctx_keys)
      [ 1; 2 ]
  in
  check_cs spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec);
  check_cs "AliasHeavy"
    (Corpus.Gen.alias_heavy_app ~name:"AliasHeavy" ~groups:4 ~sites_per_group:5 ~seed:11 ());
  verify_incremental spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec)
    [
      Corpus.Patch.Add_stmt
        {
          cls = "Activity_0";
          meth = "onCreate";
          arity = 0;
          stmt = Jir.Ast.New ("verify_tmp", "android.widget.Button");
        };
    ];
  (* a cycle-splitting edit moves SCC membership — the invalidation
     path the seed-level patch above never exercises; the ring-closing
     copy is located by scanning so the index tracks the generator *)
  let ring_close =
    let open Jir.Ast in
    let meth =
      Option.bind
        (find_class cycle_heavy.Framework.App.program "CycleHeavy_Activity")
        (fun c -> find_meth c { mk_name = "onCreate"; mk_arity = 0 })
    in
    match meth with
    | None -> failwith "CycleHeavy_Activity.onCreate not found"
    | Some m -> (
        let close i = function Copy ("ch0_0", "ch0_23") -> Some i | _ -> None in
        match List.find_mapi (fun i s -> close i s) m.m_body with
        | Some i -> i
        | None -> failwith "ring-closing copy ch0_0 <- ch0_23 not found")
  in
  verify_incremental "CycleHeavy" cycle_heavy
    [
      Corpus.Patch.Remove_stmt
        { cls = "CycleHeavy_Activity"; meth = "onCreate"; arity = 0; index = ring_close };
    ];
  verify_reflection ();
  verify_daemon ();
  verify_stream ();
  exit 0

let run_all jobs fail_apps =
  let results = corpus jobs fail_apps in
  print_endline (Report.Experiments.table1 results);
  print_newline ();
  print_endline (Report.Experiments.table2 results);
  print_newline ();
  print_endline (Report.Experiments.solver_stats results);
  print_newline ();
  print_endline (Report.Experiments.case_study ());
  print_newline ();
  print_endline (Report.Experiments.ablations ());
  print_newline ();
  print_endline (Report.Experiments.context_precision ());
  print_newline ();
  print_endline (Report.Experiments.soundness_sweep ());
  exit (exit_code fail_apps results)

open Cmdliner

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the per-app batch. Defaults to the recommended domain count capped \
           by the configured maximum; 1 runs the exact sequential path.")

let fail_apps_arg =
  Arg.(
    value & opt_all string []
    & info [ "inject-failure" ] ~docv:"APP"
        ~doc:
          "Deliberately crash the named app's task (repeatable). The batch must survive with a \
           FAILED row; used by fault-isolation smoke tests.")

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let batch name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ jobs_arg $ fail_apps_arg)

let soundness_cmd =
  let apps = Arg.(value & opt int 25 & info [ "apps" ] ~doc:"Number of random apps to test.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "soundness" ~doc:"Dynamic-oracle soundness sweep over random apps and the corpus.")
    Term.(const run_soundness $ apps $ seed)

let () =
  let default = Term.(const run_all $ jobs_arg $ fail_apps_arg) in
  let info = Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures." in
  let cmds =
    [
      batch "table1" "Table 1: app features and constraint-graph populations." run_table1;
      batch "table2" "Table 2: analysis time and average solution sizes." run_table2;
      batch "solverstats" "Solver work counters: delta scheduling vs naive re-iteration."
        run_solverstats;
      simple "casestudy" "Section 5 precision case study against the dynamic oracle." run_casestudy;
      simple "figures" "Figures 1/3/4: ConnectBot facts and constraint graph." run_figures;
      simple "ablations" "Precision impact of disabling each refinement." run_ablations;
      simple "scalability" "Analysis cost vs application size." run_scalability;
      simple "precision"
        "Context-sensitivity precision delta on alias-heavy apps, plus the unknown-id pollution \
         table sound mode adds next to Table 2."
        run_precision;
      simple "verify"
        "CI smoke: SCC-condensed interned engine agrees bit-for-bit with naive on XBMC and on a \
         cycle-heavy app; the frozen shared interner tier changes nothing; the context-keyed \
         engine agrees with extraction-time inlining on XBMC and an alias-heavy app; \
         incremental warm solves match cold ones; sound mode stays a superset of every \
         dynamic-oracle resolution on the reflection-heavy family (engines and tiers \
         bit-identical, jobs 1 = jobs 4); the query daemon answers a load/query/patch/re-query \
         round-trip; a small stream matches the batch pool without writing the frozen tier."
        run_verify;
      soundness_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
