(* Command-line frontend: analyze one or more ALite programs (files or
   project directories) and print the computed GUI models.  With
   several inputs the analyses run on a worker-domain pool (--jobs);
   an input that fails to load or crashes its analysis renders as a
   FAILED section while the other inputs still produce output. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let layout_name_of_path path = Filename.remove_extension (Filename.basename path)

let load code_path layout_paths =
  if Sys.is_directory code_path then Project.load code_path
  else
    let code = read_file code_path in
    let layouts =
      List.map (fun path -> (layout_name_of_path path, read_file path)) layout_paths
    in
    Framework.App.of_source ~name:(layout_name_of_path code_path) ~code ~layouts

(* The whole per-input pipeline, rendered to a string so batch output
   stays in submission order no matter which worker finishes first.
   Every failure mode — unreadable file, parse error, failed
   diagnostics, analysis crash — is an [Error]. *)
(* Incremental mode: warm-start from a state file when one exists and
   loads, fall back to a recorded full solve otherwise, and always save
   the new solved state back.  The stats line surfaces which path ran
   and why. *)
let analyze_with_state ~config ~state app =
  let result, solved =
    if Sys.file_exists state then
      match Gator.Snapshot.load state with
      | Ok prev -> Gator.Incremental.analyze_incremental ~config ~prev app
      | Error reason -> Gator.Incremental.analyze_solved ~config ~fallback:reason app
    else Gator.Incremental.analyze_solved ~config app
  in
  Gator.Snapshot.save solved state;
  result

let pp_incremental_stats ppf (r : Gator.Analysis.t) =
  let s = r.Gator.Analysis.stats in
  match s.Gator.Solve.fallback with
  | Some reason -> Fmt.pf ppf "incremental: full solve (fallback: %s)@." reason
  | None ->
      if s.Gator.Solve.warm_solve then
        Fmt.pf ppf "incremental: warm solve, %d dirty / %d reused of %d components@."
          s.Gator.Solve.dirty_comps s.Gator.Solve.reused_comps s.Gator.Solve.scc_count
      else Fmt.pf ppf "incremental: full solve (no usable state)@."

let analyze_one ~config ~dump_dot ~show_interactions ~show_diagnostics ~run_dynamic ~json
    ~state code_path layout_paths =
  match load code_path layout_paths with
  | Error e -> Error e
  | Ok app ->
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      let diagnostics_clean =
        if not show_diagnostics then true
        else begin
          let diagnostics = Framework.App.diagnostics app in
          List.iter (fun d -> Fmt.pf ppf "%a@." Jir.Wellformed.pp_diagnostic d) diagnostics;
          Jir.Wellformed.is_clean diagnostics
        end
      in
      if not diagnostics_clean then begin
        Format.pp_print_flush ppf ();
        Error (Buffer.contents buf ^ "diagnostics reported errors")
      end
      else begin
        let r =
          match state with
          | None -> Gator.Analysis.analyze ~config app
          | Some state ->
              let r = analyze_with_state ~config ~state app in
              (* a refused warm start is invisible in the answers;
                 surface it on stderr even under --json / --quiet *)
              Option.iter (Fmt.epr "warning: %s@.") (Gator.Incremental.refusal_warning r);
              if not json then pp_incremental_stats ppf r;
              r
        in
        if json then Buffer.add_string buf (Gator.Export.to_string ~pretty:true r ^ "\n")
        else begin
          Fmt.pf ppf "%a@.@." Gator.Analysis.pp_summary r;
          List.iter
            (fun (op : Gator.Graph.op) ->
              let views = Gator.Analysis.op_receiver_views r op in
              let results = Gator.Analysis.op_result_views r op in
              Fmt.pf ppf "%a@." Gator.Node.pp_op_site op.site;
              if views <> [] then
                Fmt.pf ppf "  receivers: %a@." (Fmt.list ~sep:Fmt.comma Gator.Node.pp_view) views;
              if results <> [] then
                Fmt.pf ppf "  results:   %a@." (Fmt.list ~sep:Fmt.comma Gator.Node.pp_view) results)
            (Gator.Analysis.ops r);
          if show_interactions then begin
            Fmt.pf ppf "@.Interactions (activity, view, event, handler):@.";
            List.iter
              (fun ix -> Fmt.pf ppf "  %a@." Gator.Analysis.pp_interaction ix)
              (Gator.Analysis.interactions r);
            match Gator.Analysis.transitions r with
            | [] -> ()
            | transitions ->
                Fmt.pf ppf "@.Activity transitions:@.";
                List.iter (fun (a, b) -> Fmt.pf ppf "  %s -> %s@." a b) transitions
          end;
          if run_dynamic then begin
            let outcome = Dynamic.Interp.run app in
            let coverage = Dynamic.Oracle.check r outcome in
            Fmt.pf ppf "@.Dynamic run: %d observations; %a@."
              (List.length outcome.observations)
              Dynamic.Oracle.pp_coverage coverage
          end;
          if dump_dot then Fmt.pf ppf "@.%a@." Gator.Graph.pp_dot r.graph
        end;
        Format.pp_print_flush ppf ();
        Ok (Buffer.contents buf)
      end

let run code_paths layout_paths solver dump_dot show_interactions show_diagnostics run_dynamic
    json jobs incremental state_path =
  let config = { Gator.Config.default with solver } in
  let state =
    match (incremental, state_path) with
    | false, _ -> None
    | true, Some path -> Some path
    | true, None ->
        Fmt.epr "error: --incremental requires --state FILE@.";
        exit 2
  in
  if Option.is_some state && List.length code_paths > 1 then begin
    Fmt.epr "error: --incremental analyzes a single program (one state file, one app)@.";
    exit 2
  end;
  let analyze path =
    analyze_one ~config ~dump_dot ~show_interactions ~show_diagnostics ~run_dynamic ~json ~state
      path layout_paths
  in
  match code_paths with
  | [ single ] -> (
      (* single input: historical output shape, no pool *)
      match analyze single with
      | Ok out -> print_string out
      | Error e ->
          Fmt.epr "error: %s@." e;
          exit 1)
  | many ->
      let jobs =
        match jobs with
        | Some j -> max 1 j
        | None -> Pool.default_jobs ~cap:Gator.Config.default.Gator.Config.jobs ()
      in
      let outcomes = Pool.map ~jobs analyze many in
      let failed = ref false in
      List.iter2
        (fun path (outcome : _ Pool.outcome) ->
          Printf.printf "== %s ==\n" path;
          match outcome.Pool.oc_result with
          | Ok (Ok out) ->
              print_string out;
              print_newline ()
          | Ok (Error e) ->
              failed := true;
              Printf.printf "FAILED: %s\n\n" e
          | Error pool_err ->
              failed := true;
              Printf.printf "FAILED: %s\n\n" pool_err.Pool.err_exn)
        many outcomes;
      if !failed then exit 1

(* Serving mode: a resident daemon keeping solved corpora hot, and a
   one-shot query client speaking its framed-JSON protocol. *)

let run_serve socket state_dir preload =
  let t = Server.Daemon.create ?state_dir ~socket () in
  Server.Daemon.run ~preload t

let run_query socket payload pretty =
  let request =
    match Util.Json.of_string payload with
    | Ok j -> j
    | Error e ->
        Fmt.epr "error: request is not JSON: %s@." e;
        exit 2
  in
  match Server.Client.request ~socket request with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok response ->
      print_endline (Util.Json.to_string ~pretty response);
      if Option.is_some (Util.Json.member "error" response) then exit 1

(* Streaming mode: generated apps flow through the bounded pipeline
   and each result leaves as one JSONL line the moment it completes. *)

let run_stream apps seed jobs high low out_path fail_apps timings private_intern quiet =
  let config = { Gator.Config.default with shared_intern = not private_intern } in
  let oc, close =
    match out_path with
    | None -> (stdout, fun () -> flush stdout)
    | Some path ->
        let oc = open_out path in
        (oc, fun () -> close_out oc)
  in
  let emit line =
    output_string oc line;
    output_char oc '\n'
  in
  let start = Unix.gettimeofday () in
  let stats =
    Fun.protect ~finally:close (fun () ->
        Report.Experiments.run_stream ~config ?jobs ?high ?low ~timings ~fail_apps ~seed ~apps
          ~emit ())
  in
  let seconds = Unix.gettimeofday () -. start in
  if not quiet then
    Fmt.epr "stream: %d apps in %.2fs (%.1f apps/s), %d failed, peak queue %d, %d steals@."
      stats.Pool.Stream.st_consumed seconds
      (float_of_int stats.Pool.Stream.st_consumed /. Float.max seconds 1e-9)
      stats.Pool.Stream.st_failed stats.Pool.Stream.st_max_queued stats.Pool.Stream.st_steals;
  if stats.Pool.Stream.st_failed > 0 then exit 1

open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Persist solved state (snapshots + accepted patch edits) here; a restarted daemon \
             recovers loaded apps from it without re-solving.")
  in
  let preload =
    Arg.(
      value & opt_all string []
      & info [ "preload" ] ~docv:"APP"
          ~doc:"Corpus app to load (and solve) before accepting requests. Repeatable.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident query daemon: solved apps stay hot in memory, point queries are \
          answered backward from the query node, and patch requests update the state \
          incrementally. Shut down with a $(b,shutdown) request.")
    Term.(const run_serve $ socket_arg $ state_dir $ preload)

let query_cmd =
  let payload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "The request as JSON, e.g. '{\"method\":\"load\",\"app\":\"XBMC\"}' or \
             '{\"method\":\"points-to-of-node\",\"app\":\"XBMC\",\"node\":{\"var\":{\"cls\":\"Activity_0\",\"meth\":\"onCreate\",\"arity\":0,\"name\":\"root\"}}}'.")
  in
  let pretty = Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the response JSON.") in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one framed request to a running daemon and print the response. Exits non-zero on \
          transport failure or an error envelope.")
    Term.(const run_query $ socket_arg $ payload $ pretty)

let stream_cmd =
  let apps =
    Arg.(
      value & opt int 1000
      & info [ "apps" ] ~docv:"N" ~doc:"Number of generated applications to stream.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Stream seed; app $(i,i) is a pure function of (seed, i).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains. Defaults to the recommended domain count capped by the configured \
             maximum; 1 forces the exact sequential loop.")
  in
  let high =
    Arg.(
      value
      & opt (some int) None
      & info [ "high" ] ~docv:"N"
          ~doc:
            "High watermark: production pauses once this many tasks are queued unstarted \
             (default: 2*jobs).")
  in
  let low =
    Arg.(
      value
      & opt (some int) None
      & info [ "low" ] ~docv:"N"
          ~doc:"Low watermark: production resumes when the backlog drains to this (default: high/2).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write JSONL rows here instead of stdout.")
  in
  let fail_apps =
    Arg.(
      value & opt_all string []
      & info [ "inject-failure" ] ~docv:"APP"
          ~doc:"Make the named generated app crash, to exercise fault isolation. Repeatable.")
  in
  let no_timings =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:"Omit per-app wall times, making rows deterministic for byte comparisons.")
  in
  let private_intern =
    Arg.(
      value & flag
      & info [ "private-intern" ]
          ~doc:
            "Give every task a fully private interner instead of the process-wide frozen tier \
             (results are bit-identical; for measurement).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the summary line on stderr.") in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream generated applications through the analysis pipeline: bounded backpressure \
          queue, work-stealing worker domains, one JSONL row per app in completion order, \
          failures isolated as ok:false rows. Exits non-zero if any app failed.")
    Term.(
      const run_stream $ apps $ seed $ jobs $ high $ low $ out $ fail_apps
      $ Term.app (const not) no_timings $ private_intern $ quiet)

let () =
  let code =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"PROGRAM"
          ~doc:
            "ALite source file, or a project directory (src/*.alite + res/layout/*.xml). \
             Repeatable: several programs are analyzed as a batch with per-input fault \
             isolation.")
  in
  let layouts =
    Arg.(
      value & opt_all file []
      & info [ "l"; "layout" ] ~docv:"XML"
          ~doc:"Layout XML file; its basename (minus extension) is the layout name. Repeatable.")
  in
  let solver =
    let engines =
      [
        ("naive", Gator.Config.Naive);
        ("delta", Gator.Config.Delta);
        ("interned", Gator.Config.Interned);
      ]
    in
    Arg.(
      value
      & opt (enum engines) Gator.Config.default.Gator.Config.solver
      & info [ "solver" ] ~docv:"ENGINE"
          ~doc:
            "Constraint-solver engine: $(b,naive) (executable specification), $(b,delta) \
             (semi-naive structural), or $(b,interned) (semi-naive over dense ids and bitsets; \
             default). All three produce the same solution.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Dump the constraint graph in Graphviz form.") in
  let interactions =
    Arg.(value & flag & info [ "interactions" ] ~doc:"Print (activity, view, event, handler) tuples.")
  in
  let diagnostics =
    Arg.(value & flag & info [ "check" ] ~doc:"Run well-formedness diagnostics first.")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ] ~doc:"Also execute the dynamic semantics and check soundness coverage.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full solution as JSON and exit.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for batch (multi-program) runs. Defaults to the recommended domain \
             count capped by the configured maximum; 1 forces the sequential path.")
  in
  let incremental =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Re-analyze incrementally against the state file given by $(b,--state): warm-start \
             from the previous solution, re-solve only the components the edit touched, and save \
             the updated state back. Falls back to a full solve (reported, never an error) when \
             the state is missing, corrupt, or stale.")
  in
  let state_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"FILE"
          ~doc:"Solved-state file for $(b,--incremental) (created on first run).")
  in
  let term =
    Term.(
      const run $ code $ layouts $ solver $ dot $ interactions $ diagnostics $ dynamic $ json
      $ jobs $ incremental $ state_path)
  in
  let analyze_cmd =
    Cmd.v (Cmd.info "analyze" ~doc:"Analyze ALite programs and print the computed GUI models.") term
  in
  let info =
    Cmd.info "gator" ~doc:"Static reference analysis for GUI objects (CGO'14) on ALite programs."
  in
  (* [gator PROGRAM...] still works: cmdliner's group rejects unknown
     first positionals instead of routing them to a default term, so
     only dispatch into the group when an explicit subcommand is
     named; everything else is the original analyze surface. *)
  let group = Cmd.group ~default:term info [ analyze_cmd; serve_cmd; query_cmd; stream_cmd ] in
  let explicit_subcommand =
    Array.length Sys.argv > 1 && List.mem Sys.argv.(1) [ "analyze"; "serve"; "query"; "stream" ]
  in
  if explicit_subcommand then exit (Cmd.eval group)
  else exit (Cmd.eval (Cmd.v info term))
