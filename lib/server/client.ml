(* Client side of the query daemon's protocol: connect, frame a JSON
   request, read the framed JSON response.  Used by `gator query`, the
   CI smoke, and the concurrency tests (each client thread owns its
   own connection; the protocol is strictly request/response). *)

module J = Util.Json
module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  (* writes to a daemon that died mid-exchange must surface as the
     EPIPE that [rpc] catches, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

(* Retry while the daemon is still binding its socket. *)
let connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  let rec go n =
    match connect path with
    | Ok c -> Ok c
    | Error _ when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    | Error _ as e -> e
  in
  go attempts

(* [close_out_noerr] closes the shared fd; a second [Unix.close]
   would race fd reuse by other threads (see Daemon.serve_connection). *)
let close c = close_out_noerr c.oc

let rpc c request =
  try
    P.write_frame c.oc (J.to_string request);
    match P.read_frame c.ic with
    | Ok payload -> (
        match J.of_string payload with
        | Ok j -> Ok j
        | Error e -> Error (Printf.sprintf "unparsable response: %s" e))
    | Error fe -> Error (Fmt.str "%a" P.pp_frame_error fe)
  with exn -> Error (Printexc.to_string exn)

let rpc_raw c payload =
  try
    P.write_frame c.oc payload;
    match P.read_frame c.ic with
    | Ok response -> Ok response
    | Error fe -> Error (Fmt.str "%a" P.pp_frame_error fe)
  with exn -> Error (Printexc.to_string exn)

(* One-shot convenience: connect, one request, close.  Retries the
   connect by default so `gator query` right after `gator serve &`
   (the CI smoke) waits out the daemon's preload solve. *)
let request ?(attempts = 200) ~socket req =
  match connect_retry ~attempts socket with
  | Error _ as e -> e
  | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> rpc c req)
