(* The resident query daemon (ROADMAP "analysis-as-a-service").

   A single-threaded accept/request loop over a Unix-domain socket:
   requests are handled serially, so an incremental patch is atomic
   with respect to queries by construction — a client observes either
   the pre-patch or the post-patch registry entry, never a torn one
   (each answer carries the entry's generation so clients can tell
   which).  Loaded apps live in an in-memory registry of
   [Solve.solved] states fronted by [Gator.Query] handles; queries run
   backward from the query node and never mutate the solved state.

   Crash recovery: with a state directory configured, every solve is
   persisted through [Snapshot] and every accepted patch's edits are
   persisted verbatim; a restarted daemon replays the edits over the
   regenerated corpus app and serves the snapshot directly — answering
   queries without re-solving — as long as the rebuilt app's class
   fingerprint matches the captured one.  Any recovery failure
   (missing, corrupt or stale files) falls back to a fresh full solve;
   hostile state files are [Error]s, never crashes. *)

module J = Util.Json
module P = Protocol

let config = Gator.Config.default

type entry = {
  e_name : string;
  mutable e_app : Framework.App.t;  (** the app the solved state describes (base + patches) *)
  mutable e_solved : Gator.Solve.solved;
  mutable e_query : Gator.Query.t;
  mutable e_generation : int;  (** bumped by every applied patch *)
  mutable e_patches : J.t list;  (** accepted edit objects, oldest first *)
}

type t = {
  socket_path : string;
  state_dir : string option;
  registry : (string, entry) Hashtbl.t;
  mutable running : bool;
  log : bool;
}

let create ?(log = true) ?state_dir ~socket () =
  Option.iter (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755) state_dir;
  { socket_path = socket; state_dir; registry = Hashtbl.create 8; running = false; log }

let logf t fmt =
  if t.log then Printf.ksprintf (fun s -> Printf.eprintf "gator-serve: %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

(* ------------------------------------------------------------------ *)
(* Persistence *)

let snap_path dir name = Filename.concat dir (name ^ ".snap.json")

let patches_path dir name = Filename.concat dir (name ^ ".patches.json")

let persist t entry =
  Option.iter
    (fun dir ->
      Gator.Snapshot.save entry.e_solved (snap_path dir entry.e_name);
      let path = patches_path dir entry.e_name in
      if entry.e_patches = [] then begin if Sys.file_exists path then Sys.remove path end
      else begin
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (J.to_string (J.List entry.e_patches)))
      end)
    t.state_dir

(* Persisted patch edits, replayed over the regenerated base app so
   the registry's app matches the snapshotted solution's source.  Any
   defect (unreadable, unparsable, inapplicable) discards recovery of
   the patches AND the snapshot — the entry re-solves from base. *)
let recover_patches dir name base =
  let path = patches_path dir name in
  if not (Sys.file_exists path) then Some (base, [])
  else
    let read () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.of_string (try read () with _ -> "\255") with
    | Error _ -> None
    | Ok (J.List edits as j) -> (
        match Corpus.Patch.of_json j with
        | Error _ -> None
        | Ok patch -> (
            match Corpus.Patch.apply base patch with
            | Ok app -> Some (app, edits)
            | Error _ -> None))
    | Ok _ -> None

let recover_snapshot dir name (app : Framework.App.t) =
  let path = snap_path dir name in
  if not (Sys.file_exists path) then None
  else
    match Gator.Snapshot.load path with
    | Error _ -> None
    | Ok solved ->
        (* the query handle filters casts through [app]'s hierarchy;
           only trust it when the class surface matches the capture *)
        if String.equal (Gator.Solve.solved_class_fp solved) (Gator.Solve.class_fp app) then
          Some solved
        else None

(* ------------------------------------------------------------------ *)
(* Registry *)

let corpus_app name =
  match Corpus.Apps.by_name name with
  | Some spec -> Some (Corpus.Gen.generate spec)
  | None -> None

(* Load an entry: recover app+patches+snapshot from the state
   directory when possible, full-solve otherwise, and persist the
   result either way.  Returns the entry and where its solution came
   from ("registry" | "snapshot" | "solved"). *)
let load t name =
  match Hashtbl.find_opt t.registry name with
  | Some entry -> Ok (entry, "registry")
  | None -> (
      match corpus_app name with
      | None -> Error (P.E_unknown_app, Printf.sprintf "unknown app %S" name)
      | Some base ->
          let app, patches =
            match t.state_dir with
            | None -> (base, [])
            | Some dir -> (
                match recover_patches dir name base with
                | Some recovered -> recovered
                | None -> (base, []))
          in
          let solved, source =
            match t.state_dir with
            | Some dir when patches != [] || Sys.file_exists (snap_path dir name) -> (
                match recover_snapshot dir name app with
                | Some solved -> (Some solved, "snapshot")
                | None -> (None, "solved"))
            | _ -> (None, "solved")
          in
          let solved =
            match solved with
            | Some solved -> solved
            | None ->
                let _, solved = Gator.Incremental.analyze_solved ~config app in
                solved
          in
          let entry =
            {
              e_name = name;
              e_app = app;
              e_solved = solved;
              e_query = Gator.Query.create ~hierarchy:app.Framework.App.hierarchy solved;
              e_generation = List.length patches;
              e_patches = patches;
            }
          in
          persist t entry;
          Hashtbl.replace t.registry name entry;
          logf t "loaded %s (%s, generation %d)" name source entry.e_generation;
          Ok (entry, source))

let find t name =
  match Hashtbl.find_opt t.registry name with
  | Some entry -> Ok entry
  | None -> Error (P.E_unknown_app, Printf.sprintf "app %S is not loaded" name)

(* A patch replaces the query handle wholesale (the new solved state
   needs a new reverse index), but the [stats] reply is cumulative per
   loaded app: snapshot the retiring handle's counters into the fresh
   one so a patch never silently zeroes the totals a client is
   watching.  [Query.stats] itself stays "since create" — the
   accumulation across generations is a daemon-level contract. *)
let carry_stats ~retiring ~fresh =
  let open Gator.Query in
  fresh.q_queries <- fresh.q_queries + retiring.q_queries;
  fresh.q_memo_hits <- fresh.q_memo_hits + retiring.q_memo_hits;
  fresh.q_expanded <- fresh.q_expanded + retiring.q_expanded;
  fresh.q_edges <- fresh.q_edges + retiring.q_edges;
  fresh.q_generator_hits <- fresh.q_generator_hits + retiring.q_generator_hits;
  fresh.q_cycle_fallbacks <- fresh.q_cycle_fallbacks + retiring.q_cycle_fallbacks;
  fresh.q_budget_fallbacks <- fresh.q_budget_fallbacks + retiring.q_budget_fallbacks

let apply_patch t entry edits =
  match Corpus.Patch.of_json edits with
  | Error e -> Error (P.E_bad_params, Printf.sprintf "bad patch: %s" e)
  | Ok patch -> (
      match Corpus.Patch.apply entry.e_app patch with
      | Error e -> Error (P.E_bad_params, Printf.sprintf "patch does not apply: %s" e)
      | Ok app ->
          let r, solved = Gator.Incremental.analyze_incremental ~config ~prev:entry.e_solved app in
          let retiring = Gator.Query.stats entry.e_query in
          entry.e_app <- app;
          entry.e_solved <- solved;
          entry.e_query <- Gator.Query.create ~hierarchy:app.Framework.App.hierarchy solved;
          carry_stats ~retiring ~fresh:(Gator.Query.stats entry.e_query);
          entry.e_generation <- entry.e_generation + 1;
          entry.e_patches <-
            entry.e_patches @ (match edits with J.List l -> l | e -> [ e ]);
          persist t entry;
          let s = r.Gator.Analysis.stats in
          logf t "patched %s -> generation %d (%s)" entry.e_name entry.e_generation
            (if s.Gator.Solve.warm_solve then "warm" else "full");
          Ok (entry, s))

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let render pp v = Fmt.str "%a" pp v

let dispatch t request =
  match request with
  | P.R_ping -> P.ok (J.String "pong")
  | P.R_shutdown ->
      t.running <- false;
      P.ok (J.String "bye")
  | P.R_list ->
      let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.registry [] in
      P.ok (J.List (List.map (fun n -> J.String n) (List.sort String.compare names)))
  | P.R_load name -> (
      match load t name with
      | Error (code, msg) -> P.error code msg
      | Ok (entry, source) ->
          P.ok ~generation:entry.e_generation
            (J.Obj [ ("app", J.String entry.e_name); ("source", J.String source) ]))
  | P.R_points_to { app; node; budget } -> (
      match find t app with
      | Error (code, msg) -> P.error code msg
      | Ok entry -> (
          match Gator.Query.points_to ?budget entry.e_query node with
          | None ->
              P.error P.E_unknown_node
                (Printf.sprintf "node %s is unknown to %s" (render Gator.Node.pp node) app)
          | Some values ->
              P.ok ~generation:entry.e_generation
                (J.List (List.map (fun v -> J.String (render Gator.Node.pp_value v)) values))))
  | P.R_views_of_listener { app; listener } -> (
      match find t app with
      | Error (code, msg) -> P.error code msg
      | Ok entry ->
          let views = Gator.Query.views_of_listener entry.e_query listener in
          P.ok ~generation:entry.e_generation
            (J.List (List.map (fun v -> J.String (render Gator.Node.pp_view v)) views)))
  | P.R_activities_of_id { app; id } -> (
      match find t app with
      | Error (code, msg) -> P.error code msg
      | Ok entry ->
          let acts = Gator.Query.activities_of_id entry.e_query id in
          P.ok ~generation:entry.e_generation (J.List (List.map (fun a -> J.String a) acts)))
  | P.R_patch { app; edits } -> (
      match find t app with
      | Error (code, msg) -> P.error code msg
      | Ok entry -> (
          match apply_patch t entry edits with
          | Error (code, msg) -> P.error code msg
          | Ok (entry, s) ->
              P.ok ~generation:entry.e_generation
                (J.Obj
                   [
                     ("app", J.String entry.e_name);
                     ("warm", J.Bool s.Gator.Solve.warm_solve);
                     ("dirty", J.Int s.Gator.Solve.dirty_comps);
                     ("reused", J.Int s.Gator.Solve.reused_comps);
                   ])))
  | P.R_stats app -> (
      match find t app with
      | Error (code, msg) -> P.error code msg
      | Ok entry ->
          let s = Gator.Query.stats entry.e_query in
          P.ok ~generation:entry.e_generation
            (J.Obj
               [
                 ("app", J.String entry.e_name);
                 ("queries", J.Int s.Gator.Query.q_queries);
                 ("expanded", J.Int s.Gator.Query.q_expanded);
                 ("edges", J.Int s.Gator.Query.q_edges);
                 ("memo_hits", J.Int s.Gator.Query.q_memo_hits);
                 ("generator_hits", J.Int s.Gator.Query.q_generator_hits);
                 ("cycle_fallbacks", J.Int s.Gator.Query.q_cycle_fallbacks);
                 ("budget_fallbacks", J.Int s.Gator.Query.q_budget_fallbacks);
               ]))

(* One request payload -> one response payload.  Total: any hostile or
   unexpected condition renders as an error envelope; the daemon never
   dies inside a request. *)
let handle t payload =
  let response =
    match J.of_string payload with
    | Error e -> P.error P.E_parse e
    | Ok j -> (
        match P.request_of_json j with
        | Error (code, msg) -> P.error code msg
        | Ok request -> (
            try dispatch t request
            with exn -> P.error P.E_internal (Printexc.to_string exn)))
  in
  J.to_string response

(* ------------------------------------------------------------------ *)
(* Socket loop *)

(* Requests on one connection, serially, until close or shutdown.  A
   broken frame gets a best-effort error envelope and drops the
   connection (framing can't be resynced); a silent peer trips the
   receive timeout and is dropped the same way. *)
let serve_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let safe_write payload = try P.write_frame oc payload with _ -> () in
  let rec loop () =
    match (try P.read_frame ic with exn -> Error (P.Bad_frame (Printexc.to_string exn))) with
    | Ok payload ->
        safe_write (handle t payload);
        if t.running then loop ()
    | Error P.Eof -> ()
    | Error (P.Oversized n) ->
        safe_write (J.to_string (P.error P.E_oversized (Printf.sprintf "%d bytes" n)))
    | Error (P.Bad_frame reason) -> safe_write (J.to_string (P.error P.E_bad_frame reason))
  in
  loop ();
  (* [close_out_noerr] closes the underlying fd (even when the final
     flush fails); do NOT also [Unix.close fd] — by then the number
     may already name another thread's fresh socket, and the stray
     close cross-wires connections (fd-reuse race, found by the fuzz
     battery). *)
  close_out_noerr oc

let run ?(preload = []) t =
  (* a peer that vanishes mid-response must not kill the daemon: turn
     SIGPIPE into the EPIPE that [safe_write] already swallows *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists t.socket_path then Sys.remove t.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      if Sys.file_exists t.socket_path then try Sys.remove t.socket_path with _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX t.socket_path);
      Unix.listen sock 16;
      t.running <- true;
      List.iter
        (fun name ->
          match load t name with
          | Ok _ -> ()
          | Error (_, msg) -> logf t "preload failed: %s" msg)
        preload;
      logf t "listening on %s" t.socket_path;
      while t.running do
        match Unix.accept sock with
        | fd, _ -> ( try serve_connection t fd with _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
