(* Wire protocol of the query daemon.

   Framing: every message (request or response) is one frame —
   the payload's byte length in ASCII decimal, a single '\n', then the
   payload, which is a UTF-8 JSON document ([Util.Json]).  The length
   line makes truncation detectable (a short read is a broken frame,
   not a silent prefix) and caps hostile payloads before a byte of
   JSON is parsed.

   Requests are objects with a "method" field; responses are either
   {"ok": <payload>, "generation"?: n} or
   {"error": {"code": <slug>, "message": <text>}}.  Every hostile
   input maps to a structured error envelope — the daemon itself never
   dies on a request (the [Snapshot.load] discipline, applied to the
   wire). *)

module J = Util.Json

let max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Frame IO *)

type frame_error = Eof | Bad_frame of string | Oversized of int

let pp_frame_error ppf = function
  | Eof -> Fmt.string ppf "connection closed"
  | Bad_frame reason -> Fmt.pf ppf "bad frame: %s" reason
  | Oversized n -> Fmt.pf ppf "oversized frame: %d bytes (max %d)" n max_frame

(* The length line: bare ASCII digits, at most 10 of them (enough for
   any length the cap admits), terminated by '\n'. *)
let read_length ic =
  let buf = Buffer.create 12 in
  let rec go () =
    match input_char ic with
    | '\n' ->
        if Buffer.length buf = 0 then Error (Bad_frame "empty length line")
        else Ok (int_of_string (Buffer.contents buf))
    | '0' .. '9' as c ->
        if Buffer.length buf >= 10 then Error (Bad_frame "length line too long")
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | c -> Error (Bad_frame (Printf.sprintf "byte %C in length line" c))
  in
  try go () with End_of_file -> if Buffer.length buf = 0 then Error Eof else Error (Bad_frame "eof in length line")

let read_frame ic =
  match read_length ic with
  | Error _ as e -> e
  | Ok len ->
      if len > max_frame then Error (Oversized len)
      else begin
        let payload = Bytes.create len in
        try
          really_input ic payload 0 len;
          Ok (Bytes.unsafe_to_string payload)
        with End_of_file -> Error (Bad_frame "eof inside payload")
      end

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(* ------------------------------------------------------------------ *)
(* Error envelope *)

type error_code =
  | E_parse  (** payload is not JSON *)
  | E_bad_frame  (** framing violated (bad length line, truncated payload) *)
  | E_oversized
  | E_unknown_method
  | E_unknown_app
  | E_unknown_node  (** the referenced node/listener was never interned by the app's graph *)
  | E_bad_params
  | E_internal

let code_name = function
  | E_parse -> "parse"
  | E_bad_frame -> "bad-frame"
  | E_oversized -> "oversized"
  | E_unknown_method -> "unknown-method"
  | E_unknown_app -> "unknown-app"
  | E_unknown_node -> "unknown-node"
  | E_bad_params -> "bad-params"
  | E_internal -> "internal"

let error code message =
  J.Obj [ ("error", J.Obj [ ("code", J.String (code_name code)); ("message", J.String message) ]) ]

let ok ?generation payload =
  J.Obj
    (("ok", payload)
    :: (match generation with None -> [] | Some g -> [ ("generation", J.Int g) ]))

(* ------------------------------------------------------------------ *)
(* Request vocabulary *)

type request =
  | R_ping
  | R_list
  | R_load of string  (** load (or re-serve) a corpus app by name *)
  | R_points_to of { app : string; node : Gator.Node.t; budget : int option }
  | R_views_of_listener of { app : string; listener : Gator.Node.listener_abs }
  | R_activities_of_id of { app : string; id : string }
  | R_patch of { app : string; edits : J.t }
      (** edits carried as raw JSON ([Corpus.Patch.of_json] grammar) so
          the daemon can persist them verbatim for crash recovery *)
  | R_stats of string
  | R_shutdown

(* --- encoders (the client side) --- *)

let mid_fields (m : Gator.Node.mid) =
  [
    ("cls", J.String m.Gator.Node.mid_cls);
    ("meth", J.String m.Gator.Node.mid_name);
    ("arity", J.Int m.Gator.Node.mid_arity);
  ]

let node_to_json = function
  | Gator.Node.N_var (m, v) -> J.Obj [ ("var", J.Obj (mid_fields m @ [ ("name", J.String v) ])) ]
  | Gator.Node.N_field f -> J.Obj [ ("field", J.String f) ]
  | Gator.Node.N_ret m -> J.Obj [ ("ret", J.Obj (mid_fields m)) ]

let listener_to_json = function
  | Gator.Node.L_act cls -> J.Obj [ ("act", J.String cls) ]
  | Gator.Node.L_alloc site ->
      (* the allocated class and the enclosing method's class are both
         "cls", so the enclosing method gets its own "in" object *)
      J.Obj
        [
          ( "alloc",
            J.Obj
              [
                ("cls", J.String site.Gator.Node.a_cls);
                ("stmt", J.Int site.Gator.Node.a_site.Gator.Node.s_stmt);
                ("in", J.Obj (mid_fields site.Gator.Node.a_site.Gator.Node.s_in));
              ] );
        ]

let request_to_json = function
  | R_ping -> J.Obj [ ("method", J.String "ping") ]
  | R_list -> J.Obj [ ("method", J.String "list") ]
  | R_load app -> J.Obj [ ("method", J.String "load"); ("app", J.String app) ]
  | R_points_to { app; node; budget } ->
      J.Obj
        ([
           ("method", J.String "points-to-of-node");
           ("app", J.String app);
           ("node", node_to_json node);
         ]
        @ match budget with None -> [] | Some b -> [ ("budget", J.Int b) ])
  | R_views_of_listener { app; listener } ->
      J.Obj
        [
          ("method", J.String "views-of-listener");
          ("app", J.String app);
          ("listener", listener_to_json listener);
        ]
  | R_activities_of_id { app; id } ->
      J.Obj
        [ ("method", J.String "activities-of-id"); ("app", J.String app); ("id", J.String id) ]
  | R_patch { app; edits } ->
      J.Obj [ ("method", J.String "patch"); ("app", J.String app); ("edits", edits) ]
  | R_stats app -> J.Obj [ ("method", J.String "stats"); ("app", J.String app) ]
  | R_shutdown -> J.Obj [ ("method", J.String "shutdown") ]

(* --- decoders (the daemon side); every malformation is [E_bad_params] --- *)

let ( let* ) = Result.bind

let str_field name j =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | _ -> Error (E_bad_params, Printf.sprintf "missing or non-string %S" name)

let int_field name j =
  match J.member name j with
  | Some (J.Int i) -> Ok i
  | _ -> Error (E_bad_params, Printf.sprintf "missing or non-int %S" name)

let mid_of_json j =
  let* cls = str_field "cls" j in
  let* name = str_field "meth" j in
  let* arity = int_field "arity" j in
  Ok { Gator.Node.mid_cls = cls; mid_name = name; mid_arity = arity }

let node_of_json j =
  match (J.member "var" j, J.member "field" j, J.member "ret" j) with
  | Some v, None, None ->
      let* m = mid_of_json v in
      let* name = str_field "name" v in
      Ok (Gator.Node.N_var (m, name))
  | None, Some (J.String f), None -> Ok (Gator.Node.N_field f)
  | None, Some _, None -> Error (E_bad_params, "\"field\" must be a string")
  | None, None, Some r ->
      let* m = mid_of_json r in
      Ok (Gator.Node.N_ret m)
  | _ -> Error (E_bad_params, "node must have exactly one of \"var\"/\"field\"/\"ret\"")

let listener_of_json j =
  match (J.member "act" j, J.member "alloc" j) with
  | Some (J.String cls), None -> Ok (Gator.Node.L_act cls)
  | Some _, None -> Error (E_bad_params, "\"act\" must be a string")
  | None, Some a ->
      let* cls = str_field "cls" a in
      let* stmt = int_field "stmt" a in
      let* m =
        match J.member "in" a with
        | Some in_ -> mid_of_json in_
        | None -> Error (E_bad_params, "missing \"in\" (enclosing method) in \"alloc\"")
      in
      Ok
        (Gator.Node.L_alloc
           { Gator.Node.a_cls = cls; a_site = { Gator.Node.s_in = m; s_stmt = stmt } })
  | _ -> Error (E_bad_params, "listener must have exactly one of \"act\"/\"alloc\"")

let request_of_json j =
  match J.member "method" j with
  | Some (J.String "ping") -> Ok R_ping
  | Some (J.String "list") -> Ok R_list
  | Some (J.String "shutdown") -> Ok R_shutdown
  | Some (J.String "load") ->
      let* app = str_field "app" j in
      Ok (R_load app)
  | Some (J.String "points-to-of-node") ->
      let* app = str_field "app" j in
      let* node =
        match J.member "node" j with
        | Some n -> node_of_json n
        | None -> Error (E_bad_params, "missing \"node\"")
      in
      let* budget =
        match J.member "budget" j with
        | None -> Ok None
        | Some (J.Int b) when b >= 0 -> Ok (Some b)
        | Some _ -> Error (E_bad_params, "\"budget\" must be a non-negative int")
      in
      Ok (R_points_to { app; node; budget })
  | Some (J.String "views-of-listener") ->
      let* app = str_field "app" j in
      let* listener =
        match J.member "listener" j with
        | Some l -> listener_of_json l
        | None -> Error (E_bad_params, "missing \"listener\"")
      in
      Ok (R_views_of_listener { app; listener })
  | Some (J.String "activities-of-id") ->
      let* app = str_field "app" j in
      let* id = str_field "id" j in
      Ok (R_activities_of_id { app; id })
  | Some (J.String "patch") ->
      let* app = str_field "app" j in
      let* edits =
        match J.member "edits" j with
        | Some (J.List _ as e) -> Ok e
        | Some _ -> Error (E_bad_params, "\"edits\" must be a list")
        | None -> Error (E_bad_params, "missing \"edits\"")
      in
      Ok (R_patch { app; edits })
  | Some (J.String "stats") ->
      let* app = str_field "app" j in
      Ok (R_stats app)
  | Some (J.String m) -> Error (E_unknown_method, Printf.sprintf "unknown method %S" m)
  | Some _ -> Error (E_bad_params, "\"method\" must be a string")
  | None -> Error (E_bad_params, "missing \"method\"")
