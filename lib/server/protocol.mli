(** Wire protocol of the query daemon.

    Framing: one message per frame — the payload length in ASCII
    decimal, ['\n'], then that many bytes of UTF-8 JSON.  Requests are
    objects with a ["method"] field; responses are [{"ok": ...}] (plus
    a ["generation"] counter on per-app answers) or
    [{"error": {"code", "message"}}].  Hostile input maps to error
    envelopes, never to a dead daemon. *)

val max_frame : int
(** Payload byte cap; longer frames are refused before parsing. *)

(** {1 Frame IO} *)

type frame_error =
  | Eof  (** clean close before a length line *)
  | Bad_frame of string  (** framing violated: bad length line or truncated payload *)
  | Oversized of int  (** declared length above {!max_frame} *)

val pp_frame_error : frame_error Fmt.t

val read_frame : in_channel -> (string, frame_error) result

val write_frame : out_channel -> string -> unit
(** Writes and flushes one frame. *)

(** {1 Error envelope} *)

type error_code =
  | E_parse
  | E_bad_frame
  | E_oversized
  | E_unknown_method
  | E_unknown_app
  | E_unknown_node
  | E_bad_params
  | E_internal

val code_name : error_code -> string

val error : error_code -> string -> Util.Json.t

val ok : ?generation:int -> Util.Json.t -> Util.Json.t

(** {1 Request vocabulary} *)

type request =
  | R_ping
  | R_list
  | R_load of string
  | R_points_to of { app : string; node : Gator.Node.t; budget : int option }
  | R_views_of_listener of { app : string; listener : Gator.Node.listener_abs }
  | R_activities_of_id of { app : string; id : string }
  | R_patch of { app : string; edits : Util.Json.t }
      (** edits in the [Corpus.Patch.of_json] grammar, kept as raw JSON
          so the daemon can persist them verbatim *)
  | R_stats of string
  | R_shutdown

val request_to_json : request -> Util.Json.t

val request_of_json : Util.Json.t -> (request, error_code * string) result

(** {1 Operand codecs} (exposed for tests and CLI sugar) *)

val node_to_json : Gator.Node.t -> Util.Json.t

val node_of_json : Util.Json.t -> (Gator.Node.t, error_code * string) result

val listener_to_json : Gator.Node.listener_abs -> Util.Json.t

val listener_of_json : Util.Json.t -> (Gator.Node.listener_abs, error_code * string) result
