(** The resident query daemon: an in-memory registry of solved apps
    behind a Unix-domain socket speaking the {!Protocol} framing.

    Requests are handled serially on a single thread, so an
    incremental patch is atomic with respect to queries — every
    answer reflects exactly one registry generation, reported in the
    response envelope.  With a state directory configured, solves and
    accepted patch edits are persisted; a restarted daemon replays the
    edits over the regenerated corpus app and serves the snapshot
    directly, without re-solving (falling back to a full solve when
    recovery fails the class-fingerprint guard or the files are
    corrupt). *)

type t

val create : ?log:bool -> ?state_dir:string -> socket:string -> unit -> t
(** [state_dir] is created if missing; omit it for a purely in-memory
    daemon.  [log] (default true) prints one stderr line per load /
    patch / listen. *)

val run : ?preload:string list -> t -> unit
(** Bind the socket, optionally load the named corpus apps, and serve
    until a [shutdown] request.  Removes a stale socket file first and
    unlinks it on exit. *)

val handle : t -> string -> string
(** One request payload to one response payload — the daemon's full
    dispatch without the socket, exposed for in-process tests and the
    [experiments verify] smoke.  Never raises. *)

type entry
(** A registered app; opaque. *)

val load : t -> string -> (entry * string, Protocol.error_code * string) result
(** Load (or return the already-registered) corpus app.  The string is
    the solution's source: ["registry"], ["snapshot"] (crash
    recovery), or ["solved"]. *)
