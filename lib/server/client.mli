(** Client side of the daemon protocol: one connection, strictly
    request/response.  Connections are not shared between threads —
    each client thread opens its own. *)

type t

val connect : string -> (t, string) result

val connect_retry : ?attempts:int -> ?delay:float -> string -> (t, string) result
(** Retry [connect] while the daemon is still binding (default 100
    attempts, 50ms apart). *)

val close : t -> unit

val rpc : t -> Util.Json.t -> (Util.Json.t, string) result
(** Send one framed request, read one framed response.  [Error] is a
    transport failure; protocol-level failures arrive as [Ok] error
    envelopes. *)

val rpc_raw : t -> string -> (string, string) result
(** Raw payload variant, for the fuzz tests (malformed bytes on
    purpose). *)

val request : ?attempts:int -> socket:string -> Util.Json.t -> (Util.Json.t, string) result
(** One-shot: connect (retrying while the daemon binds; default 200
    attempts, 50ms apart), one [rpc], close. *)
