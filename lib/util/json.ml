type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        Buffer.add_string buf "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string buf "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string buf "\\n";
        incr i
    | '\r' ->
        Buffer.add_string buf "\\r";
        incr i
    | '\t' ->
        Buffer.add_string buf "\\t";
        incr i
    | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
        incr i
    | '\xed' when !i + 2 < n ->
        (* 0xED leads U+D000..U+DFFF; the D800..DFFF half is CESU-8 —
           our own parser's lenient encoding of an unpaired \uXXXX
           surrogate.  Re-escape LONE surrogates so the text output is
           valid UTF-8 and text -> value -> text is byte-stable.  A
           true adjacent high+low pair must stay raw: escaping it
           would make the parser recombine the pair into one astral
           code point, different bytes from what we were given. *)
        let cesu at =
          if at + 2 < n then begin
            let b1 = Char.code s.[at + 1] and b2 = Char.code s.[at + 2] in
            if s.[at] = '\xed' && b1 land 0xC0 = 0x80 && b2 land 0xC0 = 0x80 then
              let cp = 0xD000 lor ((b1 land 0x3F) lsl 6) lor (b2 land 0x3F) in
              if cp >= 0xD800 then Some cp else None
            else None
          end
          else None
        in
        (match cesu !i with
        | Some cp ->
            let paired_low =
              cp <= 0xDBFF
              && match cesu (!i + 3) with Some lo -> lo >= 0xDC00 | None -> false
            in
            if paired_low then begin
              Buffer.add_string buf (String.sub s !i 6);
              i := !i + 6
            end
            else begin
              Buffer.add_string buf (Printf.sprintf "\\u%04x" cp);
              i := !i + 3
            end
        | None ->
            Buffer.add_char buf '\xed';
            incr i)
    | c when Char.code c < 0xF0 ->
        (* ASCII and 2-/3-byte UTF-8 (the BMP) pass through raw *)
        Buffer.add_char buf c;
        incr i
    | c ->
        (* 4-byte UTF-8 lead: a non-BMP code point.  \uXXXX can only
           name the BMP, so astral characters are escaped as a
           UTF-16 surrogate pair.  Malformed sequences fall through
           as raw bytes, like every other non-UTF-8 byte. *)
        let astral =
          if !i + 3 < n then begin
            let b0 = Char.code c in
            let b1 = Char.code s.[!i + 1] in
            let b2 = Char.code s.[!i + 2] in
            let b3 = Char.code s.[!i + 3] in
            if
              b0 land 0xF8 = 0xF0 && b1 land 0xC0 = 0x80 && b2 land 0xC0 = 0x80
              && b3 land 0xC0 = 0x80
            then
              let cp =
                ((b0 land 0x07) lsl 18)
                lor ((b1 land 0x3F) lsl 12)
                lor ((b2 land 0x3F) lsl 6)
                lor (b3 land 0x3F)
              in
              if cp >= 0x10000 && cp <= 0x10FFFF then Some cp else None
            else None
          end
          else None
        in
        (match astral with
        | Some cp ->
            let u = cp - 0x10000 in
            Buffer.add_string buf
              (Printf.sprintf "\\u%04x\\u%04x" (0xD800 lor (u lsr 10)) (0xDC00 lor (u land 0x3FF)));
            i := !i + 4
        | None ->
            Buffer.add_char buf c;
            incr i))
  done;
  Buffer.add_char buf '"'

let rec write ~pretty ~indent buf t =
  let pad n = if pretty then Buffer.add_string buf (String.make n ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (indent + 2);
          write ~pretty ~indent:(indent + 2) buf item)
        items;
      newline ();
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          write ~pretty ~indent:(indent + 2) buf v)
        fields;
      newline ();
      pad indent;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  write ~pretty ~indent:0 buf t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string ~pretty:true t)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> Float.is_integer y && int_of_float y = x
  | String x, String y -> x = y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List xs -> Some xs | _ -> None

(* ------------------------------ parser ------------------------------ *)

exception Fail of string * int

type cursor = { src : string; mutable off : int }

let error cur msg = raise (Fail (msg, cur.off))

let peek cur = if cur.off < String.length cur.src then Some cur.src.[cur.off] else None

let advance cur = cur.off <- cur.off + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.off + n <= String.length cur.src && String.sub cur.src cur.off n = word then begin
    cur.off <- cur.off + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

(* UTF-8 encode one code point, astral plane included. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' ->
            advance cur;
            Buffer.add_char buf '\n';
            go ()
        | Some 't' ->
            advance cur;
            Buffer.add_char buf '\t';
            go ()
        | Some 'r' ->
            advance cur;
            Buffer.add_char buf '\r';
            go ()
        | Some 'b' ->
            advance cur;
            Buffer.add_char buf '\b';
            go ()
        | Some 'f' ->
            advance cur;
            Buffer.add_char buf '\012';
            go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf (Option.get (peek cur));
            advance cur;
            go ()
        | Some 'u' ->
            advance cur;
            let hex4 () =
              if cur.off + 4 > String.length cur.src then error cur "bad \\u escape";
              let hex = String.sub cur.src cur.off 4 in
              cur.off <- cur.off + 4;
              match int_of_string_opt ("0x" ^ hex) with
              | Some code -> code
              | None -> error cur "bad \\u escape"
            in
            let code = hex4 () in
            let code =
              (* \uXXXX only reaches the BMP; astral code points arrive
                 as a UTF-16 surrogate pair.  Combine a high surrogate
                 with the following \u-escaped low surrogate; an
                 unpaired surrogate keeps the old lenient per-escape
                 byte encoding. *)
              if
                code >= 0xD800 && code <= 0xDBFF
                && cur.off + 2 <= String.length cur.src
                && cur.src.[cur.off] = '\\'
                && cur.src.[cur.off + 1] = 'u'
              then begin
                let save = cur.off in
                cur.off <- cur.off + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + (((code - 0xD800) lsl 10) lor (lo - 0xDC00))
                else begin
                  (* not a low surrogate: rewind and emit separately *)
                  cur.off <- save;
                  code
                end
              end
              else code
            in
            add_utf8 buf code;
            go ()
        | _ -> error cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.off in
  let consume pred =
    while (match peek cur with Some c -> pred c | None -> false) do
      advance cur
    done
  in
  if peek cur = Some '-' then advance cur;
  consume (fun c -> c >= '0' && c <= '9');
  let is_float = ref false in
  if peek cur = Some '.' then begin
    is_float := true;
    advance cur;
    consume (fun c -> c >= '0' && c <= '9')
  end;
  (match peek cur with
  | Some ('e' | 'E') ->
      is_float := true;
      advance cur;
      (match peek cur with Some ('+' | '-') -> advance cur | _ -> ());
      consume (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub cur.src start (cur.off - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error cur "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt text with Some f -> Float f | None -> error cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> error cur "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((key, v) :: acc)
          | _ -> error cur "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number cur
  | _ -> error cur "expected a JSON value"

let of_string src =
  let cur = { src; off = 0 } in
  match
    let v = parse_value cur in
    skip_ws cur;
    if cur.off < String.length src then error cur "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail (msg, off) -> Error (Printf.sprintf "at offset %d: %s" off msg)
