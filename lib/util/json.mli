(** Minimal JSON tree, printer, and parser.

    No third-party JSON library is vendored in this sealed environment;
    the analysis exports its solution as JSON for downstream tools
    (Section 6 clients: testing, security analyses), and the test suite
    round-trips through this parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Strings are emitted as UTF-8 with control characters escaped;
    non-BMP code points (4-byte UTF-8 sequences) are escaped as UTF-16
    surrogate pairs ([\uD83D\uDE00] for U+1F600), since a single
    [\uXXXX] only reaches the BMP. *)

val pp : t Fmt.t
(** Pretty (indented) form. *)

val of_string : string -> (t, string) result
(** Parses the full JSON value grammar (numbers are read as [Int] when
    they are exact integers, [Float] otherwise).  [\uXXXX] escapes
    cover the BMP directly; a high/low surrogate pair of escapes is
    combined into the astral code point it denotes (unpaired
    surrogates are tolerated and byte-encoded individually). *)

val equal : t -> t -> bool

val member : string -> t -> t option
(** Field lookup on [Obj]. *)

val to_list : t -> t list option
