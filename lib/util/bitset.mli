(** Growable bit sets over dense integer ids.

    The interned solver engine stores solution sets, delta sets and
    relationship tables as bitsets keyed by interner ids; the query
    engine reads the same sets demand-driven.  Words are OCaml native
    ints ([Sys.int_size] usable bits), so every hot operation is
    word-level. *)

type t

val bits_per_word : int

val create : unit -> t
(** Empty set; the word array grows on demand. *)

val mem : t -> int -> bool

val add : t -> int -> bool
(** [true] iff [i] was not already present. *)

val remove : t -> int -> unit

val is_empty : t -> bool

val clear : t -> unit
(** Remove every member, keeping the allocated capacity. *)

val copy : t -> t

val assign : t -> t -> unit
(** [assign dst src] overwrites [dst]'s contents with a copy of
    [src]'s — the bulk counterpart of clearing and re-adding every
    member. *)

val iter : (int -> unit) -> t -> unit
(** Members in increasing order (lowest set bit first). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val cardinal : t -> int

val union_delta : into:t -> t -> on_new:(int -> unit) -> unit
(** Merge the second set into [into]; [on_new] fires once for each
    element newly added to [into] (the semi-naive propagation
    primitive: only genuinely fresh bits are visited). *)

val subset : t -> t -> bool
(** [subset a b]: is every member of [a] already in [b]? *)

val intersects : t -> t -> bool

val equal : t -> t -> bool
(** Structural equality (capacity-insensitive). *)

val words : t -> int
(** Allocated words (capacity), for memory-pressure stats. *)

val same : t -> t -> bool
(** Physical identity — the aliasing test for shared component sets in
    the SCC-condensed solver (structural {!equal} cannot distinguish a
    shared set from an equal copy). *)
