(* Growable bit sets over dense integer ids.

   The interned solver engine stores solution sets, delta sets and
   relationship tables as bitsets keyed by interner ids, so the hot
   operations here are word-level: [union_delta] merges a source set
   into a destination while visiting exactly the newly-set bits, and
   [iter] walks members by repeatedly extracting the lowest set bit.

   Words are OCaml native ints ([Sys.int_size] usable bits, 63 on
   64-bit systems).  Cardinality uses a Kernighan popcount loop: the
   usual SWAR constants (0x5555...) do not fit in a 63-bit int. *)

type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create () = { words = [||] }

let ensure t word_idx =
  let n = Array.length t.words in
  if word_idx >= n then begin
    let cap = max 4 (max (word_idx + 1) (2 * n)) in
    let words = Array.make cap 0 in
    Array.blit t.words 0 words 0 n;
    t.words <- words
  end

let mem t i =
  let w = i / bits_per_word in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

(* Returns [true] when [i] was not already present. *)
let add t i =
  let w = i / bits_per_word in
  ensure t w;
  let bit = 1 lsl (i mod bits_per_word) in
  let old = t.words.(w) in
  if old land bit = 0 then begin
    t.words.(w) <- old lor bit;
    true
  end
  else false

let remove t i =
  let w = i / bits_per_word in
  if w < Array.length t.words then
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let is_empty t =
  let n = Array.length t.words in
  let rec go i = i >= n || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words }

(* Overwrite [dst]'s contents with a copy of [src]'s — the bulk
   counterpart of clearing and re-adding every member. *)
let assign dst src = dst.words <- Array.copy src.words

(* Number of trailing zeros of a one-bit word (a power of two). *)
let ntz_pow2 b =
  let n = ref 0 in
  let b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then n := !n + 1;
  !n

let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let bit = !w land - !w in
    f (base + ntz_pow2 bit);
    w := !w lxor bit
  done

let iter f t =
  for i = 0 to Array.length t.words - 1 do
    let w = t.words.(i) in
    if w <> 0 then iter_word f (i * bits_per_word) w
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let cardinal t =
  let c = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    let w = ref t.words.(i) in
    while !w <> 0 do
      incr c;
      w := !w land (!w - 1)
    done
  done;
  !c

(* Merge [src] into [into]; call [on_new] for each element newly added
   to [into].  This is the semi-naive propagation primitive: only the
   genuinely fresh bits are visited. *)
let union_delta ~into src ~on_new =
  let n = Array.length src.words in
  if n > 0 then ensure into (n - 1);
  for i = 0 to n - 1 do
    let sw = src.words.(i) in
    if sw <> 0 then begin
      let nw = sw land lnot into.words.(i) in
      if nw <> 0 then begin
        into.words.(i) <- into.words.(i) lor sw;
        iter_word on_new (i * bits_per_word) nw
      end
    end
  done

(* Is every member of [a] already in [b]?  Word-level; the warm
   (incremental) solver uses this as its would-grow test before
   copying a borrowed solution set. *)
let subset a b =
  let na = Array.length a.words and nb = Array.length b.words in
  let rec go i =
    i >= na
    || a.words.(i) land lnot (if i < nb then b.words.(i) else 0) = 0
       && go (i + 1)
  in
  go 0

let intersects a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i < n && (a.words.(i) land b.words.(i) <> 0 || go (i + 1)) in
  go 0

let equal a b =
  let na = Array.length a.words and nb = Array.length b.words in
  let n = max na nb in
  let rec go i =
    i >= n
    || (if i < na then a.words.(i) else 0) = (if i < nb then b.words.(i) else 0)
       && go (i + 1)
  in
  go 0

(* Allocated words (capacity), for memory-pressure stats. *)
let words t = Array.length t.words

(* Physical identity.  The SCC-condensed solver keys one mutable set
   per flow-cycle component and lets every member node alias it;
   [same] is the aliasing test (structural [equal] cannot distinguish
   a shared set from an equal copy, and a copy would not see later
   unions). *)
let same a b = a == b
