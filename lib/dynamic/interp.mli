(** Executable dynamic semantics of ALite + the Android operations of
    Section 3 of the paper.

    The interpreter drives each activity through its lifecycle
    callbacks (the paper's [t = new a(); t.m()] modeling), runs dialog
    callbacks for dialog objects the app created, then fires GUI events
    on every view with registered listeners for a number of rounds,
    rotating each container's "currently displayed" child between
    rounds to explore flipper-style behavior.

    Every platform operation executed is recorded as an observation
    tagged with the {e same structural site} the static analysis uses,
    so the trace can be compared against the static solution: the
    static analysis is sound iff every observation is covered.

    ALite is branch-free, so a run is deterministic given the options;
    recursion is bounded by fuel (exceeding it sets [truncated]). *)

type role = R_receiver | R_child | R_result | R_listener

type observation = {
  ob_op : Gator.Node.op_site;
  ob_role : role;
  ob_value : Gator.Node.value;
}

(** A concrete (activity, view, event, handler) interaction that
    actually fired. *)
type firing = {
  f_view : Gator.Node.view_abs;
  f_event : Framework.Listeners.event;
  f_handler : Gator.Node.mid;
  f_activities : string list;
      (** activities whose content hierarchy contained the view when
          the event fired (can be empty for detached views) *)
}

type outcome = {
  heap : Heap.t;
  observations : observation list;  (** in execution order *)
  registrations : (Gator.Node.view_abs * Gator.Node.listener_abs * string) list;
  firings : firing list;
  transitions : (string * string) list;
      (** (source activity, launched activity class) pairs that
          executed — the dynamic counterpart of the static
          activity-transition relation *)
  truncated : bool;  (** a fuel guard tripped; the trace is a prefix *)
}

type options = {
  event_rounds : int;  (** how many rounds of GUI events to fire *)
  max_depth : int;  (** call-stack bound *)
  max_steps : int;  (** total statement bound *)
  top_layout : string option;
      (** concrete layout name [R.layout.?] resolves to in this run.
          The soundness oracle replays a reflection-heavy app once per
          candidate resolution; a sound static solution must cover
          every such run.  [None] (the default) resolves to an id that
          matches no layout. *)
  top_view : string option;  (** likewise for [R.id.?] *)
}

val default_options : options

val run : ?options:options -> Framework.App.t -> outcome

val pp_observation : observation Fmt.t
