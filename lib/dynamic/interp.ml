type role = R_receiver | R_child | R_result | R_listener

type observation = { ob_op : Gator.Node.op_site; ob_role : role; ob_value : Gator.Node.value }

type firing = {
  f_view : Gator.Node.view_abs;
  f_event : Framework.Listeners.event;
  f_handler : Gator.Node.mid;
  f_activities : string list;
}

type outcome = {
  heap : Heap.t;
  observations : observation list;
  registrations : (Gator.Node.view_abs * Gator.Node.listener_abs * string) list;
  firings : firing list;
  transitions : (string * string) list;  (** activity launches that executed *)
  truncated : bool;
}

type options = {
  event_rounds : int;
  max_depth : int;
  max_steps : int;
  top_layout : string option;
      (** concrete layout name [R.layout.?] resolves to in this run —
          the oracle replays a reflection-heavy app once per candidate;
          [None] resolves to an id matching no layout *)
  top_view : string option;  (** likewise for [R.id.?] *)
}

let default_options =
  { event_rounds = 3; max_depth = 64; max_steps = 200_000; top_layout = None; top_view = None }

let pp_role ppf = function
  | R_receiver -> Fmt.string ppf "receiver"
  | R_child -> Fmt.string ppf "child"
  | R_result -> Fmt.string ppf "result"
  | R_listener -> Fmt.string ppf "listener"

let pp_observation ppf ob =
  Fmt.pf ppf "%a %a = %a" Gator.Node.pp_op_site ob.ob_op pp_role ob.ob_role Gator.Node.pp_value
    ob.ob_value

exception Out_of_fuel

type state = {
  app : Framework.App.t;
  opts : options;
  heap : Heap.t;
  mutable steps : int;
  mutable truncated : bool;
  mutable observations : observation list;  (** reversed *)
  mutable registrations : (Gator.Node.view_abs * Gator.Node.listener_abs * string) list;
  mutable firings : firing list;
  mutable transitions : (string * string) list;
  mutable pick : int;  (** round-robin source for findFocus-style choices *)
  mutable inflater : Heap.obj option;
  mutable pending_fragments : (Heap.obj * string * Gator.Node.infl_site) list;
      (** <fragment> placeholders awaiting instantiation *)
}

let is_view state cls = Framework.Views.is_view_class state.app.Framework.App.hierarchy cls

let observe state op role value = state.observations <- { ob_op = op; ob_role = role; ob_value = value } :: state.observations

let observe_view state op role obj =
  match Heap.view_abstraction obj with
  | Some va -> observe state op role (Gator.Node.V_view va)
  | None -> ()

let fuel state =
  state.steps <- state.steps + 1;
  if state.steps > state.opts.max_steps then begin
    state.truncated <- true;
    raise Out_of_fuel
  end

let inflater_obj state =
  match state.inflater with
  | Some obj -> obj
  | None ->
      let obj = Heap.alloc state.heap ~cls:"LayoutInflater" (Heap.P_internal "inflater") in
      state.inflater <- Some obj;
      obj

(* Inflate a layout at the given site: build the concrete object tree
   mirroring Inflate.instantiate's abstract one. *)
let inflate_layout state ~site (def : Layouts.Layout.def) =
  let resources = Layouts.Package.resources state.app.Framework.App.package in
  let objects = Hashtbl.create 16 in
  List.iter
    (fun (path, (node : Layouts.Layout.node)) ->
      let provenance =
        Heap.P_infl
          {
            Gator.Node.v_site = site;
            v_layout = def.name;
            v_path = path;
            v_cls = node.view_class;
            v_vid = node.id;
          }
      in
      let obj = Heap.alloc state.heap ~cls:node.view_class provenance in
      (match node.id with
      | Some id_name -> obj.Heap.vid <- Some (Layouts.Resource.view_id resources id_name)
      | None -> ());
      obj.Heap.onclick <- node.onclick;
      (match (node.fragment_class, provenance) with
      | Some cls, Heap.P_infl infl ->
          state.pending_fragments <- (obj, cls, infl) :: state.pending_fragments
      | _ -> ());
      Hashtbl.add objects path obj)
    (Layouts.Layout.nodes def);
  List.iter
    (fun (parent_path, child_path) ->
      Heap.add_child state.heap ~parent:(Hashtbl.find objects parent_path)
        ~child:(Hashtbl.find objects child_path))
    (Layouts.Layout.edges def);
  Hashtbl.find objects []

let listener_abstraction (obj : Heap.obj) =
  match obj.provenance with
  | Heap.P_alloc site -> Some (Gator.Node.L_alloc site)
  | Heap.P_activity a -> Some (Gator.Node.L_act a)
  | Heap.P_infl _ | Heap.P_internal _ -> None

let runtime_class (obj : Heap.obj) = obj.Heap.cls

(* Platform operation semantics (Section 3.2.2). *)
let rec instantiate_pending_fragments state ~depth =
  match state.pending_fragments with
  | [] -> ()
  | (placeholder, cls, infl) :: rest ->
      state.pending_fragments <- rest;
      let hierarchy = state.app.Framework.App.hierarchy in
      (match
         Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
       with
      | Some (owner, m) -> (
          let fragment =
            Heap.alloc state.heap ~cls
              (Heap.P_alloc (Gator.Node.declared_fragment_site cls infl))
          in
          match
            exec_meth state ~depth:(depth + 1) ~owner m (Heap.V_ref fragment.Heap.id) []
          with
          | Heap.V_ref vid ->
              let view = Heap.get state.heap vid in
              if is_view state view.Heap.cls then
                Heap.add_child state.heap ~parent:placeholder ~child:view
          | Heap.V_null | Heap.V_int _ -> ())
      | None -> ());
      instantiate_pending_fragments state ~depth

and exec_op state ~depth ~site ~kind (recv : Heap.obj) (args : Heap.value list) =
  let op = { Gator.Node.o_site = site; o_kind = kind } in
  let arg n = List.nth_opt args n in
  let arg_obj n = Option.bind (arg n) (Heap.deref state.heap) in
  let arg_int n = match arg n with Some (Heap.V_int i) -> Some i | _ -> None in
  let hierarchy = state.app.Framework.App.hierarchy in
  let result_of_obj obj =
    observe_view state op R_result obj;
    Heap.V_ref obj.Heap.id
  in
  let is_holder (o : Heap.obj) =
    match o.provenance with
    | Heap.P_activity _ -> true
    | _ -> Framework.Views.is_dialog_class hierarchy o.cls
  in
  match kind with
  | Framework.Api.Inflate -> (
      match Option.bind (arg_int 0) (Layouts.Package.find_by_layout_id state.app.package) with
      | Some def ->
          let root = inflate_layout state ~site def in
          instantiate_pending_fragments state ~depth;
          (match arg_obj 1 with
          | Some parent when is_view state parent.cls ->
              Heap.add_child state.heap ~parent ~child:root
          | Some _ | None -> ());
          result_of_obj root
      | None -> Heap.V_null)
  | Framework.Api.Set_content ->
      if is_holder recv then begin
        (match Option.bind (arg_int 0) (Layouts.Package.find_by_layout_id state.app.package) with
        | Some def ->
            let root = inflate_layout state ~site def in
            instantiate_pending_fragments state ~depth;
            recv.Heap.root <- Some root.Heap.id
        | None -> ());
        match arg_obj 0 with
        | Some view when is_view state view.cls ->
            observe_view state op R_child view;
            recv.Heap.root <- Some view.Heap.id
        | Some _ | None -> ()
      end;
      Heap.V_null
  | Framework.Api.Add_view ->
      observe_view state op R_receiver recv;
      (match arg_obj 0 with
      | Some child when is_view state child.cls ->
          observe_view state op R_child child;
          Heap.add_child state.heap ~parent:recv ~child
      | Some _ | None -> ());
      Heap.V_null
  | Framework.Api.Set_id ->
      observe_view state op R_receiver recv;
      (match arg_int 0 with Some id -> recv.Heap.vid <- Some id | None -> ());
      Heap.V_null
  | Framework.Api.Set_listener iface -> (
      observe_view state op R_receiver recv;
      match arg_obj 0 with
      | Some l when Jir.Hierarchy.subtype hierarchy l.cls iface.Framework.Listeners.i_name ->
          (match listener_abstraction l with
          | Some la ->
              (match Heap.abstraction ~is_view:(is_view state) l with
              | Some v -> observe state op R_listener v
              | None -> ());
              (match Heap.view_abstraction recv with
              | Some va ->
                  state.registrations <-
                    (va, la, iface.Framework.Listeners.i_name) :: state.registrations
              | None -> ())
          | None -> ());
          recv.Heap.listeners <- recv.Heap.listeners @ [ (iface.Framework.Listeners.i_name, l.Heap.id) ];
          Heap.V_null
      | Some _ | None -> Heap.V_null)
  | Framework.Api.Find_view -> (
      let start =
        if is_holder recv then Option.map (Heap.get state.heap) recv.Heap.root
        else begin
          observe_view state op R_receiver recv;
          Some recv
        end
      in
      match (start, arg_int 0) with
      | Some from, Some id -> (
          match Heap.find_by_vid state.heap from id with
          | Some found -> result_of_obj found
          | None -> Heap.V_null)
      | _ -> Heap.V_null)
  | Framework.Api.Find_one scope -> (
      observe_view state op R_receiver recv;
      let candidates =
        match scope with
        | Framework.Api.Children -> List.map (Heap.get state.heap) recv.Heap.children
        | Framework.Api.Descendants -> Heap.descendants state.heap ~include_self:false recv
      in
      match candidates with
      | [] -> Heap.V_null
      | _ ->
          let index =
            match (kind, arg_int 0) with
            | Framework.Api.Find_one Framework.Api.Children, Some i -> i
            | _, _ -> (
                match scope with
                | Framework.Api.Children -> recv.Heap.displayed
                | Framework.Api.Descendants ->
                    state.pick <- state.pick + 1;
                    state.pick)
          in
          let count = List.length candidates in
          if count = 0 then Heap.V_null
          else
            let index = ((index mod count) + count) mod count in
            result_of_obj (List.nth candidates index))
  | Framework.Api.Get_parent -> (
      observe_view state op R_receiver recv;
      match recv.Heap.parent with
      | Some pid -> result_of_obj (Heap.get state.heap pid)
      | None -> Heap.V_null)
  | Framework.Api.Start_activity ->
      (match (recv.Heap.provenance, arg_obj 0) with
      | Heap.P_activity from_, Some target
        when Framework.Views.is_activity_class hierarchy target.Heap.cls ->
          state.transitions <- (from_, target.Heap.cls) :: state.transitions
      | _ -> ());
      Heap.V_null
  | Framework.Api.Pass_through -> Heap.V_ref recv.Heap.id
  | Framework.Api.Set_adapter ->
      (match arg_obj 0 with
      | Some adapter when Jir.Hierarchy.subtype hierarchy adapter.Heap.cls "Adapter" -> (
          observe_view state op R_receiver recv;
          match
            Jir.Hierarchy.resolve hierarchy adapter.Heap.cls
              { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
          with
          | Some (owner, m) -> (
              match
                exec_meth state ~depth:(depth + 1) ~owner m (Heap.V_ref adapter.Heap.id)
                  [ Heap.V_int 0; Heap.V_null; Heap.V_ref recv.Heap.id ]
              with
              | Heap.V_ref vid ->
                  let item = Heap.get state.heap vid in
                  if is_view state item.Heap.cls then
                    Heap.add_child state.heap ~parent:recv ~child:item
              | Heap.V_null | Heap.V_int _ -> ())
          | None -> ())
      | Some _ | None -> ());
      Heap.V_null
  | Framework.Api.Menu_add ->
      if Jir.Hierarchy.subtype hierarchy recv.Heap.cls "Menu" then begin
        let item =
          Heap.alloc state.heap ~cls:"MenuItem" (Heap.P_alloc (Gator.Node.menu_item_site site))
        in
        (match arg_int 1 with Some id -> item.Heap.vid <- Some id | None -> ());
        Heap.add_child state.heap ~parent:recv ~child:item;
        result_of_obj item
      end
      else Heap.V_null
  | Framework.Api.Fragment_add ->
      (if is_holder recv then
         match (arg_int 0, arg_obj 1, recv.Heap.root) with
         | Some cid, Some fragment, Some root_id
           when Framework.Views.is_fragment_class hierarchy fragment.Heap.cls -> (
             let root = Heap.get state.heap root_id in
             match Heap.find_by_vid state.heap root cid with
             | Some container -> (
                 match
                   Jir.Hierarchy.resolve hierarchy fragment.Heap.cls
                     { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
                 with
                 | Some (owner, m) -> (
                     match
                       exec_meth state ~depth:(depth + 1) ~owner m
                         (Heap.V_ref fragment.Heap.id) []
                     with
                     | Heap.V_ref vid ->
                         let view = Heap.get state.heap vid in
                         if is_view state view.Heap.cls then
                           Heap.add_child state.heap ~parent:container ~child:view
                     | Heap.V_null | Heap.V_int _ -> ())
                 | None -> ())
             | None -> ())
         | _ -> ());
      Heap.V_null

and exec_meth state ~depth ~owner (m : Jir.Ast.meth) this_value arg_values =
  if depth > state.opts.max_depth then begin
    state.truncated <- true;
    Heap.V_null
  end
  else begin
    let mid = Gator.Node.mid_of_meth owner m in
    let env : (string, Heap.value) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace env Jir.Ast.this_var this_value;
    List.iteri
      (fun i (param, _) ->
        Hashtbl.replace env param
          (Option.value (List.nth_opt arg_values i) ~default:Heap.V_null))
      m.m_params;
    let lookup v = Option.value (Hashtbl.find_opt env v) ~default:Heap.V_null in
    let resources = Layouts.Package.resources state.app.Framework.App.package in
    let hierarchy = state.app.Framework.App.hierarchy in
    let rec run_body index = function
      | [] -> Heap.V_null
      | stmt :: rest -> (
          fuel state;
          let site = { Gator.Node.s_in = mid; s_stmt = index } in
          match stmt with
          | Jir.Ast.Return (Some x) -> lookup x
          | Jir.Ast.Return None -> Heap.V_null
          | Jir.Ast.New (x, cls) ->
              let obj =
                Heap.alloc state.heap ~cls (Heap.P_alloc { Gator.Node.a_site = site; a_cls = cls })
              in
              Hashtbl.replace env x (Heap.V_ref obj.Heap.id);
              run_body (index + 1) rest
          | Jir.Ast.Copy (x, y) ->
              Hashtbl.replace env x (lookup y);
              run_body (index + 1) rest
          | Jir.Ast.Read_field (x, y, f) ->
              let value =
                match Heap.deref state.heap (lookup y) with
                | Some obj -> Heap.read_field obj f
                | None -> Heap.V_null
              in
              Hashtbl.replace env x value;
              run_body (index + 1) rest
          | Jir.Ast.Write_field (x, f, y) ->
              (match Heap.deref state.heap (lookup x) with
              | Some obj -> Heap.write_field obj f (lookup y)
              | None -> ());
              run_body (index + 1) rest
          | Jir.Ast.Read_layout_id (x, name) ->
              Hashtbl.replace env x (Heap.V_int (Layouts.Resource.layout_id resources name));
              run_body (index + 1) rest
          | Jir.Ast.Read_view_id (x, name) ->
              Hashtbl.replace env x (Heap.V_int (Layouts.Resource.view_id resources name));
              run_body (index + 1) rest
          | Jir.Ast.Read_layout_top x ->
              let id =
                match state.opts.top_layout with
                | Some name -> Layouts.Resource.layout_id resources name
                | None -> -1
              in
              Hashtbl.replace env x (Heap.V_int id);
              run_body (index + 1) rest
          | Jir.Ast.Read_view_top x ->
              let id =
                match state.opts.top_view with
                | Some name -> Layouts.Resource.view_id resources name
                | None -> -1
              in
              Hashtbl.replace env x (Heap.V_int id);
              run_body (index + 1) rest
          | Jir.Ast.Const_int (x, n) ->
              Hashtbl.replace env x (Heap.V_int n);
              run_body (index + 1) rest
          | Jir.Ast.Const_null x ->
              Hashtbl.replace env x Heap.V_null;
              run_body (index + 1) rest
          | Jir.Ast.Cast (x, cls, y) ->
              (* A failing cast throws at run time; model the absence of
                 a resulting value as null. *)
              let value =
                match Heap.deref state.heap (lookup y) with
                | Some obj ->
                    if
                      (not (Jir.Hierarchy.mem hierarchy cls))
                      || Jir.Hierarchy.subtype hierarchy (runtime_class obj) cls
                    then lookup y
                    else Heap.V_null
                | None -> lookup y
              in
              Hashtbl.replace env x value;
              run_body (index + 1) rest
          | Jir.Ast.Invoke (lhs, recv, name, call_args) ->
              let result = invoke state ~depth ~site (lookup recv) name (List.map lookup call_args) in
              (match lhs with Some z -> Hashtbl.replace env z result | None -> ());
              run_body (index + 1) rest)
    in
    run_body 0 m.m_body
  end

and invoke state ~depth ~site recv_value name arg_values =
  match Heap.deref state.heap recv_value with
  | None -> Heap.V_null
  | Some recv -> (
      let hierarchy = state.app.Framework.App.hierarchy in
      let key = { Jir.Ast.mk_name = name; mk_arity = List.length arg_values } in
      match Jir.Hierarchy.resolve hierarchy (runtime_class recv) key with
      | Some (owner, m) -> exec_meth state ~depth:(depth + 1) ~owner m recv_value arg_values
      | None -> (
          (* Dispatch fell through to the platform. *)
          match Framework.Api.classify ~name ~arity:key.mk_arity with
          | Some kind -> exec_op state ~depth ~site ~kind recv arg_values
          | None -> (
              match (name, key.mk_arity) with
              | ("getLayoutInflater" | "getMenuInflater"), 0 ->
                  Heap.V_ref (inflater_obj state).Heap.id
              | "getId", 0 -> (
                  match recv.Heap.vid with Some id -> Heap.V_int id | None -> Heap.V_int 0)
              | _ -> Heap.V_null)))

(* Content holders (activities, and dialog objects in the extension)
   whose hierarchy currently contains the view, labeled by class. *)
let containing_activities state (view : Heap.obj) =
  let hierarchy = state.app.Framework.App.hierarchy in
  let rec root_of (o : Heap.obj) =
    match o.Heap.parent with Some pid -> root_of (Heap.get state.heap pid) | None -> o
  in
  let top = root_of view in
  List.filter_map
    (fun (o : Heap.obj) ->
      match (o.provenance, o.Heap.root) with
      | Heap.P_activity a, Some rid when rid = top.Heap.id -> Some a
      | Heap.P_alloc _, Some rid
        when rid = top.Heap.id && Framework.Views.is_dialog_class hierarchy o.cls ->
          Some o.cls
      | _ -> None)
    (Heap.objects state.heap)

let fire_events state =
  let hierarchy = state.app.Framework.App.hierarchy in
  for _round = 1 to state.opts.event_rounds do
    let views =
      List.filter (fun (o : Heap.obj) -> o.Heap.listeners <> []) (Heap.objects state.heap)
    in
    List.iter
      (fun (view : Heap.obj) ->
        List.iter
          (fun (iface_name, listener_id) ->
            match Framework.Listeners.by_name iface_name with
            | None -> ()
            | Some iface ->
                let listener = Heap.get state.heap listener_id in
                List.iter
                  (fun (h : Framework.Listeners.handler) ->
                    match
                      Jir.Hierarchy.resolve hierarchy (runtime_class listener)
                        { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
                    with
                    | Some (owner, m) ->
                        let item =
                          match view.Heap.children with
                          | [] -> None
                          | children ->
                              List.nth_opt children (view.Heap.displayed mod List.length children)
                        in
                        let args =
                          List.init h.h_arity (fun i ->
                              if h.h_view_param = Some i then Heap.V_ref view.Heap.id
                              else
                                match (h.h_item_param, item) with
                                | Some k, Some item_id when k = i -> Heap.V_ref item_id
                                | _ -> Heap.V_null)
                        in
                        (match Heap.view_abstraction view with
                        | Some va ->
                            state.firings <-
                              {
                                f_view = va;
                                f_event = iface.i_event;
                                f_handler = Gator.Node.mid_of_meth owner m;
                                f_activities = containing_activities state view;
                              }
                              :: state.firings
                        | None -> ());
                        (try
                           ignore
                             (exec_meth state ~depth:0 ~owner m (Heap.V_ref listener.Heap.id) args)
                         with Out_of_fuel -> ())
                    | None -> ())
                  iface.Framework.Listeners.i_handlers)
          view.Heap.listeners)
      views;
    (* Declarative android:onClick handlers: click every carrying view
       of every holder's hierarchy once per round. *)
    List.iter
      (fun (holder : Heap.obj) ->
        let label =
          match holder.Heap.provenance with
          | Heap.P_activity a -> Some a
          | Heap.P_alloc _ when Framework.Views.is_dialog_class hierarchy holder.Heap.cls ->
              Some holder.Heap.cls
          | _ -> None
        in
        match (label, holder.Heap.root) with
        | Some label, Some root_id ->
            List.iter
              (fun (view : Heap.obj) ->
                match view.Heap.onclick with
                | Some handler_name -> (
                    match
                      Jir.Hierarchy.resolve hierarchy label
                        { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
                    with
                    | Some (owner, m) ->
                        (match Heap.view_abstraction view with
                        | Some va ->
                            let listener =
                              match holder.Heap.provenance with
                              | Heap.P_activity a -> Some (Gator.Node.L_act a)
                              | Heap.P_alloc site -> Some (Gator.Node.L_alloc site)
                              | _ -> None
                            in
                            (match listener with
                            | Some l ->
                                state.registrations <-
                                  (va, l, "OnClickListener") :: state.registrations
                            | None -> ());
                            state.firings <-
                              {
                                f_view = va;
                                f_event = Framework.Listeners.Click;
                                f_handler = Gator.Node.mid_of_meth owner m;
                                f_activities = [ label ];
                              }
                              :: state.firings
                        | None -> ());
                        (try
                           ignore
                             (exec_meth state ~depth:0 ~owner m (Heap.V_ref holder.Heap.id)
                                [ Heap.V_ref view.Heap.id ])
                         with Out_of_fuel -> ())
                    | None -> ())
                | None -> ())
              (Heap.descendants state.heap (Heap.get state.heap root_id))
        | _ -> ())
      (Heap.objects state.heap);
    (* Menu extension: select every options-menu item once per round. *)
    let item_name, item_arity = Framework.Lifecycle.on_options_item_selected in
    List.iter
      (fun (act : Heap.obj) ->
        match (act.Heap.provenance, Heap.read_field act "$menu") with
        | Heap.P_activity cls, Heap.V_ref menu_id -> (
            match
              Jir.Hierarchy.resolve hierarchy cls
                { Jir.Ast.mk_name = item_name; mk_arity = item_arity }
            with
            | Some (owner, m) ->
                let menu = Heap.get state.heap menu_id in
                List.iter
                  (fun item_id ->
                    let args =
                      List.init item_arity (fun i ->
                          if i = 0 then Heap.V_ref item_id else Heap.V_null)
                    in
                    try ignore (exec_meth state ~depth:0 ~owner m (Heap.V_ref act.Heap.id) args)
                    with Out_of_fuel -> ())
                  menu.Heap.children
            | None -> ())
        | _ -> ())
      (Heap.objects state.heap);
    (* Rotate the visible child of every container so flipper-style
       operations explore different children across rounds. *)
    List.iter
      (fun (o : Heap.obj) ->
        match o.Heap.children with
        | [] -> ()
        | children -> o.Heap.displayed <- (o.Heap.displayed + 1) mod List.length children)
      (Heap.objects state.heap)
  done

let run_lifecycles state =
  let hierarchy = state.app.Framework.App.hierarchy in
  (* Activities: implicit platform-created instances. *)
  List.iter
    (fun (cls : Jir.Ast.cls) ->
      let obj = Heap.alloc state.heap ~cls:cls.c_name (Heap.P_activity cls.c_name) in
      List.iter
        (fun (name, arity) ->
          match
            Jir.Hierarchy.resolve hierarchy cls.c_name { Jir.Ast.mk_name = name; mk_arity = arity }
          with
          | Some (owner, m) -> (
              try ignore (exec_meth state ~depth:0 ~owner m (Heap.V_ref obj.Heap.id) [])
              with Out_of_fuel -> ())
          | None -> ())
        Framework.Lifecycle.activity_callbacks;
      (* Menu extension: the platform creates the options menu and hands
         it to onCreateOptionsMenu. *)
      let menu_name, menu_arity = Framework.Lifecycle.on_create_options_menu in
      match
        Jir.Hierarchy.resolve hierarchy cls.c_name
          { Jir.Ast.mk_name = menu_name; mk_arity = menu_arity }
      with
      | Some (owner, m) -> (
          let menu =
            Heap.alloc state.heap ~cls:"Menu"
              (Heap.P_alloc (Gator.Node.menu_site cls.c_name))
          in
          Heap.write_field obj "$menu" (Heap.V_ref menu.Heap.id);
          try
            ignore
              (exec_meth state ~depth:0 ~owner m (Heap.V_ref obj.Heap.id)
                 [ Heap.V_ref menu.Heap.id ])
          with Out_of_fuel -> ())
      | None -> ())
    (Framework.App.activity_classes state.app);
  (* Dialogs the app created: run their callbacks, rescanning to pick
     up dialogs created inside dialog callbacks (bounded). *)
  let ran : (Heap.obj_id, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec dialog_round budget =
    if budget > 0 then begin
      let fresh =
        List.filter
          (fun (o : Heap.obj) ->
            (not (Hashtbl.mem ran o.Heap.id))
            && (match o.provenance with Heap.P_alloc _ -> true | _ -> false)
            && Framework.Views.is_dialog_class hierarchy o.cls)
          (Heap.objects state.heap)
      in
      if fresh <> [] then begin
        List.iter
          (fun (o : Heap.obj) ->
            Hashtbl.add ran o.Heap.id ();
            List.iter
              (fun (name, arity) ->
                match
                  Jir.Hierarchy.resolve hierarchy o.cls { Jir.Ast.mk_name = name; mk_arity = arity }
                with
                | Some (owner, m) -> (
                    try ignore (exec_meth state ~depth:0 ~owner m (Heap.V_ref o.Heap.id) [])
                    with Out_of_fuel -> ())
                | None -> ())
              Framework.Lifecycle.dialog_callbacks)
          fresh;
        dialog_round (budget - 1)
      end
    end
  in
  dialog_round 8

let run ?(options = default_options) app =
  let state =
    {
      app;
      opts = options;
      heap = Heap.create ();
      steps = 0;
      truncated = false;
      observations = [];
      registrations = [];
      firings = [];
      transitions = [];
      pick = 0;
      inflater = None;
      pending_fragments = [];
    }
  in
  (try
     run_lifecycles state;
     fire_events state
   with Out_of_fuel -> ());
  {
    heap = state.heap;
    observations = List.rev state.observations;
    registrations = List.rev state.registrations;
    firings = List.rev state.firings;
    transitions = List.rev state.transitions;
    truncated = state.truncated;
  }
