(** Streaming driver: bounded producer/consumer pipeline over worker
    domains, for corpora too large to hold as one in-memory batch
    (thousands of generated apps rather than {!Batch.run}'s one
    result-per-slot array).

    The calling thread drives both ends: it pulls tasks from
    [produce] and hands each finished outcome to [consume] in
    {e completion} order, so results can be spilled (e.g. to JSONL)
    as they arrive.  Backpressure is a high/low watermark gate on the
    queued-but-unstarted backlog: production pauses at [high] and
    resumes once workers drain the backlog to [low], bounding
    in-flight memory regardless of stream length.  Workers own
    per-domain deques dealt round-robin; an idle worker steals from
    the longest sibling backlog before sleeping.

    Fault isolation matches {!Batch.run}: a task that raises is
    captured as an [Error] {!Batch.outcome} handed to [consume], and
    the stream keeps flowing. *)

type stats = {
  st_produced : int;  (** tasks pulled from the producer *)
  st_consumed : int;  (** outcomes handed to [consume]; equals [st_produced] on a clean run *)
  st_failed : int;  (** outcomes whose task raised *)
  st_max_queued : int;  (** peak queued-but-unstarted backlog; never exceeds [high] *)
  st_steals : int;  (** tasks an idle worker took from a sibling's deque *)
}

val run :
  jobs:int ->
  ?high:int ->
  ?low:int ->
  produce:(int -> 'a option) ->
  work:('a -> 'b) ->
  consume:(int -> 'a -> 'b Batch.outcome -> unit) ->
  unit ->
  stats
(** [run ~jobs ~produce ~work ~consume ()] pulls [produce 0], [produce
    1], ... until [None], runs [work] on each payload on one of
    [jobs] worker domains, and calls [consume i payload outcome] on
    the calling thread as each task completes.  [produce] and
    [consume] always run on the calling thread, so they may share
    unsynchronized state (output channels, counters); [work] must be
    self-contained per {!Batch}'s apps-built-inside-tasks rule.

    [high] defaults to [max (2 * jobs) 4], [low] to [(high + 1) / 2].
    [jobs <= 1] runs the exact sequential loop — produce, work,
    consume, repeat — on the calling thread with no domain spawned.

    @raise Invalid_argument unless [0 <= low < high]. *)
