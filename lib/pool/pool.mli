(** Library root: {!Batch}'s domain worker pool re-exported at the
    top level (callers write [Pool.run], [Pool.outcome], ...) plus
    the bounded streaming driver as {!Stream}. *)

include module type of struct
  include Batch
end

module Stream = Stream
