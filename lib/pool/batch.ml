type error = { err_exn : string; err_backtrace : string }

type 'a outcome = { oc_seconds : float; oc_result : ('a, error) result }

let default_jobs ?(cap = max_int) () =
  max 1 (min (max 1 cap) (Domain.recommended_domain_count ()))

(* Wall time is measured around the task body only, so a task queued
   behind a long sibling is not billed for the wait. *)
let run_task f =
  let start = Unix.gettimeofday () in
  let result =
    match f () with
    | v -> Ok v
    | exception exn ->
        (* capture the trace before any other code can clobber it *)
        let raw = Printexc.get_raw_backtrace () in
        Error
          {
            err_exn = Printexc.to_string exn;
            err_backtrace = Printexc.raw_backtrace_to_string raw;
          }
  in
  { oc_seconds = Unix.gettimeofday () -. start; oc_result = result }

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (** signaled on submit and shutdown *)
  all_done : Condition.t;  (** signaled when [pending] drops to zero *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (** submitted but not yet finished *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Workers block on [work_available] until a task is queued or the
   pool closes; a closed pool still drains whatever remains queued, so
   shutdown never drops submitted work. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* empty and closed: done *)
        Mutex.unlock t.mutex;
        ()
    | Some task ->
        Mutex.unlock t.mutex;
        (try task () with _ -> ());
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.all_done;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ~jobs =
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (max 1 jobs) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = List.length t.workers

let submit t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task t.queue;
  t.pending <- t.pending + 1;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let wait t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.all_done t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run_sequential tasks = List.map run_task tasks

let run ~jobs tasks =
  let n = List.length tasks in
  if jobs <= 1 || n <= 1 then run_sequential tasks
  else begin
    (* Each slot is written by exactly one worker and read only after
       the workers are joined, so plain array stores are race-free. *)
    let results = Array.make n None in
    let pool = create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () ->
        List.iteri (fun i f -> submit pool (fun () -> results.(i) <- Some (run_task f))) tasks;
        wait pool);
    Array.to_list results
    |> List.map (function
         | Some outcome -> outcome
         | None -> assert false (* wait returned: every slot is filled *))
  end

let map ~jobs f xs = run ~jobs (List.map (fun x () -> f x) xs)

let value_exn outcome =
  match outcome.oc_result with
  | Ok v -> v
  | Error e -> failwith e.err_exn
