(* Library root: the batch worker pool plus the streaming driver.
   Callers keep writing [Pool.run]/[Pool.outcome]; the streaming
   pipeline lives under [Pool.Stream]. *)

include Batch
module Stream = Stream
