(** Domain-based worker pool for independent batch tasks.

    Batch drivers (corpus table regeneration, multi-app CLI runs, the
    benchmark head-to-head) analyze many applications whose analyses
    share no state; this pool runs them on OCaml 5 domains while
    keeping the observable behavior of a sequential loop:

    - results come back in submission order, regardless of which
      worker finished first;
    - a task that raises is captured as a per-task {!error} (with its
      wall time) instead of killing the batch — the fault-isolation
      posture production batch analyzers need for malformed inputs;
    - [jobs <= 1] (or a single task) runs every task inline in the
      calling domain, in submission order, with no domain spawned —
      the exact sequential path.

    Tasks must be self-contained: they must not share mutable
    structures (in particular [Framework.App.t] values, whose
    hierarchy and layout-package caches are unsynchronized) with other
    concurrently running tasks.  The corpus drivers obey this by
    generating each application inside its own task. *)

type error = {
  err_exn : string;  (** [Printexc.to_string] of the escaping exception *)
  err_backtrace : string;  (** raw backtrace text; may be empty *)
}

type 'a outcome = {
  oc_seconds : float;  (** task wall time, failed or not *)
  oc_result : ('a, error) result;
}

val run_task : (unit -> 'a) -> 'a outcome
(** Run one task inline, capturing its wall time and any escaping
    exception (with backtrace) as an {!error}.  The building block
    {!run} and {!Stream.run} both wrap tasks with. *)

val default_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, cap\]].
    Batch drivers pass [Config.jobs] as the cap. *)

type t
(** A running pool of worker domains. *)

val create : jobs:int -> t
(** Spawn [max 1 jobs] worker domains blocked on the work queue. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a raw task.  Escaping exceptions are swallowed (the worker
    survives); use {!run}/{!map} to capture them as values.
    @raise Invalid_argument after {!shutdown}. *)

val wait : t -> unit
(** Block until every submitted task has finished. *)

val shutdown : t -> unit
(** Drain remaining tasks, then join every worker.  Idempotent. *)

val run : jobs:int -> (unit -> 'a) list -> 'a outcome list
(** Run the tasks on a fresh pool (created, drained, and shut down
    internally) and return their outcomes in submission order. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b outcome list
(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)

val value_exn : 'a outcome -> 'a
(** Unwrap a successful outcome.
    @raise Failure with the captured exception text on a failed one. *)
