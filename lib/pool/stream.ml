(* Streaming driver: a bounded producer/consumer pipeline over worker
   domains, for corpora too large to hold as one in-memory batch.

   The driver thread owns both ends: it pulls tasks from [produce]
   and hands finished outcomes to [consume] in completion order, so
   results can be spilled (e.g. to JSONL) as they arrive instead of
   accumulating.  Backpressure is a high/low watermark gate on the
   number of queued-but-unstarted tasks: production pauses when the
   backlog reaches [high] and resumes once workers drain it to [low],
   bounding in-flight memory regardless of corpus size.

   Workers each own a deque; the driver deals new tasks round-robin
   and an idle worker steals from a sibling's tail before sleeping,
   so one slow task cannot strand its queue.  All queue state hides
   behind one mutex — tasks are whole-app analyses, so contention on
   the scheduler lock is noise.

   [jobs <= 1] runs the exact sequential loop on the calling thread
   (produce, work, consume, repeat) with no domain spawned, mirroring
   [Batch.run]'s determinism contract. *)

type stats = {
  st_produced : int;
  st_consumed : int;
  st_failed : int;
  st_max_queued : int;
  st_steals : int;
}

type ('a, 'b) state = {
  mutex : Mutex.t;
  work_available : Condition.t;  (** workers wait here for tasks *)
  progress : Condition.t;  (** the driver waits here for drain/completions *)
  deques : (int * 'a) Queue.t array;  (** per-worker task deques *)
  results : (int * 'a * 'b Batch.outcome) Queue.t;  (** completed, unconsumed *)
  mutable queued : int;  (** tasks dealt but not yet started *)
  mutable max_queued : int;
  mutable steals : int;
  mutable eof : bool;  (** the producer is exhausted (or the driver failed) *)
}

(* Take a task: own deque first (front), then steal from the sibling
   with the longest backlog (back).  Caller holds the mutex. *)
let take st w =
  match Queue.take_opt st.deques.(w) with
  | Some task -> Some task
  | None ->
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun i q ->
          if i <> w && Queue.length q > !best then begin
            victim := i;
            best := Queue.length q
          end)
        st.deques;
      if !victim < 0 then None
      else begin
        (* steal from the tail: rotate all but the last element *)
        let q = st.deques.(!victim) in
        for _ = 2 to Queue.length q do
          Queue.add (Queue.take q) q
        done;
        st.steals <- st.steals + 1;
        Queue.take_opt q
      end

let worker_loop st w work =
  let rec loop () =
    Mutex.lock st.mutex;
    let rec next () =
      match take st w with
      | Some task -> Some task
      | None ->
          if st.eof then None
          else begin
            Condition.wait st.work_available st.mutex;
            next ()
          end
    in
    match next () with
    | None -> Mutex.unlock st.mutex
    | Some (i, payload) ->
        st.queued <- st.queued - 1;
        (* the gate may reopen on this drain *)
        Condition.signal st.progress;
        Mutex.unlock st.mutex;
        let outcome = Batch.run_task (fun () -> work payload) in
        Mutex.lock st.mutex;
        Queue.add (i, payload, outcome) st.results;
        Condition.signal st.progress;
        Mutex.unlock st.mutex;
        loop ()
  in
  loop ()

let failed outcome = Result.is_error outcome.Batch.oc_result

let run_sequential ~produce ~work ~consume =
  let rec loop i failures =
    match produce i with
    | None ->
        {
          st_produced = i;
          st_consumed = i;
          st_failed = failures;
          st_max_queued = (if i = 0 then 0 else 1);
          st_steals = 0;
        }
    | Some payload ->
        let outcome = Batch.run_task (fun () -> work payload) in
        consume i payload outcome;
        loop (i + 1) (if failed outcome then failures + 1 else failures)
  in
  loop 0 0

let run ~jobs ?high ?low ~produce ~work ~consume () =
  if jobs <= 1 then run_sequential ~produce ~work ~consume
  else begin
    let high = match high with Some h -> h | None -> max (2 * jobs) 4 in
    let low = match low with Some l -> l | None -> (high + 1) / 2 in
    if high < 1 then invalid_arg "Stream.run: high watermark must be >= 1";
    if low < 0 || low >= high then invalid_arg "Stream.run: need 0 <= low < high";
    let st =
      {
        mutex = Mutex.create ();
        work_available = Condition.create ();
        progress = Condition.create ();
        deques = Array.init jobs (fun _ -> Queue.create ());
        results = Queue.create ();
        queued = 0;
        max_queued = 0;
        steals = 0;
        eof = false;
      }
    in
    let workers = List.init jobs (fun w -> Domain.spawn (fun () -> worker_loop st w work)) in
    let produced = ref 0 and consumed = ref 0 and failures = ref 0 in
    let gate_open = ref true in
    Fun.protect
      ~finally:(fun () ->
        (* Reached on driver failure too (a raising [produce]/
           [consume]): declare EOF so workers drain what is queued and
           exit, then join them. *)
        Mutex.lock st.mutex;
        st.eof <- true;
        Condition.broadcast st.work_available;
        Mutex.unlock st.mutex;
        List.iter Domain.join workers)
      (fun () ->
        let rec drive () =
          Mutex.lock st.mutex;
          (* 1. drain completions (consume runs outside the lock) *)
          let ready = Queue.take_opt st.results in
          match ready with
          | Some (i, payload, outcome) ->
              Mutex.unlock st.mutex;
              incr consumed;
              if failed outcome then incr failures;
              consume i payload outcome;
              drive ()
          | None ->
              (* 2. hysteresis gate *)
              if st.queued >= high then gate_open := false
              else if st.queued <= low then gate_open := true;
              if st.eof then begin
                if !consumed = !produced then Mutex.unlock st.mutex
                else begin
                  Condition.wait st.progress st.mutex;
                  Mutex.unlock st.mutex;
                  drive ()
                end
              end
              else if not !gate_open then begin
                Condition.wait st.progress st.mutex;
                Mutex.unlock st.mutex;
                drive ()
              end
              else begin
                (* 3. produce one task; the pull runs outside the lock
                   (generators may be expensive) *)
                Mutex.unlock st.mutex;
                let i = !produced in
                match produce i with
                | None ->
                    Mutex.lock st.mutex;
                    st.eof <- true;
                    Condition.broadcast st.work_available;
                    Mutex.unlock st.mutex;
                    drive ()
                | Some payload ->
                    incr produced;
                    Mutex.lock st.mutex;
                    Queue.add (i, payload) st.deques.(i mod jobs);
                    st.queued <- st.queued + 1;
                    if st.queued > st.max_queued then st.max_queued <- st.queued;
                    Condition.signal st.work_available;
                    Mutex.unlock st.mutex;
                    drive ()
              end
        in
        drive ());
    {
      st_produced = !produced;
      st_consumed = !consumed;
      st_failed = !failures;
      st_max_queued = st.max_queued;
      st_steals = st.steals;
    }
  end
