(** Hand-written lexer for ALite source text.

    Menhir/ocamllex are deliberately not used: the token language is tiny
    and a hand-rolled lexer keeps the frontend dependency-free. *)

type token =
  | IDENT of string
  | INT of int
  | KW_CLASS
  | KW_INTERFACE
  | KW_EXTENDS
  | KW_IMPLEMENTS
  | KW_FIELD
  | KW_METHOD
  | KW_VAR
  | KW_NEW
  | KW_RETURN
  | KW_NULL
  | KW_INT
  | KW_VOID
  | KW_R  (** the resource class [R] *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | COLON
  | COMMA
  | DOT
  | EQUALS
  | QUESTION  (** [R.layout.?] / [R.id.?]: statically unresolvable resource *)

type pos = { line : int; col : int }

type located = { token : token; pos : pos }

exception Lex_error of string * pos

val pp_token : token Fmt.t

val tokenize : string -> located list
(** Tokenize a full source string.  Comments are [// ...] to end of line
    and [/* ... */] (non-nesting).  @raise Lex_error on an illegal
    character or unterminated comment. *)
