(** Abstract syntax of ALite.

    ALite is the abstracted Java-like language of Section 3 of the paper:
    classes with fields and methods, three-address statements, plus the
    Android-specific constant reads [x = R.layout.f] and [x = R.id.f].
    Platform classes have no bodies here; they are declared externally
    (see {!Hierarchy.decl}) exactly as the paper excludes platform method
    bodies from the analyzed program. *)

type ty =
  | Tint  (** layout/view ids are integers *)
  | Tclass of string  (** reference type, by class or interface name *)
[@@deriving show { with_path = false }, eq, ord]

type var = string [@@deriving show { with_path = false }, eq, ord]

(** Three-address statements.  Calls carry an optional left-hand side;
    [Invoke (Some z, x, m, args)] is [z = x.m(args)]. *)
type stmt =
  | New of var * string  (** [x = new C()] *)
  | Copy of var * var  (** [x = y] *)
  | Read_field of var * var * string  (** [x = y.f] *)
  | Write_field of var * string * var  (** [x.f = y] *)
  | Read_layout_id of var * string  (** [x = R.layout.f] *)
  | Read_view_id of var * string  (** [x = R.id.f] *)
  | Read_layout_top of var  (** [x = R.layout.?] — statically unknown layout id *)
  | Read_view_top of var  (** [x = R.id.?] — statically unknown view id *)
  | Const_int of var * int  (** [x = n] *)
  | Const_null of var  (** [x = null] *)
  | Cast of var * string * var  (** [x = (C) y] *)
  | Invoke of var option * var * string * var list
  | Return of var option
[@@deriving show { with_path = false }, eq, ord]

type meth = {
  m_name : string;
  m_params : (var * ty) list;
  m_ret : ty option;  (** [None] for void *)
  m_locals : (var * ty) list;  (** explicit local declarations (optional in source) *)
  m_body : stmt list;
}
[@@deriving show { with_path = false }, eq, ord]

type cls = {
  c_name : string;
  c_kind : [ `Class | `Interface ];
  c_super : string option;
  c_interfaces : string list;
  c_fields : (string * ty) list;
  c_methods : meth list;
}
[@@deriving show { with_path = false }, eq, ord]

type program = { p_classes : cls list } [@@deriving show { with_path = false }, eq, ord]

(** Key identifying a method: dispatch in ALite is by name and arity. *)
type meth_key = { mk_name : string; mk_arity : int }
[@@deriving show { with_path = false }, eq, ord]

let key_of_meth m = { mk_name = m.m_name; mk_arity = List.length m.m_params }

(** Variables appearing in a statement, defs first. *)
let stmt_vars = function
  | New (x, _)
  | Read_layout_id (x, _)
  | Read_view_id (x, _)
  | Read_layout_top x
  | Read_view_top x
  | Const_int (x, _)
  | Const_null x ->
      [ x ]
  | Copy (x, y) | Read_field (x, y, _) | Cast (x, _, y) -> [ x; y ]
  | Write_field (x, _, y) -> [ x; y ]
  | Invoke (lhs, recv, _, args) -> (match lhs with Some z -> [ z ] | None -> []) @ (recv :: args)
  | Return (Some x) -> [ x ]
  | Return None -> []

(** Variable defined by a statement, if any. *)
let stmt_def = function
  | New (x, _)
  | Copy (x, _)
  | Read_field (x, _, _)
  | Read_layout_id (x, _)
  | Read_view_id (x, _)
  | Read_layout_top x
  | Read_view_top x
  | Const_int (x, _)
  | Const_null x
  | Cast (x, _, _) ->
      Some x
  | Invoke (lhs, _, _, _) -> lhs
  | Write_field _ | Return _ -> None

let find_class program name = List.find_opt (fun c -> c.c_name = name) program.p_classes

let find_meth cls key =
  List.find_opt (fun m -> equal_meth_key (key_of_meth m) key) cls.c_methods

(** The special receiver variable of instance methods. *)
let this_var = "this"

(** All variables mentioned anywhere in a method: [this], parameters,
    declared locals, and every occurrence in the body. *)
let meth_vars m =
  let tbl = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem tbl v) then begin
      Hashtbl.add tbl v ();
      out := v :: !out
    end
  in
  add this_var;
  List.iter (fun (v, _) -> add v) m.m_params;
  List.iter (fun (v, _) -> add v) m.m_locals;
  List.iter (fun s -> List.iter add (stmt_vars s)) m.m_body;
  List.rev !out

let program_size program =
  let classes = List.length program.p_classes in
  let methods = List.fold_left (fun acc c -> acc + List.length c.c_methods) 0 program.p_classes in
  (classes, methods)
