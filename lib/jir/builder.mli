(** Combinators for constructing ALite programs programmatically —
    used by examples and the synthetic corpus generator, avoiding the
    text frontend when assembling large programs. *)

val tclass : string -> Ast.ty

val tint : Ast.ty

(** Statement constructors (thin wrappers with readable names). *)

val new_ : string -> string -> Ast.stmt
(** [new_ x "C"] is [x = new C()]. *)

val copy : string -> string -> Ast.stmt

val read : string -> string -> string -> Ast.stmt
(** [read x y "f"] is [x = y.f]. *)

val write : string -> string -> string -> Ast.stmt
(** [write x "f" y] is [x.f = y]. *)

val layout_id : string -> string -> Ast.stmt
(** [layout_id x "main"] is [x = R.layout.main]. *)

val view_id : string -> string -> Ast.stmt
(** [view_id x "button"] is [x = R.id.button]. *)

val layout_top : string -> Ast.stmt
(** [layout_top x] is [x = R.layout.?] — a layout id the analysis
    cannot resolve statically. *)

val view_id_top : string -> Ast.stmt
(** [view_id_top x] is [x = R.id.?]. *)

val const : string -> int -> Ast.stmt

val null : string -> Ast.stmt

val cast : string -> string -> string -> Ast.stmt
(** [cast x "C" y] is [x = (C) y]. *)

val call : ?into:string -> string -> string -> string list -> Ast.stmt
(** [call ~into:z recv m args] is [z = recv.m(args)]; without [~into]
    the result is discarded. *)

val ret : ?value:string -> unit -> Ast.stmt

val meth :
  ?params:(string * Ast.ty) list ->
  ?ret:Ast.ty ->
  ?locals:(string * Ast.ty) list ->
  string ->
  Ast.stmt list ->
  Ast.meth

val cls :
  ?kind:[ `Class | `Interface ] ->
  ?extends:string ->
  ?implements:string list ->
  ?fields:(string * Ast.ty) list ->
  ?methods:Ast.meth list ->
  string ->
  Ast.cls

val program : Ast.cls list -> Ast.program
