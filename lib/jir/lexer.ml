type token =
  | IDENT of string
  | INT of int
  | KW_CLASS
  | KW_INTERFACE
  | KW_EXTENDS
  | KW_IMPLEMENTS
  | KW_FIELD
  | KW_METHOD
  | KW_VAR
  | KW_NEW
  | KW_RETURN
  | KW_NULL
  | KW_INT
  | KW_VOID
  | KW_R
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | COLON
  | COMMA
  | DOT
  | EQUALS
  | QUESTION

type pos = { line : int; col : int }

type located = { token : token; pos : pos }

exception Lex_error of string * pos

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | KW_CLASS -> Fmt.string ppf "'class'"
  | KW_INTERFACE -> Fmt.string ppf "'interface'"
  | KW_EXTENDS -> Fmt.string ppf "'extends'"
  | KW_IMPLEMENTS -> Fmt.string ppf "'implements'"
  | KW_FIELD -> Fmt.string ppf "'field'"
  | KW_METHOD -> Fmt.string ppf "'method'"
  | KW_VAR -> Fmt.string ppf "'var'"
  | KW_NEW -> Fmt.string ppf "'new'"
  | KW_RETURN -> Fmt.string ppf "'return'"
  | KW_NULL -> Fmt.string ppf "'null'"
  | KW_INT -> Fmt.string ppf "'int'"
  | KW_VOID -> Fmt.string ppf "'void'"
  | KW_R -> Fmt.string ppf "'R'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | SEMI -> Fmt.string ppf "';'"
  | COLON -> Fmt.string ppf "':'"
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | EQUALS -> Fmt.string ppf "'='"
  | QUESTION -> Fmt.string ppf "'?'"

let keyword_of_string = function
  | "class" -> Some KW_CLASS
  | "interface" -> Some KW_INTERFACE
  | "extends" -> Some KW_EXTENDS
  | "implements" -> Some KW_IMPLEMENTS
  | "field" -> Some KW_FIELD
  | "method" -> Some KW_METHOD
  | "var" -> Some KW_VAR
  | "new" -> Some KW_NEW
  | "return" -> Some KW_RETURN
  | "null" -> Some KW_NULL
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "R" -> Some KW_R
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let peek cur = if cur.off < String.length cur.src then Some cur.src.[cur.off] else None

let peek2 cur = if cur.off + 1 < String.length cur.src then Some cur.src.[cur.off + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.off <- cur.off + 1

let position cur = { line = cur.line; col = cur.col }

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      skip_trivia cur
  | Some '/' -> (
      match peek2 cur with
      | Some '/' ->
          let rec to_eol () =
            match peek cur with
            | Some '\n' | None -> ()
            | Some _ ->
                advance cur;
                to_eol ()
          in
          to_eol ();
          skip_trivia cur
      | Some '*' ->
          let start = position cur in
          advance cur;
          advance cur;
          let rec to_close () =
            match (peek cur, peek2 cur) with
            | Some '*', Some '/' ->
                advance cur;
                advance cur
            | Some _, _ ->
                advance cur;
                to_close ()
            | None, _ -> raise (Lex_error ("unterminated comment", start))
          in
          to_close ();
          skip_trivia cur
      | _ -> ())
  | _ -> ()

let lex_word cur =
  let start = cur.off in
  while (match peek cur with Some c -> is_ident_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.off - start)

let lex_number cur pos =
  let start = cur.off in
  (* allow 0x prefix for resource-style ids *)
  if peek cur = Some '0' && (peek2 cur = Some 'x' || peek2 cur = Some 'X') then begin
    advance cur;
    advance cur;
    while
      match peek cur with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance cur
    done
  end
  else
    while (match peek cur with Some c -> is_digit c | None -> false) do
      advance cur
    done;
  let text = String.sub cur.src start (cur.off - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> raise (Lex_error (Printf.sprintf "bad integer literal %S" text, pos))

let tokenize src =
  let cur = { src; off = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit token pos = out := { token; pos } :: !out in
  let rec loop () =
    skip_trivia cur;
    match peek cur with
    | None -> ()
    | Some c ->
        let pos = position cur in
        (match c with
        | '{' ->
            advance cur;
            emit LBRACE pos
        | '}' ->
            advance cur;
            emit RBRACE pos
        | '(' ->
            advance cur;
            emit LPAREN pos
        | ')' ->
            advance cur;
            emit RPAREN pos
        | ';' ->
            advance cur;
            emit SEMI pos
        | ':' ->
            advance cur;
            emit COLON pos
        | ',' ->
            advance cur;
            emit COMMA pos
        | '.' ->
            advance cur;
            emit DOT pos
        | '=' ->
            advance cur;
            emit EQUALS pos
        | '?' ->
            advance cur;
            emit QUESTION pos
        | c when is_digit c -> emit (INT (lex_number cur pos)) pos
        | c when is_ident_start c ->
            let word = lex_word cur in
            let token =
              match keyword_of_string word with Some kw -> kw | None -> IDENT word
            in
            emit token pos
        | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)));
        loop ()
  in
  loop ();
  List.rev !out
