open Lexer

exception Parse_error of string * Lexer.pos

type state = { tokens : located array; mutable index : int }

let eof_pos state =
  if Array.length state.tokens = 0 then { line = 1; col = 1 }
  else (state.tokens.(Array.length state.tokens - 1)).pos

let peek state = if state.index < Array.length state.tokens then Some state.tokens.(state.index) else None

let fail state message =
  let pos = match peek state with Some l -> l.pos | None -> eof_pos state in
  raise (Parse_error (message, pos))

let next state =
  match peek state with
  | Some l ->
      state.index <- state.index + 1;
      l
  | None -> fail state "unexpected end of input"

let expect state token what =
  let l = next state in
  if l.token <> token then
    raise (Parse_error (Fmt.str "expected %s, found %a" what pp_token l.token, l.pos))

let accept state token =
  match peek state with
  | Some l when l.token = token ->
      state.index <- state.index + 1;
      true
  | _ -> false

let ident state =
  let l = next state in
  match l.token with
  | IDENT s -> s
  | t -> raise (Parse_error (Fmt.str "expected identifier, found %a" pp_token t, l.pos))

let parse_ty state =
  let l = next state in
  match l.token with
  | KW_INT -> Ast.Tint
  | KW_VOID -> raise (Parse_error ("'void' is only allowed as a return type", l.pos))
  | IDENT s -> Ast.Tclass s
  | t -> raise (Parse_error (Fmt.str "expected a type, found %a" pp_token t, l.pos))

let parse_ret_ty state =
  if accept state COLON then
    let l = next state in
    match l.token with
    | KW_VOID -> None
    | KW_INT -> Some Ast.Tint
    | IDENT s -> Some (Ast.Tclass s)
    | t -> raise (Parse_error (Fmt.str "expected a return type, found %a" pp_token t, l.pos))
  else None

let parse_params state =
  expect state LPAREN "'('";
  if accept state RPAREN then []
  else
    let rec more acc =
      let name = ident state in
      expect state COLON "':'";
      let ty = parse_ty state in
      let acc = (name, ty) :: acc in
      if accept state COMMA then more acc
      else begin
        expect state RPAREN "')'";
        List.rev acc
      end
    in
    more []

let parse_args state =
  expect state LPAREN "'('";
  if accept state RPAREN then []
  else
    let rec more acc =
      let name = ident state in
      let acc = name :: acc in
      if accept state COMMA then more acc
      else begin
        expect state RPAREN "')'";
        List.rev acc
      end
    in
    more []

(* Right-hand sides of [x = rhs;].  [x] has already been consumed. *)
let parse_rhs state x =
  let l = next state in
  match l.token with
  | KW_NEW ->
      let cls = ident state in
      expect state LPAREN "'('";
      expect state RPAREN "')'";
      Ast.New (x, cls)
  | KW_NULL -> Ast.Const_null x
  | INT n -> Ast.Const_int (x, n)
  | KW_R -> (
      expect state DOT "'.'";
      let category = ident state in
      expect state DOT "'.'";
      (* [R.layout.?] / [R.id.?]: a resource id the analysis cannot
         resolve statically (reflection, computed names). *)
      if accept state QUESTION then
        match category with
        | "layout" -> Ast.Read_layout_top x
        | "id" -> Ast.Read_view_top x
        | other ->
            raise
              (Parse_error (Fmt.str "unknown resource category R.%s (want layout or id)" other, l.pos))
      else
        let name = ident state in
        match category with
        | "layout" -> Ast.Read_layout_id (x, name)
        | "id" -> Ast.Read_view_id (x, name)
        | other ->
            raise (Parse_error (Fmt.str "unknown resource category R.%s (want layout or id)" other, l.pos)))
  | LPAREN ->
      let cls = ident state in
      expect state RPAREN "')'";
      let y = ident state in
      Ast.Cast (x, cls, y)
  | IDENT y -> (
      match peek state with
      | Some { token = DOT; _ } -> (
          state.index <- state.index + 1;
          let member = ident state in
          match peek state with
          | Some { token = LPAREN; _ } ->
              let args = parse_args state in
              Ast.Invoke (Some x, y, member, args)
          | _ -> Ast.Read_field (x, y, member))
      | _ -> Ast.Copy (x, y))
  | t -> raise (Parse_error (Fmt.str "expected an expression, found %a" pp_token t, l.pos))

let parse_stmt state =
  let l = next state in
  match l.token with
  | KW_RETURN ->
      if accept state SEMI then Ast.Return None
      else
        let x = ident state in
        expect state SEMI "';'";
        Ast.Return (Some x)
  | IDENT x -> (
      match peek state with
      | Some { token = EQUALS; _ } ->
          state.index <- state.index + 1;
          let stmt = parse_rhs state x in
          expect state SEMI "';'";
          stmt
      | Some { token = DOT; _ } -> (
          state.index <- state.index + 1;
          let member = ident state in
          match peek state with
          | Some { token = LPAREN; _ } ->
              let args = parse_args state in
              expect state SEMI "';'";
              Ast.Invoke (None, x, member, args)
          | Some { token = EQUALS; _ } ->
              state.index <- state.index + 1;
              let y = ident state in
              expect state SEMI "';'";
              Ast.Write_field (x, member, y)
          | _ -> fail state "expected '(' (call) or '=' (field write) after member access")
      | _ -> fail state "expected '=' or '.' after identifier")
  | t -> raise (Parse_error (Fmt.str "expected a statement, found %a" pp_token t, l.pos))

let parse_method state =
  let name = ident state in
  let params = parse_params state in
  let ret = parse_ret_ty state in
  expect state LBRACE "'{'";
  let locals = ref [] in
  let body = ref [] in
  let rec members () =
    match peek state with
    | Some { token = RBRACE; _ } -> state.index <- state.index + 1
    | Some { token = KW_VAR; _ } ->
        state.index <- state.index + 1;
        let v = ident state in
        expect state COLON "':'";
        let ty = parse_ty state in
        expect state SEMI "';'";
        locals := (v, ty) :: !locals;
        members ()
    | Some _ ->
        body := parse_stmt state :: !body;
        members ()
    | None -> fail state "unterminated method body"
  in
  members ();
  {
    Ast.m_name = name;
    m_params = params;
    m_ret = ret;
    m_locals = List.rev !locals;
    m_body = List.rev !body;
  }

let parse_class state kind =
  let name = ident state in
  let super = if accept state KW_EXTENDS then Some (ident state) else None in
  let interfaces =
    if accept state KW_IMPLEMENTS then
      let rec more acc =
        let i = ident state in
        if accept state COMMA then more (i :: acc) else List.rev (i :: acc)
      in
      more []
    else []
  in
  expect state LBRACE "'{'";
  let fields = ref [] in
  let methods = ref [] in
  let rec members () =
    match peek state with
    | Some { token = RBRACE; _ } -> state.index <- state.index + 1
    | Some { token = KW_FIELD; _ } ->
        state.index <- state.index + 1;
        let f = ident state in
        expect state COLON "':'";
        let ty = parse_ty state in
        expect state SEMI "';'";
        fields := (f, ty) :: !fields;
        members ()
    | Some { token = KW_METHOD; _ } ->
        state.index <- state.index + 1;
        methods := parse_method state :: !methods;
        members ()
    | Some l ->
        raise
          (Parse_error (Fmt.str "expected 'field', 'method' or '}', found %a" pp_token l.token, l.pos))
    | None -> fail state "unterminated class body"
  in
  members ();
  {
    Ast.c_name = name;
    c_kind = kind;
    c_super = super;
    c_interfaces = interfaces;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
  }

let parse_program src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let state = { tokens; index = 0 } in
  let classes = ref [] in
  let rec loop () =
    match peek state with
    | None -> ()
    | Some { token = KW_CLASS; _ } ->
        state.index <- state.index + 1;
        classes := parse_class state `Class :: !classes;
        loop ()
    | Some { token = KW_INTERFACE; _ } ->
        state.index <- state.index + 1;
        classes := parse_class state `Interface :: !classes;
        loop ()
    | Some l ->
        raise (Parse_error (Fmt.str "expected 'class' or 'interface', found %a" pp_token l.token, l.pos))
  in
  loop ();
  { Ast.p_classes = List.rev !classes }

let parse_program_result src =
  match parse_program src with
  | program -> Ok program
  | exception Parse_error (message, pos) ->
      Error (Fmt.str "parse error at %d:%d: %s" pos.line pos.col message)
  | exception Lexer.Lex_error (message, pos) ->
      Error (Fmt.str "lexical error at %d:%d: %s" pos.line pos.col message)
