let pp_ty ppf = function
  | Ast.Tint -> Fmt.string ppf "int"
  | Ast.Tclass c -> Fmt.string ppf c

let pp_ret_ty ppf = function
  | None -> Fmt.string ppf "void"
  | Some ty -> pp_ty ppf ty

let pp_stmt ppf = function
  | Ast.New (x, c) -> Fmt.pf ppf "%s = new %s();" x c
  | Ast.Copy (x, y) -> Fmt.pf ppf "%s = %s;" x y
  | Ast.Read_field (x, y, f) -> Fmt.pf ppf "%s = %s.%s;" x y f
  | Ast.Write_field (x, f, y) -> Fmt.pf ppf "%s.%s = %s;" x f y
  | Ast.Read_layout_id (x, f) -> Fmt.pf ppf "%s = R.layout.%s;" x f
  | Ast.Read_view_id (x, f) -> Fmt.pf ppf "%s = R.id.%s;" x f
  | Ast.Read_layout_top x -> Fmt.pf ppf "%s = R.layout.?;" x
  | Ast.Read_view_top x -> Fmt.pf ppf "%s = R.id.?;" x
  | Ast.Const_int (x, n) -> Fmt.pf ppf "%s = %d;" x n
  | Ast.Const_null x -> Fmt.pf ppf "%s = null;" x
  | Ast.Cast (x, c, y) -> Fmt.pf ppf "%s = (%s) %s;" x c y
  | Ast.Invoke (lhs, recv, m, args) ->
      let pp_args = Fmt.list ~sep:(Fmt.any ", ") Fmt.string in
      (match lhs with
      | Some z -> Fmt.pf ppf "%s = %s.%s(%a);" z recv m pp_args args
      | None -> Fmt.pf ppf "%s.%s(%a);" recv m pp_args args)
  | Ast.Return (Some x) -> Fmt.pf ppf "return %s;" x
  | Ast.Return None -> Fmt.pf ppf "return;"

let pp_param ppf (name, ty) = Fmt.pf ppf "%s: %a" name pp_ty ty

let pp_meth ppf m =
  Fmt.pf ppf "@[<v 2>method %s(%a): %a {" m.Ast.m_name
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    m.Ast.m_params pp_ret_ty m.Ast.m_ret;
  List.iter (fun (v, ty) -> Fmt.pf ppf "@,var %s: %a;" v pp_ty ty) m.Ast.m_locals;
  List.iter (fun s -> Fmt.pf ppf "@,%a" pp_stmt s) m.Ast.m_body;
  Fmt.pf ppf "@]@,}"

let pp_cls ppf c =
  let keyword = match c.Ast.c_kind with `Class -> "class" | `Interface -> "interface" in
  Fmt.pf ppf "@[<v 2>%s %s" keyword c.Ast.c_name;
  (match c.Ast.c_super with Some s -> Fmt.pf ppf " extends %s" s | None -> ());
  (match c.Ast.c_interfaces with
  | [] -> ()
  | is -> Fmt.pf ppf " implements %a" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) is);
  Fmt.pf ppf " {";
  List.iter (fun (f, ty) -> Fmt.pf ppf "@,field %s: %a;" f pp_ty ty) c.Ast.c_fields;
  List.iter (fun m -> Fmt.pf ppf "@,%a" pp_meth m) c.Ast.c_methods;
  Fmt.pf ppf "@]@,}"

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,@,") pp_cls) p.Ast.p_classes

let program_to_string p = Fmt.str "%a@." pp_program p
