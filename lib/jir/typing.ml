type env = (string, Ast.ty) Hashtbl.t

let least_common_superclass hierarchy c1 c2 =
  if c1 = c2 then Some c1
  else if Hierarchy.subtype hierarchy c1 c2 then Some c2
  else if Hierarchy.subtype hierarchy c2 c1 then Some c1
  else
    (* Walk c1's superclass chain until a supertype of c2 is found. *)
    let chain = Hierarchy.superclass_chain hierarchy c1 in
    List.find_opt (fun s -> Hierarchy.subtype hierarchy c2 s) chain

let join hierarchy t1 t2 =
  match (t1, t2) with
  | Ast.Tint, Ast.Tint -> Some Ast.Tint
  | Ast.Tclass a, Ast.Tclass b -> (
      match least_common_superclass hierarchy a b with
      | Some c -> Some (Ast.Tclass c)
      | None -> None)
  | _ -> None

let ty_of env v = Hashtbl.find_opt env v

let class_of env v = match ty_of env v with Some (Ast.Tclass c) -> Some c | _ -> None

let infer ~hierarchy ~external_return ~owner (m : Ast.meth) =
  let env : env = Hashtbl.create 16 in
  let declared : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let set_declared v ty =
    Hashtbl.replace env v ty;
    Hashtbl.replace declared v ()
  in
  set_declared Ast.this_var (Ast.Tclass owner);
  List.iter (fun (v, ty) -> set_declared v ty) m.m_params;
  List.iter (fun (v, ty) -> set_declared v ty) m.m_locals;
  let changed = ref true in
  (* Variables whose definition sites have irreconcilable types: their
     type must stay unknown, or CHA built on it would be unsound. *)
  let conflicted : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* Merge an inferred def-site type into the environment; declared
     types always win. *)
  let update v ty =
    if not (Hashtbl.mem declared v) && not (Hashtbl.mem conflicted v) then
      match Hashtbl.find_opt env v with
      | None ->
          Hashtbl.replace env v ty;
          changed := true
      | Some old ->
          if not (Ast.equal_ty old ty) then (
            match join hierarchy old ty with
            | Some joined when not (Ast.equal_ty joined old) ->
                Hashtbl.replace env v joined;
                changed := true
            | Some _ -> ()
            | None ->
                Hashtbl.add conflicted v ();
                Hashtbl.remove env v;
                changed := true)
  in
  let return_ty_of_call recv m_name arity =
    let recv_ty = class_of env recv in
    let key = { Ast.mk_name = m_name; mk_arity = arity } in
    let application_targets = Hierarchy.cha_targets hierarchy ~recv_ty key in
    match application_targets with
    | (_, target) :: _ -> target.Ast.m_ret
    | [] -> external_return ~recv_ty m_name arity
  in
  let step stmt =
    match stmt with
    | Ast.New (x, c) -> update x (Ast.Tclass c)
    | Ast.Cast (x, c, _) -> update x (Ast.Tclass c)
    | Ast.Read_layout_id (x, _)
    | Ast.Read_view_id (x, _)
    | Ast.Read_layout_top x
    | Ast.Read_view_top x
    | Ast.Const_int (x, _) ->
        update x Ast.Tint
    | Ast.Const_null _ -> ()
    | Ast.Copy (x, y) -> ( match ty_of env y with Some ty -> update x ty | None -> ())
    | Ast.Read_field (x, y, f) -> (
        match class_of env y with
        | Some cls -> (
            match Hierarchy.field_ty hierarchy cls f with
            | Some ty -> update x ty
            | None -> ())
        | None -> ())
    | Ast.Invoke (Some z, recv, name, args) -> (
        match return_ty_of_call recv name (List.length args) with
        | Some ty -> update z ty
        | None -> ())
    | Ast.Invoke (None, _, _, _) | Ast.Write_field _ | Ast.Return _ -> ()
  in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter step m.m_body
  done;
  env
