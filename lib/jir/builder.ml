let tclass c = Ast.Tclass c

let tint = Ast.Tint

let new_ x c = Ast.New (x, c)

let copy x y = Ast.Copy (x, y)

let read x y f = Ast.Read_field (x, y, f)

let write x f y = Ast.Write_field (x, f, y)

let layout_id x name = Ast.Read_layout_id (x, name)

let view_id x name = Ast.Read_view_id (x, name)

let layout_top x = Ast.Read_layout_top x

let view_id_top x = Ast.Read_view_top x

let const x n = Ast.Const_int (x, n)

let null x = Ast.Const_null x

let cast x c y = Ast.Cast (x, c, y)

let call ?into recv m args = Ast.Invoke (into, recv, m, args)

let ret ?value () = Ast.Return value

let meth ?(params = []) ?ret ?(locals = []) name body =
  { Ast.m_name = name; m_params = params; m_ret = ret; m_locals = locals; m_body = body }

let cls ?(kind = `Class) ?extends ?(implements = []) ?(fields = []) ?(methods = []) name =
  {
    Ast.c_name = name;
    c_kind = kind;
    c_super = extends;
    c_interfaces = implements;
    c_fields = fields;
    c_methods = methods;
  }

let program classes = { Ast.p_classes = classes }
