(** Drivers that regenerate every table and figure of the paper's
    evaluation (see DESIGN.md section 4 for the experiment index). *)

type corpus_run = {
  cr_spec : Corpus.Spec.t;
  cr_analysis : Gator.Analysis.t;
  cr_table1 : Gator.Metrics.table1_row;
  cr_table2 : Gator.Metrics.table2_row;
}

type corpus_result = {
  cs_spec : Corpus.Spec.t;
  cs_seconds : float;  (** task wall time: generation + analysis + metrics *)
  cs_run : (corpus_run, string) result;
      (** [Error] carries the captured per-app exception text; sibling
          apps are unaffected *)
}

val effective_jobs : ?jobs:int -> Gator.Config.t -> int
(** [jobs] when given (clamped to >= 1), otherwise
    [Domain.recommended_domain_count] capped by [config.jobs]. *)

val run_specs :
  ?config:Gator.Config.t ->
  ?jobs:int ->
  ?fail_apps:string list ->
  Corpus.Spec.t list ->
  corpus_result list
(** Generate and analyze the given specs as one in-memory batch — on
    a worker-domain pool when the effective job count exceeds 1, else
    on the exact sequential path.  Results are in submission order
    either way, and a crashing app yields an [Error] row instead of
    aborting the batch.  [fail_apps] injects a deliberate failure
    into the named apps, for fault-isolation tests and smoke runs. *)

val run_corpus :
  ?config:Gator.Config.t -> ?jobs:int -> ?fail_apps:string list -> unit -> corpus_result list
(** {!run_specs} over all 20 corpus apps. *)

val jsonl_row : ?timings:bool -> corpus_result -> string
(** One JSON object (single line, no newline) per app: Table 1
    populations + Table 2 averages for a success, [ok:false] and the
    captured exception for a failure.  [~timings:false] omits the
    wall-time field, making the row a pure function of the analysis
    solution — streaming and batch runs then compare byte-for-byte. *)

val run_stream :
  ?config:Gator.Config.t ->
  ?jobs:int ->
  ?high:int ->
  ?low:int ->
  ?timings:bool ->
  ?fail_apps:string list ->
  ?seed:int ->
  apps:int ->
  emit:(string -> unit) ->
  unit ->
  Pool.Stream.stats
(** Streaming ingestion of [apps] generated applications
    ({!Corpus.Gen.stream_spec} with [seed]): specs are pulled on
    demand behind {!Pool.Stream}'s high/low watermark gate, analyzed
    across the worker domains, and each app's {!jsonl_row} is handed
    to [emit] the moment its task completes (completion order!), so
    memory stays bounded by the gate rather than the stream length.
    A failing app emits its [ok:false] row and the stream keeps
    flowing. *)

val corpus_runs : corpus_result list -> corpus_run list
(** The successful runs, in corpus order. *)

val table1 : corpus_result list -> string
(** Table 1: application features and constraint-graph populations. *)

val table2 : ?timings:bool -> corpus_result list -> string
(** Table 2: running time and average solution sizes, alongside the
    paper's published time and receivers columns.  [~timings:false]
    renders "-" for the measured time column, making the output
    deterministic for byte-for-byte comparisons. *)

val solver_stats : corpus_result list -> string
(** Beyond-paper: solver work counters (op applications vs the naive
    [rounds * |ops|] equivalent, delta pushes, descendants-cache hit
    rate) for each run. *)

val case_study : unit -> string
(** Section 5 case study: static averages vs the dynamic-oracle
    ("perfectly precise") averages plus soundness coverage for APV,
    BarcodeScanner, SuperGenPass, XBMC. *)

val figures : unit -> string
(** Figures 1/3/4: the ConnectBot example's constraint graph in
    Graphviz form plus the solution facts narrated in the paper. *)

val ablations : unit -> string
(** Beyond-paper: precision/cost impact of disabling each analysis
    refinement (cast filtering, FINDVIEW3 children refinement,
    listener-callback modeling, dialog modeling). *)

val context_precision : unit -> string
(** Beyond-paper: precision delta of inlining-based context
    sensitivity — average receiver/result solution-set sizes at
    inline depths 0/1/2 on the alias-heavy family (built so shared
    helpers merge whole call groups without inlining) and on XBMC,
    with the context-keyed engine's minted context counts. *)

val top_pollution : unit -> string
(** Beyond-paper: the precision column sound mode adds next to
    Table 2 — per app, the fraction of nonempty solution sets whose
    values were matched through an unknown-id (⊤) marker.  Corpus
    apps never mint a marker (XBMC is the 0% control); the reflective
    family shows the pollution the sound over-approximation costs. *)

val scalability : ?factors:int list -> unit -> string
(** Beyond-paper: analysis wall-clock as the application grows — a
    mid-size corpus spec scaled by each factor.  Demonstrates the
    near-linear cost behavior behind Table 2's "very practical"
    running times. *)

val soundness_sweep : ?apps:int -> ?seed:int -> unit -> string
(** Run the dynamic oracle against the static solution on random apps
    and the full corpus; reports coverage (must be 100%%). *)
