(** Drivers that regenerate every table and figure of the paper's
    evaluation (see DESIGN.md section 4 for the experiment index). *)

type corpus_run = {
  cr_spec : Corpus.Spec.t;
  cr_analysis : Gator.Analysis.t;
  cr_table1 : Gator.Metrics.table1_row;
  cr_table2 : Gator.Metrics.table2_row;
}

val run_corpus : ?config:Gator.Config.t -> unit -> corpus_run list
(** Generate and analyze all 20 apps. *)

val table1 : corpus_run list -> string
(** Table 1: application features and constraint-graph populations. *)

val table2 : corpus_run list -> string
(** Table 2: running time and average solution sizes, alongside the
    paper's published time and receivers columns. *)

val solver_stats : corpus_run list -> string
(** Beyond-paper: solver work counters (op applications vs the naive
    [rounds * |ops|] equivalent, delta pushes, descendants-cache hit
    rate) for each run. *)

val case_study : unit -> string
(** Section 5 case study: static averages vs the dynamic-oracle
    ("perfectly precise") averages plus soundness coverage for APV,
    BarcodeScanner, SuperGenPass, XBMC. *)

val figures : unit -> string
(** Figures 1/3/4: the ConnectBot example's constraint graph in
    Graphviz form plus the solution facts narrated in the paper. *)

val ablations : unit -> string
(** Beyond-paper: precision/cost impact of disabling each analysis
    refinement (cast filtering, FINDVIEW3 children refinement,
    listener-callback modeling, dialog modeling). *)

val scalability : ?factors:int list -> unit -> string
(** Beyond-paper: analysis wall-clock as the application grows — a
    mid-size corpus spec scaled by each factor.  Demonstrates the
    near-linear cost behavior behind Table 2's "very practical"
    running times. *)

val soundness_sweep : ?apps:int -> ?seed:int -> unit -> string
(** Run the dynamic oracle against the static solution on random apps
    and the full corpus; reports coverage (must be 100%%). *)
