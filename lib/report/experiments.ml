type corpus_run = {
  cr_spec : Corpus.Spec.t;
  cr_analysis : Gator.Analysis.t;
  cr_table1 : Gator.Metrics.table1_row;
  cr_table2 : Gator.Metrics.table2_row;
}

type corpus_result = {
  cs_spec : Corpus.Spec.t;
  cs_seconds : float;
  cs_run : (corpus_run, string) result;
}

let effective_jobs ?jobs (config : Gator.Config.t) =
  match jobs with Some j -> max 1 j | None -> Pool.default_jobs ~cap:config.Gator.Config.jobs ()

(* One batch task: generate, analyze, measure.  The app is built
   inside the task so no mutable structure (hierarchy caches, layout
   packages, graphs) is shared across worker domains. *)
let run_one config spec =
  let app = Corpus.Gen.generate spec in
  let analysis = Gator.Analysis.analyze ~config app in
  {
    cr_spec = spec;
    cr_analysis = analysis;
    cr_table1 = Gator.Metrics.table1 analysis;
    cr_table2 = Gator.Metrics.table2 analysis;
  }

let result_of_outcome spec (outcome : _ Pool.outcome) =
  {
    cs_spec = spec;
    cs_seconds = outcome.Pool.oc_seconds;
    cs_run = Result.map_error (fun e -> e.Pool.err_exn) outcome.Pool.oc_result;
  }

let run_specs ?(config = Gator.Config.default) ?jobs ?(fail_apps = []) specs =
  let jobs = effective_jobs ?jobs config in
  let tasks =
    List.map
      (fun spec () ->
        if List.mem spec.Corpus.Spec.sp_name fail_apps then
          failwith ("injected failure in " ^ spec.Corpus.Spec.sp_name);
        run_one config spec)
      specs
  in
  List.map2 result_of_outcome specs (Pool.run ~jobs tasks)

let run_corpus ?config ?jobs ?fail_apps () = run_specs ?config ?jobs ?fail_apps Corpus.Apps.specs

(* One JSONL row per app: the Table 1 populations and Table 2 averages
   for a success, [ok:false] plus the captured exception for a
   failure.  With [~timings:false] the row is a pure function of the
   analysis solution, so streaming and batch runs of the same spec
   compare byte-for-byte. *)
let jsonl_row ?(timings = true) result =
  let module J = Util.Json in
  let jopt = function None -> J.Null | Some f -> J.Float f in
  let fields =
    match result.cs_run with
    | Error err ->
        [
          ("app", J.String result.cs_spec.Corpus.Spec.sp_name);
          ("ok", J.Bool false);
          ("error", J.String ("FAILED: " ^ err));
        ]
    | Ok run ->
        let t1 = run.cr_table1 and t2 = run.cr_table2 in
        [
          ("app", J.String t1.Gator.Metrics.t1_app);
          ("ok", J.Bool true);
          ("classes", J.Int t1.t1_classes);
          ("methods", J.Int t1.t1_methods);
          ("layout_ids", J.Int t1.t1_layout_ids);
          ("view_ids", J.Int t1.t1_view_ids);
          ("views_inflated", J.Int t1.t1_views_inflated);
          ("views_allocated", J.Int t1.t1_views_allocated);
          ("listeners", J.Int t1.t1_listeners);
          ("inflate_ops", J.Int t1.t1_inflate_ops);
          ("findview_ops", J.Int t1.t1_findview_ops);
          ("addview_ops", J.Int t1.t1_addview_ops);
          ("setid_ops", J.Int t1.t1_setid_ops);
          ("setlistener_ops", J.Int t1.t1_setlistener_ops);
          ("receivers", jopt t2.Gator.Metrics.t2_receivers);
          ("parameters", jopt t2.t2_parameters);
          ("results", jopt t2.t2_results);
          ("listeners_avg", jopt t2.t2_listeners);
        ]
  in
  let fields = if timings then fields @ [ ("seconds", J.Float result.cs_seconds) ] else fields in
  J.to_string (J.Obj fields)

(* Streaming ingestion: [apps] generated specs pulled on demand,
   analyzed across [jobs] domains behind {!Pool.Stream}'s watermark
   gate, each row emitted the moment its task completes.  Nothing is
   retained per app beyond its JSONL line, so the stream's footprint
   is bounded by the gate, not the corpus size. *)
let run_stream ?(config = Gator.Config.default) ?jobs ?high ?low ?(timings = true)
    ?(fail_apps = []) ?(seed = 42) ~apps ~emit () =
  let jobs = effective_jobs ?jobs config in
  Pool.Stream.run ~jobs ?high ?low
    ~produce:(fun i -> if i < apps then Some (Corpus.Gen.stream_spec ~seed i) else None)
    ~work:(fun spec ->
      if List.mem spec.Corpus.Spec.sp_name fail_apps then
        failwith ("injected failure in " ^ spec.Corpus.Spec.sp_name);
      run_one config spec)
    ~consume:(fun _i spec outcome -> emit (jsonl_row ~timings (result_of_outcome spec outcome)))
    ()

let corpus_runs results =
  List.filter_map (fun r -> Result.to_option r.cs_run) results

(* A failed app still occupies its row: name, the captured exception,
   dashes for the metric columns the task never produced. *)
let failed_row ~columns name err =
  name :: ("FAILED: " ^ err) :: List.init (columns - 2) (fun _ -> "-")

let table1 results =
  let header =
    [
      "App"; "classes"; "methods"; "ids L/V"; "views I/A"; "listeners"; "Inflate"; "FindView";
      "AddView"; "SetId"; "SetListener";
    ]
  in
  let rows =
    List.map
      (fun result ->
        match result.cs_run with
        | Error err -> failed_row ~columns:(List.length header) result.cs_spec.Corpus.Spec.sp_name err
        | Ok run ->
            let t = run.cr_table1 in
            [
              t.t1_app;
              Table.cell_int t.t1_classes;
              Table.cell_int t.t1_methods;
              Printf.sprintf "%d/%d" t.t1_layout_ids t.t1_view_ids;
              Printf.sprintf "%d/%d" t.t1_views_inflated t.t1_views_allocated;
              Table.cell_int t.t1_listeners;
              Table.cell_int t.t1_inflate_ops;
              Table.cell_int t.t1_findview_ops;
              Table.cell_int t.t1_addview_ops;
              Table.cell_int t.t1_setid_ops;
              Table.cell_int t.t1_setlistener_ops;
            ])
      results
  in
  "Table 1: analyzed applications and relevant constraint graph nodes\n"
  ^ Table.render ~header rows

let table2 ?(timings = true) results =
  let header =
    [
      "App"; "time(s)"; "paper(s)"; "receivers"; "paper"; "parameters"; "results"; "listeners";
    ]
  in
  let rows =
    List.map
      (fun result ->
        match result.cs_run with
        | Error err -> failed_row ~columns:(List.length header) result.cs_spec.Corpus.Spec.sp_name err
        | Ok run ->
            let t = run.cr_table2 in
            let paper = Paper.table2 t.t2_app in
            [
              t.t2_app;
              (* timings are inherently nondeterministic; tests that
                 compare reports byte-for-byte suppress them *)
              (if timings then Table.cell_seconds t.t2_seconds else "-");
              (match paper with Some p -> Table.cell_seconds p.p2_seconds | None -> "-");
              Table.cell_float t.t2_receivers;
              (match paper with Some p -> Printf.sprintf "%.2f" p.p2_receivers | None -> "-");
              Table.cell_float t.t2_parameters;
              Table.cell_float t.t2_results;
              Table.cell_float t.t2_listeners;
            ])
      results
  in
  "Table 2: analysis running time and average solution sizes\n"
  ^ Table.render ~header rows
  ^ "\n(paper columns: values published in the paper; \"-\" where the paper reports no such ops)"

let solver_stats results =
  let header =
    [
      "App"; "solver"; "mode"; "ops"; "rounds"; "op applies"; "naive equiv"; "saved";
      "propagations"; "delta pushes"; "desc cache"; "values"; "set words"; "unions"; "sccs";
      "max scc"; "ctxs"; "ctx keys";
    ]
  in
  let rows =
    List.map
      (fun result ->
        match result.cs_run with
        | Error err -> failed_row ~columns:(List.length header) result.cs_spec.Corpus.Spec.sp_name err
        | Ok run ->
            let s = Gator.Metrics.solver_stats run.cr_analysis in
            let saved =
              if s.sv_naive_equivalent = 0 then "-"
              else
                Printf.sprintf "%.1fx"
                  (float_of_int s.sv_naive_equivalent
                  /. float_of_int (max 1 s.sv_op_applications))
            in
            let mode =
              match s.sv_fallback with
              | Some _ -> "fallback"
              | None ->
                  if s.sv_warm then
                    Printf.sprintf "warm %d/%d" s.sv_dirty_comps s.sv_reused_comps
                  else "-"
            in
            [
              s.sv_app;
              s.sv_solver;
              mode;
              Table.cell_int s.sv_ops;
              Table.cell_int s.sv_iterations;
              Table.cell_int s.sv_op_applications;
              Table.cell_int s.sv_naive_equivalent;
              saved;
              Table.cell_int s.sv_propagations;
              Table.cell_int s.sv_delta_pushes;
              Printf.sprintf "%d/%d" s.sv_desc_hits (s.sv_desc_hits + s.sv_desc_misses);
              (if s.sv_interned_values = 0 then "-" else Table.cell_int s.sv_interned_values);
              (if s.sv_bitset_words = 0 then "-" else Table.cell_int s.sv_bitset_words);
              (if s.sv_union_calls = 0 then "-" else Table.cell_int s.sv_union_calls);
              (if s.sv_scc_count = 0 then "-" else Table.cell_int s.sv_scc_count);
              (if s.sv_scc_count = 0 then "-" else Table.cell_int s.sv_largest_scc);
              (if s.sv_ctx_count = 0 then "-" else Table.cell_int s.sv_ctx_count);
              (if s.sv_ctx_keys = 0 then "-" else Table.cell_int s.sv_ctx_keys);
            ])
      results
  in
  "Solver work: delta scheduling vs naive re-iteration (naive equiv = rounds * |ops|; mode: \
   warm dirty/reused components for incremental solves, \"-\" for cold)\n"
  ^ Table.render ~header rows

let case_study () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Case study (Section 5): static solution vs dynamic oracle (perfectly-precise prefix)\n";
  let header =
    [ "App"; "static recv"; "dynamic recv"; "static res"; "dynamic res"; "coverage"; "sound" ]
  in
  let rows =
    List.map
      (fun name ->
        let spec = Option.get (Corpus.Apps.by_name name) in
        let app = Corpus.Gen.generate spec in
        let analysis = Gator.Analysis.analyze app in
        let t2 = Gator.Metrics.table2 analysis in
        let outcome = Dynamic.Interp.run app in
        let dyn = Dynamic.Oracle.dynamic_averages outcome in
        let coverage = Dynamic.Oracle.check analysis outcome in
        [
          name;
          Table.cell_float t2.t2_receivers;
          Table.cell_float dyn.dyn_receivers;
          Table.cell_float t2.t2_results;
          Table.cell_float dyn.dyn_results;
          Printf.sprintf "%d/%d" coverage.cov_covered coverage.cov_total;
          (if Dynamic.Oracle.is_sound coverage then "yes" else "NO");
        ])
      Corpus.Apps.case_study_names
  in
  Buffer.add_string buf (Table.render ~header rows);
  Buffer.add_string buf
    (Printf.sprintf
       "\n\npaper: APV/BarcodeScanner/SuperGenPass perfectly precise; XBMC perfect receivers %.2f, \
        results %.2f (vs static 8.81 / 1.80+)\n"
       Paper.xbmc_perfect_receivers Paper.xbmc_perfect_results);
  Buffer.contents buf

let connectbot_facts r =
  let facts = ref [] in
  let fact name ok = facts := (name, ok) :: !facts in
  let views_at cls meth arity v = Gator.Analysis.views_at r (Gator.Analysis.var ~cls ~meth ~arity v) in
  let has_infl layout cls views =
    List.exists
      (fun view ->
        match view with
        | Gator.Node.V_infl i -> i.v_layout = layout && i.v_cls = cls
        | Gator.Node.V_alloc _ -> false)
      views
  in
  let has_alloc cls views =
    List.exists
      (fun view ->
        match view with Gator.Node.V_alloc a -> a.a_cls = cls | Gator.Node.V_infl _ -> false)
      views
  in
  fact "activity root is the inflated act_console RelativeLayout"
    (has_infl "act_console" "RelativeLayout" (Gator.Analysis.roots_of_activity r "ConsoleActivity"));
  fact "g in onCreate resolves precisely to the ESC ImageView"
    (match views_at "ConsoleActivity" "onCreate" 0 "g" with
    | [ Gator.Node.V_infl i ] -> i.v_vid = Some "button_esc"
    | _ -> false);
  fact "cast filters e down to the ViewFlipper in f"
    (match views_at "ConsoleActivity" "onCreate" 0 "f" with
    | [ Gator.Node.V_infl i ] -> i.v_cls = "ViewFlipper"
    | _ -> false);
  fact "onClick parameter r receives the ESC ImageView"
    (has_infl "act_console" "ImageView" (views_at "EscapeButtonListener" "onClick" 1 "r"));
  fact "v in onClick resolves to the programmatic TerminalView"
    (has_alloc "TerminalView" (views_at "EscapeButtonListener" "onClick" 1 "v"));
  fact "interaction tuple (ConsoleActivity, ESC, click, onClick) derived"
    (List.exists
       (fun (ix : Gator.Analysis.interaction) ->
         ix.ix_activity = "ConsoleActivity"
         && ix.ix_event = Framework.Listeners.Click
         && ix.ix_handler.mid_cls = "EscapeButtonListener")
       (Gator.Analysis.interactions r));
  List.rev !facts

let figures () =
  let app = Corpus.Connectbot.app () in
  let r = Gator.Analysis.analyze app in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Figures 1/3/4: ConnectBot example; paper-narrated facts:\n";
  List.iter
    (fun (name, ok) ->
      Buffer.add_string buf (Printf.sprintf "  [%s] %s\n" (if ok then "ok" else "FAIL") name))
    (connectbot_facts r);
  Buffer.add_string buf "\nConstraint graph (Graphviz):\n";
  Buffer.add_string buf (Fmt.str "%a" Gator.Graph.pp_dot r.graph);
  Buffer.contents buf

let ablations () =
  let configs =
    [
      ("default", Gator.Config.default);
      ("no cast filtering", { Gator.Config.default with cast_filtering = false });
      ("no FindOne refinement", { Gator.Config.default with findone_refinement = false });
      ("no listener callbacks", { Gator.Config.default with listener_callbacks = false });
      ("no dialog modeling", { Gator.Config.default with model_dialogs = false });
      ("baseline (all off)", Gator.Config.baseline);
      ("context-sensitive (inline 1)", { Gator.Config.default with inline_depth = 1 });
      ("context-sensitive (inline 2)", { Gator.Config.default with inline_depth = 2 });
    ]
  in
  let apps =
    ("Fig.1", Corpus.Connectbot.app ())
    :: (List.filter_map Corpus.Apps.by_name [ "Mileage"; "XBMC" ]
       |> List.map (fun spec -> (spec.Corpus.Spec.sp_name, Corpus.Gen.generate spec)))
  in
  let header =
    ("Config" :: List.concat_map (fun (name, _) -> [ name ^ " recv"; name ^ " res" ]) apps)
    @ [ "ix"; "sound" ]
  in
  let rows =
    List.map
      (fun (label, config) ->
        let cells =
          List.concat_map
            (fun (_, app) ->
              let r = Gator.Analysis.analyze ~config app in
              let t2 = Gator.Metrics.table2 r in
              [ Table.cell_float t2.t2_receivers; Table.cell_float t2.t2_results ])
            apps
        in
        (* Interactions and soundness coverage on the Figure 1 app:
           disabling listener callbacks loses interaction tuples and
           breaks coverage of the dynamic trace. *)
        let fig1 = snd (List.hd apps) in
        let r = Gator.Analysis.analyze ~config fig1 in
        let interactions = List.length (Gator.Analysis.interactions r) in
        let coverage = Dynamic.Oracle.check r (Dynamic.Interp.run fig1) in
        (label :: cells)
        @ [
            Table.cell_int interactions;
            (if Dynamic.Oracle.is_sound coverage then "yes"
             else Printf.sprintf "NO (%d misses)" (List.length coverage.cov_misses));
          ])
      configs
  in
  "Ablation: impact of each modeling refinement (ix/sound columns: Figure 1 app)\n"
  ^ Table.render ~header rows

let context_precision () =
  let configs =
    [
      ("ci", Gator.Config.default);
      ("cs-1", { Gator.Config.default with inline_depth = 1 });
      ("cs-2", { Gator.Config.default with inline_depth = 2 });
    ]
  in
  let apps =
    [
      ( "AliasTight",
        Corpus.Gen.alias_heavy_app ~name:"AliasTight" ~groups:4 ~sites_per_group:5 ~seed:11 () );
      ( "AliasWide",
        Corpus.Gen.alias_heavy_app ~name:"AliasWide" ~groups:6 ~sites_per_group:8 ~seed:23 () );
      ("XBMC", Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")));
    ]
  in
  let header = [ "App"; "config"; "avg recv"; "avg res"; "recv shrink"; "ctxs"; "ctx keys" ] in
  let rows =
    List.concat_map
      (fun (name, app) ->
        let base = ref 1.0 in
        List.map
          (fun (label, config) ->
            let r = Gator.Analysis.analyze ~config app in
            let t2 = Gator.Metrics.table2 r in
            let s = Gator.Metrics.solver_stats r in
            let recv = Option.value t2.t2_receivers ~default:0.0 in
            if label = "ci" then base := recv;
            [
              name;
              label;
              Table.cell_float t2.t2_receivers;
              Table.cell_float t2.t2_results;
              (if label = "ci" then "-"
               else Printf.sprintf "%.1fx" (!base /. Float.max 1e-9 recv));
              (if s.sv_ctx_count = 0 then "-" else Table.cell_int s.sv_ctx_count);
              (if s.sv_ctx_keys = 0 then "-" else Table.cell_int s.sv_ctx_keys);
            ])
          configs)
      apps
  in
  "Context-sensitivity precision: average solution-set sizes vs the context-insensitive\n\
   baseline (alias-heavy apps dispatch every site through shared helpers, so \"recv shrink\"\n\
   is the receiver-set deflation bought by inlining depth; ctxs/ctx keys are minted by the\n\
   context-keyed interned engine)\n"
  ^ Table.render ~header rows

(* Precision companion to Table 2: how much of the solution space the
   unknown-id markers pollute.  Corpus apps never mint a ⊤ marker, so
   XBMC is the 0% control row; the reflective family routes its
   layout/id lookups through [R.layout.?]/[R.id.?] and shows the price
   of soundness as the fraction of nonempty solution sets that carry
   the imprecision taint. *)
let top_pollution () =
  let apps =
    [
      ("XBMC", Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")));
      ("ReflHeavy", Corpus.Gen.reflective_app ~name:"ReflHeavy" ~layouts:3 ~seed:2014 ());
      ("ReflWide", Corpus.Gen.reflective_app ~name:"ReflWide" ~layouts:6 ~seed:7 ());
    ]
  in
  let header = [ "App"; "markers"; "nonempty sets"; "polluted"; "polluted %" ] in
  let rows =
    List.map
      (fun (name, app) ->
        let r = Gator.Analysis.analyze app in
        let polluted, nonempty = Gator.Analysis.pollution r in
        [
          name;
          (if Gator.Graph.has_top r.graph then "yes" else "no");
          Table.cell_int nonempty;
          Table.cell_int polluted;
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int polluted /. Float.max 1.0 (float_of_int nonempty));
        ])
      apps
  in
  "Unknown-id pollution: solution sets tainted by a reflective (top) marker, read\n\
   alongside Table 2's averages; corpus apps carry no markers, so XBMC is the 0% control\n"
  ^ Table.render ~header rows

let scale_spec (s : Corpus.Spec.t) k =
  {
    s with
    Corpus.Spec.sp_name = Printf.sprintf "%s-x%d" s.sp_name k;
    sp_classes = s.sp_classes * k;
    sp_methods = s.sp_methods * k;
    sp_activities = s.sp_activities * k;
    sp_layouts = s.sp_layouts * k;
    sp_view_ids = s.sp_view_ids * k;
    sp_inflated_nodes = s.sp_inflated_nodes * k;
    sp_view_allocs = s.sp_view_allocs * k;
    sp_listener_classes = s.sp_listener_classes * k;
    sp_listener_allocs = s.sp_listener_allocs * k;
    sp_findview_ops = s.sp_findview_ops * k;
    sp_addview_ops = s.sp_addview_ops * k;
    sp_setid_ops = s.sp_setid_ops * k;
    sp_setlistener_ops = s.sp_setlistener_ops * k;
  }

let scalability ?(factors = [ 1; 2; 4; 8 ]) () =
  let base = Option.get (Corpus.Apps.by_name "ConnectBot") in
  let header = [ "scale"; "classes"; "methods"; "ops"; "locations"; "time(s)" ] in
  let rows =
    List.map
      (fun k ->
        let spec = scale_spec base k in
        let app = Corpus.Gen.generate spec in
        let r = Gator.Analysis.analyze app in
        let classes, methods = Jir.Ast.program_size app.program in
        [
          Printf.sprintf "x%d" k;
          Table.cell_int classes;
          Table.cell_int methods;
          Table.cell_int (List.length (Gator.Analysis.ops r));
          Table.cell_int (List.length (Gator.Graph.locations r.graph));
          Printf.sprintf "%.3f" r.solve_seconds;
        ])
      factors
  in
  "Scalability: analysis cost vs application size (ConnectBot spec scaled)\n"
  ^ Table.render ~header rows

let soundness_sweep ?(apps = 25) ?(seed = 42) () =
  let buf = Buffer.create 1024 in
  let check name app =
    let analysis = Gator.Analysis.analyze app in
    let outcome = Dynamic.Interp.run app in
    let coverage = Dynamic.Oracle.check analysis outcome in
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %d/%d %s\n" name coverage.cov_covered coverage.cov_total
         (if Dynamic.Oracle.is_sound coverage then "sound" else "UNSOUND"));
    Dynamic.Oracle.is_sound coverage
  in
  Buffer.add_string buf "Soundness sweep: dynamic trace coverage by the static solution\n";
  let rng = Util.Prng.create seed in
  let ok_random =
    List.for_all
      (fun i ->
        let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "Random_%d" i) rng in
        check spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec))
      (List.init apps (fun i -> i))
  in
  let ok_corpus =
    List.for_all
      (fun spec -> check spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec))
      Corpus.Apps.specs
  in
  let ok_connectbot = check "ConnectBot(Fig.1)" (Corpus.Connectbot.app ()) in
  Buffer.add_string buf
    (if ok_random && ok_corpus && ok_connectbot then "ALL SOUND\n" else "SOUNDNESS VIOLATIONS FOUND\n");
  Buffer.contents buf
