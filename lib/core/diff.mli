(** Solution diffing: compare two analysis results of the same (or an
    edited) application — the regression-checking workflow of a team
    adopting the analysis in CI.  Operations are matched by structural
    site, so results are comparable across configurations and across
    code edits that leave a site in place. *)

type op_change = {
  oc_site : Node.op_site;
  oc_role : string;  (** "receivers" | "arguments" | "results" | "listeners" *)
  oc_only_left : int;  (** values present only in the left solution *)
  oc_only_right : int;
}

type t = {
  d_left : string;
  d_right : string;
  d_ops_only_left : Node.op_site list;
  d_ops_only_right : Node.op_site list;
  d_changed : op_change list;
  d_transitions_only_left : (string * string) list;
  d_transitions_only_right : (string * string) list;
}

val compare : Analysis.t -> Analysis.t -> t

val is_empty : t -> bool
(** No differences. *)

val pp : t Fmt.t

(** {1 Graph-level edit scripts (incremental re-analysis)} *)

val edit_script : old_:Solve.shape -> new_:Solve.shape -> Solve.edit_script
(** Structural diff between two graph shapes sharing an interner:
    added/removed flow edges (cast kinds matched by class name across
    the two symbol tables), added/removed seeds, and a multiset op
    matching.  Dynamic N_ret dependencies are not part of the static
    shape and are handled by the warm solver from the captured
    solution. *)

val edit_script_is_empty : Solve.edit_script -> bool
(** No edits and every op matched. *)
