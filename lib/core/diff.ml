type op_change = {
  oc_site : Node.op_site;
  oc_role : string;
  oc_only_left : int;
  oc_only_right : int;
}

type t = {
  d_left : string;
  d_right : string;
  d_ops_only_left : Node.op_site list;
  d_ops_only_right : Node.op_site list;
  d_changed : op_change list;
  d_transitions_only_left : (string * string) list;
  d_transitions_only_right : (string * string) list;
}

module Site_map = Map.Make (struct
  type t = Node.op_site

  let compare = Node.compare_op_site
end)

(* Clone records (context sensitivity) of the same site are merged:
   the external meaning of a site's solution is the union. *)
let op_solutions (r : Analysis.t) =
  List.fold_left
    (fun acc (op : Graph.op) ->
      let views_of f = List.sort_uniq compare (f r op) in
      let entry =
        [
          ("receivers", List.map (fun v -> Node.V_view v) (views_of Analysis.op_receiver_views));
          ("arguments", List.map (fun v -> Node.V_view v) (views_of Analysis.op_child_views));
          ("results", List.map (fun v -> Node.V_view v) (views_of Analysis.op_result_views));
          ( "listeners",
            List.sort_uniq compare
              (List.map
                 (function
                   | Node.L_alloc site -> Node.V_obj site
                   | Node.L_act a -> Node.V_act a)
                 (Analysis.op_listeners r op)) );
        ]
      in
      Site_map.update op.site
        (function
          | None -> Some entry
          | Some existing ->
              Some
                (List.map2
                   (fun (role, old_values) (_, new_values) ->
                     (role, List.sort_uniq compare (old_values @ new_values)))
                   existing entry))
        acc)
    Site_map.empty (Analysis.ops r)

let diff_lists left right =
  let only_left = List.filter (fun v -> not (List.mem v right)) left in
  let only_right = List.filter (fun v -> not (List.mem v left)) right in
  (only_left, only_right)

let compare (left : Analysis.t) (right : Analysis.t) =
  let sols_left = op_solutions left in
  let sols_right = op_solutions right in
  let ops_only_left =
    Site_map.fold
      (fun site _ acc -> if Site_map.mem site sols_right then acc else site :: acc)
      sols_left []
  in
  let ops_only_right =
    Site_map.fold
      (fun site _ acc -> if Site_map.mem site sols_left then acc else site :: acc)
      sols_right []
  in
  let changed =
    Site_map.fold
      (fun site entry_left acc ->
        match Site_map.find_opt site sols_right with
        | None -> acc
        | Some entry_right ->
            List.fold_left2
              (fun acc (role, values_left) (_, values_right) ->
                let only_left, only_right = diff_lists values_left values_right in
                if only_left = [] && only_right = [] then acc
                else
                  {
                    oc_site = site;
                    oc_role = role;
                    oc_only_left = List.length only_left;
                    oc_only_right = List.length only_right;
                  }
                  :: acc)
              acc entry_left entry_right)
      sols_left []
  in
  let transitions_only_left, transitions_only_right =
    diff_lists (Analysis.transitions left) (Analysis.transitions right)
  in
  {
    d_left = left.app.Framework.App.name;
    d_right = right.app.Framework.App.name;
    d_ops_only_left = List.rev ops_only_left;
    d_ops_only_right = List.rev ops_only_right;
    d_changed = List.rev changed;
    d_transitions_only_left = transitions_only_left;
    d_transitions_only_right = transitions_only_right;
  }

let is_empty d =
  d.d_ops_only_left = [] && d.d_ops_only_right = [] && d.d_changed = []
  && d.d_transitions_only_left = [] && d.d_transitions_only_right = []

let pp ppf d =
  if is_empty d then Fmt.pf ppf "no differences between %s and %s" d.d_left d.d_right
  else begin
    Fmt.pf ppf "@[<v>diff %s vs %s:" d.d_left d.d_right;
    List.iter (fun s -> Fmt.pf ppf "@,  op only in %s: %a" d.d_left Node.pp_op_site s) d.d_ops_only_left;
    List.iter
      (fun s -> Fmt.pf ppf "@,  op only in %s: %a" d.d_right Node.pp_op_site s)
      d.d_ops_only_right;
    List.iter
      (fun c ->
        Fmt.pf ppf "@,  %a %s: -%d +%d" Node.pp_op_site c.oc_site c.oc_role c.oc_only_left
          c.oc_only_right)
      d.d_changed;
    List.iter
      (fun (a, b) -> Fmt.pf ppf "@,  transition only in %s: %s -> %s" d.d_left a b)
      d.d_transitions_only_left;
    List.iter
      (fun (a, b) -> Fmt.pf ppf "@,  transition only in %s: %s -> %s" d.d_right a b)
      d.d_transitions_only_right;
    Fmt.pf ppf "@]"
  end
