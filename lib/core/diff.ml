type op_change = {
  oc_site : Node.op_site;
  oc_role : string;
  oc_only_left : int;
  oc_only_right : int;
}

type t = {
  d_left : string;
  d_right : string;
  d_ops_only_left : Node.op_site list;
  d_ops_only_right : Node.op_site list;
  d_changed : op_change list;
  d_transitions_only_left : (string * string) list;
  d_transitions_only_right : (string * string) list;
}

module Site_map = Map.Make (struct
  type t = Node.op_site

  let compare = Node.compare_op_site
end)

(* Clone records (context sensitivity) of the same site are merged:
   the external meaning of a site's solution is the union. *)
let op_solutions (r : Analysis.t) =
  List.fold_left
    (fun acc (op : Graph.op) ->
      let views_of f = List.sort_uniq compare (f r op) in
      let entry =
        [
          ("receivers", List.map (fun v -> Node.V_view v) (views_of Analysis.op_receiver_views));
          ("arguments", List.map (fun v -> Node.V_view v) (views_of Analysis.op_child_views));
          ("results", List.map (fun v -> Node.V_view v) (views_of Analysis.op_result_views));
          ( "listeners",
            List.sort_uniq compare
              (List.map
                 (function
                   | Node.L_alloc site -> Node.V_obj site
                   | Node.L_act a -> Node.V_act a)
                 (Analysis.op_listeners r op)) );
        ]
      in
      Site_map.update op.site
        (function
          | None -> Some entry
          | Some existing ->
              Some
                (List.map2
                   (fun (role, old_values) (_, new_values) ->
                     (role, List.sort_uniq compare (old_values @ new_values)))
                   existing entry))
        acc)
    Site_map.empty (Analysis.ops r)

let diff_lists left right =
  let only_left = List.filter (fun v -> not (List.mem v right)) left in
  let only_right = List.filter (fun v -> not (List.mem v left)) right in
  (only_left, only_right)

let compare (left : Analysis.t) (right : Analysis.t) =
  let sols_left = op_solutions left in
  let sols_right = op_solutions right in
  let ops_only_left =
    Site_map.fold
      (fun site _ acc -> if Site_map.mem site sols_right then acc else site :: acc)
      sols_left []
  in
  let ops_only_right =
    Site_map.fold
      (fun site _ acc -> if Site_map.mem site sols_left then acc else site :: acc)
      sols_right []
  in
  let changed =
    Site_map.fold
      (fun site entry_left acc ->
        match Site_map.find_opt site sols_right with
        | None -> acc
        | Some entry_right ->
            List.fold_left2
              (fun acc (role, values_left) (_, values_right) ->
                let only_left, only_right = diff_lists values_left values_right in
                if only_left = [] && only_right = [] then acc
                else
                  {
                    oc_site = site;
                    oc_role = role;
                    oc_only_left = List.length only_left;
                    oc_only_right = List.length only_right;
                  }
                  :: acc)
              acc entry_left entry_right)
      sols_left []
  in
  let transitions_only_left, transitions_only_right =
    diff_lists (Analysis.transitions left) (Analysis.transitions right)
  in
  {
    d_left = left.app.Framework.App.name;
    d_right = right.app.Framework.App.name;
    d_ops_only_left = List.rev ops_only_left;
    d_ops_only_right = List.rev ops_only_right;
    d_changed = List.rev changed;
    d_transitions_only_left = transitions_only_left;
    d_transitions_only_right = transitions_only_right;
  }

let is_empty d =
  d.d_ops_only_left = [] && d.d_ops_only_right = [] && d.d_changed = []
  && d.d_transitions_only_left = [] && d.d_transitions_only_right = []

(* ------------------------------------------------------------------ *)
(* Graph-level edit scripts (incremental re-analysis).

   Coverage audit — every relation kind of the constraint graph a
   patch can change, and where the diff accounts for it:
   - direct flow edges (assignments, field flows, call bindings,
     return flows): per-source row comparison below;
   - CAST flow edges: compared by cast class NAME, not raw symbol.
     Each shape carries its own cast-symbol table, so old symbols are
     normalized into the new shape's space first; a cast class that
     vanished from the program gets a per-symbol sentinel [<= -2] so
     its edges can only ever compare unequal (comparing raw kind
     indices would silently treat a re-ordered cast table as a sea of
     spurious edge edits — or worse, mask real ones);
   - seeds: allocation results, resource-id constants, and the
     lifecycle/menu/dialog callback injections are all ordinary seeds,
     and so are the activity seeds behind DECLARATIVE [android:onClick]
     handlers — the seed diff covers every one of them, no special
     case needed;
   - operation nodes: matched as a multiset on the full static tuple
     (site, receiver id, argument ids, out id); a shifted statement
     index changes the site and is soundly treated as removed+added;
   - dynamic N_ret dependencies are deliberately NOT here: which ops
     re-fire when a method-return location grows is discovered at
     solve time, not extraction time, so it cannot be diffed
     statically.  The warm solver restores them from the captured
     solution ([Solve.solved.sd_ret_deps]) and runs its suspect
     fixpoint over them instead. *)

let edit_script ~old_:(o : Solve.shape) ~new_:(n : Solve.shape) =
  let new_sym = Hashtbl.create 16 in
  Array.iteri (fun i name -> Hashtbl.replace new_sym name i) n.Solve.sh_cast_names;
  let old_kind k =
    if k < 0 then -1
    else
      match Hashtbl.find_opt new_sym o.Solve.sh_cast_names.(k) with
      | Some i -> i
      | None -> -2 - k
  in
  (* Rows are sets (edge insertion is idempotent) and small, so
     mismatched rows are diffed as lists; identical rows — the vast
     majority — are skipped by an element-wise scan. *)
  let removed_edges = ref [] in
  let added_edges = ref [] in
  let row_old src =
    if src >= o.Solve.sh_nodes then []
    else
      List.init
        (o.Solve.sh_row.(src + 1) - o.Solve.sh_row.(src))
        (fun i ->
          let e = o.Solve.sh_row.(src) + i in
          (old_kind o.Solve.sh_ekind.(e), o.Solve.sh_edst.(e)))
  in
  let row_new src =
    if src >= n.Solve.sh_nodes then []
    else
      List.init
        (n.Solve.sh_row.(src + 1) - n.Solve.sh_row.(src))
        (fun i ->
          let e = n.Solve.sh_row.(src) + i in
          (n.Solve.sh_ekind.(e), n.Solve.sh_edst.(e)))
  in
  for src = 0 to max o.Solve.sh_nodes n.Solve.sh_nodes - 1 do
    let same =
      src < o.Solve.sh_nodes && src < n.Solve.sh_nodes
      && o.Solve.sh_row.(src + 1) - o.Solve.sh_row.(src)
         = n.Solve.sh_row.(src + 1) - n.Solve.sh_row.(src)
      &&
      let len = n.Solve.sh_row.(src + 1) - n.Solve.sh_row.(src) in
      let rec eq i =
        i >= len
        ||
        let eo = o.Solve.sh_row.(src) + i and en = n.Solve.sh_row.(src) + i in
        o.Solve.sh_edst.(eo) = n.Solve.sh_edst.(en)
        && old_kind o.Solve.sh_ekind.(eo) = n.Solve.sh_ekind.(en)
        && eq (i + 1)
      in
      eq 0
    in
    if not same then begin
      let ro = row_old src and rn = row_new src in
      List.iter
        (fun (k, d) -> if not (List.mem (k, d) rn) then removed_edges := (src, k, d) :: !removed_edges)
        ro;
      List.iter
        (fun (k, d) -> if not (List.mem (k, d) ro) then added_edges := (src, k, d) :: !added_edges)
        rn
    end
  done;
  (* Seeds are sorted (node, value) pairs: a two-pointer merge. *)
  let removed_seeds = ref [] in
  let added_seeds = ref [] in
  let so = o.Solve.sh_seeds and sn = n.Solve.sh_seeds in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length so || !j < Array.length sn do
    if !i >= Array.length so then begin
      added_seeds := sn.(!j) :: !added_seeds;
      incr j
    end
    else if !j >= Array.length sn then begin
      removed_seeds := so.(!i) :: !removed_seeds;
      incr i
    end
    else
      let c = Stdlib.compare so.(!i) sn.(!j) in
      if c = 0 then begin
        incr i;
        incr j
      end
      else if c < 0 then begin
        removed_seeds := so.(!i) :: !removed_seeds;
        incr i
      end
      else begin
        added_seeds := sn.(!j) :: !added_seeds;
        incr j
      end
  done;
  (* Multiset op matching on the full static tuple.  The op site
     contains only strings, ints and flat variants, so polymorphic
     hashing is safe. *)
  let old_to_new = Array.make (Array.length o.Solve.sh_ops) (-1) in
  let new_to_old = Array.make (Array.length n.Solve.sh_ops) (-1) in
  let tbl = Hashtbl.create ((2 * Array.length o.Solve.sh_ops) + 1) in
  Array.iteri
    (fun oj (site, recv, args, out) -> Hashtbl.add tbl (site, recv, Array.to_list args, out) oj)
    o.Solve.sh_ops;
  Array.iteri
    (fun oi (site, recv, args, out) ->
      let key = (site, recv, Array.to_list args, out) in
      match Hashtbl.find_opt tbl key with
      | Some oj ->
          Hashtbl.remove tbl key;
          old_to_new.(oj) <- oi;
          new_to_old.(oi) <- oj
      | None -> ())
    n.Solve.sh_ops;
  {
    Solve.es_removed_edges = Array.of_list (List.rev !removed_edges);
    es_added_edges = Array.of_list (List.rev !added_edges);
    es_removed_seeds = Array.of_list (List.rev !removed_seeds);
    es_added_seeds = Array.of_list (List.rev !added_seeds);
    es_old_to_new = old_to_new;
    es_new_to_old = new_to_old;
  }

let edit_script_is_empty (es : Solve.edit_script) =
  Array.length es.es_removed_edges = 0
  && Array.length es.es_added_edges = 0
  && Array.length es.es_removed_seeds = 0
  && Array.length es.es_added_seeds = 0
  && Array.for_all (fun x -> x >= 0) es.es_old_to_new
  && Array.for_all (fun x -> x >= 0) es.es_new_to_old

let pp ppf d =
  if is_empty d then Fmt.pf ppf "no differences between %s and %s" d.d_left d.d_right
  else begin
    Fmt.pf ppf "@[<v>diff %s vs %s:" d.d_left d.d_right;
    List.iter (fun s -> Fmt.pf ppf "@,  op only in %s: %a" d.d_left Node.pp_op_site s) d.d_ops_only_left;
    List.iter
      (fun s -> Fmt.pf ppf "@,  op only in %s: %a" d.d_right Node.pp_op_site s)
      d.d_ops_only_right;
    List.iter
      (fun c ->
        Fmt.pf ppf "@,  %a %s: -%d +%d" Node.pp_op_site c.oc_site c.oc_role c.oc_only_left
          c.oc_only_right)
      d.d_changed;
    List.iter
      (fun (a, b) -> Fmt.pf ppf "@,  transition only in %s: %s -> %s" d.d_left a b)
      d.d_transitions_only_left;
    List.iter
      (fun (a, b) -> Fmt.pf ppf "@,  transition only in %s: %s -> %s" d.d_right a b)
      d.d_transitions_only_right;
    Fmt.pf ppf "@]"
  end
