(* Hash-consing interner for the solver's abstract domains.

   Each [Node.value], [Node.view_abs], [Node.t] location, listener
   entry and holder is mapped to a dense integer id the first time it
   is seen; the interned solver engine then keys every hot structure
   (solution sets, delta sets, relation tables, the CSR flow graph) by
   those ids, replacing structural [Set.Make] operations with bitset
   words ([Util.Bitset]).

   Determinism contract: ids are assigned in first-intern order, and
   the interned engine interns from deterministic sources only (the
   ordered [Graph.locations] / [Graph.ops] lists and solver-driven
   discovery, which is itself a deterministic function of the graph).
   Combined with the Pool's apps-built-inside-tasks rule (each domain
   builds and solves its own graph, so interners are never shared
   across domains) this keeps counters and outputs byte-identical
   across runs and across [--jobs] levels. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int

  val dummy : t
  (** fills unused backward-array slots; never exposed *)
end

module Pool (K : KEY) = struct
  module H = Hashtbl.Make (K)

  type t = { fwd : int H.t; mutable back : K.t array; mutable count : int }

  let create () = { fwd = H.create 256; back = Array.make 64 K.dummy; count = 0 }

  let find_opt t k = H.find_opt t.fwd k

  (* Assign the next dense id; the caller has checked absence. *)
  let add t k =
    let id = t.count in
    let n = Array.length t.back in
    if id >= n then begin
      let back = Array.make (2 * n) K.dummy in
      Array.blit t.back 0 back 0 n;
      t.back <- back
    end;
    t.back.(id) <- k;
    H.add t.fwd k id;
    t.count <- id + 1;
    id

  let intern t k = match find_opt t k with Some id -> id | None -> add t k

  let get t id = t.back.(id)

  let count t = t.count
end

let dummy_mid = { Node.mid_cls = ""; mid_name = ""; mid_arity = 0 }

let dummy_alloc = { Node.a_site = { s_in = dummy_mid; s_stmt = 0 }; a_cls = "" }

module Value_pool = Pool (struct
  type t = Node.value

  let equal = Node.equal_value

  let hash = Node.hash_value

  let dummy = Node.V_act ""
end)

module View_pool = Pool (struct
  type t = Node.view_abs

  let equal = Node.equal_view

  let hash = Node.hash_view

  let dummy = Node.V_alloc dummy_alloc
end)

module Node_pool = Pool (struct
  type t = Node.t

  let equal = Node.equal

  let hash = Node.hash

  let dummy = Node.N_field ""
end)

module Listener_pool = Pool (struct
  type t = Node.listener_abs * string

  let equal (l1, i1) (l2, i2) = Node.equal_listener l1 l2 && String.equal i1 i2

  let hash (l, i) = Node.mix (Node.hash_listener l) (Node.hash_string i)

  let dummy = (Node.L_act "", "")
end)

module Holder_pool = Pool (struct
  type t = Node.holder

  let equal = Node.equal_holder

  let hash = Node.hash_holder

  let dummy = Node.H_act ""
end)

(* Growable id->id map, [-1] = unset. *)
type iarr = { mutable a : int array }

let iarr_create () = { a = [||] }

let iarr_get m i = if i < Array.length m.a then m.a.(i) else -1

let iarr_set m i v =
  let n = Array.length m.a in
  if i >= n then begin
    let cap = max 64 (max (i + 1) (2 * n)) in
    let a = Array.make cap (-1) in
    Array.blit m.a 0 a 0 n;
    m.a <- a
  end;
  m.a.(i) <- v

type t = {
  values : Value_pool.t;
  views : View_pool.t;
  nodes : Node_pool.t;
  listeners : Listener_pool.t;
  holders : Holder_pool.t;
  value2view : iarr;  (** value id -> view id when the value is a [V_view], else -1 *)
  view2value : iarr;  (** view id -> id of its [V_view] wrapping (always set) *)
  rid_fwd : (int, int) Hashtbl.t;  (** raw resource int -> dense rid sym *)
  mutable rid_back : int array;
  mutable rid_count : int;
}

let create () =
  {
    values = Value_pool.create ();
    views = View_pool.create ();
    nodes = Node_pool.create ();
    listeners = Listener_pool.create ();
    holders = Holder_pool.create ();
    value2view = iarr_create ();
    view2value = iarr_create ();
    rid_fwd = Hashtbl.create 64;
    rid_back = Array.make 64 0;
    rid_count = 0;
  }

(* Values and views intern each other: every view has a canonical
   [V_view] value and vice versa.  The pool entry is installed before
   recursing, so the mutual call terminates by lookup. *)
let rec value t (v : Node.value) =
  match Value_pool.find_opt t.values v with
  | Some id -> id
  | None ->
      let id = Value_pool.add t.values v in
      (match v with
      | Node.V_view w -> iarr_set t.value2view id (view t w)
      | _ -> ());
      id

and view t (w : Node.view_abs) =
  match View_pool.find_opt t.views w with
  | Some id -> id
  | None ->
      let id = View_pool.add t.views w in
      let vid = value t (Node.V_view w) in
      iarr_set t.view2value id vid;
      (* [value] found [V_view w] missing and recursed back here only
         if it allocated the entry itself; either way the cross map
         below is consistent. *)
      iarr_set t.value2view vid id;
      id

let node t n = Node_pool.intern t.nodes n

(* Non-minting lookups, for demand-side callers (the query engine must
   not pollute a solved state's interner with ids the CSR has never
   seen just because a client asked about an unknown node). *)
let find_node t n = Node_pool.find_opt t.nodes n

let find_value t v = Value_pool.find_opt t.values v

let listener t entry = Listener_pool.intern t.listeners entry

let holder t h = Holder_pool.intern t.holders h

let rid t raw =
  match Hashtbl.find_opt t.rid_fwd raw with
  | Some sym -> sym
  | None ->
      let sym = t.rid_count in
      let n = Array.length t.rid_back in
      if sym >= n then begin
        let back = Array.make (2 * n) 0 in
        Array.blit t.rid_back 0 back 0 n;
        t.rid_back <- back
      end;
      t.rid_back.(sym) <- raw;
      Hashtbl.add t.rid_fwd raw sym;
      t.rid_count <- sym + 1;
      sym

let rid_opt t raw = Hashtbl.find_opt t.rid_fwd raw

(* Decoders. *)
let value_of t id = Value_pool.get t.values id

let view_of t id = View_pool.get t.views id

let node_of t id = Node_pool.get t.nodes id

let listener_of t id = Listener_pool.get t.listeners id

let holder_of t id = Holder_pool.get t.holders id

let rid_of t sym = t.rid_back.(sym)

(* Cross maps. *)
let view_of_value_id t vid = iarr_get t.value2view vid

let value_of_view_id t wid = iarr_get t.view2value wid

(* Counters for [Solve.stats]. *)
let value_count t = Value_pool.count t.values

let view_count t = View_pool.count t.views

let node_count t = Node_pool.count t.nodes

let listener_count t = Listener_pool.count t.listeners

let holder_count t = Holder_pool.count t.holders

let rid_count t = t.rid_count
