(* Hash-consing interner for the solver's abstract domains.

   Each [Node.value], [Node.view_abs], [Node.t] location, listener
   entry and holder is mapped to a dense integer id the first time it
   is seen; the interned solver engine then keys every hot structure
   (solution sets, delta sets, relation tables, the CSR flow graph) by
   those ids, replacing structural [Set.Make] operations with bitset
   words ([Util.Bitset]).

   Two tiers. An interner optionally sits on top of a frozen [shared]
   tier holding the framework resource vocabulary — the layout/view id
   windows every application draws its [R] constants from
   ([Layouts.Resource.layout_base]/[view_base]).  Frozen entries own
   the dense ids below a per-pool watermark and are immutable from
   construction, so the single process-wide tier can be read from
   every worker domain without locks; ids minted by the interner
   itself start at the watermark.  Because the frozen windows are
   contiguous integer ranges, a frozen hit is pure arithmetic (no
   hashing), and a frozen miss costs one range check before the
   private pool probe.

   Determinism contract: private ids are assigned in first-intern
   order, and the interned engine interns from deterministic sources
   only (the ordered [Graph.locations] / [Graph.ops] lists and
   solver-driven discovery, which is itself a deterministic function
   of the graph).  The frozen tier is a constant, so its ids are
   trivially stable.  Combined with the Pool's
   apps-built-inside-tasks rule (private pools are never shared
   across domains) this keeps counters and outputs byte-identical
   across runs and across [--jobs] levels. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int

  val dummy : t
  (** fills unused backward-array slots; never exposed *)
end

module Pool (K : KEY) = struct
  module H = Hashtbl.Make (K)

  type t = { fwd : int H.t; mutable back : K.t array; mutable count : int }

  let create () = { fwd = H.create 256; back = Array.make 64 K.dummy; count = 0 }

  let find_opt t k = H.find_opt t.fwd k

  (* Assign the next dense id; the caller has checked absence. *)
  let add t k =
    let id = t.count in
    let n = Array.length t.back in
    if id >= n then begin
      let back = Array.make (2 * n) K.dummy in
      Array.blit t.back 0 back 0 n;
      t.back <- back
    end;
    t.back.(id) <- k;
    H.add t.fwd k id;
    t.count <- id + 1;
    id

  let intern t k = match find_opt t k with Some id -> id | None -> add t k

  let get t id = t.back.(id)

  let count t = t.count
end

let dummy_mid = { Node.mid_cls = ""; mid_name = ""; mid_arity = 0 }

let dummy_alloc = { Node.a_site = { s_in = dummy_mid; s_stmt = 0 }; a_cls = "" }

module Value_pool = Pool (struct
  type t = Node.value

  let equal = Node.equal_value

  let hash = Node.hash_value

  let dummy = Node.V_act ""
end)

module View_pool = Pool (struct
  type t = Node.view_abs

  let equal = Node.equal_view

  let hash = Node.hash_view

  let dummy = Node.V_alloc dummy_alloc
end)

module Node_pool = Pool (struct
  type t = Node.t

  let equal = Node.equal

  let hash = Node.hash

  let dummy = Node.N_field ""
end)

module Listener_pool = Pool (struct
  type t = Node.listener_abs * string

  let equal (l1, i1) (l2, i2) = Node.equal_listener l1 l2 && String.equal i1 i2

  let hash (l, i) = Node.mix (Node.hash_listener l) (Node.hash_string i)

  let dummy = (Node.L_act "", "")
end)

module Holder_pool = Pool (struct
  type t = Node.holder

  let equal = Node.equal_holder

  let hash = Node.hash_holder

  let dummy = Node.H_act ""
end)

(* Growable id->id map, [-1] = unset. *)
type iarr = { mutable a : int array }

let iarr_create () = { a = [||] }

let iarr_get m i = if i < Array.length m.a then m.a.(i) else -1

let iarr_set m i v =
  let n = Array.length m.a in
  if i >= n then begin
    let cap = max 64 (max (i + 1) (2 * n)) in
    let a = Array.make cap (-1) in
    Array.blit m.a 0 a 0 n;
    m.a <- a
  end;
  m.a.(i) <- v

(* {2 The frozen shared tier}

   Only values and resource ids have framework-level vocabulary worth
   freezing: the [R]-constant windows are the same integers in every
   application ([Layouts.Resource] assigns them sequentially from
   fixed bases, exactly like the platform resource compiler).  Views,
   nodes, listeners and holders are keyed by application-specific
   sites (class names, allocation sites, method ids), so their
   watermarks are always zero.  Framework *class* vocabulary (the view
   hierarchy, listener interfaces) never reaches the interner as
   standalone keys — it lives in the per-graph cast table — so there
   is nothing to freeze for it here. *)

type shared = {
  sh_lbase : int;  (** first layout id covered *)
  sh_lcount : int;
  sh_vbase : int;  (** first view id covered *)
  sh_vcount : int;
  sh_values : Node.value array;
      (** value decode table: ids [0 .. lcount+vcount-1] are the two
          windows, then the two ⊤ markers *)
  sh_rids : int array;  (** rid decode table: the windows, then the ⊤ sentinel raw id *)
}

(* The two ⊤ markers are part of the framework vocabulary too: every
   application that parses [R.layout.?] / [R.id.?] interns the same
   singleton values, so they sit in the frozen tier right after the
   two windows (and the [-1] sentinel raw id joins the rid table at
   the same offset).  Window arithmetic is untouched — the markers
   live at fixed indices past both windows, so they can never collide
   with a window entry no matter the window sizes. *)
let make_shared ~layout_ids ~view_ids =
  if layout_ids < 0 || view_ids < 0 then invalid_arg "Intern.make_shared: negative window";
  let lbase = Layouts.Resource.layout_base and vbase = Layouts.Resource.view_base in
  let total = layout_ids + view_ids in
  let raw i = if i < layout_ids then lbase + i else vbase + (i - layout_ids) in
  {
    sh_lbase = lbase;
    sh_lcount = layout_ids;
    sh_vbase = vbase;
    sh_vcount = view_ids;
    sh_values =
      Array.init (total + 2) (fun i ->
          if i < layout_ids then Node.V_layout_id (raw i)
          else if i < total then Node.V_view_id (raw i)
          else if i = total then Node.V_layout_top
          else Node.V_view_id_top);
    sh_rids = Array.init (total + 1) (fun i -> if i < total then raw i else Node.top_view_id_raw);
  }

(* Sized to cover the resource tables of typical applications while
   costing at most a few bitset words of id-space slack; apps with
   bigger tables (Astrid, XBMC) spill into the private tier, which the
   watermark-boundary tests rely on. *)
let default_layout_window = 64

let default_view_window = 192

(* Built at module initialization — on the main domain, before any
   worker domain can exist — and immutable from birth, so reads need
   no synchronization. *)
let global_shared = make_shared ~layout_ids:default_layout_window ~view_ids:default_view_window

let shared_tier () = global_shared

let shared_counts sh = (Array.length sh.sh_values, Array.length sh.sh_rids)

(* Frozen lookups: the windows are contiguous, so membership is a
   range check and the frozen id is arithmetic on the raw int. *)
let shared_value_id sh (v : Node.value) =
  match v with
  | Node.V_layout_id n when n >= sh.sh_lbase && n - sh.sh_lbase < sh.sh_lcount -> n - sh.sh_lbase
  | Node.V_view_id n when n >= sh.sh_vbase && n - sh.sh_vbase < sh.sh_vcount ->
      sh.sh_lcount + (n - sh.sh_vbase)
  | Node.V_layout_top -> sh.sh_lcount + sh.sh_vcount
  | Node.V_view_id_top -> sh.sh_lcount + sh.sh_vcount + 1
  | _ -> -1

let shared_rid_sym sh raw =
  if raw >= sh.sh_lbase && raw - sh.sh_lbase < sh.sh_lcount then raw - sh.sh_lbase
  else if raw >= sh.sh_vbase && raw - sh.sh_vbase < sh.sh_vcount then
    sh.sh_lcount + (raw - sh.sh_vbase)
  else if raw = Node.top_view_id_raw then sh.sh_lcount + sh.sh_vcount
  else -1

type t = {
  shared : shared option;
  wm_values : int;  (** value ids below this decode in the frozen tier *)
  wm_rids : int;  (** rid syms below this decode in the frozen tier *)
  frozen_values : Node.value array;  (** [sh_values] of [shared], or [||] *)
  frozen_rids : int array;  (** [sh_rids] of [shared], or [||] *)
  values : Value_pool.t;
  views : View_pool.t;
  nodes : Node_pool.t;
  listeners : Listener_pool.t;
  holders : Holder_pool.t;
  value2view : iarr;  (** value id -> view id when the value is a [V_view], else -1 *)
  view2value : iarr;  (** view id -> id of its [V_view] wrapping (always set) *)
  rid_fwd : (int, int) Hashtbl.t;  (** raw resource int -> dense rid sym (watermark included) *)
  mutable rid_back : int array;  (** private tier, indexed by [sym - wm_rids] *)
  mutable rid_local : int;  (** private rid count *)
  ctx_fwd : (int, int) Hashtbl.t;
      (** context dimension: packed ⟨base node id, ctx⟩ -> id of the
          context clone of the base node.  Clones live in the ordinary
          node pool (they ARE the [$ctx]-renamed variables), so every
          decoder, snapshot and materialization loop covers them with
          no extra machinery; this table only makes the second and
          later sightings of a pair an int-keyed hit instead of a
          string allocation plus a node hash. *)
  ctx_seen : (int, unit) Hashtbl.t;  (** distinct contexts that minted at least one clone *)
}

let create ?shared () =
  let wm_values, wm_rids, frozen_values, frozen_rids =
    match shared with
    | None -> (0, 0, [||], [||])
    | Some sh ->
        let vs, rs = shared_counts sh in
        (vs, rs, sh.sh_values, sh.sh_rids)
  in
  {
    shared;
    wm_values;
    wm_rids;
    frozen_values;
    frozen_rids;
    values = Value_pool.create ();
    views = View_pool.create ();
    nodes = Node_pool.create ();
    listeners = Listener_pool.create ();
    holders = Holder_pool.create ();
    value2view = iarr_create ();
    view2value = iarr_create ();
    rid_fwd = Hashtbl.create 64;
    rid_back = Array.make 64 0;
    rid_local = 0;
    ctx_fwd = Hashtbl.create 64;
    ctx_seen = Hashtbl.create 16;
  }

let shared_of t = t.shared

let watermarks t = (t.wm_values, t.wm_rids)

(* Values and views intern each other: every view has a canonical
   [V_view] value and vice versa.  The pool entry is installed before
   recursing, so the mutual call terminates by lookup.  Frozen values
   are plain id constants, never [V_view], so the recursion only ever
   touches the private tier; cross maps are keyed by watermarked
   (global) ids. *)
let rec value t (v : Node.value) =
  let fid = match t.shared with Some sh -> shared_value_id sh v | None -> -1 in
  if fid >= 0 then fid
  else
    match Value_pool.find_opt t.values v with
    | Some id -> t.wm_values + id
    | None ->
        let id = t.wm_values + Value_pool.add t.values v in
        (match v with
        | Node.V_view w -> iarr_set t.value2view id (view t w)
        | _ -> ());
        id

and view t (w : Node.view_abs) =
  match View_pool.find_opt t.views w with
  | Some id -> id
  | None ->
      let id = View_pool.add t.views w in
      let vid = value t (Node.V_view w) in
      iarr_set t.view2value id vid;
      (* [value] found [V_view w] missing and recursed back here only
         if it allocated the entry itself; either way the cross map
         below is consistent. *)
      iarr_set t.value2view vid id;
      id

let node t n = Node_pool.intern t.nodes n

(* Context clones.  The id is minted by interning the actual renamed
   node ([name ^ "$" ^ ctx] — '$' cannot occur in source identifiers),
   so a clone id and the id the inlining path would assign to the same
   renamed variable are THE SAME pool entry: the materialization naming
   contract is the mint itself.  The packed key fits comfortably in an
   OCaml int (node ids < 2^31, contexts < 2^31); only [N_var] bases
   carry contexts — fields and returns are shared across clones, and a
   non-var base decays to itself. *)
(* Every clone id below the table bound reuses one preallocated suffix
   string; a miss then costs a single concatenation. *)
let ctx_suffixes = Array.init 1024 (fun i -> "$" ^ string_of_int i)

let ctx_suffix i = if i < 1024 then Array.unsafe_get ctx_suffixes i else "$" ^ string_of_int i

let ctx_node t ~base ~ctx =
  let key = (base lsl 31) lor ctx in
  match Hashtbl.find_opt t.ctx_fwd key with
  | Some id -> id
  | None ->
      let id =
        match Node_pool.get t.nodes base with
        | Node.N_var (mid, name) ->
            Node_pool.intern t.nodes (Node.N_var (mid, name ^ ctx_suffix ctx))
        | Node.N_field _ | Node.N_ret _ -> base
      in
      Hashtbl.add t.ctx_fwd key id;
      if not (Hashtbl.mem t.ctx_seen ctx) then Hashtbl.add t.ctx_seen ctx ();
      id

(* Non-minting lookups, for demand-side callers (the query engine must
   not pollute a solved state's interner with ids the CSR has never
   seen just because a client asked about an unknown node). *)
let find_node t n = Node_pool.find_opt t.nodes n

let find_value t v =
  let fid = match t.shared with Some sh -> shared_value_id sh v | None -> -1 in
  if fid >= 0 then Some fid
  else Option.map (fun id -> t.wm_values + id) (Value_pool.find_opt t.values v)

let listener t entry = Listener_pool.intern t.listeners entry

let holder t h = Holder_pool.intern t.holders h

let rid t raw =
  let fsym = match t.shared with Some sh -> shared_rid_sym sh raw | None -> -1 in
  if fsym >= 0 then fsym
  else
    match Hashtbl.find_opt t.rid_fwd raw with
    | Some sym -> sym
    | None ->
        let local = t.rid_local in
        let n = Array.length t.rid_back in
        if local >= n then begin
          let back = Array.make (2 * n) 0 in
          Array.blit t.rid_back 0 back 0 n;
          t.rid_back <- back
        end;
        t.rid_back.(local) <- raw;
        let sym = t.wm_rids + local in
        Hashtbl.add t.rid_fwd raw sym;
        t.rid_local <- local + 1;
        sym

let rid_opt t raw =
  let fsym = match t.shared with Some sh -> shared_rid_sym sh raw | None -> -1 in
  if fsym >= 0 then Some fsym else Hashtbl.find_opt t.rid_fwd raw

(* Decoders.  Ids below the watermark index the frozen tables
   directly; everything else shifts down into the private pool. *)
let value_of t id =
  if id < t.wm_values then t.frozen_values.(id) else Value_pool.get t.values (id - t.wm_values)

let view_of t id = View_pool.get t.views id

let node_of t id = Node_pool.get t.nodes id

let listener_of t id = Listener_pool.get t.listeners id

let holder_of t id = Holder_pool.get t.holders id

let rid_of t sym = if sym < t.wm_rids then t.frozen_rids.(sym) else t.rid_back.(sym - t.wm_rids)

(* Cross maps. *)
let view_of_value_id t vid = iarr_get t.value2view vid

let value_of_view_id t wid = iarr_get t.view2value wid

(* Counters for [Solve.stats].  Totals span both tiers, keeping every
   [0 .. count-1] materialization loop and snapshot dump decodable. *)
let value_count t = t.wm_values + Value_pool.count t.values

let view_count t = View_pool.count t.views

let node_count t = Node_pool.count t.nodes

let listener_count t = Listener_pool.count t.listeners

let holder_count t = Holder_pool.count t.holders

let rid_count t = t.wm_rids + t.rid_local

let ctx_count t = Hashtbl.length t.ctx_seen

let ctx_key_count t = Hashtbl.length t.ctx_fwd

(* Ids minted as renamed clone variables (decayed entries — fields and
   returns, whose clone key aliases the base id — are excluded).  Only
   extraction mints these, so membership is a sound "this node can only
   be written through its flow edges" certificate for the solver's
   copy-chain substitution: seeds and op outs are checked separately by
   the caller, and every dynamic push (handler injection, declarative
   passes) targets structural base nodes. *)
let ctx_clone_ids t =
  Hashtbl.fold (fun key id acc -> if id <> key lsr 31 then id :: acc else acc) t.ctx_fwd []
