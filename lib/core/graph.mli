(** The constraint graph (Section 4.1) and the relations computed over
    it (Section 4.2).

    Locations ({!Node.t}) carry points-to sets of abstract values; flow
    edges ([->] in the paper) connect locations; the [=>] relationship
    edges of the paper are stored as relations over abstract views:
    parent-child, view=>id, holder=>root, view=>listener, and
    root=>layout-id. *)

module VS : Set.S with type elt = Node.value

module View_set : Set.S with type elt = Node.view_abs

module Listener_set : Set.S with type elt = Node.listener_abs * string
(** Registrations: the listener together with the interface name it
    was registered under. *)

module Int_set : Set.S with type elt = int

type edge_kind =
  | E_direct
  | E_cast of string  (** flow through [x = (C) y]; may filter *)

(** An operation node with its connected locations. *)
type op = {
  site : Node.op_site;
  op_recv : Node.t;
  op_args : Node.t list;
  op_out : Node.t option;
}

(** Which view relations grew since the last {!take_rel_changes}. *)
type rel_changes = {
  rc_children : bool;
  rc_ids : bool;
  rc_roots : bool;
  rc_onclick : bool;
  rc_fragments : bool;
}

type t

val create : ?interner:Intern.t -> unit -> t
(** [?interner] pre-seeds the graph's id pools (incremental
    re-extraction: nodes shared with a previous solve keep their
    ids). *)

(** {1 Construction (used by {!Extract})} *)

val fresh_alloc : t -> cls:string -> site:Node.site -> Node.alloc_site

val fresh_op :
  t ->
  kind:Framework.Api.kind ->
  site:Node.site ->
  recv:Node.t ->
  args:Node.t list ->
  out:Node.t option ->
  op

val add_edge : t -> ?kind:edge_kind -> Node.t -> Node.t -> unit
(** Idempotent. *)

val seed : t -> Node.t -> Node.value -> unit
(** Record an initial value for a location (allocation results, id
    constants, implicit activity instances).  Seeding
    {!Node.V_layout_top} or {!Node.V_view_id_top} flips {!has_top}. *)

val has_top : t -> bool
(** Did any seed introduce an unknown-id marker?  Such graphs solve
    cold only — the warm guard refuses them. *)

(** {2 Id-level construction (context-keyed extraction)}

    The context-keyed extraction path walks clone bodies entirely in id
    space: endpoints are already interned (via {!Intern.ctx_node}), so
    these variants skip the structural mirrors.  [add_edge_ids] writes
    only the id-level stores the frozen CSR is built from; the
    structural [edges] table keeps the context-insensitive skeleton.
    [seed_id] and [fresh_op_ids] decode back to structural nodes (seeds
    and op records are rare and must match the inlining path
    byte-for-byte). *)

val add_edge_ids : t -> ?kind:edge_kind -> int -> int -> unit
(** [add_edge_ids t src_id dst_id] — idempotent, same dedup key as
    {!add_edge}. *)

val seed_id : t -> int -> Node.value -> unit

val fresh_op_ids :
  t ->
  kind:Framework.Api.kind ->
  site:Node.site ->
  recv:int ->
  args:int list ->
  out:int option ->
  op

(** {1 Points-to sets} *)

val add_value : t -> Node.t -> Node.value -> bool
(** [true] iff the set grew. *)

val set_of : t -> Node.t -> VS.t

val set_track_deltas : t -> bool -> unit
(** Enable or disable per-node delta bookkeeping.  When on, every value
    admitted by {!add_value} is also recorded in the node's delta
    until the next {!take_delta}.  Off by default; the delta solver
    turns it on after {!reset_sets}. *)

val delta_of : t -> Node.t -> Node.value list

val take_delta : t -> Node.t -> Node.value list
(** Consume a node's delta: returns the values added since the last
    call (newest first, no duplicates — {!add_value} admits each value
    once) and clears the slate.  Only meaningful under
    {!set_track_deltas}. *)

val views_of : t -> Node.t -> Node.view_abs list

(** {2 Imprecision taint}

    The subset of each location's points-to set whose membership was
    justified (transitively) by an unknown-id marker.  Purely
    diagnostic: solving never branches on taint, and all three engines
    compute the identical plane.  Invariant at fixpoint:
    [taints_of t n ⊆ set_of t n]. *)

val add_taint : t -> Node.t -> Node.value -> bool
(** [true] iff the taint set grew.  The value need not be in the
    points-to set yet (engines may taint ahead of the value landing). *)

val taints_of : t -> Node.t -> VS.t

val is_tainted : t -> Node.t -> Node.value -> bool

val install_taints : t -> Node.t -> VS.t -> unit
(** Wholesale row install (interned decode, snapshot restore).  An
    empty set clears the row. *)

val tainted_nodes : t -> (Node.t * VS.t) list
(** Every location with a non-empty taint set, in unspecified order. *)

val succs : t -> Node.t -> (edge_kind * Node.t) list

val seeds : t -> (Node.t * VS.t) list

val reset_sets : t -> unit
(** Clear all points-to sets and relations back to the seeded state
    (used to re-solve under a different configuration). *)

(** {1 Relations} *)

val add_child : t -> parent:Node.view_abs -> child:Node.view_abs -> bool

val children_of : t -> Node.view_abs -> View_set.t

val parents_of : t -> Node.view_abs -> View_set.t

val descendants : t -> include_self:bool -> Node.view_abs -> View_set.t
(** Reflexive-or-strict transitive closure of parent-child, by BFS. *)

val descendants_cached : t -> include_self:bool -> Node.view_abs -> View_set.t
(** Memoized {!descendants}: caches the strict closure per view and
    invalidates the view's ancestors' entries when {!add_child} inserts
    a new edge.  Result is identical to {!descendants}. *)

val ancestors : t -> Node.view_abs -> View_set.t
(** Reflexive upward closure over the parent relation. *)

val desc_cache_counters : t -> int * int
(** (hits, misses) of the {!descendants_cached} memo table. *)

val add_view_id : t -> Node.view_abs -> int -> bool

val ids_of_view : t -> Node.view_abs -> Int_set.t

val views_by_id : t -> int -> View_set.t
(** Reverse id index: every view carrying [id].  Lets FINDVIEW rules
    intersect a (typically tiny) candidate set with a hierarchy closure
    instead of filtering the whole closure by id. *)

val add_holder_root : t -> Node.holder -> Node.view_abs -> bool

val roots_of_holder : t -> Node.holder -> View_set.t

val holders : t -> Node.holder list

val add_view_listener : t -> Node.view_abs -> Node.listener_abs -> iface:string -> bool

val listeners_of_view : t -> Node.view_abs -> Listener_set.t

val views_with_listeners : t -> Node.view_abs list

val add_root_layout : t -> Node.view_abs -> int -> bool

val layouts_of_root : t -> Node.view_abs -> Int_set.t

val add_onclick : t -> Node.view_abs -> string -> bool
(** Declarative [android:onClick] handler name carried by an inflated
    view. *)

val onclicks_of : t -> Node.view_abs -> string list

val views_with_onclick : t -> Node.view_abs list
(** Views carrying at least one declarative handler — lets the solver
    iterate handlers directly instead of scanning whole hierarchies. *)

val add_declared_fragment : t -> Node.view_abs -> string -> bool
(** Fragment class declared by a [<fragment>] placeholder node. *)

val declared_fragments_of : t -> Node.view_abs -> string list

val views_with_declared_fragments : t -> Node.view_abs list

val take_rel_changes : t -> rel_changes
(** Which relations grew since the previous call; clears the flags. *)

val add_transition : t -> from_:string -> to_:string -> bool
(** Activity-transition edge (extension: STARTACTIVITY). *)

val transitions : t -> (string * string) list

(** {1 Inflation bookkeeping} *)

val find_inflation : t -> site:Node.site -> layout:string -> Node.view_abs list option

val record_inflation : t -> site:Node.site -> layout:string -> Node.view_abs list -> unit

val inflated_views : t -> Node.view_abs list
(** Every [V_infl] minted so far (Table 1's "views (I)"). *)

(** {1 Cold-relation enumeration (snapshots, warm restarts)}

    Entries of the relations maintained structurally during interned
    solving, in unspecified order. *)

val inflation_entries : t -> (Node.site * string * Node.view_abs list) list

val onclick_entries : t -> (Node.view_abs * string list) list

val declared_fragment_entries : t -> (Node.view_abs * string list) list

val root_layout_entries : t -> (Node.view_abs * int list) list

(** {1 Inspection} *)

val ops : t -> op list
(** In creation order. *)

(** {1 Dependency index (delta solver)}

    Built lazily from the static op list; maps each location and each
    view relation to the ops that read it, so the solver can schedule
    exactly the ops whose inputs grew. *)

val ops_reading : t -> Node.t -> op list
(** Ops with [node] as receiver or argument, in creation order. *)

val ops_reading_children : t -> op list

val ops_reading_ids : t -> op list

val ops_reading_roots : t -> op list

val reads_children : op -> bool
(** Does the op's rule consult the parent/child relation? *)

val reads_ids : op -> bool

val reads_roots : op -> bool

(** {1 Interned ids (interned solver)}

    The graph hash-conses every node touched by an edge, seed, or op
    into a shared {!Intern.t} as it is built, and mirrors the flow
    edges at the id level.  The interned solver therefore freezes into
    CSR arrays with pure integer work — no node is re-hashed at solve
    time. *)

val interner : t -> Intern.t

val node_id : t -> Node.t -> int
(** Dense id of [node], minting one if the node is new. *)

type flow_csr = {
  fc_nodes : int;  (** interned node count at freeze time *)
  fc_row : int array;  (** [fc_nodes + 1] entries; full CSR in insertion order *)
  fc_edst : int array;
  fc_ekind : int array;  (** [-1] = direct, otherwise index into [fc_cast_names] *)
  fc_cast_names : string array;
  fc_rep : int array;
      (** node id -> representative of its direct-edge SCC (the
          smallest member id); sized [fc_nodes] — ids minted after the
          freeze are implicitly their own singleton components *)
  fc_crow : int array;  (** condensed CSR over representatives, [fc_nodes + 1] entries *)
  fc_cdst : int array;  (** destinations, already representatives *)
  fc_ckind : int array;
  fc_scc_count : int;  (** components over all [fc_nodes] nodes (singletons included) *)
  fc_largest_scc : int;  (** size of the largest component; [0] when the graph is empty *)
}

val frozen_flow : t -> flow_csr
(** CSR flow edges over node ids in insertion order, plus the SCC
    condensation of the direct-edge subgraph.  Cast edges stay out of
    the condensation (they filter); after mapping endpoints through
    [fc_rep], intra-component edges are dropped and the rest deduped
    into [fc_crow]/[fc_cdst]/[fc_ckind].  Memoized on the edge count:
    adding an edge invalidates the snapshot, while nodes minted after
    the freeze (views discovered mid-solve) need no rebuild — they have
    no flow edges and act as singleton components. *)

val ops_node_ids : t -> (int * int array * int) array
(** Aligned with {!ops}: per op, (recv id, arg ids, out id or [-1]). *)

(** {1 Solution installation (interned solver)}

    The interned engine solves over dense ids and then decodes its
    bitsets back into these structural tables, so every consumer of
    the solved graph is engine-agnostic.  {!reset_solution_tables}
    clears exactly the tables the id-level stores mirror (points-to
    sets, children/parents, view ids and the reverse index, holder
    roots, listeners); cold relations the interned engine maintains
    structurally (onclick, declared fragments, root layouts,
    inflations, transitions) are untouched. *)

val reset_solution_tables : t -> unit

val install_set : t -> Node.t -> VS.t -> unit

val install_children : t -> Node.view_abs -> View_set.t -> unit

val install_parents : t -> Node.view_abs -> View_set.t -> unit

val install_ids : t -> Node.view_abs -> Int_set.t -> unit

val install_views_by_id : t -> int -> View_set.t -> unit

val install_roots : t -> Node.holder -> View_set.t -> unit

val install_listeners : t -> Node.view_abs -> Listener_set.t -> unit

val copy_solution_tables :
  children:bool -> ids:bool -> roots:bool -> listeners:bool -> src:t -> t -> unit
(** Warm materialisation: seed this graph's solution tables from
    [src]'s, skipping the relations whose flag is [false] (the warm
    solver rebuilds those wholesale); the caller then re-installs only
    the dirty rows.  The points-to table is adopted as a read-only
    base layer (O(1)) rather than copied — this graph's own installs
    and removals shadow it — while the relation tables are copied. *)

val remove_solution_row : t -> Node.t -> unit
(** Drop a copied points-to row whose set emptied out (node no longer
    reached after a patch). *)

val allocs : t -> Node.alloc_site list

val locations : t -> Node.t list
(** Every location mentioned by an edge, seed, set, or op. *)

val edge_count : t -> int

val pp_dot : t Fmt.t
(** Graphviz rendering of the solved graph: locations, op nodes, flow
    edges, and relationship edges (Figures 3-4 style). *)
