(** Incremental re-analysis driver (the tentpole workflow):

    {[
      let result, solved = Incremental.analyze_solved app in
      (* ... the app is patched ... *)
      let result', solved' = Incremental.analyze_incremental ~prev:solved app' in
    ]}

    The warm result is bit-identical to a from-scratch analysis of the
    patched app; [result'.stats] reports [warm_solve], [dirty_comps],
    [reused_comps] and, when the warm guard refused, [fallback].

    Caveats: a {!Solve.solved} aliases live solver state — its donor
    graph must never be re-solved, and warm chains sharing an interner
    must run single-threaded (the interner is not safe against
    concurrent minting). *)

val analyze_solved :
  ?config:Config.t -> ?fallback:string -> Framework.App.t -> Analysis.t * Solve.solved
(** Full analysis that also captures the solution for later warm
    restarts.  [?fallback] threads a refusal reason into the stats when
    this call replaces a failed warm start (e.g. a corrupt state
    file). *)

val analyze_incremental :
  ?config:Config.t -> prev:Solve.solved -> Framework.App.t -> Analysis.t * Solve.solved
(** Re-analyze a patched app warm: extract over [prev]'s interner,
    diff the two graph shapes, re-solve only the dirty components.
    Falls back to a full solve (with [stats.fallback] set) when [prev]
    is unusable for the given app and configuration. *)

val refusal_warning : Analysis.t -> string option
(** The stderr warning for a warm start that fell back to a full solve
    ([stats.fallback] set), or [None] for a clean warm/cold run.  The
    CLI's [--incremental] prints this unconditionally (even under
    [--json]) so a refusal is never silent; tests pin the message
    here. *)
