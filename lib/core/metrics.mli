(** Measurements of the analyzed apps and their solutions — the
    quantities reported in Table 1 and Table 2 of the paper. *)

(** One row of Table 1: application size and constraint-graph node
    populations. *)
type table1_row = {
  t1_app : string;
  t1_classes : int;
  t1_methods : int;
  t1_layout_ids : int;  (** "ids (L)" *)
  t1_view_ids : int;  (** "ids (V)" *)
  t1_views_inflated : int;  (** "views (I)" — inflated view nodes *)
  t1_views_allocated : int;  (** "views (A)" — view allocation sites *)
  t1_listeners : int;  (** listener allocation sites *)
  t1_activities : int;
  t1_inflate_ops : int;  (** Inflate + SetContent(int) operation nodes *)
  t1_findview_ops : int;  (** FindView + FindOne operation nodes *)
  t1_addview_ops : int;
  t1_setid_ops : int;
  t1_setlistener_ops : int;
}

(** One row of Table 2: running time and average solution-set sizes.
    [None] encodes the paper's "-" (no such operations). *)
type table2_row = {
  t2_app : string;
  t2_seconds : float;
  t2_receivers : float option;
      (** avg views reaching an operation's receiver position *)
  t2_parameters : float option;  (** avg views reaching AddView as the child *)
  t2_results : float option;  (** avg views output from view-producing ops *)
  t2_listeners : float option;  (** avg listeners reaching a SetListener op *)
}

(** Solver work counters for one analyzed app — the evidence that the
    delta engine does strictly less work than naive re-iteration. *)
type solver_row = {
  sv_app : string;
  sv_solver : string;  (** "naive", "delta", or "interned" *)
  sv_ops : int;
  sv_iterations : int;
  sv_op_applications : int;
  sv_naive_equivalent : int;
      (** iterations * |ops| — what the naive loop would apply *)
  sv_propagations : int;
  sv_delta_pushes : int;
  sv_desc_hits : int;
  sv_desc_misses : int;
  sv_interned_values : int;
      (** distinct abstract values hash-consed; [0] for structural engines *)
  sv_bitset_words : int;  (** words allocated across solution bitsets *)
  sv_union_calls : int;  (** word-level unions on direct flow edges *)
  sv_scc_count : int;  (** direct-edge flow SCCs at freeze; [0] for structural engines *)
  sv_largest_scc : int;  (** largest direct-edge SCC; [0] for structural engines *)
  sv_ctx_count : int;
      (** call-string contexts minted by the context-keyed extraction;
          [0] for structural engines or without [ctx_keyed] *)
  sv_ctx_keys : int;  (** distinct ⟨node, ctx⟩ keys interned; [0] likewise *)
  sv_warm : bool;  (** solved by the incremental (warm) path *)
  sv_dirty_comps : int;  (** components re-solved by a warm solve; [0] when cold *)
  sv_reused_comps : int;  (** components restored by aliasing; [0] when cold *)
  sv_fallback : string option;
      (** the reason a requested warm start fell back to a full solve *)
}

val table1 : Analysis.t -> table1_row

val table2 : Analysis.t -> table2_row

val solver_stats : Analysis.t -> solver_row

val avg : int list -> float option
(** Mean of the positive entries; [None] when there are none.
    Operations whose solution set is empty (unreachable/uninstantiated
    code) do not dilute the average. *)
