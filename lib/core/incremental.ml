(* Incremental analysis orchestration: solve-and-capture, then warm
   re-solves of patched apps over the shared interner. *)

let analyze_solved ?(config = Config.default) ?fallback app =
  let start = Unix.gettimeofday () in
  let graph = Extract.run config app in
  let stats, solved = Solve.run_solved ?fallback config app graph in
  let solve_seconds = Unix.gettimeofday () -. start in
  (Analysis.make ~app ~config ~graph ~stats ~solve_seconds, solved)

let analyze_incremental ?(config = Config.default) ~prev app =
  let start = Unix.gettimeofday () in
  (* Extraction over the previous solve's interner keeps every shared
     node, value and view id stable — the whole scheme rests on it. *)
  let graph = Extract.run ~interner:(Solve.solved_interner prev) config app in
  let new_shape = Solve.shape_of_graph graph in
  let edits = Diff.edit_script ~old_:(Solve.shape_of_solved prev) ~new_:new_shape in
  let stats, solved = Solve.run_incremental ~prev ~edits ~new_shape config app graph in
  let solve_seconds = Unix.gettimeofday () -. start in
  (Analysis.make ~app ~config ~graph ~stats ~solve_seconds, solved)

(* The CLI's --incremental mode must never fall back to a full solve
   silently: a warm-start refusal is invisible in the output tables
   (answers are identical either way), so the only honest channel is a
   warning on stderr.  Rendering lives here so tests can pin the exact
   message without driving the binary. *)
let refusal_warning (r : Analysis.t) =
  match r.Analysis.stats.Solve.fallback with
  | None -> None
  | Some reason ->
      Some (Printf.sprintf "incremental: warm start refused (%s); ran a full solve" reason)
