type mid = { mid_cls : string; mid_name : string; mid_arity : int }

let mid cls (key : Jir.Ast.meth_key) =
  { mid_cls = cls; mid_name = key.mk_name; mid_arity = key.mk_arity }

let mid_of_meth cls m = mid cls (Jir.Ast.key_of_meth m)

let pp_mid ppf m = Fmt.pf ppf "%s.%s/%d" m.mid_cls m.mid_name m.mid_arity

type site = { s_in : mid; s_stmt : int }

let pp_site ppf s = Fmt.pf ppf "%a@@%d" pp_mid s.s_in s.s_stmt

type alloc_site = { a_site : site; a_cls : string }

type op_site = { o_site : site; o_kind : Framework.Api.kind }

type infl_site = {
  v_site : site;
  v_layout : string;
  v_path : int list;
  v_cls : string;
  v_vid : string option;
}

type view_abs = V_infl of infl_site | V_alloc of alloc_site

type value =
  | V_view of view_abs
  | V_act of string
  | V_obj of alloc_site
  | V_layout_id of int
  | V_view_id of int
  | V_layout_top
  | V_view_id_top

(* The raw resource id standing for "some id the analysis cannot
   resolve" in id rows (SetId(v, ⊤)).  Real resource ids are
   non-negative, so -1 can never collide with a window entry. *)
let top_view_id_raw = -1

type listener_abs = L_alloc of alloc_site | L_act of string

type holder = H_act of string | H_dialog of alloc_site

type t = N_var of mid * string | N_field of string | N_ret of mid

let class_of_view = function V_infl i -> i.v_cls | V_alloc a -> a.a_cls

(* The implicit options-menu object of an activity (menu extension).
   Both the static analysis and the dynamic semantics construct this
   same structural site, keeping abstractions aligned; "<options-menu>"
   cannot collide with source method names. *)
let menu_site activity =
  {
    a_site = { s_in = { mid_cls = activity; mid_name = "<options-menu>"; mid_arity = 0 }; s_stmt = 0 };
    a_cls = "Menu";
  }

let menu_owner (a : alloc_site) =
  if a.a_site.s_in.mid_name = "<options-menu>" then Some a.a_site.s_in.mid_cls else None

let menu_item_site (op : site) = { a_site = op; a_cls = "MenuItem" }

(* The implicit instance of a declaratively placed fragment
   (<fragment android:name="F"/>): identified by the fragment class and
   the placeholder's inflated-view identity, so the static analysis and
   the dynamic semantics agree. *)
let declared_fragment_site cls (i : infl_site) =
  let path = String.concat "." (List.map string_of_int i.v_path) in
  {
    a_site =
      {
        s_in =
          {
            mid_cls = cls;
            mid_name =
              Printf.sprintf "<fragment>@%s[%s]#%s.%s/%d@%d" i.v_layout path i.v_site.s_in.mid_cls
                i.v_site.s_in.mid_name i.v_site.s_in.mid_arity i.v_site.s_stmt;
            mid_arity = 0;
          };
        s_stmt = 0;
      };
    a_cls = cls;
  }

let view_of_value = function V_view v -> Some v | _ -> None

(* Explicit comparisons for everything the solver keys sets and tables
   on.  Polymorphic compare walks the representation generically (slow
   on variants full of strings) and silently breaks if a field ever
   becomes abstract; these spell out the same ordering field by field,
   so switching away from [Stdlib.compare] does not reorder any set.
   The [==] fast paths matter: propagation pushes the same value boxes
   around the graph, so set membership tests usually hit a physically
   shared element before any string is compared. *)

let compare_mid a b =
  if a == b then 0
  else
  let c = String.compare a.mid_cls b.mid_cls in
  if c <> 0 then c
  else
    let c = String.compare a.mid_name b.mid_name in
    if c <> 0 then c else Int.compare a.mid_arity b.mid_arity

let compare_site a b =
  if a == b then 0
  else
  let c = compare_mid a.s_in b.s_in in
  if c <> 0 then c else Int.compare a.s_stmt b.s_stmt

let compare_alloc a b =
  if a == b then 0
  else
  let c = compare_site a.a_site b.a_site in
  if c <> 0 then c else String.compare a.a_cls b.a_cls

let compare_infl a b =
  if a == b then 0
  else
  let c = compare_site a.v_site b.v_site in
  if c <> 0 then c
  else
    let c = String.compare a.v_layout b.v_layout in
    if c <> 0 then c
    else
      let c = List.compare Int.compare a.v_path b.v_path in
      if c <> 0 then c
      else
        let c = String.compare a.v_cls b.v_cls in
        if c <> 0 then c else Option.compare String.compare a.v_vid b.v_vid

let compare_view a b =
  if a == b then 0
  else
  match (a, b) with
  | V_infl x, V_infl y -> compare_infl x y
  | V_alloc x, V_alloc y -> compare_alloc x y
  | V_infl _, V_alloc _ -> -1
  | V_alloc _, V_infl _ -> 1

let compare_value a b =
  if a == b then 0
  else
  match (a, b) with
  | V_view x, V_view y -> compare_view x y
  | V_act x, V_act y -> String.compare x y
  | V_obj x, V_obj y -> compare_alloc x y
  | V_layout_id x, V_layout_id y -> Int.compare x y
  | V_view_id x, V_view_id y -> Int.compare x y
  | V_layout_top, V_layout_top -> 0
  | V_view_id_top, V_view_id_top -> 0
  | a, b ->
      let tag = function
        | V_view _ -> 0
        | V_act _ -> 1
        | V_obj _ -> 2
        | V_layout_id _ -> 3
        | V_view_id _ -> 4
        | V_layout_top -> 5
        | V_view_id_top -> 6
      in
      Int.compare (tag a) (tag b)

let compare_listener a b =
  match (a, b) with
  | L_alloc x, L_alloc y -> compare_alloc x y
  | L_act x, L_act y -> String.compare x y
  | L_alloc _, L_act _ -> -1
  | L_act _, L_alloc _ -> 1

let compare_holder a b =
  match (a, b) with
  | H_act x, H_act y -> String.compare x y
  | H_dialog x, H_dialog y -> compare_alloc x y
  | H_act _, H_dialog _ -> -1
  | H_dialog _, H_act _ -> 1

let compare a b =
  if a == b then 0
  else
  match (a, b) with
  | N_var (m1, v1), N_var (m2, v2) ->
      let c = compare_mid m1 m2 in
      if c <> 0 then c else String.compare v1 v2
  | N_field f1, N_field f2 -> String.compare f1 f2
  | N_ret m1, N_ret m2 -> compare_mid m1 m2
  | a, b ->
      let tag = function N_var _ -> 0 | N_field _ -> 1 | N_ret _ -> 2 in
      Int.compare (tag a) (tag b)

let compare_op_site a b =
  let c = compare_site a.o_site b.o_site in
  if c <> 0 then c else Framework.Api.compare_kind a.o_kind b.o_kind

let equal a b = compare a b = 0

let equal_view a b = compare_view a b = 0

let equal_value a b = compare_value a b = 0

let equal_listener a b = compare_listener a b = 0

let equal_holder a b = compare_holder a b = 0

(* Explicit hashes, paired with the explicit equalities above so
   hashed containers never fall back to the polymorphic hash (which
   walks the whole representation and caps its traversal).  FNV-1a
   style mixing; string leaves still use [Hashtbl.hash], which hashes
   string contents directly. *)

let mix h1 h2 = (h1 * 0x01000193) lxor h2

let hash_string (s : string) = Hashtbl.hash s

let hash_mid m = mix (mix (hash_string m.mid_cls) (hash_string m.mid_name)) m.mid_arity

let hash_site s = mix (hash_mid s.s_in) s.s_stmt

let hash_alloc a = mix (hash_site a.a_site) (hash_string a.a_cls)

let hash_infl i =
  let h = mix (hash_site i.v_site) (hash_string i.v_layout) in
  let h = List.fold_left (fun h p -> mix h p) h i.v_path in
  let h = mix h (hash_string i.v_cls) in
  match i.v_vid with None -> mix h 1 | Some vid -> mix h (hash_string vid)

let hash_view = function
  | V_infl i -> mix 3 (hash_infl i)
  | V_alloc a -> mix 5 (hash_alloc a)

let hash_value = function
  | V_view v -> mix 7 (hash_view v)
  | V_act a -> mix 11 (hash_string a)
  | V_obj a -> mix 13 (hash_alloc a)
  | V_layout_id id -> mix 17 id
  | V_view_id id -> mix 19 id
  | V_layout_top -> mix 53 1
  | V_view_id_top -> mix 59 1

let hash_listener = function
  | L_alloc a -> mix 23 (hash_alloc a)
  | L_act a -> mix 29 (hash_string a)

let hash_holder = function
  | H_act a -> mix 31 (hash_string a)
  | H_dialog a -> mix 37 (hash_alloc a)

let hash = function
  | N_var (m, v) -> mix 41 (mix (hash_mid m) (hash_string v))
  | N_field f -> mix 43 (hash_string f)
  | N_ret m -> mix 47 (hash_mid m)

let pp ppf = function
  | N_var (m, v) -> Fmt.pf ppf "%a:%s" pp_mid m v
  | N_field f -> Fmt.pf ppf "field:%s" f
  | N_ret m -> Fmt.pf ppf "ret(%a)" pp_mid m

let pp_path ppf path = Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any ".") Fmt.int) path

let pp_alloc ppf a = Fmt.pf ppf "%s@@%a" a.a_cls pp_site a.a_site

let pp_view ppf = function
  | V_infl i ->
      Fmt.pf ppf "%s@@%s[%a]#%a" i.v_cls i.v_layout pp_path i.v_path pp_site i.v_site;
      (match i.v_vid with Some vid -> Fmt.pf ppf "(id=%s)" vid | None -> ())
  | V_alloc a -> pp_alloc ppf a

let pp_value ppf = function
  | V_view v -> pp_view ppf v
  | V_act a -> Fmt.pf ppf "activity:%s" a
  | V_obj a -> pp_alloc ppf a
  | V_layout_id id -> Fmt.pf ppf "layout:0x%x" id
  | V_view_id id -> Fmt.pf ppf "id:0x%x" id
  | V_layout_top -> Fmt.pf ppf "layout:top"
  | V_view_id_top -> Fmt.pf ppf "id:top"

let pp_listener ppf = function
  | L_alloc a -> pp_alloc ppf a
  | L_act a -> Fmt.pf ppf "activity:%s" a

let pp_holder ppf = function
  | H_act a -> Fmt.pf ppf "activity:%s" a
  | H_dialog a -> Fmt.pf ppf "dialog:%a" pp_alloc a

let pp_op_site ppf o = Fmt.pf ppf "%a@@%a" Framework.Api.pp_kind o.o_kind pp_site o.o_site
