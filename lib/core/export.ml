module J = Util.Json

let mid (m : Node.mid) =
  J.Obj [ ("class", J.String m.mid_cls); ("method", J.String m.mid_name); ("arity", J.Int m.mid_arity) ]

let site (s : Node.site) = J.Obj [ ("in", mid s.s_in); ("stmt", J.Int s.s_stmt) ]

let view = function
  | Node.V_infl i ->
      J.Obj
        [
          ("kind", J.String "inflated");
          ("class", J.String i.v_cls);
          ("layout", J.String i.v_layout);
          ("path", J.List (List.map (fun n -> J.Int n) i.v_path));
          ("site", site i.v_site);
          ("id", match i.v_vid with Some v -> J.String v | None -> J.Null);
        ]
  | Node.V_alloc a ->
      J.Obj [ ("kind", J.String "allocated"); ("class", J.String a.a_cls); ("site", site a.a_site) ]

let value = function
  | Node.V_view v -> J.Obj [ ("view", view v) ]
  | Node.V_act a -> J.Obj [ ("activity", J.String a) ]
  | Node.V_obj a ->
      J.Obj [ ("object", J.Obj [ ("class", J.String a.a_cls); ("site", site a.a_site) ]) ]
  | Node.V_layout_id id -> J.Obj [ ("layout_id", J.Int id) ]
  | Node.V_view_id id -> J.Obj [ ("view_id", J.Int id) ]
  | Node.V_layout_top -> J.Obj [ ("layout_top", J.Bool true) ]
  | Node.V_view_id_top -> J.Obj [ ("view_id_top", J.Bool true) ]

let listener = function
  | Node.L_alloc a ->
      J.Obj [ ("kind", J.String "object"); ("class", J.String a.a_cls); ("site", site a.a_site) ]
  | Node.L_act a -> J.Obj [ ("kind", J.String "activity"); ("class", J.String a) ]

let views vs = J.List (List.map view vs)

let op (r : Analysis.t) (o : Graph.op) =
  let base =
    [
      ("kind", J.String (Framework.Api.kind_label o.site.o_kind));
      ("site", site o.site.o_site);
      ("receivers", views (Analysis.op_receiver_views r o));
      ("arguments", views (Analysis.op_child_views r o));
      ("results", views (Analysis.op_result_views r o));
    ]
  in
  let listeners =
    match o.site.o_kind with
    | Framework.Api.Set_listener _ ->
        [ ("listeners", J.List (List.map listener (Analysis.op_listeners r o))) ]
    | _ -> []
  in
  J.Obj (base @ listeners)

let interaction (ix : Analysis.interaction) =
  J.Obj
    [
      ("activity", J.String ix.ix_activity);
      ("view", view ix.ix_view);
      ("event", J.String (Framework.Listeners.event_name ix.ix_event));
      ("listener", listener ix.ix_listener);
      ("handler", mid ix.ix_handler);
    ]

let config (c : Config.t) =
  J.Obj
    [
      ("solver", J.String (Config.solver_name c.solver));
      ("cast_filtering", J.Bool c.cast_filtering);
      ("findone_refinement", J.Bool c.findone_refinement);
      ("listener_callbacks", J.Bool c.listener_callbacks);
      ("model_dialogs", J.Bool c.model_dialogs);
      ("inline_depth", J.Int c.inline_depth);
    ]

let solution (r : Analysis.t) =
  let g = r.graph in
  let all_views =
    Graph.inflated_views g
    @ List.filter_map
        (fun (a : Node.alloc_site) ->
          if Framework.Views.is_view_class r.app.hierarchy a.a_cls then Some (Node.V_alloc a)
          else None)
        (Graph.allocs g)
  in
  let view_facts v =
    J.Obj
      [
        ("view", view v);
        ( "ids",
          J.List
            (List.filter_map
               (fun id ->
                 Option.map
                   (fun name -> J.String name)
                   (Layouts.Resource.view_name (Layouts.Package.resources r.app.package) id))
               (Graph.Int_set.elements (Graph.ids_of_view g v))) );
        ("children", views (Graph.View_set.elements (Graph.children_of g v)));
        ( "listeners",
          J.List
            (List.map
               (fun (l, iface) -> J.Obj [ ("listener", listener l); ("interface", J.String iface) ])
               (Graph.Listener_set.elements (Graph.listeners_of_view g v))) );
      ]
  in
  let activities =
    List.map
      (fun (cls : Jir.Ast.cls) ->
        J.Obj
          [
            ("class", J.String cls.c_name);
            ("roots", views (Analysis.roots_of_activity r cls.c_name));
          ])
      (Framework.App.activity_classes r.app)
  in
  J.Obj
    [
      ("app", J.String r.app.Framework.App.name);
      ("config", config r.config);
      ("solve_seconds", J.Float r.solve_seconds);
      ("operations", J.List (List.map (op r) (Analysis.ops r)));
      ("views", J.List (List.map view_facts all_views));
      ("activities", J.List activities);
      ("interactions", J.List (List.map interaction (Analysis.interactions r)));
      ( "transitions",
        J.List
          (List.map
             (fun (a, b) -> J.Obj [ ("from", J.String a); ("to", J.String b) ])
             (Analysis.transitions r)) );
    ]

let to_string ?pretty r = J.to_string ?pretty (solution r)
