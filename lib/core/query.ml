(* Demand-driven queries over a captured solution (ROADMAP
   "analysis-as-a-service"; RECON-style backward constraint
   evaluation).

   A [Query.t] is a read-only view of a [Solve.solved]: it decodes
   interner ids, reads the per-representative solution bitsets, and —
   for points-to queries — re-derives a representative's solution by
   running the flow rules *backward* from the query node over a
   reverse index of the frozen CSR, instead of reading the saturated
   forward answer.

   Exactness argument.  In the condensed flow graph the forward
   fixpoint satisfies, for every representative [r]:

     sols(r) = seeds(r) ∪ op_pushes(r)
               ∪ ⋃ over condensed in-edges (s, k): filter_k(sols(s))

   The solver records every representative an operation rule (or the
   declarative / declared-fragment pass) ever pushed into in
   [sd_targets] — unconditionally, before the growth check — while
   seeds and plain propagation are never recorded.  So for any
   representative NOT in that generator set, [op_pushes(r)] is empty
   and the equation closes over seeds and in-edges alone; the backward
   walk evaluates exactly that equation, reading the cached forward
   solution when it reaches a generator.  Every fallback (generator
   hit, condensed-graph cycle through cast edges, exhausted budget)
   substitutes [sd_sols], which IS the fixpoint — so substitution
   preserves equality and the backward answer is bit-identical to the
   forward projection by construction.  The differential battery in
   [test/test_query.ml] checks this across the corpus, random, cyclic
   and incrementally patched apps at every budget. *)

type stats = {
  mutable q_queries : int;  (** point queries answered *)
  mutable q_memo_hits : int;  (** representatives answered from the per-query-engine memo *)
  mutable q_expanded : int;  (** representatives expanded by the backward walk *)
  mutable q_edges : int;  (** reverse condensed edges traversed *)
  mutable q_generator_hits : int;
      (** op-written representatives answered from the cached forward
          fixpoint (the backward walk's base case) *)
  mutable q_cycle_fallbacks : int;  (** cast-edge cycles in the condensed graph *)
  mutable q_budget_fallbacks : int;  (** walks truncated by the fuel budget *)
}

let fresh_stats () =
  {
    q_queries = 0;
    q_memo_hits = 0;
    q_expanded = 0;
    q_edges = 0;
    q_generator_hits = 0;
    q_cycle_fallbacks = 0;
    q_budget_fallbacks = 0;
  }

type t = {
  sd : Solve.solved;
  hierarchy : Jir.Hierarchy.t;  (** for cast filtering; must match [sd_class_fp] *)
  rev_row : int array;  (** representative -> span in [rev_src]/[rev_kind], sized csr_n+1 *)
  rev_src : int array;  (** source representative of each reverse edge *)
  rev_kind : int array;  (** [-1] direct, else index into [sd_cast_names] *)
  seeds : (int, Util.Bitset.t) Hashtbl.t;  (** representative -> seeded value ids *)
  generators : Util.Bitset.t;  (** representatives some op/declarative/fragment writer pushed into *)
  memo : (int, Util.Bitset.t) Hashtbl.t;  (** representative -> backward-derived solution *)
  in_progress : Util.Bitset.t;  (** cycle guard for the backward recursion *)
  stats : stats;
  empty : Util.Bitset.t;  (** shared read-only empty set *)
}

let default_budget = 65536

(* The reverse condensed-edge index, built once at [create]: walk the
   full frozen CSR, map endpoints through the representative table,
   drop intra-component edges (the forward condensation drops them for
   both kinds — inside a component direct flow is identity and the
   solver never created intra-component cast edges it kept), and dedup
   (dst-rep, src-rep, kind) exactly as the forward build dedups
   (src-rep, dst-rep, kind). *)
let build_reverse (sd : Solve.solved) =
  let n = sd.Solve.sd_csr_n in
  let row = sd.Solve.sd_row and edst = sd.Solve.sd_edst and ekind = sd.Solve.sd_ekind in
  let nrep = sd.Solve.sd_nrep in
  let seen = Hashtbl.create 1024 in
  let edges = ref [] in
  let count = Array.make (n + 1) 0 in
  let nedges = ref 0 in
  for s = 0 to n - 1 do
    let rs = nrep.(s) in
    for e = row.(s) to row.(s + 1) - 1 do
      let rd = nrep.(edst.(e)) in
      if rs <> rd then begin
        let k = ekind.(e) in
        let key = (rd, rs, k) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          edges := key :: !edges;
          count.(rd) <- count.(rd) + 1;
          incr nedges
        end
      end
    done
  done;
  let rev_row = Array.make (n + 1) 0 in
  for r = 0 to n - 1 do
    rev_row.(r + 1) <- rev_row.(r) + count.(r)
  done;
  let fill = Array.copy rev_row in
  let rev_src = Array.make !nedges 0 and rev_kind = Array.make !nedges (-1) in
  List.iter
    (fun (rd, rs, k) ->
      let slot = fill.(rd) in
      fill.(rd) <- slot + 1;
      rev_src.(slot) <- rs;
      rev_kind.(slot) <- k)
    !edges;
  (rev_row, rev_src, rev_kind)

let create ~hierarchy sd =
  let rev_row, rev_src, rev_kind = build_reverse sd in
  let seeds = Hashtbl.create 256 in
  Array.iter
    (fun (nid, vid) ->
      let r = Solve.solved_rep sd nid in
      let b =
        match Hashtbl.find_opt seeds r with
        | Some b -> b
        | None ->
            let b = Util.Bitset.create () in
            Hashtbl.add seeds r b;
            b
      in
      ignore (Util.Bitset.add b vid))
    sd.Solve.sd_seeds;
  let generators = Util.Bitset.create () in
  Array.iter
    (fun targets -> Util.Bitset.union_delta ~into:generators targets ~on_new:(fun _ -> ()))
    sd.Solve.sd_targets;
  {
    sd;
    hierarchy;
    rev_row;
    rev_src;
    rev_kind;
    seeds;
    generators;
    memo = Hashtbl.create 256;
    in_progress = Util.Bitset.create ();
    stats = fresh_stats ();
    empty = Util.Bitset.create ();
  }

let stats t = t.stats

let solved t = t.sd

let interner t = t.sd.Solve.sd_it

(* The cached forward solution of a representative — the fallback and
   generator base case.  Treat as read-only (aliased). *)
let cached t r =
  if r >= 0 && r < Array.length t.sd.Solve.sd_sols then
    match t.sd.Solve.sd_sols.(r) with Some b -> b | None -> t.empty
  else t.empty

let rec backsolve t fuel r =
  match Hashtbl.find_opt t.memo r with
  | Some b ->
      t.stats.q_memo_hits <- t.stats.q_memo_hits + 1;
      b
  | None ->
      if Util.Bitset.mem t.generators r then begin
        t.stats.q_generator_hits <- t.stats.q_generator_hits + 1;
        let b = cached t r in
        Hashtbl.replace t.memo r b;
        b
      end
      else if Util.Bitset.mem t.in_progress r then begin
        (* a condensed-graph cycle (cast edges may close one); the
           cached answer is the fixpoint, so substituting it is exact *)
        t.stats.q_cycle_fallbacks <- t.stats.q_cycle_fallbacks + 1;
        cached t r
      end
      else if !fuel <= 0 then begin
        t.stats.q_budget_fallbacks <- t.stats.q_budget_fallbacks + 1;
        let b = cached t r in
        Hashtbl.replace t.memo r b;
        b
      end
      else begin
        decr fuel;
        t.stats.q_expanded <- t.stats.q_expanded + 1;
        ignore (Util.Bitset.add t.in_progress r);
        let acc = Util.Bitset.create () in
        (match Hashtbl.find_opt t.seeds r with
        | Some s -> Util.Bitset.union_delta ~into:acc s ~on_new:(fun _ -> ())
        | None -> ());
        if r < t.sd.Solve.sd_csr_n then
          for e = t.rev_row.(r) to t.rev_row.(r + 1) - 1 do
            t.stats.q_edges <- t.stats.q_edges + 1;
            let sub = backsolve t fuel t.rev_src.(e) in
            match t.rev_kind.(e) with
            | -1 -> Util.Bitset.union_delta ~into:acc sub ~on_new:(fun _ -> ())
            | k ->
                let cls = t.sd.Solve.sd_cast_names.(k) in
                Util.Bitset.iter
                  (fun vid ->
                    if
                      Solve.passes_cast t.hierarchy cls (Intern.value_of t.sd.Solve.sd_it vid)
                    then ignore (Util.Bitset.add acc vid))
                  sub
          done;
        Util.Bitset.remove t.in_progress r;
        Hashtbl.replace t.memo r acc;
        acc
      end

(* {1 Point queries} *)

let points_to_bits ?(budget = default_budget) t node =
  match Intern.find_node t.sd.Solve.sd_it node with
  | None -> None
  | Some nid ->
      t.stats.q_queries <- t.stats.q_queries + 1;
      Some (backsolve t (ref budget) (Solve.solved_rep t.sd nid))

let decode_values t bits =
  let it = t.sd.Solve.sd_it in
  List.sort Node.compare_value
    (Util.Bitset.fold (fun vid acc -> Intern.value_of it vid :: acc) bits [])

let points_to ?budget t node = Option.map (decode_values t) (points_to_bits ?budget t node)

(* {1 Relation queries}

   These read the solved relation rows (view hierarchy, id
   registrations, listener registrations) demand-driven — no solver
   runs, no interner growth. *)

let row rows i = if i >= 0 && i < Array.length rows then rows.(i) else None

let views_of_listener t l =
  let it = t.sd.Solve.sd_it in
  (* entry ids whose listener abstraction matches, over every interface *)
  let entries = Util.Bitset.create () in
  for eid = 0 to Intern.listener_count it - 1 do
    let labs, _iface = Intern.listener_of it eid in
    if Node.equal_listener labs l then ignore (Util.Bitset.add entries eid)
  done;
  if Util.Bitset.is_empty entries then []
  else begin
    let acc = ref [] in
    let rows = t.sd.Solve.sd_listeners in
    for wid = Intern.view_count it - 1 downto 0 do
      match row rows wid with
      | Some b when Util.Bitset.intersects b entries -> acc := Intern.view_of it wid :: !acc
      | _ -> ()
    done;
    List.sort Node.compare_view !acc
  end

(* Displayable views of a holder: roots plus all their descendants
   (BFS over the solved child rows, include_self). *)
let displayable_bits t hid =
  let acc = Util.Bitset.create () in
  let pending = Queue.create () in
  (match row t.sd.Solve.sd_roots hid with
  | None -> ()
  | Some roots ->
      Util.Bitset.iter (fun wid -> if Util.Bitset.add acc wid then Queue.add wid pending) roots);
  while not (Queue.is_empty pending) do
    let wid = Queue.pop pending in
    match row t.sd.Solve.sd_children wid with
    | None -> ()
    | Some kids ->
        Util.Bitset.iter (fun k -> if Util.Bitset.add acc k then Queue.add k pending) kids
  done;
  acc

let activities_of_id t name =
  let it = t.sd.Solve.sd_it in
  let row_of raw =
    match Intern.rid_opt it raw with
    | None -> None
    | Some sym -> (
        match row t.sd.Solve.sd_by_id sym with
        | Some b when not (Util.Bitset.is_empty b) -> Some b
        | _ -> None)
  in
  let concrete =
    match
      Layouts.Resource.find_view_id (Layouts.Package.resources t.sd.Solve.sd_package) name
    with
    | None -> None
    | Some raw -> row_of raw
  in
  (* A view whose id came from [SetId (v, ⊤)] carries the sentinel row:
     its concrete id is unknown, so it matches every queried name. *)
  let with_id =
    match (concrete, row_of Node.top_view_id_raw) with
    | None, None -> None
    | (Some _ as b), None | None, (Some _ as b) -> b
    | Some a, Some b ->
        let u = Util.Bitset.copy a in
        Util.Bitset.union_delta ~into:u b ~on_new:(fun _ -> ());
        Some u
  in
  match with_id with
  | None -> []
  | Some with_id ->
      let acc = ref [] in
      List.iter
        (fun hid ->
          match Intern.holder_of it hid with
          | Node.H_act a ->
              if Util.Bitset.intersects (displayable_bits t hid) with_id then acc := a :: !acc
          | Node.H_dialog _ -> ())
        t.sd.Solve.sd_holder_ids;
      List.sort_uniq String.compare !acc
