type table1_row = {
  t1_app : string;
  t1_classes : int;
  t1_methods : int;
  t1_layout_ids : int;
  t1_view_ids : int;
  t1_views_inflated : int;
  t1_views_allocated : int;
  t1_listeners : int;
  t1_activities : int;
  t1_inflate_ops : int;
  t1_findview_ops : int;
  t1_addview_ops : int;
  t1_setid_ops : int;
  t1_setlistener_ops : int;
}

type solver_row = {
  sv_app : string;
  sv_solver : string;
  sv_ops : int;
  sv_iterations : int;
  sv_op_applications : int;
  sv_naive_equivalent : int;  (** iterations * |ops| — what the naive loop would apply *)
  sv_propagations : int;
  sv_delta_pushes : int;
  sv_desc_hits : int;
  sv_desc_misses : int;
  sv_interned_values : int;
  sv_bitset_words : int;
  sv_union_calls : int;
  sv_scc_count : int;
  sv_largest_scc : int;
  sv_ctx_count : int;  (** contexts minted by the context-keyed extraction *)
  sv_ctx_keys : int;  (** distinct ⟨node, ctx⟩ keys interned *)
  sv_warm : bool;  (** solved by the incremental (warm) path *)
  sv_dirty_comps : int;  (** components re-solved by a warm solve *)
  sv_reused_comps : int;  (** components restored by aliasing *)
  sv_fallback : string option;  (** why a requested warm start refused *)
}

type table2_row = {
  t2_app : string;
  t2_seconds : float;
  t2_receivers : float option;
  t2_parameters : float option;
  t2_results : float option;
  t2_listeners : float option;
}

let avg sizes =
  let positive = List.filter (fun n -> n > 0) sizes in
  match positive with
  | [] -> None
  | _ ->
      let total = List.fold_left ( + ) 0 positive in
      Some (float_of_int total /. float_of_int (List.length positive))

let count predicate xs = List.length (List.filter predicate xs)

let table1 (r : Analysis.t) =
  let app = r.app in
  let hierarchy = app.Framework.App.hierarchy in
  let classes, methods = Jir.Ast.program_size app.program in
  let layout_ids, view_ids = Layouts.Resource.counts (Layouts.Package.resources app.package) in
  let allocs = Graph.allocs r.graph in
  let view_allocs =
    count (fun (a : Node.alloc_site) -> Framework.Views.is_view_class hierarchy a.a_cls) allocs
  in
  let listener_allocs =
    count (fun (a : Node.alloc_site) -> Framework.Listeners.is_listener_class hierarchy a.a_cls) allocs
  in
  (* Inlining-based context sensitivity clones operation records; the
     population of Table 1 counts operation *sites*. *)
  let ops =
    List.sort_uniq
      (fun (a : Graph.op) (b : Graph.op) -> compare a.site b.site)
      (Graph.ops r.graph)
  in
  let count_kind predicate = count (fun (op : Graph.op) -> predicate op.site.o_kind) ops in
  {
    t1_app = app.name;
    t1_classes = classes;
    t1_methods = methods;
    t1_layout_ids = layout_ids;
    t1_view_ids = view_ids;
    t1_views_inflated = List.length (Graph.inflated_views r.graph);
    t1_views_allocated = view_allocs;
    t1_listeners = listener_allocs;
    t1_activities = List.length (Framework.App.activity_classes app);
    t1_inflate_ops =
      count_kind (function Framework.Api.Inflate | Framework.Api.Set_content -> true | _ -> false);
    t1_findview_ops =
      count_kind (function
        | Framework.Api.Find_view | Framework.Api.Find_one _ | Framework.Api.Get_parent -> true
        | _ -> false);
    t1_addview_ops = count_kind (function Framework.Api.Add_view -> true | _ -> false);
    t1_setid_ops = count_kind (function Framework.Api.Set_id -> true | _ -> false);
    t1_setlistener_ops = count_kind (function Framework.Api.Set_listener _ -> true | _ -> false);
  }

(* Ops whose receiver position takes views. *)
let takes_view_receiver = function
  | Framework.Api.Find_view
  | Framework.Api.Find_one _
  | Framework.Api.Add_view
  | Framework.Api.Set_id
  | Framework.Api.Set_listener _
  | Framework.Api.Get_parent ->
      true
  | Framework.Api.Inflate | Framework.Api.Set_content | Framework.Api.Start_activity
  | Framework.Api.Pass_through | Framework.Api.Fragment_add | Framework.Api.Menu_add
  | Framework.Api.Set_adapter ->
      false

(* Ops producing views. *)
let produces_views = function
  | Framework.Api.Find_view | Framework.Api.Find_one _ | Framework.Api.Inflate
  | Framework.Api.Get_parent ->
      true
  | Framework.Api.Set_content | Framework.Api.Add_view | Framework.Api.Set_id
  | Framework.Api.Set_listener _ | Framework.Api.Start_activity | Framework.Api.Pass_through
  | Framework.Api.Fragment_add | Framework.Api.Menu_add | Framework.Api.Set_adapter ->
      false

let solver_stats (r : Analysis.t) =
  let stats = r.stats in
  let op_count = List.length (Graph.ops r.graph) in
  {
    sv_app = r.app.Framework.App.name;
    sv_solver = Config.solver_name r.config.Config.solver;
    sv_ops = op_count;
    sv_iterations = stats.Solve.iterations;
    sv_op_applications = stats.Solve.op_applications;
    sv_naive_equivalent = stats.Solve.iterations * op_count;
    sv_propagations = stats.Solve.propagations;
    sv_delta_pushes = stats.Solve.delta_pushes;
    sv_desc_hits = stats.Solve.desc_cache_hits;
    sv_desc_misses = stats.Solve.desc_cache_misses;
    sv_interned_values = stats.Solve.interned_values;
    sv_bitset_words = stats.Solve.bitset_words;
    sv_union_calls = stats.Solve.union_calls;
    sv_scc_count = stats.Solve.scc_count;
    sv_largest_scc = stats.Solve.largest_scc;
    sv_ctx_count = stats.Solve.ctx_count;
    sv_ctx_keys = stats.Solve.ctx_keys;
    sv_warm = stats.Solve.warm_solve;
    sv_dirty_comps = stats.Solve.dirty_comps;
    sv_reused_comps = stats.Solve.reused_comps;
    sv_fallback = stats.Solve.fallback;
  }

let table2 (r : Analysis.t) =
  let ops = Graph.ops r.graph in
  let sizes_by predicate measure =
    List.filter_map
      (fun (op : Graph.op) -> if predicate op.site.o_kind then Some (measure op) else None)
      ops
  in
  let receivers =
    sizes_by takes_view_receiver (fun op -> List.length (Analysis.op_receiver_views r op))
  in
  let parameters =
    sizes_by
      (function Framework.Api.Add_view -> true | _ -> false)
      (fun op -> List.length (Analysis.op_child_views r op))
  in
  let results = sizes_by produces_views (fun op -> List.length (Analysis.op_result_views r op)) in
  let listeners =
    sizes_by
      (function Framework.Api.Set_listener _ -> true | _ -> false)
      (fun op -> List.length (Analysis.op_listeners r op))
  in
  {
    t2_app = r.app.Framework.App.name;
    t2_seconds = r.solve_seconds;
    t2_receivers = avg receivers;
    t2_parameters = avg parameters;
    t2_results = avg results;
    t2_listeners = avg listeners;
  }
