let var mid name = Node.N_var (mid, name)

(* An integer constant that happens to be a registered resource id is
   treated as that id, modeling constant propagation of the inlined
   [R] fields real compilers perform. *)
let value_of_int resources n =
  if Layouts.Resource.is_layout_id n && Layouts.Resource.layout_name resources n <> None then
    Some (Node.V_layout_id n)
  else if Layouts.Resource.is_view_id n && Layouts.Resource.view_name resources n <> None then
    Some (Node.V_view_id n)
  else None

(* Bound on the body size of callees cloned by inlining-based context
   sensitivity (Config.inline_depth > 0). *)
let inline_body_limit = 24

type ctx = {
  depth : int;  (** current inlining depth *)
  rename : string -> string;  (** variable renaming for the current clone *)
  ret_target : Node.t;  (** where [return x] flows *)
  stack : Node.mid list;  (** methods on the inline chain, for cycle avoidance *)
  clones : int ref;
      (** clone ids unique within one extraction run; per-run (not
          global) so concurrent extractions on separate domains cannot
          interleave names *)
}

let top_ctx ~clones mid =
  { depth = 0; rename = Fun.id; ret_target = Node.N_ret mid; stack = [ mid ]; clones }

(* '$' cannot occur in source identifiers, so renamed variables never
   collide with real ones. *)
let fresh_clone_suffix ctx =
  incr ctx.clones;
  Printf.sprintf "$%d" !(ctx.clones)

let rec extract_stmt config (app : Framework.App.t) graph ~ctx mid env ~index stmt =
  let hierarchy = app.Framework.App.hierarchy in
  let resources = Layouts.Package.resources app.package in
  let is_view cls = Framework.Views.is_view_class hierarchy cls in
  let site = { Node.s_in = mid; s_stmt = index } in
  let v name = var mid (ctx.rename name) in
  match stmt with
  | Jir.Ast.New (x, cls) ->
      let alloc = Graph.fresh_alloc graph ~cls ~site in
      let value = if is_view cls then Node.V_view (Node.V_alloc alloc) else Node.V_obj alloc in
      Graph.seed graph (v x) value
  | Jir.Ast.Copy (x, y) -> Graph.add_edge graph (v y) (v x)
  | Jir.Ast.Read_field (x, _, f) -> Graph.add_edge graph (Node.N_field f) (v x)
  | Jir.Ast.Write_field (_, f, y) -> Graph.add_edge graph (v y) (Node.N_field f)
  | Jir.Ast.Read_layout_id (x, name) ->
      Graph.seed graph (v x) (Node.V_layout_id (Layouts.Resource.layout_id resources name))
  | Jir.Ast.Read_view_id (x, name) ->
      Graph.seed graph (v x) (Node.V_view_id (Layouts.Resource.view_id resources name))
  | Jir.Ast.Const_int (x, n) -> (
      match value_of_int resources n with
      | Some value -> Graph.seed graph (v x) value
      | None -> ())
  | Jir.Ast.Const_null _ -> ()
  | Jir.Ast.Cast (x, cls, y) ->
      let kind = if config.Config.cast_filtering then Graph.E_cast cls else Graph.E_direct in
      Graph.add_edge graph ~kind (v y) (v x)
  | Jir.Ast.Return (Some x) -> Graph.add_edge graph (v x) ctx.ret_target
  | Jir.Ast.Return None -> ()
  | Jir.Ast.Invoke (lhs, recv, name, args) -> (
      let arity = List.length args in
      let key = { Jir.Ast.mk_name = name; mk_arity = arity } in
      let recv_ty = Jir.Typing.class_of env recv in
      let app_targets = Jir.Hierarchy.cha_targets hierarchy ~recv_ty key in
      (* A call can reach the platform when the receiver's type is
         unknown, or when some concrete class compatible with it has no
         application definition of the method (dispatch then falls
         through to platform code). *)
      let may_reach_platform =
        match recv_ty with
        | None -> true
        | Some ty ->
            (not (Jir.Hierarchy.mem hierarchy ty))
            || List.exists
                 (fun sub ->
                   Jir.Hierarchy.kind hierarchy sub = Some `Class
                   && Jir.Hierarchy.resolve hierarchy sub key = None)
                 (Jir.Hierarchy.subtypes hierarchy ty)
      in
      (* Inlining-based context sensitivity: clone a small, uniquely
         resolved callee instead of sharing its locals across all call
         sites.  Abstraction names (allocation/op/inflation sites) stay
         structural, so clones of the same site denote the same
         objects; only the local value flow is separated. *)
      let inlinable =
        config.Config.inline_depth > 0
        && ctx.depth < config.Config.inline_depth
        && (not may_reach_platform)
        &&
        match app_targets with
        | [ (owner, target) ] ->
            List.length target.m_body <= inline_body_limit
            && not (List.mem (Node.mid_of_meth owner target) ctx.stack)
        | _ -> false
      in
      match (inlinable, app_targets) with
      | true, [ (owner, target) ] ->
          let tmid = Node.mid_of_meth owner target in
          let suffix = fresh_clone_suffix ctx in
          let rename' name = name ^ suffix in
          Graph.add_edge graph (v recv) (var tmid (rename' Jir.Ast.this_var));
          List.iter2
            (fun arg (param, _) -> Graph.add_edge graph (v arg) (var tmid (rename' param)))
            args target.m_params;
          let ret_target =
            match lhs with
            | Some z ->
                let ret_var = var tmid (rename' "$ret") in
                Graph.add_edge graph ret_var (v z);
                ret_var
            | None -> var tmid (rename' "$ret")
          in
          let ctx' =
            { ctx with depth = ctx.depth + 1; rename = rename'; ret_target; stack = tmid :: ctx.stack }
          in
          let env' = Framework.App.typing_env app ~owner target in
          List.iteri
            (fun index stmt -> extract_stmt config app graph ~ctx:ctx' tmid env' ~index stmt)
            target.m_body
      | _ ->
          List.iter
            (fun (owner, (target : Jir.Ast.meth)) ->
              let tmid = Node.mid_of_meth owner target in
              Graph.add_edge graph (v recv) (var tmid Jir.Ast.this_var);
              List.iter2
                (fun arg (param, _) -> Graph.add_edge graph (v arg) (var tmid param))
                args target.m_params;
              Option.iter (fun z -> Graph.add_edge graph (Node.N_ret tmid) (v z)) lhs)
            app_targets;
          if may_reach_platform then (
            match Framework.Api.classify ~name ~arity with
            | Some kind ->
                ignore
                  (Graph.fresh_op graph ~kind ~site ~recv:(v recv)
                     ~args:(List.map v args)
                     ~out:(Option.map v lhs))
            | None -> ()))

let extract_meth config app graph ~clones ~owner (m : Jir.Ast.meth) =
  let mid = Node.mid_of_meth owner m in
  let env = Framework.App.typing_env app ~owner m in
  let ctx = top_ctx ~clones mid in
  List.iteri (fun index stmt -> extract_stmt config app graph ~ctx mid env ~index stmt) m.m_body

(* Seed the implicit activity instance into [this] of every lifecycle
   callback the class (or an application superclass) defines: the
   paper's [t = new a(); t.m()] modeling. *)
let seed_activity_callbacks (app : Framework.App.t) graph (cls : Jir.Ast.cls) =
  List.iter
    (fun (name, arity) ->
      match Jir.Hierarchy.resolve app.hierarchy cls.c_name { Jir.Ast.mk_name = name; mk_arity = arity } with
      | Some (owner, m) ->
          Graph.seed graph (var (Node.mid_of_meth owner m) Jir.Ast.this_var) (Node.V_act cls.c_name)
      | None -> ())
    Framework.Lifecycle.activity_callbacks;
  (* Menu extension: onCreateOptionsMenu receives the activity's
     implicit menu object; onOptionsItemSelected runs on the activity
     (its item parameter is fed by the solver at Menu_add sites). *)
  let seed_menu_callback (name, arity) param_value =
    match
      Jir.Hierarchy.resolve app.hierarchy cls.c_name { Jir.Ast.mk_name = name; mk_arity = arity }
    with
    | Some (owner, m) ->
        let tmid = Node.mid_of_meth owner m in
        Graph.seed graph (var tmid Jir.Ast.this_var) (Node.V_act cls.c_name);
        (match (param_value, m.m_params) with
        | Some value, (param, _) :: _ -> Graph.seed graph (var tmid param) value
        | _ -> ())
    | None -> ()
  in
  seed_menu_callback Framework.Lifecycle.on_create_options_menu
    (Some (Node.V_view (Node.V_alloc (Node.menu_site cls.c_name))));
  seed_menu_callback Framework.Lifecycle.on_options_item_selected None

(* Dialogs (extension): platform invokes lifecycle callbacks on dialog
   objects created by the application. *)
let seed_dialog_callbacks (app : Framework.App.t) graph =
  List.iter
    (fun (site : Node.alloc_site) ->
      if Framework.Views.is_dialog_class app.hierarchy site.a_cls then
        List.iter
          (fun (name, arity) ->
            match
              Jir.Hierarchy.resolve app.hierarchy site.a_cls { Jir.Ast.mk_name = name; mk_arity = arity }
            with
            | Some (owner, m) ->
                Graph.seed graph (var (Node.mid_of_meth owner m) Jir.Ast.this_var) (Node.V_obj site)
            | None -> ())
          Framework.Lifecycle.dialog_callbacks)
    (Graph.allocs graph)

let run ?interner config (app : Framework.App.t) =
  (* Clone names must be deterministic per extraction, not per process:
     two runs over the same app (e.g. the naive/delta equivalence
     tests, or Diff) must name inlined variables identically.  The
     counter lives here rather than at module level so extractions
     running concurrently on separate domains cannot interleave. *)
  let clones = ref 0 in
  let interner =
    match interner with
    | Some it -> it
    | None ->
        (* Fresh graphs sit on the frozen shared tier when the config
           allows, so the resource vocabulary resolves by arithmetic
           instead of being re-interned per task.  Donor interners
           (incremental warm path) are passed through untouched. *)
        if config.Config.shared_intern then Intern.create ~shared:(Intern.shared_tier ()) ()
        else Intern.create ()
  in
  let graph = Graph.create ~interner () in
  List.iter
    (fun (cls : Jir.Ast.cls) ->
      List.iter (extract_meth config app graph ~clones ~owner:cls.c_name) cls.c_methods)
    app.program.p_classes;
  List.iter (seed_activity_callbacks app graph) (Framework.App.activity_classes app);
  if config.Config.model_dialogs then seed_dialog_callbacks app graph;
  graph
