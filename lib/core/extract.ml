let var mid name = Node.N_var (mid, name)

(* An integer constant that happens to be a registered resource id is
   treated as that id, modeling constant propagation of the inlined
   [R] fields real compilers perform. *)
let value_of_int resources n =
  if Layouts.Resource.is_layout_id n && Layouts.Resource.layout_name resources n <> None then
    Some (Node.V_layout_id n)
  else if Layouts.Resource.is_view_id n && Layouts.Resource.view_name resources n <> None then
    Some (Node.V_view_id n)
  else None

(* Clone suffixes ("$1", "$2", ...) are minted once per clone but the
   strings themselves recur across every context-sensitive extraction;
   the table covers all realistic clone counts so the hot path is an
   array read instead of a [Printf] format interpretation. *)
let suffix_table = Array.init 1024 (fun i -> "$" ^ string_of_int i)

let clone_suffix n = if n < 1024 then suffix_table.(n) else "$" ^ string_of_int n

type ctx = {
  depth : int;  (** current inlining depth *)
  rename : string -> string;  (** variable renaming for the current clone *)
  ret_target : Node.t;  (** where [return x] flows *)
  stack : Node.mid list;  (** methods on the inline chain, for cycle avoidance *)
  clones : int ref;
      (** clone ids unique within one extraction run; per-run (not
          global) so concurrent extractions on separate domains cannot
          interleave names *)
}

let top_ctx ~clones mid =
  { depth = 0; rename = Fun.id; ret_target = Node.N_ret mid; stack = [ mid ]; clones }

(* '$' cannot occur in source identifiers, so renamed variables never
   collide with real ones. *)
let fresh_clone_suffix ctx =
  incr ctx.clones;
  clone_suffix !(ctx.clones)

(* CHA facts at a call site, shared verbatim by the structural and
   context-keyed walks (the inlining guard MUST be the same predicate
   in both, or the clone numbering diverges and the bit-identity
   oracle breaks).

   The hierarchy-dependent half — dispatch targets and platform
   reachability — is a pure function of (receiver type, name, arity)
   for a fixed app, so it is memoised per extraction run ([cha]).
   Every consumer hits the same sites repeatedly: the structural
   inliner re-walks callee bodies once per clone, and template builds
   re-resolve the sites the top-level walk already saw.  Only the
   depth/stack-dependent guard tail stays live. *)
type cha_cache = (string option * string * int, (string * Jir.Ast.meth) list * bool) Hashtbl.t

(* Per-run caches shared by the structural walk, the inliner and the
   template compiler: CHA facts per call signature, and typing
   environments per method (the inliner re-derives the callee env once
   per clone; templates would re-derive it once per build). *)
type ex_memo = {
  cha : cha_cache;
  envs : (Node.mid, Jir.Typing.env) Hashtbl.t;
}

let fresh_memo () = { cha = Hashtbl.create 256; envs = Hashtbl.create 256 }

let typing_env_memo app memo ~owner (m : Jir.Ast.meth) =
  let mid = Node.mid_of_meth owner m in
  match Hashtbl.find_opt memo.envs mid with
  | Some env -> env
  | None ->
      let env = Framework.App.typing_env app ~owner m in
      Hashtbl.add memo.envs mid env;
      env

let call_info config hierarchy ~memo env ~depth ~stack recv name arity =
  let recv_ty = Jir.Typing.class_of env recv in
  let app_targets, may_reach_platform =
    let ck = (recv_ty, name, arity) in
    match Hashtbl.find_opt memo.cha ck with
    | Some facts -> facts
    | None ->
        let key = { Jir.Ast.mk_name = name; mk_arity = arity } in
        let app_targets = Jir.Hierarchy.cha_targets hierarchy ~recv_ty key in
        (* A call can reach the platform when the receiver's type is
           unknown, or when some concrete class compatible with it has
           no application definition of the method (dispatch then
           falls through to platform code). *)
        let may_reach_platform =
          match recv_ty with
          | None -> true
          | Some ty ->
              (not (Jir.Hierarchy.mem hierarchy ty))
              || List.exists
                   (fun sub ->
                     Jir.Hierarchy.kind hierarchy sub = Some `Class
                     && Jir.Hierarchy.resolve hierarchy sub key = None)
                   (Jir.Hierarchy.subtypes hierarchy ty)
        in
        Hashtbl.add memo.cha ck (app_targets, may_reach_platform);
        (app_targets, may_reach_platform)
  in
  let inlinable =
    config.Config.inline_depth > 0
    && depth < config.Config.inline_depth
    && (not may_reach_platform)
    &&
    match app_targets with
    | [ (owner, target) ] ->
        List.length target.m_body <= config.Config.inline_body_limit
        && not (List.mem (Node.mid_of_meth owner target) stack)
    | _ -> false
  in
  (app_targets, may_reach_platform, inlinable)

(* Context-keyed clone expansion (Config.ctx_keyed, interned engine):
   clone bodies are expanded in id space.  Each inlinable method is
   compiled ONCE per extraction into an id-level template — statements
   resolved to base node ids, CHA facts and the depth-independent part
   of the inlining guard precomputed — and every context then replays
   the template through {!Intern.ctx_node}, which mints exactly the
   [$n]-renamed node the inlining path would build structurally.  A
   replay costs packed-int cache probes instead of structural
   interning, string concatenation, or hierarchy scans.  Statement
   order, clone numbering, and the inlining guard are identical to the
   structural walk below; the two paths must stay in lockstep. *)
type kctx = {
  k_depth : int;  (** current inlining depth (>= 1 inside a clone) *)
  k_clone : int;  (** this clone's number; suffix is ["$" ^ k_clone] *)
  k_ret : int Lazy.t;
      (** id the clone's [return x] flows to; lazy so a result-discarded
          call whose body never returns a value interns no [$ret] node —
          matching the inlining path, which only builds that node when an
          edge touches it *)
  k_stack : Node.mid list;
  k_clones : int ref;
}

(* Template operands are base ids tagged with whether the context
   rename applies: [2*id + 1] for locals of the template's method
   (renamed per clone), [2*id] for fixed structural nodes (fields,
   boundary variables of non-inlined callees). *)
let t_mapped id = (id lsl 1) lor 1
let t_fixed id = id lsl 1

type tinstr =
  | T_alloc of { out : int; cls : string; site : Node.site; is_view : bool }
  | T_edge of { src : int; dst : int; kind : Graph.edge_kind }
  | T_layout_id of { out : int; name : string }
      (** resolved per expansion: the resource tables assign numbers on
          first touch, so resolving at build time would permute the
          numbering relative to the inlining walk *)
  | T_view_id of { out : int; name : string }
  | T_layout_top of { out : int }  (** [R.layout.?] — seeds the ⊤ layout marker *)
  | T_view_top of { out : int }  (** [R.id.?] — seeds the ⊤ view-id marker *)
  | T_const of { out : int; n : int }
      (** [value_of_int] reads the resource tables, so it too must
          evaluate at the point the inlining walk would *)
  | T_ret of { src : int }  (** edge into the expansion's [k_ret] *)
  | T_call of tcall

and tcall = {
  tc_recv : int;
  tc_args : int list;
  tc_out : int option;
  tc_inline : tinline option;
      (** [Some] when the depth-independent guard passes (single CHA
          target, small body, platform-unreachable); the depth bound
          and recursion stack are checked per expansion *)
  tc_fallback : (int * int list * int) list;
      (** per CHA target: structural this / params / [N_ret] ids *)
  tc_op : Framework.Api.kind option;
  tc_site : Node.site;
}

and tinline = {
  ti_tmid : Node.mid;
  ti_owner : string;
  ti_target : Jir.Ast.meth;
  ti_this : int;
  ti_params : int list;
  ti_ret : int Lazy.t;  (** lazy: result-discarded never-returning calls intern no [$ret] *)
}

type tcache = (Node.mid, tinstr array) Hashtbl.t

let build_template config (app : Framework.App.t) graph ~memo ~owner (target : Jir.Ast.meth) =
  let mid = Node.mid_of_meth owner target in
  let hierarchy = app.Framework.App.hierarchy in
  let env = typing_env_memo app memo ~owner target in
  let mapped name = t_mapped (Graph.node_id graph (var mid name)) in
  let instr index stmt =
    let site () = { Node.s_in = mid; s_stmt = index } in
    match stmt with
    | Jir.Ast.New (x, cls) ->
        [ T_alloc
            { out = mapped x; cls; site = site ();
              is_view = Framework.Views.is_view_class hierarchy cls } ]
    | Jir.Ast.Copy (x, y) -> [ T_edge { src = mapped y; dst = mapped x; kind = Graph.E_direct } ]
    | Jir.Ast.Read_field (x, _, f) ->
        [ T_edge
            { src = t_fixed (Graph.node_id graph (Node.N_field f)); dst = mapped x;
              kind = Graph.E_direct } ]
    | Jir.Ast.Write_field (_, f, y) ->
        [ T_edge
            { src = mapped y; dst = t_fixed (Graph.node_id graph (Node.N_field f));
              kind = Graph.E_direct } ]
    | Jir.Ast.Read_layout_id (x, name) -> [ T_layout_id { out = mapped x; name } ]
    | Jir.Ast.Read_view_id (x, name) -> [ T_view_id { out = mapped x; name } ]
    | Jir.Ast.Read_layout_top x -> [ T_layout_top { out = mapped x } ]
    | Jir.Ast.Read_view_top x -> [ T_view_top { out = mapped x } ]
    | Jir.Ast.Const_int (x, n) -> [ T_const { out = mapped x; n } ]
    | Jir.Ast.Const_null _ -> []
    | Jir.Ast.Cast (x, cls, y) ->
        let kind = if config.Config.cast_filtering then Graph.E_cast cls else Graph.E_direct in
        [ T_edge { src = mapped y; dst = mapped x; kind } ]
    | Jir.Ast.Return (Some x) -> [ T_ret { src = mapped x } ]
    | Jir.Ast.Return None -> []
    | Jir.Ast.Invoke (lhs, recv, name, args) ->
        let arity = List.length args in
        (* depth 0 / empty stack: only the depth-independent part of
           the guard is baked in; the per-expansion parts are checked
           when the template replays *)
        let app_targets, may_reach_platform, deep =
          call_info config hierarchy ~memo env ~depth:0 ~stack:[] recv name arity
        in
        let tc_inline =
          match (deep, app_targets) with
          | true, [ (owner', t') ] ->
              let tmid = Node.mid_of_meth owner' t' in
              Some
                {
                  ti_tmid = tmid;
                  ti_owner = owner';
                  ti_target = t';
                  ti_this = Graph.node_id graph (var tmid Jir.Ast.this_var);
                  ti_params =
                    List.map (fun (p, _) -> Graph.node_id graph (var tmid p)) t'.m_params;
                  ti_ret = lazy (Graph.node_id graph (var tmid "$ret"));
                }
          | _ -> None
        in
        let tc_fallback =
          List.map
            (fun (owner', (t' : Jir.Ast.meth)) ->
              let tmid = Node.mid_of_meth owner' t' in
              ( Graph.node_id graph (var tmid Jir.Ast.this_var),
                List.map (fun (p, _) -> Graph.node_id graph (var tmid p)) t'.m_params,
                Graph.node_id graph (Node.N_ret tmid) ))
            app_targets
        in
        let tc_op = if may_reach_platform then Framework.Api.classify ~name ~arity else None in
        [ T_call
            { tc_recv = mapped recv; tc_args = List.map mapped args;
              tc_out = Option.map mapped lhs; tc_inline; tc_fallback; tc_op; tc_site = site () } ]
  in
  Array.of_list (List.concat (List.mapi instr target.m_body))

let rec expand_template config app graph (tcache : tcache) ~memo ~kctx ~owner
    (target : Jir.Ast.meth) =
  let mid = Node.mid_of_meth owner target in
  let instrs =
    match Hashtbl.find_opt tcache mid with
    | Some t -> t
    | None ->
        let t = build_template config app graph ~memo ~owner target in
        Hashtbl.add tcache mid t;
        t
  in
  let it = Graph.interner graph in
  let resources = Layouts.Package.resources app.Framework.App.package in
  let rs enc =
    if enc land 1 = 1 then Intern.ctx_node it ~base:(enc lsr 1) ~ctx:kctx.k_clone else enc lsr 1
  in
  Array.iter
    (function
      | T_alloc { out; cls; site; is_view } ->
          let alloc = Graph.fresh_alloc graph ~cls ~site in
          let value = if is_view then Node.V_view (Node.V_alloc alloc) else Node.V_obj alloc in
          Graph.seed_id graph (rs out) value
      | T_edge { src; dst; kind } -> Graph.add_edge_ids graph ~kind (rs src) (rs dst)
      | T_layout_id { out; name } ->
          Graph.seed_id graph (rs out)
            (Node.V_layout_id (Layouts.Resource.layout_id resources name))
      | T_view_id { out; name } ->
          Graph.seed_id graph (rs out) (Node.V_view_id (Layouts.Resource.view_id resources name))
      | T_layout_top { out } -> Graph.seed_id graph (rs out) Node.V_layout_top
      | T_view_top { out } -> Graph.seed_id graph (rs out) Node.V_view_id_top
      | T_const { out; n } -> (
          match value_of_int resources n with
          | Some value -> Graph.seed_id graph (rs out) value
          | None -> ())
      | T_ret { src } -> Graph.add_edge_ids graph (rs src) (Lazy.force kctx.k_ret)
      | T_call c -> (
          match c.tc_inline with
          | Some ti
            when kctx.k_depth < config.Config.inline_depth
                 && not (List.mem ti.ti_tmid kctx.k_stack) ->
              incr kctx.k_clones;
              let clone = !(kctx.k_clones) in
              Graph.add_edge_ids graph (rs c.tc_recv)
                (Intern.ctx_node it ~base:ti.ti_this ~ctx:clone);
              List.iter2
                (fun arg param ->
                  Graph.add_edge_ids graph (rs arg) (Intern.ctx_node it ~base:param ~ctx:clone))
                c.tc_args ti.ti_params;
              let k_ret =
                match c.tc_out with
                | Some z ->
                    let ret = Intern.ctx_node it ~base:(Lazy.force ti.ti_ret) ~ctx:clone in
                    Graph.add_edge_ids graph ret (rs z);
                    Lazy.from_val ret
                | None -> lazy (Intern.ctx_node it ~base:(Lazy.force ti.ti_ret) ~ctx:clone)
              in
              expand_template config app graph tcache ~memo
                ~kctx:
                  { k_depth = kctx.k_depth + 1; k_clone = clone; k_ret;
                    k_stack = ti.ti_tmid :: kctx.k_stack; k_clones = kctx.k_clones }
                ~owner:ti.ti_owner ti.ti_target
          | _ ->
              List.iter
                (fun (this_id, param_ids, ret_id) ->
                  Graph.add_edge_ids graph (rs c.tc_recv) this_id;
                  List.iter2
                    (fun arg param -> Graph.add_edge_ids graph (rs arg) param)
                    c.tc_args param_ids;
                  Option.iter (fun z -> Graph.add_edge_ids graph ret_id (rs z)) c.tc_out)
                c.tc_fallback;
              (match c.tc_op with
              | Some kind ->
                  ignore
                    (Graph.fresh_op_ids graph ~kind ~site:c.tc_site ~recv:(rs c.tc_recv)
                       ~args:(List.map rs c.tc_args)
                       ~out:(Option.map rs c.tc_out))
              | None -> ())))
    instrs

(* [keyed = Some tcache] routes inlinable clone bodies through the
   context-keyed template expansion above; [None] clones program text. *)
let rec extract_stmt config (app : Framework.App.t) graph ~keyed ~memo ~ctx mid env ~index stmt =
  let hierarchy = app.Framework.App.hierarchy in
  let resources = Layouts.Package.resources app.package in
  let is_view cls = Framework.Views.is_view_class hierarchy cls in
  let site = { Node.s_in = mid; s_stmt = index } in
  let v name = var mid (ctx.rename name) in
  match stmt with
  | Jir.Ast.New (x, cls) ->
      let alloc = Graph.fresh_alloc graph ~cls ~site in
      let value = if is_view cls then Node.V_view (Node.V_alloc alloc) else Node.V_obj alloc in
      Graph.seed graph (v x) value
  | Jir.Ast.Copy (x, y) -> Graph.add_edge graph (v y) (v x)
  | Jir.Ast.Read_field (x, _, f) -> Graph.add_edge graph (Node.N_field f) (v x)
  | Jir.Ast.Write_field (_, f, y) -> Graph.add_edge graph (v y) (Node.N_field f)
  | Jir.Ast.Read_layout_id (x, name) ->
      Graph.seed graph (v x) (Node.V_layout_id (Layouts.Resource.layout_id resources name))
  | Jir.Ast.Read_view_id (x, name) ->
      Graph.seed graph (v x) (Node.V_view_id (Layouts.Resource.view_id resources name))
  | Jir.Ast.Read_layout_top x -> Graph.seed graph (v x) Node.V_layout_top
  | Jir.Ast.Read_view_top x -> Graph.seed graph (v x) Node.V_view_id_top
  | Jir.Ast.Const_int (x, n) -> (
      match value_of_int resources n with
      | Some value -> Graph.seed graph (v x) value
      | None -> ())
  | Jir.Ast.Const_null _ -> ()
  | Jir.Ast.Cast (x, cls, y) ->
      let kind = if config.Config.cast_filtering then Graph.E_cast cls else Graph.E_direct in
      Graph.add_edge graph ~kind (v y) (v x)
  | Jir.Ast.Return (Some x) -> Graph.add_edge graph (v x) ctx.ret_target
  | Jir.Ast.Return None -> ()
  | Jir.Ast.Invoke (lhs, recv, name, args) -> (
      let arity = List.length args in
      (* Inlining-based context sensitivity: clone a small, uniquely
         resolved callee instead of sharing its locals across all call
         sites.  Abstraction names (allocation/op/inflation sites) stay
         structural, so clones of the same site denote the same
         objects; only the local value flow is separated. *)
      let app_targets, may_reach_platform, inlinable =
        call_info config hierarchy ~memo env ~depth:ctx.depth ~stack:ctx.stack recv name arity
      in
      match (inlinable, app_targets, keyed) with
      | true, [ (owner, target) ], Some tcache ->
          (* Context-keyed boundary: the top-level statement walk stays
             structural, but the clone body is expanded entirely in id
             space.  Clone numbering is shared with the inlining path
             (same counter, same pre-order mint), so the ⟨node, ctx⟩
             keys decode to exactly the [$n] names inlining would
             emit. *)
          let tmid = Node.mid_of_meth owner target in
          incr ctx.clones;
          let clone = !(ctx.clones) in
          let it = Graph.interner graph in
          let cnode name =
            Intern.ctx_node it ~base:(Graph.node_id graph (var tmid name)) ~ctx:clone
          in
          let vid name = Graph.node_id graph (v name) in
          Graph.add_edge_ids graph (vid recv) (cnode Jir.Ast.this_var);
          List.iter2
            (fun arg (param, _) -> Graph.add_edge_ids graph (vid arg) (cnode param))
            args target.m_params;
          let k_ret =
            match lhs with
            | Some z ->
                let ret = cnode "$ret" in
                Graph.add_edge_ids graph ret (vid z);
                Lazy.from_val ret
            | None -> lazy (cnode "$ret")
          in
          let kctx =
            { k_depth = ctx.depth + 1; k_clone = clone; k_ret; k_stack = tmid :: ctx.stack;
              k_clones = ctx.clones }
          in
          expand_template config app graph tcache ~memo ~kctx ~owner target
      | true, [ (owner, target) ], None ->
          let tmid = Node.mid_of_meth owner target in
          let suffix = fresh_clone_suffix ctx in
          let rename' name = name ^ suffix in
          Graph.add_edge graph (v recv) (var tmid (rename' Jir.Ast.this_var));
          List.iter2
            (fun arg (param, _) -> Graph.add_edge graph (v arg) (var tmid (rename' param)))
            args target.m_params;
          let ret_target =
            match lhs with
            | Some z ->
                let ret_var = var tmid (rename' "$ret") in
                Graph.add_edge graph ret_var (v z);
                ret_var
            | None -> var tmid (rename' "$ret")
          in
          let ctx' =
            { ctx with depth = ctx.depth + 1; rename = rename'; ret_target; stack = tmid :: ctx.stack }
          in
          let env' = typing_env_memo app memo ~owner target in
          List.iteri
            (fun index stmt ->
              extract_stmt config app graph ~keyed ~memo ~ctx:ctx' tmid env' ~index stmt)
            target.m_body
      | _ ->
          List.iter
            (fun (owner, (target : Jir.Ast.meth)) ->
              let tmid = Node.mid_of_meth owner target in
              Graph.add_edge graph (v recv) (var tmid Jir.Ast.this_var);
              List.iter2
                (fun arg (param, _) -> Graph.add_edge graph (v arg) (var tmid param))
                args target.m_params;
              Option.iter (fun z -> Graph.add_edge graph (Node.N_ret tmid) (v z)) lhs)
            app_targets;
          if may_reach_platform then (
            match Framework.Api.classify ~name ~arity with
            | Some kind ->
                ignore
                  (Graph.fresh_op graph ~kind ~site ~recv:(v recv)
                     ~args:(List.map v args)
                     ~out:(Option.map v lhs))
            | None -> ()))

let extract_meth config app graph ~keyed ~memo ~clones ~owner (m : Jir.Ast.meth) =
  let mid = Node.mid_of_meth owner m in
  let env = typing_env_memo app memo ~owner m in
  let ctx = top_ctx ~clones mid in
  List.iteri
    (fun index stmt -> extract_stmt config app graph ~keyed ~memo ~ctx mid env ~index stmt)
    m.m_body

(* Seed the implicit activity instance into [this] of every lifecycle
   callback the class (or an application superclass) defines: the
   paper's [t = new a(); t.m()] modeling. *)
let seed_activity_callbacks (app : Framework.App.t) graph (cls : Jir.Ast.cls) =
  List.iter
    (fun (name, arity) ->
      match Jir.Hierarchy.resolve app.hierarchy cls.c_name { Jir.Ast.mk_name = name; mk_arity = arity } with
      | Some (owner, m) ->
          Graph.seed graph (var (Node.mid_of_meth owner m) Jir.Ast.this_var) (Node.V_act cls.c_name)
      | None -> ())
    Framework.Lifecycle.activity_callbacks;
  (* Menu extension: onCreateOptionsMenu receives the activity's
     implicit menu object; onOptionsItemSelected runs on the activity
     (its item parameter is fed by the solver at Menu_add sites). *)
  let seed_menu_callback (name, arity) param_value =
    match
      Jir.Hierarchy.resolve app.hierarchy cls.c_name { Jir.Ast.mk_name = name; mk_arity = arity }
    with
    | Some (owner, m) ->
        let tmid = Node.mid_of_meth owner m in
        Graph.seed graph (var tmid Jir.Ast.this_var) (Node.V_act cls.c_name);
        (match (param_value, m.m_params) with
        | Some value, (param, _) :: _ -> Graph.seed graph (var tmid param) value
        | _ -> ())
    | None -> ()
  in
  seed_menu_callback Framework.Lifecycle.on_create_options_menu
    (Some (Node.V_view (Node.V_alloc (Node.menu_site cls.c_name))));
  seed_menu_callback Framework.Lifecycle.on_options_item_selected None

(* Dialogs (extension): platform invokes lifecycle callbacks on dialog
   objects created by the application. *)
let seed_dialog_callbacks (app : Framework.App.t) graph =
  List.iter
    (fun (site : Node.alloc_site) ->
      if Framework.Views.is_dialog_class app.hierarchy site.a_cls then
        List.iter
          (fun (name, arity) ->
            match
              Jir.Hierarchy.resolve app.hierarchy site.a_cls { Jir.Ast.mk_name = name; mk_arity = arity }
            with
            | Some (owner, m) ->
                Graph.seed graph (var (Node.mid_of_meth owner m) Jir.Ast.this_var) (Node.V_obj site)
            | None -> ())
          Framework.Lifecycle.dialog_callbacks)
    (Graph.allocs graph)

let run ?interner config (app : Framework.App.t) =
  (* Clone names must be deterministic per extraction, not per process:
     two runs over the same app (e.g. the naive/delta equivalence
     tests, or Diff) must name inlined variables identically.  The
     counter lives here rather than at module level so extractions
     running concurrently on separate domains cannot interleave. *)
  let clones = ref 0 in
  let interner =
    match interner with
    | Some it -> it
    | None ->
        (* Fresh graphs sit on the frozen shared tier when the config
           allows, so the resource vocabulary resolves by arithmetic
           instead of being re-interned per task.  Donor interners
           (incremental warm path) are passed through untouched. *)
        if config.Config.shared_intern then Intern.create ~shared:(Intern.shared_tier ()) ()
        else Intern.create ()
  in
  let graph = Graph.create ~interner () in
  (* Context-keyed clone expansion only pays off on the interned engine
     (the structural engines never read the id-level stores), so
     structural solvers always take the inlining path regardless of the
     flag.  The template cache is per-extraction: it captures base ids
     of this graph's interner. *)
  let keyed =
    if
      config.Config.ctx_keyed && config.Config.inline_depth > 0
      && config.Config.solver = Config.Interned
    then Some (Hashtbl.create 64 : tcache)
    else None
  in
  let memo = fresh_memo () in
  List.iter
    (fun (cls : Jir.Ast.cls) ->
      List.iter (extract_meth config app graph ~keyed ~memo ~clones ~owner:cls.c_name) cls.c_methods)
    app.program.p_classes;
  List.iter (seed_activity_callbacks app graph) (Framework.App.activity_classes app);
  if config.Config.model_dialogs then seed_dialog_callbacks app graph;
  graph
