(** Construction of the constraint graph from an application
    (the first phase of Section 4.3).

    Every application method is considered executable; polymorphic
    calls are resolved with CHA over static receiver types
    ({!Jir.Typing} supplies them); calls that reach the platform are
    recognized as operation nodes via {!Framework.Api.classify};
    platform callbacks are modeled by seeding activity values into the
    [this] of lifecycle callbacks. *)

val run : ?interner:Intern.t -> Config.t -> Framework.App.t -> Graph.t
(** Build the (unsolved) constraint graph: locations, flow edges,
    operation nodes, allocation sites, and initial-value seeds.
    [?interner] pre-seeds the id pools so an incremental re-extraction
    keeps ids stable with the previous solve. *)
