type stats = {
  iterations : int;
  propagations : int;
  op_applications : int;
  delta_pushes : int;
  desc_cache_hits : int;
  desc_cache_misses : int;
  interned_values : int;  (** distinct interned abstract values (interned solver, else 0) *)
  interned_nodes : int;  (** distinct interned locations (interned solver, else 0) *)
  bitset_words : int;  (** words allocated across solution-set bitsets (interned solver, else 0) *)
  union_calls : int;  (** word-level bitset union calls on direct edges (interned solver, else 0) *)
  scc_count : int;  (** direct-edge flow SCCs at freeze time (interned solver, else 0) *)
  largest_scc : int;  (** members in the largest direct-edge SCC (interned solver, else 0) *)
  ctx_count : int;
      (** distinct call-string contexts (clone numbers) minted by the
          context-keyed extraction (interned solver with [ctx_keyed],
          else 0) *)
  ctx_keys : int;  (** distinct ⟨node, ctx⟩ keys interned (ditto) *)
  warm_solve : bool;  (** solved incrementally from a previous solution *)
  dirty_comps : int;  (** condensation components invalidated by the edit script (warm solves) *)
  reused_comps : int;  (** components whose solution sets were restored by aliasing (warm solves) *)
  fallback : string option;
      (** why an incremental request fell back to a full solve, if it did *)
}

(* Can a value pass through a cast to [cls]?  Sound filtering: the
   abstract object's dynamic class is known exactly, so the cast
   succeeds iff it is a subtype of [cls].  Unknown classes pass. *)
let passes_cast hierarchy cls value =
  let compatible c = (not (Jir.Hierarchy.mem hierarchy c)) || Jir.Hierarchy.subtype hierarchy c cls in
  if not (Jir.Hierarchy.mem hierarchy cls) then true
  else
    match value with
    | Node.V_view v -> compatible (Node.class_of_view v)
    | Node.V_obj a -> compatible a.a_cls
    | Node.V_act a -> compatible a
    | Node.V_layout_id _ | Node.V_view_id _ -> false
    | Node.V_layout_top | Node.V_view_id_top -> false

type state = {
  config : Config.t;
  app : Framework.App.t;
  graph : Graph.t;
  worklist : Node.t Util.Worklist.t;
  descend : include_self:bool -> Node.view_abs -> Graph.View_set.t;
      (** descendants closure; memoized under the delta solver *)
  indexed_find : bool;
      (** resolve FINDVIEW through the reverse id index (delta solver);
        the naive path filters the closure, spelling the rule literally *)
  mutable propagations : int;
  mutable op_applications : int;
  mutable delta_pushes : int;
  mutable dirty : bool;  (** a set or relation grew during the current op pass *)
}

let push_value state node value =
  if Graph.add_value state.graph node value then begin
    Util.Worklist.add state.worklist node;
    state.dirty <- true
  end

let mark state changed = if changed then state.dirty <- true

(* Worklist propagation of points-to sets along flow edges, pushing
   full sets (naive solver). *)
let propagate_full state =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      let values = Graph.set_of state.graph node in
      List.iter
        (fun (kind, dst) ->
          Graph.VS.iter
            (fun value ->
              let passes =
                match kind with
                | Graph.E_direct -> true
                | Graph.E_cast cls -> passes_cast hierarchy cls value
              in
              if passes && Graph.add_value state.graph dst value then
                Util.Worklist.add state.worklist dst)
            values)
        (Graph.succs state.graph node))

(* Semi-naive propagation: push only each node's delta (the values that
   arrived since its last drain).  Sound because flow edges are static
   during solving, so every (value, edge) pair is attempted exactly
   once.  [changed] fires for every node whose set grew, letting the
   caller schedule the ops reading it. *)
let propagate_delta state ~changed =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      match Graph.take_delta state.graph node with
      | [] -> ()
      | delta ->
          List.iter
            (fun (kind, dst) ->
              List.iter
                (fun value ->
                  state.delta_pushes <- state.delta_pushes + 1;
                  let passes =
                    match kind with
                    | Graph.E_direct -> true
                    | Graph.E_cast cls -> passes_cast hierarchy cls value
                  in
                  if passes && Graph.add_value state.graph dst value then
                    Util.Worklist.add state.worklist dst)
                delta)
            (Graph.succs state.graph node);
          changed node)

(* Values at the argument location of an op, view-id constants only. *)
let view_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_view_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let layout_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_layout_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let views_at state node = Graph.views_of state.graph node

(* Unknown-id markers at an op input ([Inflate(⊤)] / [FindView(v, ⊤)]
   / [SetId(v, ⊤)]). *)
let top_layout_at state node = Graph.VS.mem Node.V_layout_top (Graph.set_of state.graph node)

let top_view_id_at state node = Graph.VS.mem Node.V_view_id_top (Graph.set_of state.graph node)

(* Every [R.layout] id of the package: a ⊤ layout argument may name any
   of them (reflection, computed resource names). *)
let all_layout_ids state =
  let package = state.app.Framework.App.package in
  let resources = Layouts.Package.resources package in
  List.filter_map
    (fun (def : Layouts.Layout.def) -> Layouts.Resource.find_layout_id resources def.name)
    (Layouts.Package.layouts package)

(* Content holders among the values at a location: activities, plus
   dialog objects when the extension is enabled. *)
let holders_at state node =
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_act a -> Node.H_act a :: acc
      | Node.V_obj site
        when state.config.Config.model_dialogs
             && Framework.Views.is_dialog_class state.app.hierarchy site.a_cls ->
          Node.H_dialog site :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

(* Listener objects among the values at a location, restricted to
   those actually implementing the interface being registered. *)
let listeners_at state iface node =
  let implements cls =
    Jir.Hierarchy.subtype state.app.Framework.App.hierarchy cls iface.Framework.Listeners.i_name
  in
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_obj site when implements site.a_cls -> Node.L_alloc site :: acc
      | Node.V_view view when implements (Node.class_of_view view) ->
          (* custom view classes can be their own listeners *)
          (match view with
          | Node.V_alloc site -> Node.L_alloc site :: acc
          | Node.V_infl _ -> acc)
      | Node.V_act a when implements a -> Node.L_act a :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

let inflate_at state ~site lid =
  let package = state.app.Framework.App.package in
  match Layouts.Package.find_by_layout_id package lid with
  | None -> None
  | Some def ->
      let already = Graph.find_inflation state.graph ~site ~layout:def.name <> None in
      let views =
        Inflate.instantiate state.graph
          ~resources:(Layouts.Package.resources package)
          ~site def
      in
      if not already then state.dirty <- true;
      Some (Inflate.root views)

(* The implicit callback of SETLISTENER: for handler [n] of the
   listener's class, inject listener -> this_n and view -> view-param_n
   (the [y.n(x)] modeling at the end of Section 3). *)
let inject_handler_flows state view listener iface =
  let hierarchy = state.app.Framework.App.hierarchy in
  let cls, listener_value =
    match listener with
    | Node.L_alloc site -> (site.Node.a_cls, Node.V_obj site)
    | Node.L_act a -> (a, Node.V_act a)
  in
  List.iter
    (fun (h : Framework.Listeners.handler) ->
      match
        Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
      with
      | Some (owner, m) ->
          let tmid = Node.mid_of_meth owner m in
          push_value state (Node.N_var (tmid, Jir.Ast.this_var)) listener_value;
          (match h.h_view_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
              | None -> ())
          | None -> ());
          (* adapter-view events: the item parameter receives the
             registered view's children (item views) *)
          (match h.h_item_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) ->
                  Graph.View_set.iter
                    (fun child ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view child))
                    (Graph.children_of state.graph view)
              | None -> ())
          | None -> ())
      | None -> ())
    iface.Framework.Listeners.i_handlers

(* find(view, id): descendants (reflexively) of the receiver carrying
   the id — rule FINDVIEW1's [ancestorOf] + [=> id] conditions.  Both
   paths compute the same set; the indexed one starts from the few
   views carrying [id] rather than the whole closure. *)
let find_in_hierarchy state root id =
  let scope = state.descend ~include_self:true root in
  let base =
    if state.indexed_find then Graph.View_set.inter (Graph.views_by_id state.graph id) scope
    else
      Graph.View_set.filter (fun w -> Graph.Int_set.mem id (Graph.ids_of_view state.graph w)) scope
  in
  (* A view whose id row carries the ⊤ sentinel (SetId(v, ⊤)) matches
     any queried id.  The sentinel only enters rows on ⊤ graphs, so
     non-⊤ apps take the unchanged fast path. *)
  if Graph.has_top state.graph then
    Graph.View_set.union base
      (Graph.View_set.inter (Graph.views_by_id state.graph Node.top_view_id_raw) scope)
  else base

(* FindView(v, ⊤): the query may name any id, so it resolves to every
   view in scope carrying at least one id. *)
let find_any_id state root =
  Graph.View_set.filter
    (fun w -> not (Graph.Int_set.is_empty (Graph.ids_of_view state.graph w)))
    (state.descend ~include_self:true root)

(* [note_ret] lets the delta solver register the dynamically-resolved
   [N_ret] locations an op reads (fragment/adapter callbacks), which a
   static receiver/argument index cannot see. *)
let apply_op state ?(note_ret = fun (_ : Node.t) -> ()) (op : Graph.op) =
  let g = state.graph in
  let out value = Option.iter (fun node -> push_value state node value) op.op_out in
  let out_view view = out (Node.V_view view) in
  match op.site.o_kind with
  | Framework.Api.Inflate ->
      let arg0 = List.nth_opt op.op_args 0 in
      Option.iter
        (fun arg ->
          let lids = layout_ids_at state arg in
          (* Inflate(⊤): the unresolved id may name any layout. *)
          let lids = if top_layout_at state arg then all_layout_ids state @ lids else lids in
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  out_view root;
                  (* inflate(id, parent): the new hierarchy may be
                     attached to the given container. *)
                  (match List.nth_opt op.op_args 1 with
                  | Some parent_arg ->
                      List.iter
                        (fun parent -> mark state (Graph.add_child g ~parent ~child:root))
                        (views_at state parent_arg)
                  | None -> ())
              | None -> ())
            lids)
        arg0
  | Framework.Api.Set_content ->
      let holders = holders_at state op.op_recv in
      Option.iter
        (fun arg ->
          (* setContentView(int): rule INFLATE2 *)
          let lids = layout_ids_at state arg in
          let lids = if top_layout_at state arg then all_layout_ids state @ lids else lids in
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  List.iter (fun h -> mark state (Graph.add_holder_root g h root)) holders
              | None -> ())
            lids;
          (* setContentView(View): rule ADDVIEW1 *)
          List.iter
            (fun view -> List.iter (fun h -> mark state (Graph.add_holder_root g h view)) holders)
            (views_at state arg))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Add_view ->
      Option.iter
        (fun arg ->
          List.iter
            (fun parent ->
              List.iter
                (fun child -> mark state (Graph.add_child g ~parent ~child))
                (views_at state arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_id ->
      Option.iter
        (fun arg ->
          let ids = view_ids_at state arg in
          (* SetId(v, ⊤): record the sentinel; such a row matches any
             later query (see [find_in_hierarchy]). *)
          let ids = if top_view_id_at state arg then Node.top_view_id_raw :: ids else ids in
          List.iter
            (fun view -> List.iter (fun id -> mark state (Graph.add_view_id g view id)) ids)
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_listener iface ->
      Option.iter
        (fun arg ->
          List.iter
            (fun view ->
              List.iter
                (fun listener ->
                  mark state
                    (Graph.add_view_listener g view listener ~iface:iface.Framework.Listeners.i_name);
                  if state.config.Config.listener_callbacks then
                    inject_handler_flows state view listener iface)
                (listeners_at state iface arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_view ->
      Option.iter
        (fun arg ->
          (* FINDVIEW1 starts from receiver views; FINDVIEW2 from the
             roots of receiver activities/dialogs. *)
          let over_scope find =
            List.iter
              (fun v -> Graph.View_set.iter out_view (find v))
              (views_at state op.op_recv);
            List.iter
              (fun h ->
                Graph.View_set.iter
                  (fun root -> Graph.View_set.iter out_view (find root))
                  (Graph.roots_of_holder g h))
              (holders_at state op.op_recv)
          in
          List.iter
            (fun id -> over_scope (fun root -> find_in_hierarchy state root id))
            (view_ids_at state arg);
          if top_view_id_at state arg then over_scope (fun root -> find_any_id state root))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_one scope ->
      List.iter
        (fun v ->
          let results =
            match scope with
            | Framework.Api.Children when state.config.Config.findone_refinement ->
                Graph.children_of g v
            | Framework.Api.Children | Framework.Api.Descendants ->
                state.descend ~include_self:false v
          in
          Graph.View_set.iter out_view results)
        (views_at state op.op_recv)
  | Framework.Api.Get_parent ->
      List.iter
        (fun v -> Graph.View_set.iter out_view (Graph.parents_of g v))
        (views_at state op.op_recv)
  | Framework.Api.Pass_through ->
      (* the result stands for the receiver (e.g. a fragment manager
         for its activity) *)
      Graph.VS.iter (fun value -> out value) (Graph.set_of g op.op_recv)
  | Framework.Api.Fragment_add ->
      (* Fragment extension: the fragment's onCreateView callback runs
         and its resulting views are attached under the views carrying
         the container id in the activity's hierarchy. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let fragments =
        match op.op_args with
        | _ :: frag_arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_fragment_class hierarchy site.a_cls ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g frag_arg) []
        | _ -> []
      in
      let container_ids =
        match op.op_args with id_arg :: _ -> view_ids_at state id_arg | [] -> []
      in
      let top_container =
        match op.op_args with id_arg :: _ -> top_view_id_at state id_arg | [] -> false
      in
      let containers =
        List.concat_map
          (fun h ->
            Graph.View_set.fold
              (fun root acc ->
                let acc =
                  if top_container then Graph.View_set.elements (find_any_id state root) @ acc
                  else acc
                in
                List.fold_left
                  (fun acc id -> Graph.View_set.elements (find_in_hierarchy state root id) @ acc)
                  acc container_ids)
              (Graph.roots_of_holder g h) [])
          (holders_at state op.op_recv)
      in
      List.iter
        (fun (fragment : Node.alloc_site) ->
          match
            Jir.Hierarchy.resolve hierarchy fragment.a_cls
              { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
          with
          | Some (owner, m) ->
              let tmid = Node.mid_of_meth owner m in
              push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
              note_ret (Node.N_ret tmid);
              let created = Graph.views_of g (Node.N_ret tmid) in
              List.iter
                (fun parent ->
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent ~child))
                    created)
                containers
          | None -> ())
        fragments
  | Framework.Api.Menu_add ->
      (* Menu extension: mint a MenuItem per site, attach it under each
         receiver menu, and feed the owning activity's
         onOptionsItemSelected callback with it. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let item = Node.V_alloc (Node.menu_item_site op.site.o_site) in
      List.iter
        (fun menu ->
          if Jir.Hierarchy.subtype hierarchy (Node.class_of_view menu) "Menu" then begin
            mark state (Graph.add_child g ~parent:menu ~child:item);
            out_view item;
            (* add(group, itemId, order, title): the item id *)
            (match op.op_args with
            | _ :: id_arg :: _ ->
                let ids = view_ids_at state id_arg in
                let ids =
                  if top_view_id_at state id_arg then Node.top_view_id_raw :: ids else ids
                in
                List.iter (fun id -> mark state (Graph.add_view_id g item id)) ids
            | _ -> ());
            match menu with
            | Node.V_alloc site -> (
                match Node.menu_owner site with
                | Some activity -> (
                    match
                      Jir.Hierarchy.resolve hierarchy activity
                        {
                          Jir.Ast.mk_name = fst Framework.Lifecycle.on_options_item_selected;
                          mk_arity = snd Framework.Lifecycle.on_options_item_selected;
                        }
                    with
                    | Some (owner, m) -> (
                        let tmid = Node.mid_of_meth owner m in
                        match m.m_params with
                        | (param, _) :: _ ->
                            push_value state (Node.N_var (tmid, param)) (Node.V_view item)
                        | [] -> ())
                    | None -> ())
                | None -> ())
            | Node.V_infl _ -> ()
          end)
        (views_at state op.op_recv)
  | Framework.Api.Set_adapter ->
      (* Adapter extension: run the adapter's getView callback and make
         its returned views children of the adapter view. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let adapters =
        match op.op_args with
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Jir.Hierarchy.subtype hierarchy site.a_cls "Adapter" ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
        | [] -> []
      in
      List.iter
        (fun view ->
          List.iter
            (fun (adapter : Node.alloc_site) ->
              match
                Jir.Hierarchy.resolve hierarchy adapter.a_cls
                  { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
              with
              | Some (owner, m) ->
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj adapter);
                  (* parent parameter is the adapter view *)
                  (match List.nth_opt m.m_params 2 with
                  | Some (param, _) ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view view)
                  | None -> ());
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            adapters)
        (views_at state op.op_recv)
  | Framework.Api.Start_activity ->
      (* Extension: inter-component control flow.  Sources are the
         activities the call may execute on; targets are the activity
         tokens reaching the argument. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let sources =
        Graph.VS.fold
          (fun v acc -> match v with Node.V_act a -> a :: acc | _ -> acc)
          (Graph.set_of g op.op_recv) []
      in
      let targets =
        match op.op_args with
        | [] -> []
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_activity_class hierarchy site.a_cls ->
                    site.a_cls :: acc
                | Node.V_act a -> a :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
      in
      List.iter
        (fun from_ ->
          List.iter (fun to_ -> mark state (Graph.add_transition g ~from_ ~to_)) targets)
        sources

(* Declarative listeners (android:onClick): views in a holder's
   hierarchy carrying an onClick handler name behave as if the holder
   registered itself as an OnClickListener whose handler is that
   method. *)
let register_declarative state holder view =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  let label = match holder with Node.H_act a -> a | Node.H_dialog site -> site.Node.a_cls in
  List.iter
    (fun handler_name ->
      match
        Jir.Hierarchy.resolve hierarchy label { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
      with
      | Some (owner, m) ->
          let listener =
            match holder with
            | Node.H_act a -> Node.L_act a
            | Node.H_dialog site -> Node.L_alloc site
          in
          mark state (Graph.add_view_listener g view listener ~iface:"OnClickListener");
          if state.config.Config.listener_callbacks then begin
            let tmid = Node.mid_of_meth owner m in
            push_value state
              (Node.N_var (tmid, Jir.Ast.this_var))
              (match holder with
              | Node.H_act a -> Node.V_act a
              | Node.H_dialog site -> Node.V_obj site);
            match m.m_params with
            | (param, _) :: _ -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
            | [] -> ()
          end
      | None -> ())
    (Graph.onclicks_of state.graph view)

let apply_declarative_handlers state =
  let g = state.graph in
  List.iter
    (fun holder ->
      Graph.View_set.iter
        (fun root ->
          Graph.View_set.iter
            (fun view -> register_declarative state holder view)
            (state.descend ~include_self:true root))
        (Graph.roots_of_holder g holder))
    (Graph.holders g)

(* Same registrations, driven from the views that actually carry a
   handler: [view] sits in [holder]'s hierarchy iff some root of
   [holder] is a (reflexive) ancestor of [view].  Avoids walking whole
   hierarchies when almost no view declares an onClick. *)
let apply_declarative_handlers_indexed state =
  let g = state.graph in
  let holders = Graph.holders g in
  List.iter
    (fun view ->
      let above = Graph.ancestors g view in
      List.iter
        (fun holder ->
          let reaches =
            Graph.View_set.exists
              (fun root -> Graph.View_set.mem root above)
              (Graph.roots_of_holder g holder)
          in
          if reaches then register_declarative state holder view)
        holders)
    (Graph.views_with_onclick g)

(* Declaratively placed fragments (<fragment android:name="F"/>): the
   platform instantiates F during inflation and attaches the views
   returned by F.onCreateView under the placeholder node. *)
let apply_declared_fragments state ?(note_ret = fun (_ : Node.t) -> ()) () =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  List.iter
    (fun view ->
      match view with
      | Node.V_infl infl ->
          List.iter
            (fun cls ->
              match
                Jir.Hierarchy.resolve hierarchy cls
                  { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
              with
              | Some (owner, m) ->
                  let fragment = Node.declared_fragment_site cls infl in
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            (Graph.declared_fragments_of g view)
      | Node.V_alloc _ -> ())
    (Graph.views_with_declared_fragments g)

let seed_and_count state =
  List.iter
    (fun (node, values) -> Graph.VS.iter (fun v -> push_value state node v) values)
    (Graph.seeds state.graph)

(* The reference fixed point: re-apply every op against full sets each
   round until nothing changes. *)
let run_naive state =
  seed_and_count state;
  propagate_full state;
  let ops = Graph.ops state.graph in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < state.config.Config.max_iterations do
    incr iterations;
    state.dirty <- false;
    List.iter
      (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state op)
      ops;
    apply_declarative_handlers state;
    apply_declared_fragments state ();
    propagate_full state;
    continue_ := state.dirty
  done;
  if !continue_ then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

(* Scheduling targets for dynamically-registered [N_ret] reads. *)
type ret_target = T_op of Graph.op | T_frags

let ret_target_equal a b =
  match (a, b) with T_frags, T_frags -> true | T_op x, T_op y -> x == y | _ -> false

(* Semi-naive fixed point: after seeding, every op runs once; from then
   on an op is re-applied only when a location it reads grew (dependency
   index + delta propagation) or a relation it consults changed.  Ops
   still read full sets when applied, so the solution is identical to
   the naive solver's. *)
let run_delta state =
  let g = state.graph in
  Graph.set_track_deltas g true;
  let op_wl = Util.Worklist.create () in
  let schedule op = Util.Worklist.add op_wl op in
  let pending_decl = ref true in
  let pending_frags = ref true in
  let ret_deps : (Node.t, ret_target list) Hashtbl.t = Hashtbl.create 16 in
  let note_ret target node =
    let existing = Option.value (Hashtbl.find_opt ret_deps node) ~default:[] in
    if not (List.exists (ret_target_equal target) existing) then
      Hashtbl.replace ret_deps node (target :: existing)
  in
  let on_changed node =
    List.iter schedule (Graph.ops_reading g node);
    match Hashtbl.find_opt ret_deps node with
    | Some targets ->
        List.iter
          (function T_op op -> schedule op | T_frags -> pending_frags := true)
          targets
    | None -> ()
  in
  seed_and_count state;
  propagate_delta state ~changed:on_changed;
  List.iter schedule (Graph.ops g);
  let iterations = ref 0 in
  let work_remaining () =
    (not (Util.Worklist.is_empty op_wl)) || !pending_decl || !pending_frags
  in
  while work_remaining () && !iterations < state.config.Config.max_iterations do
    incr iterations;
    Util.Worklist.drain op_wl (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state ~note_ret:(fun node -> note_ret (T_op op) node) op);
    if !pending_decl then begin
      pending_decl := false;
      apply_declarative_handlers_indexed state
    end;
    if !pending_frags then begin
      pending_frags := false;
      apply_declared_fragments state ~note_ret:(note_ret T_frags) ()
    end;
    propagate_delta state ~changed:on_changed;
    let rc = Graph.take_rel_changes g in
    if rc.rc_children then begin
      List.iter schedule (Graph.ops_reading_children g);
      (* hierarchy growth can place an onClick view under a new root *)
      pending_decl := true
    end;
    if rc.rc_ids then List.iter schedule (Graph.ops_reading_ids g);
    if rc.rc_roots then begin
      List.iter schedule (Graph.ops_reading_roots g);
      pending_decl := true
    end;
    if rc.rc_onclick then pending_decl := true;
    if rc.rc_fragments then pending_frags := true
  done;
  if work_remaining () then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

(* ------------------------------------------------------------------ *)
(* Interned engine: the same semi-naive fixed point as [run_delta],
   computed over dense integer ids.  Every location, abstract value,
   view, listener entry and holder is hash-consed ([Intern]) when first
   seen; solution sets, delta sets and the view relations become
   [Util.Bitset] over those ids, and the (static) flow edges are frozen
   into CSR int arrays.  Ops decode ids back to structural values only
   at rule boundaries (hierarchy lookups, inflation, callbacks).  The
   final solution is materialized back into the graph's structural
   tables, so every downstream consumer (Analysis, Metrics, Export,
   Diff, tests) is engine-agnostic. *)

(* Growable array of per-id bitsets; a slot is allocated on first use
   so untouched ids cost one word. *)
module Slots = struct
  type t = { mutable a : Util.Bitset.t option array }

  let create () = { a = [||] }

  let ensure t i =
    let n = Array.length t.a in
    if i >= n then begin
      let cap = max 64 (max (i + 1) (2 * n)) in
      let a = Array.make cap None in
      Array.blit t.a 0 a 0 n;
      t.a <- a
    end

  let get t i =
    ensure t i;
    match t.a.(i) with
    | Some b -> b
    | None ->
        let b = Util.Bitset.create () in
        t.a.(i) <- Some b;
        b

  let find t i = if i < Array.length t.a then t.a.(i) else None

  let set t i b =
    ensure t i;
    t.a.(i) <- Some b

  (* Detach slot [i] (delta consumption): later pushes start fresh. *)
  let take t i =
    if i < Array.length t.a then begin
      let b = t.a.(i) in
      t.a.(i) <- None;
      b
    end
    else None

  let iteri f t = Array.iteri (fun i o -> match o with Some b -> f i b | None -> ()) t.a

  let total_words t =
    Array.fold_left (fun acc o -> match o with Some b -> acc + Util.Bitset.words b | None -> acc) 0 t.a
end

type istate = {
  iconfig : Config.t;
  iapp : Framework.App.t;
  igraph : Graph.t;
  it : Intern.t;
  (* frozen flow edges, SCC-condensed CSR over the node ids assigned at
     freeze time (ids >= [csr_n] are minted during solving, have no
     edges, and are their own singleton components) *)
  csr_n : int;
  nrep : int array;  (** node id -> direct-edge SCC representative, sized [csr_n] *)
  crow : int array;  (** condensed CSR over representatives *)
  cdst : int array;  (** destinations, already representatives *)
  ckind : int array;  (** -1 = direct, else cast-class sym *)
  cast_names : string array;  (** cast sym -> class name *)
  mutable cast_memo : Bytes.t array;  (** per cast sym, per value id: 0 unknown / 1 pass / 2 fail *)
  iscc_count : int;
  ilargest_scc : int;
  (* solution state *)
  sols : Slots.t;  (** SCC representative -> value-id set, shared by every member *)
  ideltas : Slots.t;  (** SCC representative -> values since last drain *)
  mutable free_deltas : Util.Bitset.t list;
      (** cleared delta sets recycled to avoid regrowing word arrays *)
  nq : int Queue.t;
  npending : Util.Bitset.t;
  (* static op index *)
  iops : Graph.op array;
  iop_recv : int array;
  iop_args : int array array;
  iop_out : int array;  (** -1 = no out location *)
  op_reads : int list array;  (** SCC representative -> op indexes reading a member *)
  children_readers : int list;
  ids_readers : int list;
  roots_readers : int list;
  (* view relations on ids *)
  ichildren : Slots.t;
  iparents : Slots.t;
  idesc_cache : (int, Util.Bitset.t) Hashtbl.t;  (** strict descendant closures *)
  mutable idesc_hits : int;
  mutable idesc_misses : int;
  iids : Slots.t;  (** view id -> rid syms *)
  iby_id : Slots.t;  (** rid sym -> view ids *)
  iroots : Slots.t;  (** holder id -> root view ids *)
  ilisteners : Slots.t;  (** view id -> listener entry ids *)
  mutable iholder_ids : int list;  (** discovery order, newest first *)
  iholders_seen : Util.Bitset.t;
  mutable irc_children : bool;
  mutable irc_ids : bool;
  mutable irc_roots : bool;
  (* warm (incremental) solving: copy-on-write over a previous solution.
     Solution sets and relation rows restored from a prior [solved] are
     aliased, never mutated in place; a borrowed row is copied the first
     time a write would grow it. *)
  mutable iwarm : bool;
  iborrowed : Util.Bitset.t;  (** reps whose [sols] slot aliases the previous solution *)
  imutated : Util.Bitset.t;  (** borrowed reps that were copied and then grew *)
  icreated : Util.Bitset.t;
      (** reps whose [sols] slot was first created during a warm solve;
          together with [iborrowed] and [imutated] this covers every
          populated slot, so capture derives its slot mask from three
          small bitsets instead of scanning the slot array *)
  ibor_children : Util.Bitset.t;
  ibor_parents : Util.Bitset.t;
  ibor_ids : Util.Bitset.t;
  ibor_by_id : Util.Bitset.t;
  ibor_roots : Util.Bitset.t;
  ibor_listeners : Util.Bitset.t;
  itouched_children : Util.Bitset.t;  (** relation rows written during a warm solve *)
  itouched_parents : Util.Bitset.t;
  itouched_ids : Util.Bitset.t;
  itouched_by_id : Util.Bitset.t;
  itouched_roots : Util.Bitset.t;
  itouched_listeners : Util.Bitset.t;
  (* write recording: while an op (or the declarative/fragment pseudo
     pass) runs, every rep it pushes to is logged, so a later patch that
     invalidates the op knows which components its values reached.
     [irec_writer] is the running op index, [Array.length iops] for the
     declarative pass, [+1] for the fragment pass, [-1] off. *)
  mutable irec_writer : int;
  irec_targets : Util.Bitset.t array;
  (* counters *)
  mutable ipropagations : int;
  mutable iop_applications : int;
  mutable idelta_pushes : int;
  mutable iunion_calls : int;
}

let ienqueue st nid = if Util.Bitset.add st.npending nid then Queue.push nid st.nq

(* THE bounds guard for mid-solve-minted ids.  The CSR and the rep
   table are sized to the node count at freeze time, but the interner
   keeps minting ids while solving (views discovered mid-solve, [this]
   / parameter variables of handler methods with empty bodies).  Every
   snapshot-sized lookup — [nrep], [crow], [op_reads] — must funnel an
   id through here first: ids >= [csr_n] are their own singleton
   components with no edges and no static readers. *)
let irep st nid = if nid < st.csr_n then st.nrep.(nid) else nid

(* Delta slots cycle constantly (detached on drain, repopulated on the
   next push); drawing from the recycle pool keeps their word arrays at
   capacity instead of regrowing from scratch each round. *)
let idelta_slot st nid =
  match Slots.find st.ideltas nid with
  | Some d -> d
  | None -> (
      match st.free_deltas with
      | d :: rest ->
          st.free_deltas <- rest;
          Slots.set st.ideltas nid d;
          d
      | [] -> Slots.get st.ideltas nid)

(* Take ownership of a borrowed solution slot before a mutating write:
   the previous solution's bitset must stay intact (it is shared with
   the captured [solved] and possibly older ones), so the slot is
   replaced with a copy. *)
let iown_sol st rid =
  let b = match Slots.find st.sols rid with Some b -> b | None -> assert false in
  Util.Bitset.remove st.iborrowed rid;
  ignore (Util.Bitset.add st.imutated rid);
  let c = Util.Bitset.copy b in
  Slots.set st.sols rid c;
  c

(* Pushes land on the component representative: one shared bitset per
   direct-edge cycle, so a value entering anywhere in a cycle is a
   single [add] instead of a propagation lap around it.

   Recording is unconditional on the writer, not gated on growth: a
   removed op's contribution must dirty every component it ever pushed
   to, even where another source supplied the same value. *)
let ipush st nid vid =
  let rid = irep st nid in
  if st.irec_writer >= 0 then ignore (Util.Bitset.add st.irec_targets.(st.irec_writer) rid);
  if st.iwarm then begin
    let present =
      match Slots.find st.sols rid with Some b -> Util.Bitset.mem b vid | None -> false
    in
    if not present then begin
      let slot =
        if Util.Bitset.mem st.iborrowed rid then iown_sol st rid
        else begin
          ignore (Util.Bitset.add st.icreated rid);
          Slots.get st.sols rid
        end
      in
      ignore (Util.Bitset.add slot vid);
      ignore (Util.Bitset.add (idelta_slot st rid) vid);
      ienqueue st rid
    end
  end
  else if Util.Bitset.add (Slots.get st.sols rid) vid then begin
    ignore (Util.Bitset.add (idelta_slot st rid) vid);
    ienqueue st rid
  end

let cast_passes st sym vid =
  let memo = st.cast_memo.(sym) in
  let memo =
    if vid >= Bytes.length memo then begin
      let nlen = max 256 (max (vid + 1) (2 * Bytes.length memo)) in
      let m = Bytes.make nlen '\000' in
      Bytes.blit memo 0 m 0 (Bytes.length memo);
      st.cast_memo.(sym) <- m;
      m
    end
    else memo
  in
  match Bytes.get memo vid with
  | '\001' -> true
  | '\002' -> false
  | _ ->
      let ok =
        passes_cast st.iapp.Framework.App.hierarchy st.cast_names.(sym)
          (Intern.value_of st.it vid)
      in
      Bytes.set memo vid (if ok then '\001' else '\002');
      ok

(* Mirror of [propagate_delta] on ids, over the SCC-condensed CSR: the
   worklist carries component representatives only (every enqueue goes
   through [ipush]/[irep]), and direct edges inside a component were
   dropped at freeze time — the shared bitset IS their fixpoint.
   Direct inter-component edges merge whole delta words; cast edges
   filter per value through the per-sym memo.  [cdst] entries are
   already representatives, so pushes stay in rep space. *)
let ipropagate st ~changed =
  while not (Queue.is_empty st.nq) do
    let rid = Queue.pop st.nq in
    Util.Bitset.remove st.npending rid;
    st.ipropagations <- st.ipropagations + 1;
    match Slots.take st.ideltas rid with
    | None -> ()
    | Some d when Util.Bitset.is_empty d ->
        st.free_deltas <- d :: st.free_deltas
    | Some d ->
        (if rid < st.csr_n then begin
           let hi = st.crow.(rid + 1) in
           let dcard = Util.Bitset.cardinal d in
           for e = st.crow.(rid) to hi - 1 do
             let dst = st.cdst.(e) in
             let k = st.ckind.(e) in
             if k < 0 then begin
               st.idelta_pushes <- st.idelta_pushes + dcard;
               st.iunion_calls <- st.iunion_calls + 1;
               let into = Slots.get st.sols dst in
               if st.iwarm then ignore (Util.Bitset.add st.icreated dst);
               (* A borrowed destination is copied only when the union
                  would actually grow it; [union_delta] on a borrowed
                  set that already holds the delta at most grows its
                  capacity, which leaves the shared bits intact. *)
               let into =
                 if
                   st.iwarm
                   && Util.Bitset.mem st.iborrowed dst
                   && not (Util.Bitset.subset d into)
                 then iown_sol st dst
                 else into
               in
               let grew = ref false in
               Util.Bitset.union_delta ~into d ~on_new:(fun vid ->
                   grew := true;
                   ignore (Util.Bitset.add (idelta_slot st dst) vid));
               if !grew then ienqueue st dst
             end
             else
               Util.Bitset.iter
                 (fun vid ->
                   st.idelta_pushes <- st.idelta_pushes + 1;
                   if cast_passes st k vid then ipush st dst vid)
                 d
           done
         end);
        Util.Bitset.clear d;
        st.free_deltas <- d :: st.free_deltas;
        changed rid
  done

(* Relation updates (id-level mirrors of the [Graph.add_*] family). *)

let iancestors st wid =
  let visited = Util.Bitset.create () in
  ignore (Util.Bitset.add visited wid);
  let q = Queue.create () in
  Queue.push wid q;
  while not (Queue.is_empty q) do
    let cur = Queue.pop q in
    match Slots.find st.iparents cur with
    | None -> ()
    | Some ps -> Util.Bitset.iter (fun p -> if Util.Bitset.add visited p then Queue.push p q) ps
  done;
  visited

let istrict_descendants st wid =
  let visited = Util.Bitset.create () in
  let q = Queue.create () in
  Queue.push wid q;
  while not (Queue.is_empty q) do
    let cur = Queue.pop q in
    match Slots.find st.ichildren cur with
    | None -> ()
    | Some cs -> Util.Bitset.iter (fun c -> if Util.Bitset.add visited c then Queue.push c q) cs
  done;
  visited

let idesc_cached st wid =
  match Hashtbl.find_opt st.idesc_cache wid with
  | Some s ->
      st.idesc_hits <- st.idesc_hits + 1;
      s
  | None ->
      st.idesc_misses <- st.idesc_misses + 1;
      let s = istrict_descendants st wid in
      Hashtbl.replace st.idesc_cache wid s;
      s

(* Insert [v] into relation row [i], copy-on-write under a warm solve:
   a borrowed row (aliased from the previous solution) is copied before
   it grows, and every row modified while warm is marked touched so the
   warm materialisation re-installs exactly those rows. *)
let rel_add st slots bor touched i v =
  match Slots.find slots i with
  | Some b when Util.Bitset.mem b v -> false
  | existing ->
      let b =
        match existing with
        | Some b when st.iwarm && Util.Bitset.mem bor i ->
            Util.Bitset.remove bor i;
            let c = Util.Bitset.copy b in
            Slots.set slots i c;
            c
        | Some b -> b
        | None -> Slots.get slots i
      in
      if st.iwarm then ignore (Util.Bitset.add touched i);
      Util.Bitset.add b v

let iadd_child st ~parent ~child =
  let grew = rel_add st st.ichildren st.ibor_children st.itouched_children parent child in
  if grew then begin
    ignore (rel_add st st.iparents st.ibor_parents st.itouched_parents child parent);
    st.irc_children <- true;
    if Hashtbl.length st.idesc_cache > 0 then
      Util.Bitset.iter (fun v -> Hashtbl.remove st.idesc_cache v) (iancestors st parent)
  end

let iadd_view_id st wid raw =
  let sym = Intern.rid st.it raw in
  if rel_add st st.iids st.ibor_ids st.itouched_ids wid sym then begin
    ignore (rel_add st st.iby_id st.ibor_by_id st.itouched_by_id sym wid);
    st.irc_ids <- true
  end

let iadd_holder_root st hid root =
  if Util.Bitset.add st.iholders_seen hid then st.iholder_ids <- hid :: st.iholder_ids;
  if rel_add st st.iroots st.ibor_roots st.itouched_roots hid root then st.irc_roots <- true

let iadd_view_listener st wid entry =
  ignore (rel_add st st.ilisteners st.ibor_listeners st.itouched_listeners wid entry)

(* Value decoders over a location's solution set. *)

(* All op-rule reads of a node's points-to set funnel through here;
   the set lives on the component representative. *)
let iter_ivalues st nid f =
  match Slots.find st.sols (irep st nid) with None -> () | Some b -> Util.Bitset.iter f b

(* Membership of a single abstract value (the ⊤ markers) at an op
   input, without walking the set: on a ⊤ graph the marker was interned
   at seeding time (or sits at its fixed shared-tier index), so a
   [None] lookup means the value cannot be anywhere. *)
let ihas_value st nid v =
  match Intern.find_value st.it v with
  | None -> false
  | Some vid -> (
      match Slots.find st.sols (irep st nid) with
      | Some b -> Util.Bitset.mem b vid
      | None -> false)

let iall_layout_ids st =
  let package = st.iapp.Framework.App.package in
  let resources = Layouts.Package.resources package in
  List.filter_map
    (fun (def : Layouts.Layout.def) -> Layouts.Resource.find_layout_id resources def.name)
    (Layouts.Package.layouts package)

let irids_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with Node.V_view_id raw -> acc := raw :: !acc | _ -> ());
  List.rev !acc

let ilayouts_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with Node.V_layout_id raw -> acc := raw :: !acc | _ -> ());
  List.rev !acc

let iviews_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      let wid = Intern.view_of_value_id st.it vid in
      if wid >= 0 then acc := wid :: !acc);
  List.rev !acc

let iholders_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with
      | Node.V_act a -> acc := Intern.holder st.it (Node.H_act a) :: !acc
      | Node.V_obj site
        when st.iconfig.Config.model_dialogs
             && Framework.Views.is_dialog_class st.iapp.Framework.App.hierarchy site.Node.a_cls ->
          acc := Intern.holder st.it (Node.H_dialog site) :: !acc
      | _ -> ());
  List.rev !acc

let ilisteners_at st iface nid =
  let implements cls =
    Jir.Hierarchy.subtype st.iapp.Framework.App.hierarchy cls iface.Framework.Listeners.i_name
  in
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with
      | Node.V_obj site when implements site.Node.a_cls -> acc := Node.L_alloc site :: !acc
      | Node.V_view view when implements (Node.class_of_view view) -> (
          match view with
          | Node.V_alloc site -> acc := Node.L_alloc site :: !acc
          | Node.V_infl _ -> ())
      | Node.V_act a when implements a -> acc := Node.L_act a :: !acc
      | _ -> ());
  List.rev !acc

(* Inflation runs structurally ([Inflate] writes the graph-side layout
   tables and memo); a fresh instantiation's subtree relations are then
   imported into the id-level stores. *)
let iinflate_at st ~site lid =
  let g = st.igraph in
  let package = st.iapp.Framework.App.package in
  match Layouts.Package.find_by_layout_id package lid with
  | None -> None
  | Some def ->
      let already = Graph.find_inflation g ~site ~layout:def.name <> None in
      let views =
        Inflate.instantiate g ~resources:(Layouts.Package.resources package) ~site def
      in
      if not already then
        List.iter
          (fun w ->
            let wid = Intern.view st.it w in
            Graph.View_set.iter
              (fun child -> iadd_child st ~parent:wid ~child:(Intern.view st.it child))
              (Graph.children_of g w);
            Graph.Int_set.iter (fun raw -> iadd_view_id st wid raw) (Graph.ids_of_view g w))
          views;
      Some (Inflate.root views)

let iinject_handler_flows st wid listener iface =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let cls, listener_vid =
    match listener with
    | Node.L_alloc site -> (site.Node.a_cls, Intern.value st.it (Node.V_obj site))
    | Node.L_act a -> (a, Intern.value st.it (Node.V_act a))
  in
  List.iter
    (fun (h : Framework.Listeners.handler) ->
      match
        Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
      with
      | Some (owner, m) ->
          let tmid = Node.mid_of_meth owner m in
          ipush st (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var))) listener_vid;
          (match h.h_view_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) ->
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, param)))
                    (Intern.value_of_view_id st.it wid)
              | None -> ())
          | None -> ());
          (match h.h_item_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) -> (
                  let pnid = Intern.node st.it (Node.N_var (tmid, param)) in
                  match Slots.find st.ichildren wid with
                  | None -> ()
                  | Some cs ->
                      Util.Bitset.iter
                        (fun c -> ipush st pnid (Intern.value_of_view_id st.it c))
                        cs)
              | None -> ())
          | None -> ())
      | None -> ())
    iface.Framework.Listeners.i_handlers

(* find(view, id) on ids: walk the (few) carriers of the id, keeping
   those inside the receiver's reflexive descendant closure.  [sym] is
   [None] when the queried raw id was never interned (no carrier) —
   the query can still resolve through ⊤-sentinel rows below. *)
let ifind st root sym f =
  let strict = idesc_cached st root in
  let walk s =
    match Slots.find st.iby_id s with
    | None -> ()
    | Some carriers ->
        Util.Bitset.iter (fun w -> if w = root || Util.Bitset.mem strict w then f w) carriers
  in
  (match sym with Some s -> walk s | None -> ());
  (* a view whose id row carries the ⊤ sentinel matches any query *)
  if Graph.has_top st.igraph then
    match Intern.rid_opt st.it Node.top_view_id_raw with
    | Some top_sym when sym <> Some top_sym -> walk top_sym
    | _ -> ()

(* find(view, ⊤): every view in scope carrying at least one id. *)
let ifind_any_id st root f =
  let strict = idesc_cached st root in
  let visit w =
    match Slots.find st.iids w with
    | Some ids when not (Util.Bitset.is_empty ids) -> f w
    | _ -> ()
  in
  visit root;
  Util.Bitset.iter (fun w -> if w <> root then visit w) strict

let iapply_op st ~note_ret oi =
  let op = st.iops.(oi) in
  let g = st.igraph in
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let out_id = st.iop_out.(oi) in
  let out vid = if out_id >= 0 then ipush st out_id vid in
  let out_view wid = out (Intern.value_of_view_id st.it wid) in
  let args = st.iop_args.(oi) in
  let arg k = if k < Array.length args then Some args.(k) else None in
  let recv = st.iop_recv.(oi) in
  match op.Graph.site.o_kind with
  | Framework.Api.Inflate ->
      Option.iter
        (fun a ->
          let lids = ilayouts_at st a in
          let lids = if ihas_value st a Node.V_layout_top then iall_layout_ids st @ lids else lids in
          List.iter
            (fun lid ->
              match iinflate_at st ~site:op.Graph.site.o_site lid with
              | Some root_view ->
                  let root = Intern.view st.it root_view in
                  ignore (Graph.add_root_layout g root_view lid);
                  out_view root;
                  (match arg 1 with
                  | Some parent_arg ->
                      List.iter
                        (fun parent -> iadd_child st ~parent ~child:root)
                        (iviews_at st parent_arg)
                  | None -> ())
              | None -> ())
            lids)
        (arg 0)
  | Framework.Api.Set_content ->
      let holders = iholders_at st recv in
      Option.iter
        (fun a ->
          let lids = ilayouts_at st a in
          let lids = if ihas_value st a Node.V_layout_top then iall_layout_ids st @ lids else lids in
          List.iter
            (fun lid ->
              match iinflate_at st ~site:op.Graph.site.o_site lid with
              | Some root_view ->
                  let root = Intern.view st.it root_view in
                  ignore (Graph.add_root_layout g root_view lid);
                  List.iter (fun h -> iadd_holder_root st h root) holders
              | None -> ())
            lids;
          List.iter
            (fun view -> List.iter (fun h -> iadd_holder_root st h view) holders)
            (iviews_at st a))
        (arg 0)
  | Framework.Api.Add_view ->
      Option.iter
        (fun a ->
          List.iter
            (fun parent ->
              List.iter (fun child -> iadd_child st ~parent ~child) (iviews_at st a))
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Set_id ->
      Option.iter
        (fun a ->
          let ids = irids_at st a in
          let ids =
            if ihas_value st a Node.V_view_id_top then Node.top_view_id_raw :: ids else ids
          in
          List.iter
            (fun wid -> List.iter (fun raw -> iadd_view_id st wid raw) ids)
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Set_listener iface ->
      Option.iter
        (fun a ->
          List.iter
            (fun wid ->
              List.iter
                (fun listener ->
                  iadd_view_listener st wid
                    (Intern.listener st.it (listener, iface.Framework.Listeners.i_name));
                  if st.iconfig.Config.listener_callbacks then
                    iinject_handler_flows st wid listener iface)
                (ilisteners_at st iface a))
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Find_view ->
      Option.iter
        (fun a ->
          let over_scope find =
            List.iter (fun v -> find v) (iviews_at st recv);
            List.iter
              (fun h ->
                match Slots.find st.iroots h with
                | None -> ()
                | Some roots -> Util.Bitset.iter (fun root -> find root) roots)
              (iholders_at st recv)
          in
          List.iter
            (fun raw ->
              over_scope (fun root -> ifind st root (Intern.rid_opt st.it raw) out_view))
            (irids_at st a);
          if ihas_value st a Node.V_view_id_top then
            over_scope (fun root -> ifind_any_id st root out_view))
        (arg 0)
  | Framework.Api.Find_one scope ->
      List.iter
        (fun v ->
          match scope with
          | Framework.Api.Children when st.iconfig.Config.findone_refinement -> (
              match Slots.find st.ichildren v with
              | None -> ()
              | Some cs -> Util.Bitset.iter out_view cs)
          | Framework.Api.Children | Framework.Api.Descendants ->
              Util.Bitset.iter out_view (idesc_cached st v))
        (iviews_at st recv)
  | Framework.Api.Get_parent ->
      List.iter
        (fun v ->
          match Slots.find st.iparents v with
          | None -> ()
          | Some ps -> Util.Bitset.iter out_view ps)
        (iviews_at st recv)
  | Framework.Api.Pass_through -> iter_ivalues st recv out
  | Framework.Api.Fragment_add ->
      let fragments =
        match arg 1 with
        | Some frag_arg ->
            let acc = ref [] in
            iter_ivalues st frag_arg (fun vid ->
                match Intern.value_of st.it vid with
                | Node.V_obj site when Framework.Views.is_fragment_class hierarchy site.Node.a_cls
                  ->
                    acc := site :: !acc
                | _ -> ());
            !acc
        | None -> []
      in
      let container_ids = match arg 0 with Some id_arg -> irids_at st id_arg | None -> [] in
      let top_container =
        match arg 0 with
        | Some id_arg -> ihas_value st id_arg Node.V_view_id_top
        | None -> false
      in
      let containers =
        List.concat_map
          (fun h ->
            match Slots.find st.iroots h with
            | None -> []
            | Some roots ->
                Util.Bitset.fold
                  (fun root acc ->
                    let acc =
                      if top_container then begin
                        let elems = ref acc in
                        ifind_any_id st root (fun w -> elems := w :: !elems);
                        !elems
                      end
                      else acc
                    in
                    List.fold_left
                      (fun acc raw ->
                        let elems = ref acc in
                        ifind st root (Intern.rid_opt st.it raw) (fun w -> elems := w :: !elems);
                        !elems)
                      acc container_ids)
                  roots [])
          (iholders_at st recv)
      in
      List.iter
        (fun (fragment : Node.alloc_site) ->
          match
            Jir.Hierarchy.resolve hierarchy fragment.a_cls
              { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
          with
          | Some (owner, m) ->
              let tmid = Node.mid_of_meth owner m in
              ipush st
                (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                (Intern.value st.it (Node.V_obj fragment));
              let rn = Intern.node st.it (Node.N_ret tmid) in
              note_ret rn;
              let created = iviews_at st rn in
              List.iter
                (fun parent -> List.iter (fun child -> iadd_child st ~parent ~child) created)
                containers
          | None -> ())
        fragments
  | Framework.Api.Menu_add ->
      let item_view = Node.V_alloc (Node.menu_item_site op.Graph.site.o_site) in
      let item = Intern.view st.it item_view in
      List.iter
        (fun menu_wid ->
          let menu = Intern.view_of st.it menu_wid in
          if Jir.Hierarchy.subtype hierarchy (Node.class_of_view menu) "Menu" then begin
            iadd_child st ~parent:menu_wid ~child:item;
            out_view item;
            (match arg 1 with
            | Some id_arg ->
                let ids = irids_at st id_arg in
                let ids =
                  if ihas_value st id_arg Node.V_view_id_top then Node.top_view_id_raw :: ids
                  else ids
                in
                List.iter (fun raw -> iadd_view_id st item raw) ids
            | None -> ());
            match menu with
            | Node.V_alloc site -> (
                match Node.menu_owner site with
                | Some activity -> (
                    match
                      Jir.Hierarchy.resolve hierarchy activity
                        {
                          Jir.Ast.mk_name = fst Framework.Lifecycle.on_options_item_selected;
                          mk_arity = snd Framework.Lifecycle.on_options_item_selected;
                        }
                    with
                    | Some (owner, m) -> (
                        let tmid = Node.mid_of_meth owner m in
                        match m.m_params with
                        | (param, _) :: _ ->
                            ipush st
                              (Intern.node st.it (Node.N_var (tmid, param)))
                              (Intern.value_of_view_id st.it item)
                        | [] -> ())
                    | None -> ())
                | None -> ())
            | Node.V_infl _ -> ()
          end)
        (iviews_at st recv)
  | Framework.Api.Set_adapter ->
      let adapters =
        match arg 0 with
        | Some a ->
            let acc = ref [] in
            iter_ivalues st a (fun vid ->
                match Intern.value_of st.it vid with
                | Node.V_obj site when Jir.Hierarchy.subtype hierarchy site.Node.a_cls "Adapter" ->
                    acc := site :: !acc
                | _ -> ());
            !acc
        | None -> []
      in
      List.iter
        (fun wid ->
          List.iter
            (fun (adapter : Node.alloc_site) ->
              match
                Jir.Hierarchy.resolve hierarchy adapter.a_cls
                  { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
              with
              | Some (owner, m) ->
                  let tmid = Node.mid_of_meth owner m in
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                    (Intern.value st.it (Node.V_obj adapter));
                  (match List.nth_opt m.m_params 2 with
                  | Some (param, _) ->
                      ipush st
                        (Intern.node st.it (Node.N_var (tmid, param)))
                        (Intern.value_of_view_id st.it wid)
                  | None -> ());
                  let rn = Intern.node st.it (Node.N_ret tmid) in
                  note_ret rn;
                  List.iter (fun child -> iadd_child st ~parent:wid ~child) (iviews_at st rn)
              | None -> ())
            adapters)
        (iviews_at st recv)
  | Framework.Api.Start_activity ->
      let sources = ref [] in
      iter_ivalues st recv (fun vid ->
          match Intern.value_of st.it vid with
          | Node.V_act a -> sources := a :: !sources
          | _ -> ());
      let targets = ref [] in
      (match arg 0 with
      | Some a ->
          iter_ivalues st a (fun vid ->
              match Intern.value_of st.it vid with
              | Node.V_obj site when Framework.Views.is_activity_class hierarchy site.Node.a_cls ->
                  targets := site.Node.a_cls :: !targets
              | Node.V_act act -> targets := act :: !targets
              | _ -> ())
      | None -> ());
      List.iter
        (fun from_ ->
          List.iter (fun to_ -> ignore (Graph.add_transition g ~from_ ~to_)) !targets)
        !sources

let iregister_declarative st hid wid =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let holder = Intern.holder_of st.it hid in
  let view = Intern.view_of st.it wid in
  let label = match holder with Node.H_act a -> a | Node.H_dialog site -> site.Node.a_cls in
  List.iter
    (fun handler_name ->
      match
        Jir.Hierarchy.resolve hierarchy label { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
      with
      | Some (owner, m) ->
          let listener =
            match holder with
            | Node.H_act a -> Node.L_act a
            | Node.H_dialog site -> Node.L_alloc site
          in
          iadd_view_listener st wid (Intern.listener st.it (listener, "OnClickListener"));
          if st.iconfig.Config.listener_callbacks then begin
            let tmid = Node.mid_of_meth owner m in
            ipush st
              (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
              (Intern.value st.it
                 (match holder with
                 | Node.H_act a -> Node.V_act a
                 | Node.H_dialog site -> Node.V_obj site));
            match m.m_params with
            | (param, _) :: _ ->
                ipush st
                  (Intern.node st.it (Node.N_var (tmid, param)))
                  (Intern.value_of_view_id st.it wid)
            | [] -> ()
          end
      | None -> ())
    (Graph.onclicks_of st.igraph view)

let iapply_declarative_handlers st =
  let holder_ids = List.rev st.iholder_ids in
  List.iter
    (fun view ->
      let wid = Intern.view st.it view in
      let above = iancestors st wid in
      List.iter
        (fun hid ->
          let reaches =
            match Slots.find st.iroots hid with
            | None -> false
            | Some roots ->
                Util.Bitset.fold (fun r acc -> acc || Util.Bitset.mem above r) roots false
          in
          if reaches then iregister_declarative st hid wid)
        holder_ids)
    (Graph.views_with_onclick st.igraph)

let iapply_declared_fragments st ~note_ret =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  List.iter
    (fun view ->
      match view with
      | Node.V_infl infl ->
          let wid = Intern.view st.it view in
          List.iter
            (fun cls ->
              match
                Jir.Hierarchy.resolve hierarchy cls
                  { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
              with
              | Some (owner, m) ->
                  let fragment = Node.declared_fragment_site cls infl in
                  let tmid = Node.mid_of_meth owner m in
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                    (Intern.value st.it (Node.V_obj fragment));
                  let rn = Intern.node st.it (Node.N_ret tmid) in
                  note_ret rn;
                  List.iter
                    (fun child -> iadd_child st ~parent:wid ~child)
                    (iviews_at st rn)
              | None -> ())
            (Graph.declared_fragments_of st.igraph view)
      | Node.V_alloc _ -> ())
    (Graph.views_with_declared_fragments st.igraph)

(* Freeze: snapshot the graph's id-level structures.  Nodes were
   hash-consed as the graph was built, so everything here is integer
   work — no node is hashed again. *)
let ifreeze config app graph =
  let it = Graph.interner graph in
  let fc = Graph.frozen_flow graph in
  let csr_n = fc.Graph.fc_nodes in
  let nrep = fc.Graph.fc_rep in
  let cast_names = fc.Graph.fc_cast_names in
  let iops = Array.of_list (Graph.ops graph) in
  let ids = Graph.ops_node_ids graph in
  let iop_recv = Array.map (fun (rid, _, _) -> rid) ids in
  let iop_args = Array.map (fun (_, aids, _) -> aids) ids in
  let iop_out = Array.map (fun (_, _, oid) -> oid) ids in
  (* Readers index in rep space: a component's set growing must
     reschedule every op reading ANY member of it.  Ops are interned
     during extraction, so their recv/arg ids are always < [csr_n]. *)
  let op_reads = Array.make (max 1 csr_n) [] in
  let note nid oi =
    let r = nrep.(nid) in
    op_reads.(r) <- oi :: op_reads.(r)
  in
  Array.iteri
    (fun oi _ ->
      note iop_recv.(oi) oi;
      Array.iter (fun a -> note a oi) iop_args.(oi))
    iops;
  for nid = 0 to csr_n - 1 do
    op_reads.(nid) <- List.rev op_reads.(nid)
  done;
  let children_readers = ref [] and ids_readers = ref [] and roots_readers = ref [] in
  Array.iteri
    (fun oi op ->
      if Graph.reads_children op then children_readers := oi :: !children_readers;
      if Graph.reads_ids op then ids_readers := oi :: !ids_readers;
      if Graph.reads_roots op then roots_readers := oi :: !roots_readers)
    iops;
  {
    iconfig = config;
    iapp = app;
    igraph = graph;
    it;
    csr_n;
    nrep;
    crow = fc.Graph.fc_crow;
    cdst = fc.Graph.fc_cdst;
    ckind = fc.Graph.fc_ckind;
    cast_names;
    cast_memo = Array.init (Array.length cast_names) (fun _ -> Bytes.make 256 '\000');
    iscc_count = fc.Graph.fc_scc_count;
    ilargest_scc = fc.Graph.fc_largest_scc;
    sols = Slots.create ();
    ideltas = Slots.create ();
    free_deltas = [];
    nq = Queue.create ();
    npending = Util.Bitset.create ();
    iops;
    iop_recv;
    iop_args;
    iop_out;
    op_reads;
    children_readers = List.rev !children_readers;
    ids_readers = List.rev !ids_readers;
    roots_readers = List.rev !roots_readers;
    ichildren = Slots.create ();
    iparents = Slots.create ();
    idesc_cache = Hashtbl.create 64;
    idesc_hits = 0;
    idesc_misses = 0;
    iids = Slots.create ();
    iby_id = Slots.create ();
    iroots = Slots.create ();
    ilisteners = Slots.create ();
    iholder_ids = [];
    iholders_seen = Util.Bitset.create ();
    irc_children = false;
    irc_ids = false;
    irc_roots = false;
    iwarm = false;
    iborrowed = Util.Bitset.create ();
    imutated = Util.Bitset.create ();
    icreated = Util.Bitset.create ();
    ibor_children = Util.Bitset.create ();
    ibor_parents = Util.Bitset.create ();
    ibor_ids = Util.Bitset.create ();
    ibor_by_id = Util.Bitset.create ();
    ibor_roots = Util.Bitset.create ();
    ibor_listeners = Util.Bitset.create ();
    itouched_children = Util.Bitset.create ();
    itouched_parents = Util.Bitset.create ();
    itouched_ids = Util.Bitset.create ();
    itouched_by_id = Util.Bitset.create ();
    itouched_roots = Util.Bitset.create ();
    itouched_listeners = Util.Bitset.create ();
    irec_writer = -1;
    irec_targets = Array.init (Array.length iops + 2) (fun _ -> Util.Bitset.create ());
    ipropagations = 0;
    iop_applications = 0;
    idelta_pushes = 0;
    iunion_calls = 0;
  }

(* Shared decoders for materialisation: bitsets back to structural
   sets.  [decoder] memoizes per-representative value decoding — every
   member of a direct-edge cycle provably saturates to the same set, so
   each component's bitset is decoded once. *)
let iview_set it b =
  Util.Bitset.fold (fun wid acc -> Graph.View_set.add (Intern.view_of it wid) acc) b
    Graph.View_set.empty

let idecoder it =
  let decoded = Hashtbl.create 64 in
  fun rid b ->
    match Hashtbl.find_opt decoded rid with
    | Some vs -> vs
    | None ->
        let vs =
          Util.Bitset.fold
            (fun vid acc -> Graph.VS.add (Intern.value_of it vid) acc)
            b Graph.VS.empty
        in
        Hashtbl.add decoded rid vs;
        vs

(* Write the final id-level solution back into the graph's structural
   tables so every downstream consumer sees exactly what the structural
   engines would have produced. *)
let imaterialize st =
  let g = st.igraph in
  let it = st.it in
  let view_set b = iview_set it b in
  let non_empty f nid b = if not (Util.Bitset.is_empty b) then f nid b in
  Graph.reset_solution_tables g;
  (* Points-to sets are solved per SCC representative; expand back to
     member nodes here (including ids minted mid-solve, which are their
     own reps). *)
  let decode = idecoder it in
  for nid = 0 to Intern.node_count it - 1 do
    let rid = irep st nid in
    match Slots.find st.sols rid with
    | Some b when not (Util.Bitset.is_empty b) ->
        Graph.install_set g (Intern.node_of it nid) (decode rid b)
    | _ -> ()
  done;
  Slots.iteri
    (non_empty (fun wid b -> Graph.install_children g (Intern.view_of it wid) (view_set b)))
    st.ichildren;
  Slots.iteri
    (non_empty (fun wid b -> Graph.install_parents g (Intern.view_of it wid) (view_set b)))
    st.iparents;
  Slots.iteri
    (non_empty (fun wid b ->
         Graph.install_ids g (Intern.view_of it wid)
           (Util.Bitset.fold
              (fun sym acc -> Graph.Int_set.add (Intern.rid_of it sym) acc)
              b Graph.Int_set.empty)))
    st.iids;
  Slots.iteri
    (non_empty (fun sym b -> Graph.install_views_by_id g (Intern.rid_of it sym) (view_set b)))
    st.iby_id;
  Slots.iteri
    (non_empty (fun hid b -> Graph.install_roots g (Intern.holder_of it hid) (view_set b)))
    st.iroots;
  Slots.iteri
    (non_empty (fun wid b ->
         Graph.install_listeners g (Intern.view_of it wid)
           (Util.Bitset.fold
              (fun eid acc -> Graph.Listener_set.add (Intern.listener_of it eid) acc)
              b Graph.Listener_set.empty)))
    st.ilisteners

type iret_target = IT_op of int | IT_frags

(* The interned fixed-point loop, shared by cold and warm solves.
   [init] performs the mode-specific setup (seeding and scheduling)
   once the worklist plumbing exists; [record] turns on write
   recording (needed whenever the result will be captured as a
   [solved]).  Recording never changes what is pushed, so a recorded
   solve is bit-identical to an unrecorded one. *)
let iloop st ~record ~init config =
  let op_count = Array.length st.iops in
  let op_wl = Queue.create () in
  let op_pending = Util.Bitset.create () in
  let schedule oi = if Util.Bitset.add op_pending oi then Queue.push oi op_wl in
  let pending_decl = ref false in
  let pending_frags = ref false in
  let ret_deps : (int, iret_target list) Hashtbl.t = Hashtbl.create 16 in
  (* [on_changed] fires with representative ids (the propagation
     worklist lives in rep space), so dynamic return dependencies are
     registered under the rep too. *)
  let note_ret target nid =
    let rid = irep st nid in
    let existing = Option.value (Hashtbl.find_opt ret_deps rid) ~default:[] in
    if not (List.mem target existing) then Hashtbl.replace ret_deps rid (target :: existing)
  in
  let on_changed nid =
    if nid < st.csr_n then List.iter schedule st.op_reads.(nid);
    match Hashtbl.find_opt ret_deps nid with
    | Some targets ->
        List.iter
          (function IT_op oi -> schedule oi | IT_frags -> pending_frags := true)
          targets
    | None -> ()
  in
  init ~schedule ~on_changed ~pending_decl ~pending_frags ~ret_deps ~note_ret;
  let set_writer w = if record then st.irec_writer <- w in
  let iterations = ref 0 in
  let work_remaining () =
    (not (Queue.is_empty op_wl)) || !pending_decl || !pending_frags
  in
  while work_remaining () && !iterations < config.Config.max_iterations do
    incr iterations;
    while not (Queue.is_empty op_wl) do
      let oi = Queue.pop op_wl in
      Util.Bitset.remove op_pending oi;
      st.iop_applications <- st.iop_applications + 1;
      set_writer oi;
      iapply_op st ~note_ret:(note_ret (IT_op oi)) oi;
      set_writer (-1)
    done;
    if !pending_decl then begin
      pending_decl := false;
      set_writer op_count;
      iapply_declarative_handlers st;
      set_writer (-1)
    end;
    if !pending_frags then begin
      pending_frags := false;
      set_writer (op_count + 1);
      iapply_declared_fragments st ~note_ret:(note_ret IT_frags);
      set_writer (-1)
    end;
    ipropagate st ~changed:on_changed;
    let rc = Graph.take_rel_changes st.igraph in
    let rc_children = rc.Graph.rc_children || st.irc_children in
    let rc_ids = rc.Graph.rc_ids || st.irc_ids in
    let rc_roots = rc.Graph.rc_roots || st.irc_roots in
    st.irc_children <- false;
    st.irc_ids <- false;
    st.irc_roots <- false;
    if rc_children then begin
      List.iter schedule st.children_readers;
      pending_decl := true
    end;
    if rc_ids then List.iter schedule st.ids_readers;
    if rc_roots then begin
      List.iter schedule st.roots_readers;
      pending_decl := true
    end;
    if rc.Graph.rc_onclick then pending_decl := true;
    if rc.Graph.rc_fragments then pending_frags := true
  done;
  if work_remaining () then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  (!iterations, ret_deps)

(* Cold start: push every seed, propagate, schedule every op and both
   declarative passes. *)
let icold_init st ~schedule ~on_changed ~pending_decl ~pending_frags ~ret_deps:_ ~note_ret:_ =
  pending_decl := true;
  pending_frags := true;
  List.iter
    (fun (node, values) ->
      let nid = Intern.node st.it node in
      Graph.VS.iter (fun v -> ipush st nid (Intern.value st.it v)) values)
    (Graph.seeds st.igraph);
  ipropagate st ~changed:on_changed;
  Array.iteri (fun oi _ -> schedule oi) st.iops

let istats st ~iterations ~warm_solve ~dirty_comps ~reused_comps ~fallback =
  {
    iterations;
    propagations = st.ipropagations;
    op_applications = st.iop_applications;
    delta_pushes = st.idelta_pushes;
    desc_cache_hits = st.idesc_hits;
    desc_cache_misses = st.idesc_misses;
    interned_values = Intern.value_count st.it;
    interned_nodes = Intern.node_count st.it;
    bitset_words = Slots.total_words st.sols;
    union_calls = st.iunion_calls;
    scc_count = st.iscc_count;
    largest_scc = st.ilargest_scc;
    ctx_count = Intern.ctx_count st.it;
    ctx_keys = Intern.ctx_key_count st.it;
    warm_solve;
    dirty_comps;
    reused_comps;
    fallback;
  }

let run_interned config (app : Framework.App.t) graph =
  let st = ifreeze config app graph in
  let iterations, _ret_deps = iloop st ~record:false ~init:(icold_init st) config in
  imaterialize st;
  istats st ~iterations ~warm_solve:false ~dirty_comps:0 ~reused_comps:0 ~fallback:None

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis.

   A solve can be captured as a [solved]: the interner, the frozen flow
   snapshot, the per-representative solution bitsets, relation rows,
   dynamic return dependencies and per-op write targets.  When a
   patched version of the app is extracted over the SAME interner
   (every node, value and view shared with the previous program keeps
   its id), an edit script between the two graph shapes drives a warm
   re-solve: only the condensation components forward-reachable from
   the edits are reset and re-solved; every other component's solution
   is restored by aliasing the previous bitsets (copy-on-write guards
   them against later growth). *)

(* Fingerprints guarding the warm path.  The class fingerprint covers
   everything CHA and subtype tests depend on; a mismatch forces a full
   solve.  The method fingerprint covers [Hierarchy.resolve] outcomes
   and callback parameter names: adding a handler method changes which
   flows a Set_listener injects WITHOUT changing any of that op's
   inputs, so a mismatch marks every resolve-dependent op suspect
   rather than falling back. *)
(* Fingerprints are pure functions of immutable program/package values,
   yet a single warm re-solve consults them several times (guard,
   suspect analysis, capture).  A one-slot-per-domain memo keyed on
   physical identity makes every consultation after the first free;
   per-domain slots keep it race-free under the parallel batch
   driver. *)
let fp_memo (type k) () : (k * string) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let memoized key k compute =
  let memo = Domain.DLS.get key in
  match !memo with
  | Some (k', fp) when k' == k -> fp
  | _ ->
      let fp = compute () in
      memo := Some (k, fp);
      fp

let class_fp_memo : (Jir.Ast.program * string) option ref Domain.DLS.key = fp_memo ()

let class_fp (app : Framework.App.t) =
  memoized class_fp_memo app.program (fun () ->
      let b = Buffer.create 1024 in
      List.iter
        (fun (c : Jir.Ast.cls) ->
          Buffer.add_string b c.c_name;
          Buffer.add_char b '\x01';
          Buffer.add_string b (match c.c_kind with `Class -> "c" | `Interface -> "i");
          Buffer.add_string b (Option.value c.c_super ~default:"");
          Buffer.add_char b '\x01';
          List.iter
            (fun i ->
              Buffer.add_string b i;
              Buffer.add_char b ',')
            c.c_interfaces;
          Buffer.add_char b '\n')
        (List.sort
           (fun (a : Jir.Ast.cls) (b : Jir.Ast.cls) -> String.compare a.c_name b.c_name)
           app.program.p_classes);
      Digest.to_hex (Digest.string (Buffer.contents b)))

(* The method fingerprint guards only [Hierarchy.resolve] outcomes
   (which methods exist, by class, name and arity): parameter renames
   and body edits show up in the extracted graph and are covered by
   the edit script instead.  Classes and methods are hashed in program
   order — a pure reordering flips the fingerprint, which costs a
   conservative suspect pass, never soundness. *)
let method_fp_memo : (Jir.Ast.program * string) option ref Domain.DLS.key = fp_memo ()

let small_arities = Array.init 64 string_of_int

let method_fp (app : Framework.App.t) =
  memoized method_fp_memo app.program (fun () ->
      let b = Buffer.create 4096 in
      List.iter
        (fun (c : Jir.Ast.cls) ->
          Buffer.add_string b c.c_name;
          Buffer.add_char b '\x01';
          List.iter
            (fun (m : Jir.Ast.meth) ->
              Buffer.add_string b m.m_name;
              Buffer.add_char b '/';
              let a = List.length m.m_params in
              Buffer.add_string b (if a < 64 then small_arities.(a) else string_of_int a);
              Buffer.add_char b ';')
            c.c_methods;
          Buffer.add_char b '\n')
        app.program.p_classes;
      Digest.to_hex (Digest.string (Buffer.contents b)))

let layout_fp_memo : (Layouts.Package.t * string) option ref Domain.DLS.key = fp_memo ()

let layout_fp (app : Framework.App.t) =
  memoized layout_fp_memo app.Framework.App.package (fun () ->
      let b = Buffer.create 4096 in
      List.iter
        (fun (def : Layouts.Layout.def) ->
          Buffer.add_string b def.name;
          Buffer.add_char b '\x01';
          Buffer.add_string b (Fmt.str "%a" Layouts.Layout.pp def);
          Buffer.add_char b '\n')
        (Layouts.Package.layouts app.Framework.App.package);
      Digest.to_hex (Digest.string (Buffer.contents b)))

(* Seeds as sorted (node id, value id) pairs — the diffable form. *)
let iseed_pairs it graph =
  Graph.seeds graph
  |> List.concat_map (fun (node, vs) ->
         let nid = Intern.node it node in
         Graph.VS.fold (fun v acc -> (nid, Intern.value it v) :: acc) vs [])
  |> List.sort compare
  |> Array.of_list

type shape = {
  sh_nodes : int;  (** nodes covered by the flow CSR *)
  sh_row : int array;
  sh_edst : int array;
  sh_ekind : int array;  (** [-1] direct, else index into [sh_cast_names] *)
  sh_cast_names : string array;
  sh_seeds : (int * int) array;  (** sorted (node id, value id) pairs *)
  sh_ops : (Node.op_site * int * int array * int) array;
}

let shape_of_graph graph =
  let fc = Graph.frozen_flow graph in
  let ids = Graph.ops_node_ids graph in
  let ops = Array.of_list (Graph.ops graph) in
  let sh_ops =
    Array.mapi
      (fun i (op : Graph.op) ->
        let recv, args, out = ids.(i) in
        (op.Graph.site, recv, args, out))
      ops
  in
  {
    sh_nodes = fc.Graph.fc_nodes;
    sh_row = fc.Graph.fc_row;
    sh_edst = fc.Graph.fc_edst;
    sh_ekind = fc.Graph.fc_ekind;
    sh_cast_names = fc.Graph.fc_cast_names;
    sh_seeds = iseed_pairs (Graph.interner graph) graph;
    sh_ops;
  }

(* Graph-level edit script between two shapes over a shared interner.
   Edge kinds are expressed in the NEW shape's cast-symbol space
   (removed edges whose cast class vanished get a sentinel [<= -2];
   only the destination matters for invalidation). *)
type edit_script = {
  es_removed_edges : (int * int * int) array;  (** (src, kind, dst) *)
  es_added_edges : (int * int * int) array;
  es_removed_seeds : (int * int) array;
  es_added_seeds : (int * int) array;
  es_old_to_new : int array;  (** old op index -> new, [-1] unmatched (removed) *)
  es_new_to_old : int array;  (** new op index -> old, [-1] unmatched (added) *)
}

(* Dynamic return dependency kinds, as persisted. *)
type rd = RD_op of int | RD_frags

(* A captured solution.  Treat every field as read-only: the bitsets
   are shared (aliased) with later warm solves, and [sd_graph] is the
   donor of structural solution tables for warm materialisation — it
   must never be re-solved, or the tables every captured row aliases
   would be clobbered. *)
type solved = {
  sd_config : Config.t;
  sd_app_name : string;
  sd_class_fp : string;
  sd_method_fp : string;
  sd_layout_fp : string;
  sd_package : Layouts.Package.t;
  sd_graph : Graph.t;
  sd_it : Intern.t;
  sd_node_total : int;  (** interned node count at capture *)
  sd_value_total : int;
  sd_csr_n : int;  (** nodes covered by the frozen CSR (freeze-time count) *)
  sd_nrep : int array;
  sd_row : int array;
  sd_edst : int array;
  sd_ekind : int array;
  sd_cast_names : string array;
  sd_seeds : (int * int) array;
  sd_ops : (Node.op_site * int * int array * int) array;
  sd_sols : Util.Bitset.t option array;  (** per representative; aliased, never mutated *)
  sd_sols_mask : Util.Bitset.t;  (** bits of the [Some] slots of [sd_sols] *)
  sd_children : Util.Bitset.t option array;
  sd_parents : Util.Bitset.t option array;
  sd_ids : Util.Bitset.t option array;
  sd_by_id : Util.Bitset.t option array;
  sd_roots : Util.Bitset.t option array;
  sd_listeners : Util.Bitset.t option array;
  sd_holder_ids : int list;  (** discovery order, newest first *)
  sd_ret_deps : (int * rd) list;  (** rep -> dynamic reader *)
  sd_targets : Util.Bitset.t array;
      (** per op (plus declarative and fragment pseudo-slots at
          [|ops|] and [|ops|+1]): representatives the writer pushed
          values to, across this solve and, transitively, the solves
          it warm-started from *)
}

let shape_of_solved sd =
  {
    sh_nodes = sd.sd_csr_n;
    sh_row = sd.sd_row;
    sh_edst = sd.sd_edst;
    sh_ekind = sd.sd_ekind;
    sh_cast_names = sd.sd_cast_names;
    sh_seeds = sd.sd_seeds;
    sh_ops = sd.sd_ops;
  }

let solved_interner sd = sd.sd_it

(* Documented read-side accessors for [Query]: the rep map with the
   same out-of-range guard as [irep] (ids minted after freeze are their
   own singleton components), plus the identity fields a registry keys
   on. *)
let solved_rep sd nid = if nid >= 0 && nid < sd.sd_csr_n then sd.sd_nrep.(nid) else nid

let solved_app_name sd = sd.sd_app_name

let solved_config sd = sd.sd_config

let solved_class_fp sd = sd.sd_class_fp

(* Capture the fixpoint reached by [st].  [carry] maps each write slot
   to its previous-solve target set (matched ops under a warm solve);
   carried targets are mapped through the current representatives so
   invalidation stays sound across repeated patches. *)
let icapture st ?carry_map ?fps ?seeds ?reuse_ops ~config ~(app : Framework.App.t) ~ret_deps
    carry =
  let fc = Graph.frozen_flow st.igraph in
  let op_count = Array.length st.iops in
  (* Carried-over targets are reps of the previous condensation; when
     no representative moved they are still reps, so the merge is a
     word-level union with no per-element remapping — and an op that
     recorded nothing this solve keeps its previous target set by
     aliasing it outright (target sets are never mutated after
     capture). *)
  let sd_targets =
    Array.init (op_count + 2) (fun i ->
        let t = st.irec_targets.(i) in
        match (carry i, carry_map) with
        | Some old, None when Util.Bitset.is_empty t -> old
        | Some old, None ->
            Util.Bitset.union_delta ~into:t old ~on_new:(fun _ -> ());
            t
        | Some old, Some f ->
            Util.Bitset.iter (fun r -> ignore (Util.Bitset.add t (f r))) old;
            t
        | None, _ -> t)
  in
  let sd_ret_deps =
    Hashtbl.fold
      (fun rid targets acc ->
        List.fold_left
          (fun acc t ->
            (rid, match t with IT_op oi -> RD_op oi | IT_frags -> RD_frags) :: acc)
          acc targets)
      ret_deps []
  in
  (* A matched op's tuple (site, recv ids, arg ids, out id) is exactly
     what the multiset matching keyed on, so the previous capture's
     entry can be shared instead of rebuilt. *)
  let fresh_op i =
    let op = st.iops.(i) in
    (op.Graph.site, st.iop_recv.(i), st.iop_args.(i), st.iop_out.(i))
  in
  let sd_ops =
    match reuse_ops with
    | Some (prev_ops, new_to_old) ->
        Array.init op_count (fun i ->
            let oj = new_to_old.(i) in
            if oj >= 0 then prev_ops.(oj) else fresh_op i)
    | None -> Array.init op_count fresh_op
  in
  (* Warm captures pass the fingerprints through: the guard already
     proved class/layout equal to the previous solve's and the method
     fingerprint was computed for the suspect analysis. *)
  let sd_class_fp, sd_method_fp, sd_layout_fp =
    match fps with Some t -> t | None -> (class_fp app, method_fp app, layout_fp app)
  in
  let sd_seeds = match seeds with Some s -> s | None -> iseed_pairs st.it st.igraph in
  (* The captured arrays alias the solver state's backing stores — the
     state is dead once capture runs, so nothing mutates them later. *)
  let sd_sols = st.sols.Slots.a in
  (* Warm solves know exactly which slots are populated — still
     borrowed, copied on write, or created this solve — so the mask is
     a union of three small bitsets; a cold solve scans the array. *)
  let sd_sols_mask =
    if st.iwarm then begin
      let mask = Util.Bitset.copy st.iborrowed in
      Util.Bitset.union_delta ~into:mask st.imutated ~on_new:ignore;
      Util.Bitset.union_delta ~into:mask st.icreated ~on_new:ignore;
      mask
    end
    else begin
      let mask = Util.Bitset.create () in
      Array.iteri
        (fun i o -> match o with Some _ -> ignore (Util.Bitset.add mask i) | None -> ())
        sd_sols;
      mask
    end
  in
  {
    sd_config = config;
    sd_app_name = app.Framework.App.name;
    sd_class_fp;
    sd_method_fp;
    sd_layout_fp;
    sd_package = app.Framework.App.package;
    sd_graph = st.igraph;
    sd_it = st.it;
    sd_node_total = Intern.node_count st.it;
    sd_value_total = Intern.value_count st.it;
    sd_csr_n = st.csr_n;
    sd_nrep = st.nrep;
    sd_row = fc.Graph.fc_row;
    sd_edst = fc.Graph.fc_edst;
    sd_ekind = fc.Graph.fc_ekind;
    sd_cast_names = st.cast_names;
    sd_seeds;
    sd_ops;
    sd_sols;
    sd_sols_mask;
    sd_children = st.ichildren.Slots.a;
    sd_parents = st.iparents.Slots.a;
    sd_ids = st.iids.Slots.a;
    sd_by_id = st.iby_id.Slots.a;
    sd_roots = st.iroots.Slots.a;
    sd_listeners = st.ilisteners.Slots.a;
    sd_holder_ids = st.iholder_ids;
    sd_ret_deps;
    sd_targets;
  }

(* ------------------------------------------------------------------ *)
(* Imprecision taint.

   A second plane over the solution: value [v] at node [n] is tainted
   when its presence may depend on how an unknown-id marker resolves.
   Solving never branches on taint, so it is derivable from the solved
   tables — one shared post-pass run identically after all three
   engines, which makes cross-engine bit-identity of the plane trivial,
   keeps the warm-solve machinery entirely taint-free (⊤ graphs refuse
   warm starts; see [warm_guard]), and costs nothing on ⊤-free apps
   (the [has_top] guard).

   The pass propagates over the FULL frozen flow CSR
   ([fc_row]/[fc_edst]), not the structural edge list: context-keyed
   clone constraints exist only at the id level.  Taint is an invariant
   subset of the solution ([taint n ⊆ set n]), maintained by the
   membership guard in [add].

   Rules (iterated to a fixpoint):
   - a marker value taints itself wherever it occurs;
   - a flow edge copies taint value-per-value, cast-filtered;
   - Inflate/Set_content with ⊤ (or a tainted concrete id) at the
     layout argument taints the whole subtree it inflated at that
     site — tracked in the tainted-view set [w] and lifted back into
     every solution set containing such a view;
   - FindView(_, ⊤), or a FindView/FindOne/GetParent whose receiver
     holds a tainted view or holder value, taints the views it
     outputs; a FindView output carrying the ⊤ id-row sentinel
     (SetId(v, ⊤)) is tainted too, since any query matches it;
   - PassThrough copies the receiver's taints;
   - relations (children, ids, roots, listeners) and handler-parameter
     injections carry no taint. *)
let compute_taints (app : Framework.App.t) graph =
  if Graph.has_top graph then begin
    let it = Graph.interner graph in
    let fc = Graph.frozen_flow graph in
    let hierarchy = app.Framework.App.hierarchy in
    let package = app.Framework.App.package in
    let n = Intern.node_count it in
    (* The structural engines solve some nodes without ever interning
       them (handler params injected by value, not by edge); the lift
       rule must still see their sets, so append them after the
       CSR-addressable prefix.  They have no flow edges and no op
       references — only markers/lift/install touch them. *)
    let extras =
      Array.of_list
        (List.filter (fun node -> Intern.find_node it node = None) (Graph.locations graph))
    in
    let structural =
      Array.append (Array.init n (fun nid -> Intern.node_of it nid)) extras
    in
    let total = Array.length structural in
    let set_at = Array.init total (fun i -> Graph.set_of graph structural.(i)) in
    let taint = Array.make total Graph.VS.empty in
    let w = ref Graph.View_set.empty in
    let changed = ref true in
    let add nid v =
      if
        nid >= 0
        && Graph.VS.mem v set_at.(nid)
        && not (Graph.VS.mem v taint.(nid))
      then begin
        taint.(nid) <- Graph.VS.add v taint.(nid);
        changed := true
      end
    in
    let grow_w view =
      if not (Graph.View_set.mem view !w) then begin
        w := Graph.View_set.add view !w;
        changed := true
      end
    in
    (* Markers taint themselves. *)
    for nid = 0 to total - 1 do
      if Graph.VS.mem Node.V_layout_top set_at.(nid) then add nid Node.V_layout_top;
      if Graph.VS.mem Node.V_view_id_top set_at.(nid) then add nid Node.V_view_id_top
    done;
    let edges () =
      for src = 0 to fc.Graph.fc_nodes - 1 do
        if not (Graph.VS.is_empty taint.(src)) then
          for e = fc.Graph.fc_row.(src) to fc.Graph.fc_row.(src + 1) - 1 do
            let dst = fc.Graph.fc_edst.(e) in
            let k = fc.Graph.fc_ekind.(e) in
            Graph.VS.iter
              (fun v ->
                if k < 0 || passes_cast hierarchy fc.Graph.fc_cast_names.(k) v then add dst v)
              taint.(src)
          done
      done
    in
    let ops = Array.of_list (Graph.ops graph) in
    let ids = Graph.ops_node_ids graph in
    let taint_out_views out =
      Graph.VS.iter
        (fun v -> match v with Node.V_view _ -> add out v | _ -> ())
        (if out >= 0 then set_at.(out) else Graph.VS.empty)
    in
    let tainted_scope recv =
      Graph.VS.exists
        (fun v ->
          match v with Node.V_view _ | Node.V_act _ | Node.V_obj _ -> true | _ -> false)
        taint.(recv)
    in
    let op_rules () =
      Array.iteri
        (fun i (op : Graph.op) ->
          let recv, args, out = ids.(i) in
          let arg k = if k < Array.length args then Some args.(k) else None in
          match op.Graph.site.Node.o_kind with
          | Framework.Api.Inflate | Framework.Api.Set_content -> (
              match arg 0 with
              | None -> ()
              | Some a ->
                  let site = op.Graph.site.Node.o_site in
                  let mark_layout name =
                    match Graph.find_inflation graph ~site ~layout:name with
                    | Some views -> List.iter grow_w views
                    | None -> ()
                  in
                  if Graph.VS.mem Node.V_layout_top set_at.(a) then
                    List.iter
                      (fun (def : Layouts.Layout.def) -> mark_layout def.name)
                      (Layouts.Package.layouts package);
                  Graph.VS.iter
                    (fun v ->
                      match v with
                      | Node.V_layout_id lid -> (
                          match Layouts.Package.find_by_layout_id package lid with
                          | Some def -> mark_layout def.Layouts.Layout.name
                          | None -> ())
                      | _ -> ())
                    taint.(a))
          | Framework.Api.Find_view -> (
              match arg 0 with
              | None -> ()
              | Some a ->
                  let top_query = Graph.VS.mem Node.V_view_id_top set_at.(a) in
                  let tainted_id =
                    Graph.VS.exists
                      (fun v -> match v with Node.V_view_id _ -> true | _ -> false)
                      taint.(a)
                  in
                  if top_query || tainted_id || tainted_scope recv then taint_out_views out
                  else if out >= 0 then
                    (* concrete query, but a result carrying the
                       ⊤ sentinel may have matched through it *)
                    Graph.VS.iter
                      (fun v ->
                        match v with
                        | Node.V_view view
                          when Graph.Int_set.mem Node.top_view_id_raw
                                 (Graph.ids_of_view graph view) ->
                            add out v
                        | _ -> ())
                      set_at.(out))
          | Framework.Api.Find_one _ | Framework.Api.Get_parent ->
              if tainted_scope recv then taint_out_views out
          | Framework.Api.Pass_through ->
              Graph.VS.iter (fun v -> add out v) taint.(recv)
          | Framework.Api.Add_view | Framework.Api.Set_id | Framework.Api.Set_listener _
          | Framework.Api.Start_activity | Framework.Api.Fragment_add | Framework.Api.Menu_add
          | Framework.Api.Set_adapter ->
              ())
        ops
    in
    let lift () =
      for nid = 0 to total - 1 do
        Graph.VS.iter
          (fun v ->
            match v with
            | Node.V_view view when Graph.View_set.mem view !w -> add nid v
            | _ -> ())
          set_at.(nid)
      done
    in
    while !changed do
      changed := false;
      edges ();
      op_rules ();
      lift ()
    done;
    for nid = 0 to total - 1 do
      if not (Graph.VS.is_empty taint.(nid)) then
        Graph.install_taints graph structural.(nid) taint.(nid)
    done
  end

(* Full solve that also captures the solution for later warm restarts.
   Always runs the interned engine (the captured state is id-level);
   bit-identical to [run] under the interned solver. *)
let run_solved ?fallback config (app : Framework.App.t) graph =
  Graph.reset_sets graph;
  let st = ifreeze config app graph in
  let iterations, ret_deps = iloop st ~record:true ~init:(icold_init st) config in
  imaterialize st;
  compute_taints app graph;
  let stats = istats st ~iterations ~warm_solve:false ~dirty_comps:0 ~reused_comps:0 ~fallback in
  (stats, icapture st ~config ~app ~ret_deps (fun _ -> None))

(* Is a warm start sound?  Returns the reason to fall back, if any. *)
let warm_guard prev config (app : Framework.App.t) graph =
  if not (Graph.interner graph == prev.sd_it) then
    Some "graph was not extracted over the previous solve's interner"
  else if config <> prev.sd_config then Some "configuration changed"
  else if Graph.has_top graph || Graph.has_top prev.sd_graph then
    (* A ⊤ marker makes op effects depend on the whole layout table
       and the whole id index, which the shape diff does not model —
       and the taint plane would have to be re-derived anyway.  Sound
       mode always re-solves from scratch. *)
    Some "unknown-id markers present: sound mode is not warm-startable"
  else if
    config.Config.ctx_keyed && config.Config.inline_depth > 0
    && config.Config.solver = Config.Interned
  then
    (* Context-keyed graphs carry their clone constraints only in the
       id-level stores, so the structural shape diff cannot see them —
       and clone numbers are minted per extraction, so a patched app
       renumbers ⟨node, ctx⟩ keys wholesale.  A cs snapshot therefore
       always re-solves from scratch; test_incremental pins that this
       fallback stays bit-identical. *)
    Some "context-keyed solve: clone constraints are invisible to the shape diff"
  else if class_fp app <> prev.sd_class_fp then Some "class hierarchy changed"
  else if
    (not (app.Framework.App.package == prev.sd_package)) && layout_fp app <> prev.sd_layout_fp
  then Some "layout resources changed"
  else None

(* Which view relations each op kind writes; a suspect or removed
   writer leaves rows with no justification, so its kinds are rebuilt
   wholesale.  [Inflate]/[Set_content] write children and ids through
   the inflation import. *)
let iwrites_children = function
  | Framework.Api.Inflate | Framework.Api.Set_content | Framework.Api.Add_view
  | Framework.Api.Fragment_add | Framework.Api.Menu_add | Framework.Api.Set_adapter ->
      true
  | _ -> false

let iwrites_ids = function
  | Framework.Api.Inflate | Framework.Api.Set_content | Framework.Api.Set_id
  | Framework.Api.Menu_add ->
      true
  | _ -> false

let iwrites_roots = function Framework.Api.Set_content -> true | _ -> false

let iwrites_listeners = function Framework.Api.Set_listener _ -> true | _ -> false

(* Ops whose rule consults [Hierarchy.resolve] (callback injection):
   a method-set change can alter their effects with unchanged op
   inputs. *)
let iresolve_dependent = function
  | Framework.Api.Set_listener _ | Framework.Api.Fragment_add | Framework.Api.Menu_add
  | Framework.Api.Set_adapter ->
      true
  | _ -> false

(* Warm materialisation: copy the previous solve's structural tables,
   then re-install only what changed — rows of dirty or grown
   components, nodes minted this solve, rows of relations rebuilt
   wholesale, and relation rows touched while warm. *)
let imaterialize_warm st ~prev ~dirty ~children_cleared ~ids_cleared ~roots_cleared
    ~listeners_cleared =
  let g = st.igraph in
  let it = st.it in
  let view_set b = iview_set it b in
  Graph.reset_solution_tables g;
  Graph.copy_solution_tables ~children:(not children_cleared) ~ids:(not ids_cleared)
    ~roots:(not roots_cleared) ~listeners:(not listeners_cleared) ~src:prev.sd_graph g;
  let decode = idecoder it in
  (* When no component was invalidated or grown, only nodes minted
     this solve can be stale — the copied rows cover the rest. *)
  let lo =
    if Util.Bitset.is_empty dirty && Util.Bitset.is_empty st.imutated then prev.sd_node_total
    else 0
  in
  for nid = lo to Intern.node_count it - 1 do
    let rid = irep st nid in
    let stale =
      nid >= prev.sd_node_total || Util.Bitset.mem dirty rid || Util.Bitset.mem st.imutated rid
    in
    if stale then
      match Slots.find st.sols rid with
      | Some b when not (Util.Bitset.is_empty b) ->
          Graph.install_set g (Intern.node_of it nid) (decode rid b)
      | _ ->
          (* a copied row whose set emptied out (node dropped by the
             patch) must not survive; removed nodes are provably dirty *)
          if nid < prev.sd_node_total then Graph.remove_solution_row g (Intern.node_of it nid)
  done;
  let fixup cleared touched slots install =
    if cleared then
      Slots.iteri (fun i b -> if not (Util.Bitset.is_empty b) then install i b) slots
    else
      Util.Bitset.iter
        (fun i -> match Slots.find slots i with Some b -> install i b | None -> ())
        touched
  in
  fixup children_cleared st.itouched_children st.ichildren (fun wid b ->
      Graph.install_children g (Intern.view_of it wid) (view_set b));
  fixup children_cleared st.itouched_parents st.iparents (fun wid b ->
      Graph.install_parents g (Intern.view_of it wid) (view_set b));
  fixup ids_cleared st.itouched_ids st.iids (fun wid b ->
      Graph.install_ids g (Intern.view_of it wid)
        (Util.Bitset.fold
           (fun sym acc -> Graph.Int_set.add (Intern.rid_of it sym) acc)
           b Graph.Int_set.empty));
  fixup ids_cleared st.itouched_by_id st.iby_id (fun sym b ->
      Graph.install_views_by_id g (Intern.rid_of it sym) (view_set b));
  fixup roots_cleared st.itouched_roots st.iroots (fun hid b ->
      Graph.install_roots g (Intern.holder_of it hid) (view_set b));
  fixup listeners_cleared st.itouched_listeners st.ilisteners (fun wid b ->
      Graph.install_listeners g (Intern.view_of it wid)
        (Util.Bitset.fold
           (fun eid acc -> Graph.Listener_set.add (Intern.listener_of it eid) acc)
           b Graph.Listener_set.empty))

(* Warm re-solve against a previous solution.  [graph] must be the
   patched app's graph extracted over [prev]'s interner; [edits] the
   edit script between [shape_of_solved prev] and [shape_of_graph
   graph].  Falls back to a recorded full solve when the warm guard
   refuses.  The result is bit-identical to a from-scratch solve of
   [graph]. *)
let run_incremental ~prev ~edits ?new_shape config (app : Framework.App.t) graph =
  match warm_guard prev config app graph with
  | Some reason -> run_solved ~fallback:reason config app graph
  | None ->
      Graph.reset_sets graph;
      let st = ifreeze config app graph in
      st.iwarm <- true;
      let op_count = Array.length st.iops in
      let old_op_count = Array.length prev.sd_ops in
      let orep nid = if nid < prev.sd_csr_n then prev.sd_nrep.(nid) else nid in
      let new_seeds =
        match new_shape with Some s -> s.sh_seeds | None -> iseed_pairs st.it st.igraph
      in
      let new_method_fp = method_fp app in
      let methods_changed = new_method_fp <> prev.sd_method_fp in
      (* Dirty components: everything forward-reachable (over ALL edge
         kinds of the new condensation) from the edit set. *)
      let dirty = Util.Bitset.create () in
      let frontier = Queue.create () in
      let mark_dirty r = if Util.Bitset.add dirty r then Queue.push r frontier in
      let close () =
        while not (Queue.is_empty frontier) do
          let r = Queue.pop frontier in
          if r < st.csr_n then
            for e = st.crow.(r) to st.crow.(r + 1) - 1 do
              mark_dirty st.cdst.(e)
            done
        done
      in
      (* Components whose membership changed between the two
         condensations (cycle splits and merges): representatives are
         smallest-member ids and new ids are larger, so an unchanged
         component keeps its representative — any moved rep flags both
         the node's new component and its old rep's. *)
      let reps_moved = ref false in
      for nid = 0 to prev.sd_node_total - 1 do
        let o = orep nid and n = irep st nid in
        if n <> o then begin
          reps_moved := true;
          mark_dirty n;
          mark_dirty (irep st o)
        end
      done;
      Array.iter (fun (_, _, dst) -> mark_dirty (irep st dst)) edits.es_removed_edges;
      Array.iter (fun (nid, _) -> mark_dirty (irep st nid)) edits.es_removed_seeds;
      let dirty_old_targets i =
        Util.Bitset.iter (fun r -> mark_dirty (irep st r)) prev.sd_targets.(i)
      in
      let target_dirty i =
        let hit = ref false in
        Util.Bitset.iter
          (fun r -> if (not !hit) && Util.Bitset.mem dirty (irep st r) then hit := true)
          prev.sd_targets.(i);
        !hit
      in
      let children_cleared = ref false in
      let ids_cleared = ref false in
      let roots_cleared = ref false in
      let listeners_cleared = ref false in
      let clear_for kind =
        if iwrites_children kind then children_cleared := true;
        if iwrites_ids kind then ids_cleared := true;
        if iwrites_roots kind then roots_cleared := true;
        if iwrites_listeners kind then listeners_cleared := true
      in
      (* Removed ops: recorded contributions are stale. *)
      Array.iteri
        (fun oj ni ->
          if ni < 0 then begin
            let (site : Node.op_site), _, _, _ = prev.sd_ops.(oj) in
            dirty_old_targets oj;
            clear_for site.Node.o_kind
          end)
        edits.es_old_to_new;
      (* Old dynamic return dependencies, re-keyed to surviving ops. *)
      let op_ret_reps = Array.make (max 1 op_count) [] in
      let frags_dep_reps = ref [] in
      List.iter
        (fun (r, rdep) ->
          match rdep with
          | RD_op oj ->
              if oj >= 0 && oj < old_op_count then begin
                let oi = edits.es_old_to_new.(oj) in
                if oi >= 0 then op_ret_reps.(oi) <- r :: op_ret_reps.(oi)
              end
          | RD_frags -> frags_dep_reps := r :: !frags_dep_reps)
        prev.sd_ret_deps;
      (* Suspect fixpoint: an op whose inputs (static reads, restored
         return deps, consulted relations, resolve outcomes) may have
         changed gets its old targets dirtied and its written relation
         kinds cleared; clears and new dirt can suspect further ops, so
         iterate with the closure until stable. *)
      let suspect = Util.Bitset.create () in
      let decl_suspect = ref methods_changed in
      let frags_suspect = ref methods_changed in
      let decl_applied = ref false in
      let frags_applied = ref false in
      close ();
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun oi (op : Graph.op) ->
            let oj = edits.es_new_to_old.(oi) in
            if oj >= 0 && not (Util.Bitset.mem suspect oi) then begin
              let kind = op.Graph.site.Node.o_kind in
              let sus =
                (methods_changed && iresolve_dependent kind)
                || Util.Bitset.mem dirty (irep st st.iop_recv.(oi))
                || Array.exists
                     (fun a -> Util.Bitset.mem dirty (irep st a))
                     st.iop_args.(oi)
                || List.exists
                     (fun r -> Util.Bitset.mem dirty (irep st r))
                     op_ret_reps.(oi)
                || (!children_cleared && Graph.reads_children op)
                || (!ids_cleared && Graph.reads_ids op)
                || (!roots_cleared && Graph.reads_roots op)
              in
              if sus then begin
                ignore (Util.Bitset.add suspect oi);
                dirty_old_targets oj;
                clear_for kind;
                changed := true
              end
            end)
          st.iops;
        if (not !decl_suspect) && (!children_cleared || !roots_cleared) then begin
          decl_suspect := true;
          changed := true
        end;
        if !decl_suspect && not !decl_applied then begin
          decl_applied := true;
          dirty_old_targets old_op_count;
          listeners_cleared := true;
          changed := true
        end;
        if
          (not !frags_suspect)
          && (!children_cleared
             || List.exists (fun r -> Util.Bitset.mem dirty (irep st r)) !frags_dep_reps)
        then begin
          frags_suspect := true;
          changed := true
        end;
        if !frags_suspect && not !frags_applied then begin
          frags_applied := true;
          dirty_old_targets (old_op_count + 1);
          children_cleared := true;
          changed := true
        end;
        close ()
      done;
      (* Restore the solution sets of clean components by aliasing: a
         previous slot at [r] means [r] was a representative; it is
         restorable when it still represents itself and is clean
         (membership changes always dirty the affected reps). *)
      let reused = ref 0 in
      (if not !reps_moved then begin
         (* Every previous slot index is still its own representative,
            so the whole slot array restores as one blit; only the
            dirty components are withheld. *)
         let n = Array.length prev.sd_sols in
         if n > 0 then begin
           Slots.ensure st.sols (n - 1);
           Array.blit prev.sd_sols 0 st.sols.Slots.a 0 n
         end;
         Util.Bitset.assign st.iborrowed prev.sd_sols_mask;
         reused := Util.Bitset.cardinal prev.sd_sols_mask;
         Util.Bitset.iter
           (fun r ->
             if r < n && Util.Bitset.mem prev.sd_sols_mask r then begin
               st.sols.Slots.a.(r) <- None;
               Util.Bitset.remove st.iborrowed r;
               decr reused
             end)
           dirty
       end
       else
         Array.iteri
           (fun r slot ->
             match slot with
             | Some b
               when r < prev.sd_node_total && irep st r = r && not (Util.Bitset.mem dirty r) ->
                 Slots.set st.sols r b;
                 ignore (Util.Bitset.add st.iborrowed r);
                 incr reused
             | _ -> ())
           prev.sd_sols);
      let restore_rows slots bor rows =
        Array.iteri
          (fun i o ->
            match o with
            | Some b ->
                Slots.set slots i b;
                ignore (Util.Bitset.add bor i)
            | None -> ())
          rows
      in
      if not !children_cleared then begin
        restore_rows st.ichildren st.ibor_children prev.sd_children;
        restore_rows st.iparents st.ibor_parents prev.sd_parents
      end;
      if not !ids_cleared then begin
        restore_rows st.iids st.ibor_ids prev.sd_ids;
        restore_rows st.iby_id st.ibor_by_id prev.sd_by_id
      end;
      if not !roots_cleared then begin
        restore_rows st.iroots st.ibor_roots prev.sd_roots;
        st.iholder_ids <- prev.sd_holder_ids;
        List.iter (fun hid -> ignore (Util.Bitset.add st.iholders_seen hid)) prev.sd_holder_ids
      end;
      if not !listeners_cleared then
        restore_rows st.ilisteners st.ibor_listeners prev.sd_listeners;
      (* Cold structural tables (inflation memo, declarative handlers,
         fragment placeholders, root layouts) are restored only when
         both children and ids survive: a memo hit skips the id-level
         subtree import, which is exactly what a suspect inflating op
         would need to redo — and any such op clears children. *)
      if not (!children_cleared || !ids_cleared) then begin
        List.iter
          (fun (site, layout, views) -> Graph.record_inflation graph ~site ~layout views)
          (Graph.inflation_entries prev.sd_graph);
        List.iter
          (fun (view, names) ->
            List.iter (fun n -> ignore (Graph.add_onclick graph view n)) names)
          (Graph.onclick_entries prev.sd_graph);
        List.iter
          (fun (view, classes) ->
            List.iter (fun c -> ignore (Graph.add_declared_fragment graph view c)) classes)
          (Graph.declared_fragment_entries prev.sd_graph);
        List.iter
          (fun (view, lids) ->
            List.iter (fun lid -> ignore (Graph.add_root_layout graph view lid)) lids)
          (Graph.root_layout_entries prev.sd_graph);
        (* restoration must not look like solve-time growth *)
        ignore (Graph.take_rel_changes graph)
      end;
      let iwarm_init ~schedule ~on_changed ~pending_decl ~pending_frags ~ret_deps:_ ~note_ret =
        List.iter
          (fun (r, rdep) ->
            match rdep with
            | RD_op oj ->
                if oj >= 0 && oj < old_op_count then begin
                  let oi = edits.es_old_to_new.(oj) in
                  if oi >= 0 then note_ret (IT_op oi) r
                end
            | RD_frags -> note_ret IT_frags r)
          prev.sd_ret_deps;
        (* Seeds of dirty components refill their reset sets; seeds of
           unrestored (fresh) components fill them for the first time.
           Seeds of restored components are already present — their
           push would be a mem no-op — so they are skipped outright
           rather than paying an interner lookup each. *)
        Array.iter
          (fun (nid, vid) ->
            let r = irep st nid in
            if Util.Bitset.mem dirty r || not (Util.Bitset.mem st.iborrowed r) then
              ipush st nid vid)
          new_seeds;
        (* Restored components never emit deltas, so their outflow must
           be injected once: into dirty successors (reset to empty),
           and through edges that did not exist before.  Later growth
           of a restored set turns it into an owned, delta-emitting
           copy, so only the restored portion needs this.  With no
           dirty components there is nowhere to inject. *)
        if not (Util.Bitset.is_empty dirty) then
          Util.Bitset.iter
            (fun r ->
              match Slots.find st.sols r with
              | None -> ()
              | Some set ->
                  if r < st.csr_n then
                    for e = st.crow.(r) to st.crow.(r + 1) - 1 do
                      let dst = st.cdst.(e) in
                      if Util.Bitset.mem dirty dst then begin
                        let k = st.ckind.(e) in
                        Util.Bitset.iter
                          (fun vid -> if k < 0 || cast_passes st k vid then ipush st dst vid)
                          set
                      end
                    done)
            st.iborrowed;
        Array.iter
          (fun (src, k, dst) ->
            let rsrc = irep st src in
            if not (Util.Bitset.mem dirty rsrc) then
              match Slots.find st.sols rsrc with
              | None -> ()
              | Some set ->
                  Util.Bitset.iter
                    (fun vid -> if k < 0 || cast_passes st k vid then ipush st dst vid)
                    set)
          edits.es_added_edges;
        (* Schedule: added ops, suspects, writers of rebuilt relation
           kinds, ops whose previous targets were reset, and every
           Start_activity op (transitions are rebuilt each solve). *)
        Array.iteri
          (fun oi (op : Graph.op) ->
            let oj = edits.es_new_to_old.(oi) in
            let kind = op.Graph.site.Node.o_kind in
            let is_start =
              match kind with Framework.Api.Start_activity -> true | _ -> false
            in
            let rerun =
              oj < 0
              || Util.Bitset.mem suspect oi
              || is_start
              || (!children_cleared && iwrites_children kind)
              || (!ids_cleared && iwrites_ids kind)
              || (!roots_cleared && iwrites_roots kind)
              || (!listeners_cleared && iwrites_listeners kind)
              || target_dirty oj
            in
            if rerun then schedule oi)
          st.iops;
        pending_decl :=
          !decl_suspect || !listeners_cleared || !roots_cleared || target_dirty old_op_count;
        pending_frags :=
          !frags_suspect || !children_cleared || target_dirty (old_op_count + 1);
        ipropagate st ~changed:on_changed
      in
      let iterations, ret_deps = iloop st ~record:true ~init:iwarm_init config in
      imaterialize_warm st ~prev ~dirty ~children_cleared:!children_cleared
        ~ids_cleared:!ids_cleared ~roots_cleared:!roots_cleared
        ~listeners_cleared:!listeners_cleared;
      let stats =
        istats st ~iterations ~warm_solve:true ~dirty_comps:(Util.Bitset.cardinal dirty)
          ~reused_comps:!reused ~fallback:None
      in
      let carry i =
        if i < op_count then begin
          let oj = edits.es_new_to_old.(i) in
          if oj >= 0 then Some prev.sd_targets.(oj) else None
        end
        else if i = op_count then Some prev.sd_targets.(old_op_count)
        else Some prev.sd_targets.(old_op_count + 1)
      in
      let carry_map = if !reps_moved then Some (irep st) else None in
      let sd =
        icapture st ?carry_map
          ~fps:(prev.sd_class_fp, new_method_fp, prev.sd_layout_fp)
          ~seeds:new_seeds
          ~reuse_ops:(prev.sd_ops, edits.es_new_to_old)
          ~config ~app ~ret_deps carry
      in
      (stats, sd)

let run config (app : Framework.App.t) graph =
  Graph.reset_sets graph;
  match config.Config.solver with
  | Config.Interned ->
      let stats = run_interned config app graph in
      compute_taints app graph;
      stats
  | (Config.Naive | Config.Delta) as solver ->
      let descend =
        match solver with
        | Config.Naive -> fun ~include_self view -> Graph.descendants graph ~include_self view
        | _ -> fun ~include_self view -> Graph.descendants_cached graph ~include_self view
      in
      let state =
        {
          config;
          app;
          graph;
          worklist = Util.Worklist.create ();
          descend;
          indexed_find = (solver = Config.Delta);
          propagations = 0;
          op_applications = 0;
          delta_pushes = 0;
          dirty = false;
        }
      in
      let iterations =
        match solver with Config.Naive -> run_naive state | _ -> run_delta state
      in
      compute_taints app graph;
      let desc_cache_hits, desc_cache_misses = Graph.desc_cache_counters graph in
      {
        iterations;
        propagations = state.propagations;
        op_applications = state.op_applications;
        delta_pushes = state.delta_pushes;
        desc_cache_hits;
        desc_cache_misses;
        interned_values = 0;
        interned_nodes = 0;
        bitset_words = 0;
        union_calls = 0;
        scc_count = 0;
        largest_scc = 0;
        ctx_count = 0;
        ctx_keys = 0;
        warm_solve = false;
        dirty_comps = 0;
        reused_comps = 0;
        fallback = None;
      }
