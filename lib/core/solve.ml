type stats = {
  iterations : int;
  propagations : int;
  op_applications : int;
  delta_pushes : int;
  desc_cache_hits : int;
  desc_cache_misses : int;
}

(* Can a value pass through a cast to [cls]?  Sound filtering: the
   abstract object's dynamic class is known exactly, so the cast
   succeeds iff it is a subtype of [cls].  Unknown classes pass. *)
let passes_cast hierarchy cls value =
  let compatible c = (not (Jir.Hierarchy.mem hierarchy c)) || Jir.Hierarchy.subtype hierarchy c cls in
  if not (Jir.Hierarchy.mem hierarchy cls) then true
  else
    match value with
    | Node.V_view v -> compatible (Node.class_of_view v)
    | Node.V_obj a -> compatible a.a_cls
    | Node.V_act a -> compatible a
    | Node.V_layout_id _ | Node.V_view_id _ -> false

type state = {
  config : Config.t;
  app : Framework.App.t;
  graph : Graph.t;
  worklist : Node.t Util.Worklist.t;
  descend : include_self:bool -> Node.view_abs -> Graph.View_set.t;
      (** descendants closure; memoized under the delta solver *)
  indexed_find : bool;
      (** resolve FINDVIEW through the reverse id index (delta solver);
        the naive path filters the closure, spelling the rule literally *)
  mutable propagations : int;
  mutable op_applications : int;
  mutable delta_pushes : int;
  mutable dirty : bool;  (** a set or relation grew during the current op pass *)
}

let push_value state node value =
  if Graph.add_value state.graph node value then begin
    Util.Worklist.add state.worklist node;
    state.dirty <- true
  end

let mark state changed = if changed then state.dirty <- true

(* Worklist propagation of points-to sets along flow edges, pushing
   full sets (naive solver). *)
let propagate_full state =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      let values = Graph.set_of state.graph node in
      List.iter
        (fun (kind, dst) ->
          Graph.VS.iter
            (fun value ->
              let passes =
                match kind with
                | Graph.E_direct -> true
                | Graph.E_cast cls -> passes_cast hierarchy cls value
              in
              if passes && Graph.add_value state.graph dst value then
                Util.Worklist.add state.worklist dst)
            values)
        (Graph.succs state.graph node))

(* Semi-naive propagation: push only each node's delta (the values that
   arrived since its last drain).  Sound because flow edges are static
   during solving, so every (value, edge) pair is attempted exactly
   once.  [changed] fires for every node whose set grew, letting the
   caller schedule the ops reading it. *)
let propagate_delta state ~changed =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      match Graph.take_delta state.graph node with
      | [] -> ()
      | delta ->
          List.iter
            (fun (kind, dst) ->
              List.iter
                (fun value ->
                  state.delta_pushes <- state.delta_pushes + 1;
                  let passes =
                    match kind with
                    | Graph.E_direct -> true
                    | Graph.E_cast cls -> passes_cast hierarchy cls value
                  in
                  if passes && Graph.add_value state.graph dst value then
                    Util.Worklist.add state.worklist dst)
                delta)
            (Graph.succs state.graph node);
          changed node)

(* Values at the argument location of an op, view-id constants only. *)
let view_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_view_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let layout_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_layout_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let views_at state node = Graph.views_of state.graph node

(* Content holders among the values at a location: activities, plus
   dialog objects when the extension is enabled. *)
let holders_at state node =
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_act a -> Node.H_act a :: acc
      | Node.V_obj site
        when state.config.Config.model_dialogs
             && Framework.Views.is_dialog_class state.app.hierarchy site.a_cls ->
          Node.H_dialog site :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

(* Listener objects among the values at a location, restricted to
   those actually implementing the interface being registered. *)
let listeners_at state iface node =
  let implements cls =
    Jir.Hierarchy.subtype state.app.Framework.App.hierarchy cls iface.Framework.Listeners.i_name
  in
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_obj site when implements site.a_cls -> Node.L_alloc site :: acc
      | Node.V_view view when implements (Node.class_of_view view) ->
          (* custom view classes can be their own listeners *)
          (match view with
          | Node.V_alloc site -> Node.L_alloc site :: acc
          | Node.V_infl _ -> acc)
      | Node.V_act a when implements a -> Node.L_act a :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

let inflate_at state ~site lid =
  let package = state.app.Framework.App.package in
  match Layouts.Package.find_by_layout_id package lid with
  | None -> None
  | Some def ->
      let already = Graph.find_inflation state.graph ~site ~layout:def.name <> None in
      let views =
        Inflate.instantiate state.graph
          ~resources:(Layouts.Package.resources package)
          ~site def
      in
      if not already then state.dirty <- true;
      Some (Inflate.root views)

(* The implicit callback of SETLISTENER: for handler [n] of the
   listener's class, inject listener -> this_n and view -> view-param_n
   (the [y.n(x)] modeling at the end of Section 3). *)
let inject_handler_flows state view listener iface =
  let hierarchy = state.app.Framework.App.hierarchy in
  let cls, listener_value =
    match listener with
    | Node.L_alloc site -> (site.Node.a_cls, Node.V_obj site)
    | Node.L_act a -> (a, Node.V_act a)
  in
  List.iter
    (fun (h : Framework.Listeners.handler) ->
      match
        Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
      with
      | Some (owner, m) ->
          let tmid = Node.mid_of_meth owner m in
          push_value state (Node.N_var (tmid, Jir.Ast.this_var)) listener_value;
          (match h.h_view_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
              | None -> ())
          | None -> ());
          (* adapter-view events: the item parameter receives the
             registered view's children (item views) *)
          (match h.h_item_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) ->
                  Graph.View_set.iter
                    (fun child ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view child))
                    (Graph.children_of state.graph view)
              | None -> ())
          | None -> ())
      | None -> ())
    iface.Framework.Listeners.i_handlers

(* find(view, id): descendants (reflexively) of the receiver carrying
   the id — rule FINDVIEW1's [ancestorOf] + [=> id] conditions.  Both
   paths compute the same set; the indexed one starts from the few
   views carrying [id] rather than the whole closure. *)
let find_in_hierarchy state root id =
  if state.indexed_find then
    Graph.View_set.inter (Graph.views_by_id state.graph id)
      (state.descend ~include_self:true root)
  else
    Graph.View_set.filter
      (fun w -> Graph.Int_set.mem id (Graph.ids_of_view state.graph w))
      (state.descend ~include_self:true root)

(* [note_ret] lets the delta solver register the dynamically-resolved
   [N_ret] locations an op reads (fragment/adapter callbacks), which a
   static receiver/argument index cannot see. *)
let apply_op state ?(note_ret = fun (_ : Node.t) -> ()) (op : Graph.op) =
  let g = state.graph in
  let out value = Option.iter (fun node -> push_value state node value) op.op_out in
  let out_view view = out (Node.V_view view) in
  match op.site.o_kind with
  | Framework.Api.Inflate ->
      let arg0 = List.nth_opt op.op_args 0 in
      Option.iter
        (fun arg ->
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  out_view root;
                  (* inflate(id, parent): the new hierarchy may be
                     attached to the given container. *)
                  (match List.nth_opt op.op_args 1 with
                  | Some parent_arg ->
                      List.iter
                        (fun parent -> mark state (Graph.add_child g ~parent ~child:root))
                        (views_at state parent_arg)
                  | None -> ())
              | None -> ())
            (layout_ids_at state arg))
        arg0
  | Framework.Api.Set_content ->
      let holders = holders_at state op.op_recv in
      Option.iter
        (fun arg ->
          (* setContentView(int): rule INFLATE2 *)
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  List.iter (fun h -> mark state (Graph.add_holder_root g h root)) holders
              | None -> ())
            (layout_ids_at state arg);
          (* setContentView(View): rule ADDVIEW1 *)
          List.iter
            (fun view -> List.iter (fun h -> mark state (Graph.add_holder_root g h view)) holders)
            (views_at state arg))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Add_view ->
      Option.iter
        (fun arg ->
          List.iter
            (fun parent ->
              List.iter
                (fun child -> mark state (Graph.add_child g ~parent ~child))
                (views_at state arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_id ->
      Option.iter
        (fun arg ->
          List.iter
            (fun view ->
              List.iter (fun id -> mark state (Graph.add_view_id g view id)) (view_ids_at state arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_listener iface ->
      Option.iter
        (fun arg ->
          List.iter
            (fun view ->
              List.iter
                (fun listener ->
                  mark state
                    (Graph.add_view_listener g view listener ~iface:iface.Framework.Listeners.i_name);
                  if state.config.Config.listener_callbacks then
                    inject_handler_flows state view listener iface)
                (listeners_at state iface arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_view ->
      Option.iter
        (fun arg ->
          List.iter
            (fun id ->
              (* FINDVIEW1: receiver is a view *)
              List.iter
                (fun v ->
                  Graph.View_set.iter out_view (find_in_hierarchy state v id))
                (views_at state op.op_recv);
              (* FINDVIEW2: receiver is an activity/dialog; search its roots *)
              List.iter
                (fun h ->
                  Graph.View_set.iter
                    (fun root -> Graph.View_set.iter out_view (find_in_hierarchy state root id))
                    (Graph.roots_of_holder g h))
                (holders_at state op.op_recv))
            (view_ids_at state arg))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_one scope ->
      List.iter
        (fun v ->
          let results =
            match scope with
            | Framework.Api.Children when state.config.Config.findone_refinement ->
                Graph.children_of g v
            | Framework.Api.Children | Framework.Api.Descendants ->
                state.descend ~include_self:false v
          in
          Graph.View_set.iter out_view results)
        (views_at state op.op_recv)
  | Framework.Api.Get_parent ->
      List.iter
        (fun v -> Graph.View_set.iter out_view (Graph.parents_of g v))
        (views_at state op.op_recv)
  | Framework.Api.Pass_through ->
      (* the result stands for the receiver (e.g. a fragment manager
         for its activity) *)
      Graph.VS.iter (fun value -> out value) (Graph.set_of g op.op_recv)
  | Framework.Api.Fragment_add ->
      (* Fragment extension: the fragment's onCreateView callback runs
         and its resulting views are attached under the views carrying
         the container id in the activity's hierarchy. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let fragments =
        match op.op_args with
        | _ :: frag_arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_fragment_class hierarchy site.a_cls ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g frag_arg) []
        | _ -> []
      in
      let container_ids =
        match op.op_args with id_arg :: _ -> view_ids_at state id_arg | [] -> []
      in
      let containers =
        List.concat_map
          (fun h ->
            Graph.View_set.fold
              (fun root acc ->
                List.fold_left
                  (fun acc id -> Graph.View_set.elements (find_in_hierarchy state root id) @ acc)
                  acc container_ids)
              (Graph.roots_of_holder g h) [])
          (holders_at state op.op_recv)
      in
      List.iter
        (fun (fragment : Node.alloc_site) ->
          match
            Jir.Hierarchy.resolve hierarchy fragment.a_cls
              { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
          with
          | Some (owner, m) ->
              let tmid = Node.mid_of_meth owner m in
              push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
              note_ret (Node.N_ret tmid);
              let created = Graph.views_of g (Node.N_ret tmid) in
              List.iter
                (fun parent ->
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent ~child))
                    created)
                containers
          | None -> ())
        fragments
  | Framework.Api.Menu_add ->
      (* Menu extension: mint a MenuItem per site, attach it under each
         receiver menu, and feed the owning activity's
         onOptionsItemSelected callback with it. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let item = Node.V_alloc (Node.menu_item_site op.site.o_site) in
      List.iter
        (fun menu ->
          if Jir.Hierarchy.subtype hierarchy (Node.class_of_view menu) "Menu" then begin
            mark state (Graph.add_child g ~parent:menu ~child:item);
            out_view item;
            (* add(group, itemId, order, title): the item id *)
            (match op.op_args with
            | _ :: id_arg :: _ ->
                List.iter
                  (fun id -> mark state (Graph.add_view_id g item id))
                  (view_ids_at state id_arg)
            | _ -> ());
            match menu with
            | Node.V_alloc site -> (
                match Node.menu_owner site with
                | Some activity -> (
                    match
                      Jir.Hierarchy.resolve hierarchy activity
                        {
                          Jir.Ast.mk_name = fst Framework.Lifecycle.on_options_item_selected;
                          mk_arity = snd Framework.Lifecycle.on_options_item_selected;
                        }
                    with
                    | Some (owner, m) -> (
                        let tmid = Node.mid_of_meth owner m in
                        match m.m_params with
                        | (param, _) :: _ ->
                            push_value state (Node.N_var (tmid, param)) (Node.V_view item)
                        | [] -> ())
                    | None -> ())
                | None -> ())
            | Node.V_infl _ -> ()
          end)
        (views_at state op.op_recv)
  | Framework.Api.Set_adapter ->
      (* Adapter extension: run the adapter's getView callback and make
         its returned views children of the adapter view. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let adapters =
        match op.op_args with
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Jir.Hierarchy.subtype hierarchy site.a_cls "Adapter" ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
        | [] -> []
      in
      List.iter
        (fun view ->
          List.iter
            (fun (adapter : Node.alloc_site) ->
              match
                Jir.Hierarchy.resolve hierarchy adapter.a_cls
                  { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
              with
              | Some (owner, m) ->
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj adapter);
                  (* parent parameter is the adapter view *)
                  (match List.nth_opt m.m_params 2 with
                  | Some (param, _) ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view view)
                  | None -> ());
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            adapters)
        (views_at state op.op_recv)
  | Framework.Api.Start_activity ->
      (* Extension: inter-component control flow.  Sources are the
         activities the call may execute on; targets are the activity
         tokens reaching the argument. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let sources =
        Graph.VS.fold
          (fun v acc -> match v with Node.V_act a -> a :: acc | _ -> acc)
          (Graph.set_of g op.op_recv) []
      in
      let targets =
        match op.op_args with
        | [] -> []
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_activity_class hierarchy site.a_cls ->
                    site.a_cls :: acc
                | Node.V_act a -> a :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
      in
      List.iter
        (fun from_ ->
          List.iter (fun to_ -> mark state (Graph.add_transition g ~from_ ~to_)) targets)
        sources

(* Declarative listeners (android:onClick): views in a holder's
   hierarchy carrying an onClick handler name behave as if the holder
   registered itself as an OnClickListener whose handler is that
   method. *)
let register_declarative state holder view =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  let label = match holder with Node.H_act a -> a | Node.H_dialog site -> site.Node.a_cls in
  List.iter
    (fun handler_name ->
      match
        Jir.Hierarchy.resolve hierarchy label { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
      with
      | Some (owner, m) ->
          let listener =
            match holder with
            | Node.H_act a -> Node.L_act a
            | Node.H_dialog site -> Node.L_alloc site
          in
          mark state (Graph.add_view_listener g view listener ~iface:"OnClickListener");
          if state.config.Config.listener_callbacks then begin
            let tmid = Node.mid_of_meth owner m in
            push_value state
              (Node.N_var (tmid, Jir.Ast.this_var))
              (match holder with
              | Node.H_act a -> Node.V_act a
              | Node.H_dialog site -> Node.V_obj site);
            match m.m_params with
            | (param, _) :: _ -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
            | [] -> ()
          end
      | None -> ())
    (Graph.onclicks_of state.graph view)

let apply_declarative_handlers state =
  let g = state.graph in
  List.iter
    (fun holder ->
      Graph.View_set.iter
        (fun root ->
          Graph.View_set.iter
            (fun view -> register_declarative state holder view)
            (state.descend ~include_self:true root))
        (Graph.roots_of_holder g holder))
    (Graph.holders g)

(* Same registrations, driven from the views that actually carry a
   handler: [view] sits in [holder]'s hierarchy iff some root of
   [holder] is a (reflexive) ancestor of [view].  Avoids walking whole
   hierarchies when almost no view declares an onClick. *)
let apply_declarative_handlers_indexed state =
  let g = state.graph in
  let holders = Graph.holders g in
  List.iter
    (fun view ->
      let above = Graph.ancestors g view in
      List.iter
        (fun holder ->
          let reaches =
            Graph.View_set.exists
              (fun root -> Graph.View_set.mem root above)
              (Graph.roots_of_holder g holder)
          in
          if reaches then register_declarative state holder view)
        holders)
    (Graph.views_with_onclick g)

(* Declaratively placed fragments (<fragment android:name="F"/>): the
   platform instantiates F during inflation and attaches the views
   returned by F.onCreateView under the placeholder node. *)
let apply_declared_fragments state ?(note_ret = fun (_ : Node.t) -> ()) () =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  List.iter
    (fun view ->
      match view with
      | Node.V_infl infl ->
          List.iter
            (fun cls ->
              match
                Jir.Hierarchy.resolve hierarchy cls
                  { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
              with
              | Some (owner, m) ->
                  let fragment = Node.declared_fragment_site cls infl in
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            (Graph.declared_fragments_of g view)
      | Node.V_alloc _ -> ())
    (Graph.views_with_declared_fragments g)

let seed_and_count state =
  List.iter
    (fun (node, values) -> Graph.VS.iter (fun v -> push_value state node v) values)
    (Graph.seeds state.graph)

(* The reference fixed point: re-apply every op against full sets each
   round until nothing changes. *)
let run_naive state =
  seed_and_count state;
  propagate_full state;
  let ops = Graph.ops state.graph in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < state.config.Config.max_iterations do
    incr iterations;
    state.dirty <- false;
    List.iter
      (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state op)
      ops;
    apply_declarative_handlers state;
    apply_declared_fragments state ();
    propagate_full state;
    continue_ := state.dirty
  done;
  if !continue_ then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

(* Scheduling targets for dynamically-registered [N_ret] reads. *)
type ret_target = T_op of Graph.op | T_frags

let ret_target_equal a b =
  match (a, b) with T_frags, T_frags -> true | T_op x, T_op y -> x == y | _ -> false

(* Semi-naive fixed point: after seeding, every op runs once; from then
   on an op is re-applied only when a location it reads grew (dependency
   index + delta propagation) or a relation it consults changed.  Ops
   still read full sets when applied, so the solution is identical to
   the naive solver's. *)
let run_delta state =
  let g = state.graph in
  Graph.set_track_deltas g true;
  let op_wl = Util.Worklist.create () in
  let schedule op = Util.Worklist.add op_wl op in
  let pending_decl = ref true in
  let pending_frags = ref true in
  let ret_deps : (Node.t, ret_target list) Hashtbl.t = Hashtbl.create 16 in
  let note_ret target node =
    let existing = Option.value (Hashtbl.find_opt ret_deps node) ~default:[] in
    if not (List.exists (ret_target_equal target) existing) then
      Hashtbl.replace ret_deps node (target :: existing)
  in
  let on_changed node =
    List.iter schedule (Graph.ops_reading g node);
    match Hashtbl.find_opt ret_deps node with
    | Some targets ->
        List.iter
          (function T_op op -> schedule op | T_frags -> pending_frags := true)
          targets
    | None -> ()
  in
  seed_and_count state;
  propagate_delta state ~changed:on_changed;
  List.iter schedule (Graph.ops g);
  let iterations = ref 0 in
  let work_remaining () =
    (not (Util.Worklist.is_empty op_wl)) || !pending_decl || !pending_frags
  in
  while work_remaining () && !iterations < state.config.Config.max_iterations do
    incr iterations;
    Util.Worklist.drain op_wl (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state ~note_ret:(fun node -> note_ret (T_op op) node) op);
    if !pending_decl then begin
      pending_decl := false;
      apply_declarative_handlers_indexed state
    end;
    if !pending_frags then begin
      pending_frags := false;
      apply_declared_fragments state ~note_ret:(note_ret T_frags) ()
    end;
    propagate_delta state ~changed:on_changed;
    let rc = Graph.take_rel_changes g in
    if rc.rc_children then begin
      List.iter schedule (Graph.ops_reading_children g);
      (* hierarchy growth can place an onClick view under a new root *)
      pending_decl := true
    end;
    if rc.rc_ids then List.iter schedule (Graph.ops_reading_ids g);
    if rc.rc_roots then begin
      List.iter schedule (Graph.ops_reading_roots g);
      pending_decl := true
    end;
    if rc.rc_onclick then pending_decl := true;
    if rc.rc_fragments then pending_frags := true
  done;
  if work_remaining () then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

let run config (app : Framework.App.t) graph =
  Graph.reset_sets graph;
  let descend =
    match config.Config.solver with
    | Config.Naive -> fun ~include_self view -> Graph.descendants graph ~include_self view
    | Config.Delta -> fun ~include_self view -> Graph.descendants_cached graph ~include_self view
  in
  let state =
    {
      config;
      app;
      graph;
      worklist = Util.Worklist.create ();
      descend;
      indexed_find = (config.Config.solver = Config.Delta);
      propagations = 0;
      op_applications = 0;
      delta_pushes = 0;
      dirty = false;
    }
  in
  let iterations =
    match config.Config.solver with Config.Naive -> run_naive state | Config.Delta -> run_delta state
  in
  let desc_cache_hits, desc_cache_misses = Graph.desc_cache_counters graph in
  {
    iterations;
    propagations = state.propagations;
    op_applications = state.op_applications;
    delta_pushes = state.delta_pushes;
    desc_cache_hits;
    desc_cache_misses;
  }
