type stats = {
  iterations : int;
  propagations : int;
  op_applications : int;
  delta_pushes : int;
  desc_cache_hits : int;
  desc_cache_misses : int;
  interned_values : int;  (** distinct interned abstract values (interned solver, else 0) *)
  interned_nodes : int;  (** distinct interned locations (interned solver, else 0) *)
  bitset_words : int;  (** words allocated across solution-set bitsets (interned solver, else 0) *)
  union_calls : int;  (** word-level bitset union calls on direct edges (interned solver, else 0) *)
  scc_count : int;  (** direct-edge flow SCCs at freeze time (interned solver, else 0) *)
  largest_scc : int;  (** members in the largest direct-edge SCC (interned solver, else 0) *)
}

(* Can a value pass through a cast to [cls]?  Sound filtering: the
   abstract object's dynamic class is known exactly, so the cast
   succeeds iff it is a subtype of [cls].  Unknown classes pass. *)
let passes_cast hierarchy cls value =
  let compatible c = (not (Jir.Hierarchy.mem hierarchy c)) || Jir.Hierarchy.subtype hierarchy c cls in
  if not (Jir.Hierarchy.mem hierarchy cls) then true
  else
    match value with
    | Node.V_view v -> compatible (Node.class_of_view v)
    | Node.V_obj a -> compatible a.a_cls
    | Node.V_act a -> compatible a
    | Node.V_layout_id _ | Node.V_view_id _ -> false

type state = {
  config : Config.t;
  app : Framework.App.t;
  graph : Graph.t;
  worklist : Node.t Util.Worklist.t;
  descend : include_self:bool -> Node.view_abs -> Graph.View_set.t;
      (** descendants closure; memoized under the delta solver *)
  indexed_find : bool;
      (** resolve FINDVIEW through the reverse id index (delta solver);
        the naive path filters the closure, spelling the rule literally *)
  mutable propagations : int;
  mutable op_applications : int;
  mutable delta_pushes : int;
  mutable dirty : bool;  (** a set or relation grew during the current op pass *)
}

let push_value state node value =
  if Graph.add_value state.graph node value then begin
    Util.Worklist.add state.worklist node;
    state.dirty <- true
  end

let mark state changed = if changed then state.dirty <- true

(* Worklist propagation of points-to sets along flow edges, pushing
   full sets (naive solver). *)
let propagate_full state =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      let values = Graph.set_of state.graph node in
      List.iter
        (fun (kind, dst) ->
          Graph.VS.iter
            (fun value ->
              let passes =
                match kind with
                | Graph.E_direct -> true
                | Graph.E_cast cls -> passes_cast hierarchy cls value
              in
              if passes && Graph.add_value state.graph dst value then
                Util.Worklist.add state.worklist dst)
            values)
        (Graph.succs state.graph node))

(* Semi-naive propagation: push only each node's delta (the values that
   arrived since its last drain).  Sound because flow edges are static
   during solving, so every (value, edge) pair is attempted exactly
   once.  [changed] fires for every node whose set grew, letting the
   caller schedule the ops reading it. *)
let propagate_delta state ~changed =
  let hierarchy = state.app.Framework.App.hierarchy in
  Util.Worklist.drain state.worklist (fun node ->
      state.propagations <- state.propagations + 1;
      match Graph.take_delta state.graph node with
      | [] -> ()
      | delta ->
          List.iter
            (fun (kind, dst) ->
              List.iter
                (fun value ->
                  state.delta_pushes <- state.delta_pushes + 1;
                  let passes =
                    match kind with
                    | Graph.E_direct -> true
                    | Graph.E_cast cls -> passes_cast hierarchy cls value
                  in
                  if passes && Graph.add_value state.graph dst value then
                    Util.Worklist.add state.worklist dst)
                delta)
            (Graph.succs state.graph node);
          changed node)

(* Values at the argument location of an op, view-id constants only. *)
let view_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_view_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let layout_ids_at state node =
  Graph.VS.fold
    (fun v acc -> match v with Node.V_layout_id id -> id :: acc | _ -> acc)
    (Graph.set_of state.graph node) []

let views_at state node = Graph.views_of state.graph node

(* Content holders among the values at a location: activities, plus
   dialog objects when the extension is enabled. *)
let holders_at state node =
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_act a -> Node.H_act a :: acc
      | Node.V_obj site
        when state.config.Config.model_dialogs
             && Framework.Views.is_dialog_class state.app.hierarchy site.a_cls ->
          Node.H_dialog site :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

(* Listener objects among the values at a location, restricted to
   those actually implementing the interface being registered. *)
let listeners_at state iface node =
  let implements cls =
    Jir.Hierarchy.subtype state.app.Framework.App.hierarchy cls iface.Framework.Listeners.i_name
  in
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_obj site when implements site.a_cls -> Node.L_alloc site :: acc
      | Node.V_view view when implements (Node.class_of_view view) ->
          (* custom view classes can be their own listeners *)
          (match view with
          | Node.V_alloc site -> Node.L_alloc site :: acc
          | Node.V_infl _ -> acc)
      | Node.V_act a when implements a -> Node.L_act a :: acc
      | _ -> acc)
    (Graph.set_of state.graph node) []

let inflate_at state ~site lid =
  let package = state.app.Framework.App.package in
  match Layouts.Package.find_by_layout_id package lid with
  | None -> None
  | Some def ->
      let already = Graph.find_inflation state.graph ~site ~layout:def.name <> None in
      let views =
        Inflate.instantiate state.graph
          ~resources:(Layouts.Package.resources package)
          ~site def
      in
      if not already then state.dirty <- true;
      Some (Inflate.root views)

(* The implicit callback of SETLISTENER: for handler [n] of the
   listener's class, inject listener -> this_n and view -> view-param_n
   (the [y.n(x)] modeling at the end of Section 3). *)
let inject_handler_flows state view listener iface =
  let hierarchy = state.app.Framework.App.hierarchy in
  let cls, listener_value =
    match listener with
    | Node.L_alloc site -> (site.Node.a_cls, Node.V_obj site)
    | Node.L_act a -> (a, Node.V_act a)
  in
  List.iter
    (fun (h : Framework.Listeners.handler) ->
      match
        Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
      with
      | Some (owner, m) ->
          let tmid = Node.mid_of_meth owner m in
          push_value state (Node.N_var (tmid, Jir.Ast.this_var)) listener_value;
          (match h.h_view_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
              | None -> ())
          | None -> ());
          (* adapter-view events: the item parameter receives the
             registered view's children (item views) *)
          (match h.h_item_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) ->
                  Graph.View_set.iter
                    (fun child ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view child))
                    (Graph.children_of state.graph view)
              | None -> ())
          | None -> ())
      | None -> ())
    iface.Framework.Listeners.i_handlers

(* find(view, id): descendants (reflexively) of the receiver carrying
   the id — rule FINDVIEW1's [ancestorOf] + [=> id] conditions.  Both
   paths compute the same set; the indexed one starts from the few
   views carrying [id] rather than the whole closure. *)
let find_in_hierarchy state root id =
  if state.indexed_find then
    Graph.View_set.inter (Graph.views_by_id state.graph id)
      (state.descend ~include_self:true root)
  else
    Graph.View_set.filter
      (fun w -> Graph.Int_set.mem id (Graph.ids_of_view state.graph w))
      (state.descend ~include_self:true root)

(* [note_ret] lets the delta solver register the dynamically-resolved
   [N_ret] locations an op reads (fragment/adapter callbacks), which a
   static receiver/argument index cannot see. *)
let apply_op state ?(note_ret = fun (_ : Node.t) -> ()) (op : Graph.op) =
  let g = state.graph in
  let out value = Option.iter (fun node -> push_value state node value) op.op_out in
  let out_view view = out (Node.V_view view) in
  match op.site.o_kind with
  | Framework.Api.Inflate ->
      let arg0 = List.nth_opt op.op_args 0 in
      Option.iter
        (fun arg ->
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  out_view root;
                  (* inflate(id, parent): the new hierarchy may be
                     attached to the given container. *)
                  (match List.nth_opt op.op_args 1 with
                  | Some parent_arg ->
                      List.iter
                        (fun parent -> mark state (Graph.add_child g ~parent ~child:root))
                        (views_at state parent_arg)
                  | None -> ())
              | None -> ())
            (layout_ids_at state arg))
        arg0
  | Framework.Api.Set_content ->
      let holders = holders_at state op.op_recv in
      Option.iter
        (fun arg ->
          (* setContentView(int): rule INFLATE2 *)
          List.iter
            (fun lid ->
              match inflate_at state ~site:op.site.o_site lid with
              | Some root ->
                  mark state (Graph.add_root_layout g root lid);
                  List.iter (fun h -> mark state (Graph.add_holder_root g h root)) holders
              | None -> ())
            (layout_ids_at state arg);
          (* setContentView(View): rule ADDVIEW1 *)
          List.iter
            (fun view -> List.iter (fun h -> mark state (Graph.add_holder_root g h view)) holders)
            (views_at state arg))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Add_view ->
      Option.iter
        (fun arg ->
          List.iter
            (fun parent ->
              List.iter
                (fun child -> mark state (Graph.add_child g ~parent ~child))
                (views_at state arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_id ->
      Option.iter
        (fun arg ->
          List.iter
            (fun view ->
              List.iter (fun id -> mark state (Graph.add_view_id g view id)) (view_ids_at state arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Set_listener iface ->
      Option.iter
        (fun arg ->
          List.iter
            (fun view ->
              List.iter
                (fun listener ->
                  mark state
                    (Graph.add_view_listener g view listener ~iface:iface.Framework.Listeners.i_name);
                  if state.config.Config.listener_callbacks then
                    inject_handler_flows state view listener iface)
                (listeners_at state iface arg))
            (views_at state op.op_recv))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_view ->
      Option.iter
        (fun arg ->
          List.iter
            (fun id ->
              (* FINDVIEW1: receiver is a view *)
              List.iter
                (fun v ->
                  Graph.View_set.iter out_view (find_in_hierarchy state v id))
                (views_at state op.op_recv);
              (* FINDVIEW2: receiver is an activity/dialog; search its roots *)
              List.iter
                (fun h ->
                  Graph.View_set.iter
                    (fun root -> Graph.View_set.iter out_view (find_in_hierarchy state root id))
                    (Graph.roots_of_holder g h))
                (holders_at state op.op_recv))
            (view_ids_at state arg))
        (List.nth_opt op.op_args 0)
  | Framework.Api.Find_one scope ->
      List.iter
        (fun v ->
          let results =
            match scope with
            | Framework.Api.Children when state.config.Config.findone_refinement ->
                Graph.children_of g v
            | Framework.Api.Children | Framework.Api.Descendants ->
                state.descend ~include_self:false v
          in
          Graph.View_set.iter out_view results)
        (views_at state op.op_recv)
  | Framework.Api.Get_parent ->
      List.iter
        (fun v -> Graph.View_set.iter out_view (Graph.parents_of g v))
        (views_at state op.op_recv)
  | Framework.Api.Pass_through ->
      (* the result stands for the receiver (e.g. a fragment manager
         for its activity) *)
      Graph.VS.iter (fun value -> out value) (Graph.set_of g op.op_recv)
  | Framework.Api.Fragment_add ->
      (* Fragment extension: the fragment's onCreateView callback runs
         and its resulting views are attached under the views carrying
         the container id in the activity's hierarchy. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let fragments =
        match op.op_args with
        | _ :: frag_arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_fragment_class hierarchy site.a_cls ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g frag_arg) []
        | _ -> []
      in
      let container_ids =
        match op.op_args with id_arg :: _ -> view_ids_at state id_arg | [] -> []
      in
      let containers =
        List.concat_map
          (fun h ->
            Graph.View_set.fold
              (fun root acc ->
                List.fold_left
                  (fun acc id -> Graph.View_set.elements (find_in_hierarchy state root id) @ acc)
                  acc container_ids)
              (Graph.roots_of_holder g h) [])
          (holders_at state op.op_recv)
      in
      List.iter
        (fun (fragment : Node.alloc_site) ->
          match
            Jir.Hierarchy.resolve hierarchy fragment.a_cls
              { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
          with
          | Some (owner, m) ->
              let tmid = Node.mid_of_meth owner m in
              push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
              note_ret (Node.N_ret tmid);
              let created = Graph.views_of g (Node.N_ret tmid) in
              List.iter
                (fun parent ->
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent ~child))
                    created)
                containers
          | None -> ())
        fragments
  | Framework.Api.Menu_add ->
      (* Menu extension: mint a MenuItem per site, attach it under each
         receiver menu, and feed the owning activity's
         onOptionsItemSelected callback with it. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let item = Node.V_alloc (Node.menu_item_site op.site.o_site) in
      List.iter
        (fun menu ->
          if Jir.Hierarchy.subtype hierarchy (Node.class_of_view menu) "Menu" then begin
            mark state (Graph.add_child g ~parent:menu ~child:item);
            out_view item;
            (* add(group, itemId, order, title): the item id *)
            (match op.op_args with
            | _ :: id_arg :: _ ->
                List.iter
                  (fun id -> mark state (Graph.add_view_id g item id))
                  (view_ids_at state id_arg)
            | _ -> ());
            match menu with
            | Node.V_alloc site -> (
                match Node.menu_owner site with
                | Some activity -> (
                    match
                      Jir.Hierarchy.resolve hierarchy activity
                        {
                          Jir.Ast.mk_name = fst Framework.Lifecycle.on_options_item_selected;
                          mk_arity = snd Framework.Lifecycle.on_options_item_selected;
                        }
                    with
                    | Some (owner, m) -> (
                        let tmid = Node.mid_of_meth owner m in
                        match m.m_params with
                        | (param, _) :: _ ->
                            push_value state (Node.N_var (tmid, param)) (Node.V_view item)
                        | [] -> ())
                    | None -> ())
                | None -> ())
            | Node.V_infl _ -> ()
          end)
        (views_at state op.op_recv)
  | Framework.Api.Set_adapter ->
      (* Adapter extension: run the adapter's getView callback and make
         its returned views children of the adapter view. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let adapters =
        match op.op_args with
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Jir.Hierarchy.subtype hierarchy site.a_cls "Adapter" ->
                    site :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
        | [] -> []
      in
      List.iter
        (fun view ->
          List.iter
            (fun (adapter : Node.alloc_site) ->
              match
                Jir.Hierarchy.resolve hierarchy adapter.a_cls
                  { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
              with
              | Some (owner, m) ->
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj adapter);
                  (* parent parameter is the adapter view *)
                  (match List.nth_opt m.m_params 2 with
                  | Some (param, _) ->
                      push_value state (Node.N_var (tmid, param)) (Node.V_view view)
                  | None -> ());
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            adapters)
        (views_at state op.op_recv)
  | Framework.Api.Start_activity ->
      (* Extension: inter-component control flow.  Sources are the
         activities the call may execute on; targets are the activity
         tokens reaching the argument. *)
      let hierarchy = state.app.Framework.App.hierarchy in
      let sources =
        Graph.VS.fold
          (fun v acc -> match v with Node.V_act a -> a :: acc | _ -> acc)
          (Graph.set_of g op.op_recv) []
      in
      let targets =
        match op.op_args with
        | [] -> []
        | arg :: _ ->
            Graph.VS.fold
              (fun v acc ->
                match v with
                | Node.V_obj site when Framework.Views.is_activity_class hierarchy site.a_cls ->
                    site.a_cls :: acc
                | Node.V_act a -> a :: acc
                | _ -> acc)
              (Graph.set_of g arg) []
      in
      List.iter
        (fun from_ ->
          List.iter (fun to_ -> mark state (Graph.add_transition g ~from_ ~to_)) targets)
        sources

(* Declarative listeners (android:onClick): views in a holder's
   hierarchy carrying an onClick handler name behave as if the holder
   registered itself as an OnClickListener whose handler is that
   method. *)
let register_declarative state holder view =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  let label = match holder with Node.H_act a -> a | Node.H_dialog site -> site.Node.a_cls in
  List.iter
    (fun handler_name ->
      match
        Jir.Hierarchy.resolve hierarchy label { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
      with
      | Some (owner, m) ->
          let listener =
            match holder with
            | Node.H_act a -> Node.L_act a
            | Node.H_dialog site -> Node.L_alloc site
          in
          mark state (Graph.add_view_listener g view listener ~iface:"OnClickListener");
          if state.config.Config.listener_callbacks then begin
            let tmid = Node.mid_of_meth owner m in
            push_value state
              (Node.N_var (tmid, Jir.Ast.this_var))
              (match holder with
              | Node.H_act a -> Node.V_act a
              | Node.H_dialog site -> Node.V_obj site);
            match m.m_params with
            | (param, _) :: _ -> push_value state (Node.N_var (tmid, param)) (Node.V_view view)
            | [] -> ()
          end
      | None -> ())
    (Graph.onclicks_of state.graph view)

let apply_declarative_handlers state =
  let g = state.graph in
  List.iter
    (fun holder ->
      Graph.View_set.iter
        (fun root ->
          Graph.View_set.iter
            (fun view -> register_declarative state holder view)
            (state.descend ~include_self:true root))
        (Graph.roots_of_holder g holder))
    (Graph.holders g)

(* Same registrations, driven from the views that actually carry a
   handler: [view] sits in [holder]'s hierarchy iff some root of
   [holder] is a (reflexive) ancestor of [view].  Avoids walking whole
   hierarchies when almost no view declares an onClick. *)
let apply_declarative_handlers_indexed state =
  let g = state.graph in
  let holders = Graph.holders g in
  List.iter
    (fun view ->
      let above = Graph.ancestors g view in
      List.iter
        (fun holder ->
          let reaches =
            Graph.View_set.exists
              (fun root -> Graph.View_set.mem root above)
              (Graph.roots_of_holder g holder)
          in
          if reaches then register_declarative state holder view)
        holders)
    (Graph.views_with_onclick g)

(* Declaratively placed fragments (<fragment android:name="F"/>): the
   platform instantiates F during inflation and attaches the views
   returned by F.onCreateView under the placeholder node. *)
let apply_declared_fragments state ?(note_ret = fun (_ : Node.t) -> ()) () =
  let g = state.graph in
  let hierarchy = state.app.Framework.App.hierarchy in
  List.iter
    (fun view ->
      match view with
      | Node.V_infl infl ->
          List.iter
            (fun cls ->
              match
                Jir.Hierarchy.resolve hierarchy cls
                  { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
              with
              | Some (owner, m) ->
                  let fragment = Node.declared_fragment_site cls infl in
                  let tmid = Node.mid_of_meth owner m in
                  push_value state (Node.N_var (tmid, Jir.Ast.this_var)) (Node.V_obj fragment);
                  note_ret (Node.N_ret tmid);
                  List.iter
                    (fun child -> mark state (Graph.add_child g ~parent:view ~child))
                    (Graph.views_of g (Node.N_ret tmid))
              | None -> ())
            (Graph.declared_fragments_of g view)
      | Node.V_alloc _ -> ())
    (Graph.views_with_declared_fragments g)

let seed_and_count state =
  List.iter
    (fun (node, values) -> Graph.VS.iter (fun v -> push_value state node v) values)
    (Graph.seeds state.graph)

(* The reference fixed point: re-apply every op against full sets each
   round until nothing changes. *)
let run_naive state =
  seed_and_count state;
  propagate_full state;
  let ops = Graph.ops state.graph in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < state.config.Config.max_iterations do
    incr iterations;
    state.dirty <- false;
    List.iter
      (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state op)
      ops;
    apply_declarative_handlers state;
    apply_declared_fragments state ();
    propagate_full state;
    continue_ := state.dirty
  done;
  if !continue_ then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

(* Scheduling targets for dynamically-registered [N_ret] reads. *)
type ret_target = T_op of Graph.op | T_frags

let ret_target_equal a b =
  match (a, b) with T_frags, T_frags -> true | T_op x, T_op y -> x == y | _ -> false

(* Semi-naive fixed point: after seeding, every op runs once; from then
   on an op is re-applied only when a location it reads grew (dependency
   index + delta propagation) or a relation it consults changed.  Ops
   still read full sets when applied, so the solution is identical to
   the naive solver's. *)
let run_delta state =
  let g = state.graph in
  Graph.set_track_deltas g true;
  let op_wl = Util.Worklist.create () in
  let schedule op = Util.Worklist.add op_wl op in
  let pending_decl = ref true in
  let pending_frags = ref true in
  let ret_deps : (Node.t, ret_target list) Hashtbl.t = Hashtbl.create 16 in
  let note_ret target node =
    let existing = Option.value (Hashtbl.find_opt ret_deps node) ~default:[] in
    if not (List.exists (ret_target_equal target) existing) then
      Hashtbl.replace ret_deps node (target :: existing)
  in
  let on_changed node =
    List.iter schedule (Graph.ops_reading g node);
    match Hashtbl.find_opt ret_deps node with
    | Some targets ->
        List.iter
          (function T_op op -> schedule op | T_frags -> pending_frags := true)
          targets
    | None -> ()
  in
  seed_and_count state;
  propagate_delta state ~changed:on_changed;
  List.iter schedule (Graph.ops g);
  let iterations = ref 0 in
  let work_remaining () =
    (not (Util.Worklist.is_empty op_wl)) || !pending_decl || !pending_frags
  in
  while work_remaining () && !iterations < state.config.Config.max_iterations do
    incr iterations;
    Util.Worklist.drain op_wl (fun op ->
        state.op_applications <- state.op_applications + 1;
        apply_op state ~note_ret:(fun node -> note_ret (T_op op) node) op);
    if !pending_decl then begin
      pending_decl := false;
      apply_declarative_handlers_indexed state
    end;
    if !pending_frags then begin
      pending_frags := false;
      apply_declared_fragments state ~note_ret:(note_ret T_frags) ()
    end;
    propagate_delta state ~changed:on_changed;
    let rc = Graph.take_rel_changes g in
    if rc.rc_children then begin
      List.iter schedule (Graph.ops_reading_children g);
      (* hierarchy growth can place an onClick view under a new root *)
      pending_decl := true
    end;
    if rc.rc_ids then List.iter schedule (Graph.ops_reading_ids g);
    if rc.rc_roots then begin
      List.iter schedule (Graph.ops_reading_roots g);
      pending_decl := true
    end;
    if rc.rc_onclick then pending_decl := true;
    if rc.rc_fragments then pending_frags := true
  done;
  if work_remaining () then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  !iterations

(* ------------------------------------------------------------------ *)
(* Interned engine: the same semi-naive fixed point as [run_delta],
   computed over dense integer ids.  Every location, abstract value,
   view, listener entry and holder is hash-consed ([Intern]) when first
   seen; solution sets, delta sets and the view relations become
   [Util.Bitset] over those ids, and the (static) flow edges are frozen
   into CSR int arrays.  Ops decode ids back to structural values only
   at rule boundaries (hierarchy lookups, inflation, callbacks).  The
   final solution is materialized back into the graph's structural
   tables, so every downstream consumer (Analysis, Metrics, Export,
   Diff, tests) is engine-agnostic. *)

(* Growable array of per-id bitsets; a slot is allocated on first use
   so untouched ids cost one word. *)
module Slots = struct
  type t = { mutable a : Util.Bitset.t option array }

  let create () = { a = [||] }

  let ensure t i =
    let n = Array.length t.a in
    if i >= n then begin
      let cap = max 64 (max (i + 1) (2 * n)) in
      let a = Array.make cap None in
      Array.blit t.a 0 a 0 n;
      t.a <- a
    end

  let get t i =
    ensure t i;
    match t.a.(i) with
    | Some b -> b
    | None ->
        let b = Util.Bitset.create () in
        t.a.(i) <- Some b;
        b

  let find t i = if i < Array.length t.a then t.a.(i) else None

  let set t i b =
    ensure t i;
    t.a.(i) <- Some b

  (* Detach slot [i] (delta consumption): later pushes start fresh. *)
  let take t i =
    if i < Array.length t.a then begin
      let b = t.a.(i) in
      t.a.(i) <- None;
      b
    end
    else None

  let iteri f t = Array.iteri (fun i o -> match o with Some b -> f i b | None -> ()) t.a

  let total_words t =
    Array.fold_left (fun acc o -> match o with Some b -> acc + Util.Bitset.words b | None -> acc) 0 t.a
end

type istate = {
  iconfig : Config.t;
  iapp : Framework.App.t;
  igraph : Graph.t;
  it : Intern.t;
  (* frozen flow edges, SCC-condensed CSR over the node ids assigned at
     freeze time (ids >= [csr_n] are minted during solving, have no
     edges, and are their own singleton components) *)
  csr_n : int;
  nrep : int array;  (** node id -> direct-edge SCC representative, sized [csr_n] *)
  crow : int array;  (** condensed CSR over representatives *)
  cdst : int array;  (** destinations, already representatives *)
  ckind : int array;  (** -1 = direct, else cast-class sym *)
  cast_names : string array;  (** cast sym -> class name *)
  mutable cast_memo : Bytes.t array;  (** per cast sym, per value id: 0 unknown / 1 pass / 2 fail *)
  iscc_count : int;
  ilargest_scc : int;
  (* solution state *)
  sols : Slots.t;  (** SCC representative -> value-id set, shared by every member *)
  ideltas : Slots.t;  (** SCC representative -> values since last drain *)
  mutable free_deltas : Util.Bitset.t list;
      (** cleared delta sets recycled to avoid regrowing word arrays *)
  nq : int Queue.t;
  npending : Util.Bitset.t;
  (* static op index *)
  iops : Graph.op array;
  iop_recv : int array;
  iop_args : int array array;
  iop_out : int array;  (** -1 = no out location *)
  op_reads : int list array;  (** SCC representative -> op indexes reading a member *)
  children_readers : int list;
  ids_readers : int list;
  roots_readers : int list;
  (* view relations on ids *)
  ichildren : Slots.t;
  iparents : Slots.t;
  idesc_cache : (int, Util.Bitset.t) Hashtbl.t;  (** strict descendant closures *)
  mutable idesc_hits : int;
  mutable idesc_misses : int;
  iids : Slots.t;  (** view id -> rid syms *)
  iby_id : Slots.t;  (** rid sym -> view ids *)
  iroots : Slots.t;  (** holder id -> root view ids *)
  ilisteners : Slots.t;  (** view id -> listener entry ids *)
  mutable iholder_ids : int list;  (** discovery order, newest first *)
  iholders_seen : Util.Bitset.t;
  mutable irc_children : bool;
  mutable irc_ids : bool;
  mutable irc_roots : bool;
  (* counters *)
  mutable ipropagations : int;
  mutable iop_applications : int;
  mutable idelta_pushes : int;
  mutable iunion_calls : int;
}

let ienqueue st nid = if Util.Bitset.add st.npending nid then Queue.push nid st.nq

(* THE bounds guard for mid-solve-minted ids.  The CSR and the rep
   table are sized to the node count at freeze time, but the interner
   keeps minting ids while solving (views discovered mid-solve, [this]
   / parameter variables of handler methods with empty bodies).  Every
   snapshot-sized lookup — [nrep], [crow], [op_reads] — must funnel an
   id through here first: ids >= [csr_n] are their own singleton
   components with no edges and no static readers. *)
let irep st nid = if nid < st.csr_n then st.nrep.(nid) else nid

(* Delta slots cycle constantly (detached on drain, repopulated on the
   next push); drawing from the recycle pool keeps their word arrays at
   capacity instead of regrowing from scratch each round. *)
let idelta_slot st nid =
  match Slots.find st.ideltas nid with
  | Some d -> d
  | None -> (
      match st.free_deltas with
      | d :: rest ->
          st.free_deltas <- rest;
          Slots.set st.ideltas nid d;
          d
      | [] -> Slots.get st.ideltas nid)

(* Pushes land on the component representative: one shared bitset per
   direct-edge cycle, so a value entering anywhere in a cycle is a
   single [add] instead of a propagation lap around it. *)
let ipush st nid vid =
  let rid = irep st nid in
  if Util.Bitset.add (Slots.get st.sols rid) vid then begin
    ignore (Util.Bitset.add (idelta_slot st rid) vid);
    ienqueue st rid
  end

let cast_passes st sym vid =
  let memo = st.cast_memo.(sym) in
  let memo =
    if vid >= Bytes.length memo then begin
      let nlen = max 256 (max (vid + 1) (2 * Bytes.length memo)) in
      let m = Bytes.make nlen '\000' in
      Bytes.blit memo 0 m 0 (Bytes.length memo);
      st.cast_memo.(sym) <- m;
      m
    end
    else memo
  in
  match Bytes.get memo vid with
  | '\001' -> true
  | '\002' -> false
  | _ ->
      let ok =
        passes_cast st.iapp.Framework.App.hierarchy st.cast_names.(sym)
          (Intern.value_of st.it vid)
      in
      Bytes.set memo vid (if ok then '\001' else '\002');
      ok

(* Mirror of [propagate_delta] on ids, over the SCC-condensed CSR: the
   worklist carries component representatives only (every enqueue goes
   through [ipush]/[irep]), and direct edges inside a component were
   dropped at freeze time — the shared bitset IS their fixpoint.
   Direct inter-component edges merge whole delta words; cast edges
   filter per value through the per-sym memo.  [cdst] entries are
   already representatives, so pushes stay in rep space. *)
let ipropagate st ~changed =
  while not (Queue.is_empty st.nq) do
    let rid = Queue.pop st.nq in
    Util.Bitset.remove st.npending rid;
    st.ipropagations <- st.ipropagations + 1;
    match Slots.take st.ideltas rid with
    | None -> ()
    | Some d when Util.Bitset.is_empty d ->
        st.free_deltas <- d :: st.free_deltas
    | Some d ->
        (if rid < st.csr_n then begin
           let hi = st.crow.(rid + 1) in
           let dcard = Util.Bitset.cardinal d in
           for e = st.crow.(rid) to hi - 1 do
             let dst = st.cdst.(e) in
             let k = st.ckind.(e) in
             if k < 0 then begin
               st.idelta_pushes <- st.idelta_pushes + dcard;
               st.iunion_calls <- st.iunion_calls + 1;
               let grew = ref false in
               Util.Bitset.union_delta ~into:(Slots.get st.sols dst) d ~on_new:(fun vid ->
                   grew := true;
                   ignore (Util.Bitset.add (idelta_slot st dst) vid));
               if !grew then ienqueue st dst
             end
             else
               Util.Bitset.iter
                 (fun vid ->
                   st.idelta_pushes <- st.idelta_pushes + 1;
                   if cast_passes st k vid then ipush st dst vid)
                 d
           done
         end);
        Util.Bitset.clear d;
        st.free_deltas <- d :: st.free_deltas;
        changed rid
  done

(* Relation updates (id-level mirrors of the [Graph.add_*] family). *)

let iancestors st wid =
  let visited = Util.Bitset.create () in
  ignore (Util.Bitset.add visited wid);
  let q = Queue.create () in
  Queue.push wid q;
  while not (Queue.is_empty q) do
    let cur = Queue.pop q in
    match Slots.find st.iparents cur with
    | None -> ()
    | Some ps -> Util.Bitset.iter (fun p -> if Util.Bitset.add visited p then Queue.push p q) ps
  done;
  visited

let istrict_descendants st wid =
  let visited = Util.Bitset.create () in
  let q = Queue.create () in
  Queue.push wid q;
  while not (Queue.is_empty q) do
    let cur = Queue.pop q in
    match Slots.find st.ichildren cur with
    | None -> ()
    | Some cs -> Util.Bitset.iter (fun c -> if Util.Bitset.add visited c then Queue.push c q) cs
  done;
  visited

let idesc_cached st wid =
  match Hashtbl.find_opt st.idesc_cache wid with
  | Some s ->
      st.idesc_hits <- st.idesc_hits + 1;
      s
  | None ->
      st.idesc_misses <- st.idesc_misses + 1;
      let s = istrict_descendants st wid in
      Hashtbl.replace st.idesc_cache wid s;
      s

let iadd_child st ~parent ~child =
  let grew = Util.Bitset.add (Slots.get st.ichildren parent) child in
  if grew then begin
    ignore (Util.Bitset.add (Slots.get st.iparents child) parent);
    st.irc_children <- true;
    if Hashtbl.length st.idesc_cache > 0 then
      Util.Bitset.iter (fun v -> Hashtbl.remove st.idesc_cache v) (iancestors st parent)
  end

let iadd_view_id st wid raw =
  let sym = Intern.rid st.it raw in
  if Util.Bitset.add (Slots.get st.iids wid) sym then begin
    ignore (Util.Bitset.add (Slots.get st.iby_id sym) wid);
    st.irc_ids <- true
  end

let iadd_holder_root st hid root =
  if Util.Bitset.add st.iholders_seen hid then st.iholder_ids <- hid :: st.iholder_ids;
  if Util.Bitset.add (Slots.get st.iroots hid) root then st.irc_roots <- true

let iadd_view_listener st wid entry = ignore (Util.Bitset.add (Slots.get st.ilisteners wid) entry)

(* Value decoders over a location's solution set. *)

(* All op-rule reads of a node's points-to set funnel through here;
   the set lives on the component representative. *)
let iter_ivalues st nid f =
  match Slots.find st.sols (irep st nid) with None -> () | Some b -> Util.Bitset.iter f b

let irids_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with Node.V_view_id raw -> acc := raw :: !acc | _ -> ());
  List.rev !acc

let ilayouts_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with Node.V_layout_id raw -> acc := raw :: !acc | _ -> ());
  List.rev !acc

let iviews_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      let wid = Intern.view_of_value_id st.it vid in
      if wid >= 0 then acc := wid :: !acc);
  List.rev !acc

let iholders_at st nid =
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with
      | Node.V_act a -> acc := Intern.holder st.it (Node.H_act a) :: !acc
      | Node.V_obj site
        when st.iconfig.Config.model_dialogs
             && Framework.Views.is_dialog_class st.iapp.Framework.App.hierarchy site.Node.a_cls ->
          acc := Intern.holder st.it (Node.H_dialog site) :: !acc
      | _ -> ());
  List.rev !acc

let ilisteners_at st iface nid =
  let implements cls =
    Jir.Hierarchy.subtype st.iapp.Framework.App.hierarchy cls iface.Framework.Listeners.i_name
  in
  let acc = ref [] in
  iter_ivalues st nid (fun vid ->
      match Intern.value_of st.it vid with
      | Node.V_obj site when implements site.Node.a_cls -> acc := Node.L_alloc site :: !acc
      | Node.V_view view when implements (Node.class_of_view view) -> (
          match view with
          | Node.V_alloc site -> acc := Node.L_alloc site :: !acc
          | Node.V_infl _ -> ())
      | Node.V_act a when implements a -> acc := Node.L_act a :: !acc
      | _ -> ());
  List.rev !acc

(* Inflation runs structurally ([Inflate] writes the graph-side layout
   tables and memo); a fresh instantiation's subtree relations are then
   imported into the id-level stores. *)
let iinflate_at st ~site lid =
  let g = st.igraph in
  let package = st.iapp.Framework.App.package in
  match Layouts.Package.find_by_layout_id package lid with
  | None -> None
  | Some def ->
      let already = Graph.find_inflation g ~site ~layout:def.name <> None in
      let views =
        Inflate.instantiate g ~resources:(Layouts.Package.resources package) ~site def
      in
      if not already then
        List.iter
          (fun w ->
            let wid = Intern.view st.it w in
            Graph.View_set.iter
              (fun child -> iadd_child st ~parent:wid ~child:(Intern.view st.it child))
              (Graph.children_of g w);
            Graph.Int_set.iter (fun raw -> iadd_view_id st wid raw) (Graph.ids_of_view g w))
          views;
      Some (Inflate.root views)

let iinject_handler_flows st wid listener iface =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let cls, listener_vid =
    match listener with
    | Node.L_alloc site -> (site.Node.a_cls, Intern.value st.it (Node.V_obj site))
    | Node.L_act a -> (a, Intern.value st.it (Node.V_act a))
  in
  List.iter
    (fun (h : Framework.Listeners.handler) ->
      match
        Jir.Hierarchy.resolve hierarchy cls { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
      with
      | Some (owner, m) ->
          let tmid = Node.mid_of_meth owner m in
          ipush st (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var))) listener_vid;
          (match h.h_view_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) ->
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, param)))
                    (Intern.value_of_view_id st.it wid)
              | None -> ())
          | None -> ());
          (match h.h_item_param with
          | Some k -> (
              match List.nth_opt m.m_params k with
              | Some (param, _) -> (
                  let pnid = Intern.node st.it (Node.N_var (tmid, param)) in
                  match Slots.find st.ichildren wid with
                  | None -> ()
                  | Some cs ->
                      Util.Bitset.iter
                        (fun c -> ipush st pnid (Intern.value_of_view_id st.it c))
                        cs)
              | None -> ())
          | None -> ())
      | None -> ())
    iface.Framework.Listeners.i_handlers

(* find(view, id) on ids: walk the (few) carriers of the id, keeping
   those inside the receiver's reflexive descendant closure. *)
let ifind st root sym f =
  match Slots.find st.iby_id sym with
  | None -> ()
  | Some carriers ->
      let strict = idesc_cached st root in
      Util.Bitset.iter (fun w -> if w = root || Util.Bitset.mem strict w then f w) carriers

let iapply_op st ~note_ret oi =
  let op = st.iops.(oi) in
  let g = st.igraph in
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let out_id = st.iop_out.(oi) in
  let out vid = if out_id >= 0 then ipush st out_id vid in
  let out_view wid = out (Intern.value_of_view_id st.it wid) in
  let args = st.iop_args.(oi) in
  let arg k = if k < Array.length args then Some args.(k) else None in
  let recv = st.iop_recv.(oi) in
  match op.Graph.site.o_kind with
  | Framework.Api.Inflate ->
      Option.iter
        (fun a ->
          List.iter
            (fun lid ->
              match iinflate_at st ~site:op.Graph.site.o_site lid with
              | Some root_view ->
                  let root = Intern.view st.it root_view in
                  ignore (Graph.add_root_layout g root_view lid);
                  out_view root;
                  (match arg 1 with
                  | Some parent_arg ->
                      List.iter
                        (fun parent -> iadd_child st ~parent ~child:root)
                        (iviews_at st parent_arg)
                  | None -> ())
              | None -> ())
            (ilayouts_at st a))
        (arg 0)
  | Framework.Api.Set_content ->
      let holders = iholders_at st recv in
      Option.iter
        (fun a ->
          List.iter
            (fun lid ->
              match iinflate_at st ~site:op.Graph.site.o_site lid with
              | Some root_view ->
                  let root = Intern.view st.it root_view in
                  ignore (Graph.add_root_layout g root_view lid);
                  List.iter (fun h -> iadd_holder_root st h root) holders
              | None -> ())
            (ilayouts_at st a);
          List.iter
            (fun view -> List.iter (fun h -> iadd_holder_root st h view) holders)
            (iviews_at st a))
        (arg 0)
  | Framework.Api.Add_view ->
      Option.iter
        (fun a ->
          List.iter
            (fun parent ->
              List.iter (fun child -> iadd_child st ~parent ~child) (iviews_at st a))
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Set_id ->
      Option.iter
        (fun a ->
          List.iter
            (fun wid -> List.iter (fun raw -> iadd_view_id st wid raw) (irids_at st a))
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Set_listener iface ->
      Option.iter
        (fun a ->
          List.iter
            (fun wid ->
              List.iter
                (fun listener ->
                  iadd_view_listener st wid
                    (Intern.listener st.it (listener, iface.Framework.Listeners.i_name));
                  if st.iconfig.Config.listener_callbacks then
                    iinject_handler_flows st wid listener iface)
                (ilisteners_at st iface a))
            (iviews_at st recv))
        (arg 0)
  | Framework.Api.Find_view ->
      Option.iter
        (fun a ->
          List.iter
            (fun raw ->
              match Intern.rid_opt st.it raw with
              | None -> ()
              | Some sym ->
                  List.iter (fun v -> ifind st v sym out_view) (iviews_at st recv);
                  List.iter
                    (fun h ->
                      match Slots.find st.iroots h with
                      | None -> ()
                      | Some roots ->
                          Util.Bitset.iter (fun root -> ifind st root sym out_view) roots)
                    (iholders_at st recv))
            (irids_at st a))
        (arg 0)
  | Framework.Api.Find_one scope ->
      List.iter
        (fun v ->
          match scope with
          | Framework.Api.Children when st.iconfig.Config.findone_refinement -> (
              match Slots.find st.ichildren v with
              | None -> ()
              | Some cs -> Util.Bitset.iter out_view cs)
          | Framework.Api.Children | Framework.Api.Descendants ->
              Util.Bitset.iter out_view (idesc_cached st v))
        (iviews_at st recv)
  | Framework.Api.Get_parent ->
      List.iter
        (fun v ->
          match Slots.find st.iparents v with
          | None -> ()
          | Some ps -> Util.Bitset.iter out_view ps)
        (iviews_at st recv)
  | Framework.Api.Pass_through -> iter_ivalues st recv out
  | Framework.Api.Fragment_add ->
      let fragments =
        match arg 1 with
        | Some frag_arg ->
            let acc = ref [] in
            iter_ivalues st frag_arg (fun vid ->
                match Intern.value_of st.it vid with
                | Node.V_obj site when Framework.Views.is_fragment_class hierarchy site.Node.a_cls
                  ->
                    acc := site :: !acc
                | _ -> ());
            !acc
        | None -> []
      in
      let container_ids = match arg 0 with Some id_arg -> irids_at st id_arg | None -> [] in
      let containers =
        List.concat_map
          (fun h ->
            match Slots.find st.iroots h with
            | None -> []
            | Some roots ->
                Util.Bitset.fold
                  (fun root acc ->
                    List.fold_left
                      (fun acc raw ->
                        match Intern.rid_opt st.it raw with
                        | None -> acc
                        | Some sym ->
                            let elems = ref acc in
                            ifind st root sym (fun w -> elems := w :: !elems);
                            !elems)
                      acc container_ids)
                  roots [])
          (iholders_at st recv)
      in
      List.iter
        (fun (fragment : Node.alloc_site) ->
          match
            Jir.Hierarchy.resolve hierarchy fragment.a_cls
              { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
          with
          | Some (owner, m) ->
              let tmid = Node.mid_of_meth owner m in
              ipush st
                (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                (Intern.value st.it (Node.V_obj fragment));
              let rn = Intern.node st.it (Node.N_ret tmid) in
              note_ret rn;
              let created = iviews_at st rn in
              List.iter
                (fun parent -> List.iter (fun child -> iadd_child st ~parent ~child) created)
                containers
          | None -> ())
        fragments
  | Framework.Api.Menu_add ->
      let item_view = Node.V_alloc (Node.menu_item_site op.Graph.site.o_site) in
      let item = Intern.view st.it item_view in
      List.iter
        (fun menu_wid ->
          let menu = Intern.view_of st.it menu_wid in
          if Jir.Hierarchy.subtype hierarchy (Node.class_of_view menu) "Menu" then begin
            iadd_child st ~parent:menu_wid ~child:item;
            out_view item;
            (match arg 1 with
            | Some id_arg -> List.iter (fun raw -> iadd_view_id st item raw) (irids_at st id_arg)
            | None -> ());
            match menu with
            | Node.V_alloc site -> (
                match Node.menu_owner site with
                | Some activity -> (
                    match
                      Jir.Hierarchy.resolve hierarchy activity
                        {
                          Jir.Ast.mk_name = fst Framework.Lifecycle.on_options_item_selected;
                          mk_arity = snd Framework.Lifecycle.on_options_item_selected;
                        }
                    with
                    | Some (owner, m) -> (
                        let tmid = Node.mid_of_meth owner m in
                        match m.m_params with
                        | (param, _) :: _ ->
                            ipush st
                              (Intern.node st.it (Node.N_var (tmid, param)))
                              (Intern.value_of_view_id st.it item)
                        | [] -> ())
                    | None -> ())
                | None -> ())
            | Node.V_infl _ -> ()
          end)
        (iviews_at st recv)
  | Framework.Api.Set_adapter ->
      let adapters =
        match arg 0 with
        | Some a ->
            let acc = ref [] in
            iter_ivalues st a (fun vid ->
                match Intern.value_of st.it vid with
                | Node.V_obj site when Jir.Hierarchy.subtype hierarchy site.Node.a_cls "Adapter" ->
                    acc := site :: !acc
                | _ -> ());
            !acc
        | None -> []
      in
      List.iter
        (fun wid ->
          List.iter
            (fun (adapter : Node.alloc_site) ->
              match
                Jir.Hierarchy.resolve hierarchy adapter.a_cls
                  { Jir.Ast.mk_name = "getView"; mk_arity = 3 }
              with
              | Some (owner, m) ->
                  let tmid = Node.mid_of_meth owner m in
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                    (Intern.value st.it (Node.V_obj adapter));
                  (match List.nth_opt m.m_params 2 with
                  | Some (param, _) ->
                      ipush st
                        (Intern.node st.it (Node.N_var (tmid, param)))
                        (Intern.value_of_view_id st.it wid)
                  | None -> ());
                  let rn = Intern.node st.it (Node.N_ret tmid) in
                  note_ret rn;
                  List.iter (fun child -> iadd_child st ~parent:wid ~child) (iviews_at st rn)
              | None -> ())
            adapters)
        (iviews_at st recv)
  | Framework.Api.Start_activity ->
      let sources = ref [] in
      iter_ivalues st recv (fun vid ->
          match Intern.value_of st.it vid with
          | Node.V_act a -> sources := a :: !sources
          | _ -> ());
      let targets = ref [] in
      (match arg 0 with
      | Some a ->
          iter_ivalues st a (fun vid ->
              match Intern.value_of st.it vid with
              | Node.V_obj site when Framework.Views.is_activity_class hierarchy site.Node.a_cls ->
                  targets := site.Node.a_cls :: !targets
              | Node.V_act act -> targets := act :: !targets
              | _ -> ())
      | None -> ());
      List.iter
        (fun from_ ->
          List.iter (fun to_ -> ignore (Graph.add_transition g ~from_ ~to_)) !targets)
        !sources

let iregister_declarative st hid wid =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  let holder = Intern.holder_of st.it hid in
  let view = Intern.view_of st.it wid in
  let label = match holder with Node.H_act a -> a | Node.H_dialog site -> site.Node.a_cls in
  List.iter
    (fun handler_name ->
      match
        Jir.Hierarchy.resolve hierarchy label { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
      with
      | Some (owner, m) ->
          let listener =
            match holder with
            | Node.H_act a -> Node.L_act a
            | Node.H_dialog site -> Node.L_alloc site
          in
          iadd_view_listener st wid (Intern.listener st.it (listener, "OnClickListener"));
          if st.iconfig.Config.listener_callbacks then begin
            let tmid = Node.mid_of_meth owner m in
            ipush st
              (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
              (Intern.value st.it
                 (match holder with
                 | Node.H_act a -> Node.V_act a
                 | Node.H_dialog site -> Node.V_obj site));
            match m.m_params with
            | (param, _) :: _ ->
                ipush st
                  (Intern.node st.it (Node.N_var (tmid, param)))
                  (Intern.value_of_view_id st.it wid)
            | [] -> ()
          end
      | None -> ())
    (Graph.onclicks_of st.igraph view)

let iapply_declarative_handlers st =
  let holder_ids = List.rev st.iholder_ids in
  List.iter
    (fun view ->
      let wid = Intern.view st.it view in
      let above = iancestors st wid in
      List.iter
        (fun hid ->
          let reaches =
            match Slots.find st.iroots hid with
            | None -> false
            | Some roots ->
                Util.Bitset.fold (fun r acc -> acc || Util.Bitset.mem above r) roots false
          in
          if reaches then iregister_declarative st hid wid)
        holder_ids)
    (Graph.views_with_onclick st.igraph)

let iapply_declared_fragments st ~note_ret =
  let hierarchy = st.iapp.Framework.App.hierarchy in
  List.iter
    (fun view ->
      match view with
      | Node.V_infl infl ->
          let wid = Intern.view st.it view in
          List.iter
            (fun cls ->
              match
                Jir.Hierarchy.resolve hierarchy cls
                  { Jir.Ast.mk_name = "onCreateView"; mk_arity = 0 }
              with
              | Some (owner, m) ->
                  let fragment = Node.declared_fragment_site cls infl in
                  let tmid = Node.mid_of_meth owner m in
                  ipush st
                    (Intern.node st.it (Node.N_var (tmid, Jir.Ast.this_var)))
                    (Intern.value st.it (Node.V_obj fragment));
                  let rn = Intern.node st.it (Node.N_ret tmid) in
                  note_ret rn;
                  List.iter
                    (fun child -> iadd_child st ~parent:wid ~child)
                    (iviews_at st rn)
              | None -> ())
            (Graph.declared_fragments_of st.igraph view)
      | Node.V_alloc _ -> ())
    (Graph.views_with_declared_fragments st.igraph)

(* Freeze: snapshot the graph's id-level structures.  Nodes were
   hash-consed as the graph was built, so everything here is integer
   work — no node is hashed again. *)
let ifreeze config app graph =
  let it = Graph.interner graph in
  let fc = Graph.frozen_flow graph in
  let csr_n = fc.Graph.fc_nodes in
  let nrep = fc.Graph.fc_rep in
  let cast_names = fc.Graph.fc_cast_names in
  let iops = Array.of_list (Graph.ops graph) in
  let ids = Graph.ops_node_ids graph in
  let iop_recv = Array.map (fun (rid, _, _) -> rid) ids in
  let iop_args = Array.map (fun (_, aids, _) -> aids) ids in
  let iop_out = Array.map (fun (_, _, oid) -> oid) ids in
  (* Readers index in rep space: a component's set growing must
     reschedule every op reading ANY member of it.  Ops are interned
     during extraction, so their recv/arg ids are always < [csr_n]. *)
  let op_reads = Array.make (max 1 csr_n) [] in
  let note nid oi =
    let r = nrep.(nid) in
    op_reads.(r) <- oi :: op_reads.(r)
  in
  Array.iteri
    (fun oi _ ->
      note iop_recv.(oi) oi;
      Array.iter (fun a -> note a oi) iop_args.(oi))
    iops;
  for nid = 0 to csr_n - 1 do
    op_reads.(nid) <- List.rev op_reads.(nid)
  done;
  let children_readers = ref [] and ids_readers = ref [] and roots_readers = ref [] in
  Array.iteri
    (fun oi op ->
      if Graph.reads_children op then children_readers := oi :: !children_readers;
      if Graph.reads_ids op then ids_readers := oi :: !ids_readers;
      if Graph.reads_roots op then roots_readers := oi :: !roots_readers)
    iops;
  {
    iconfig = config;
    iapp = app;
    igraph = graph;
    it;
    csr_n;
    nrep;
    crow = fc.Graph.fc_crow;
    cdst = fc.Graph.fc_cdst;
    ckind = fc.Graph.fc_ckind;
    cast_names;
    cast_memo = Array.init (Array.length cast_names) (fun _ -> Bytes.make 256 '\000');
    iscc_count = fc.Graph.fc_scc_count;
    ilargest_scc = fc.Graph.fc_largest_scc;
    sols = Slots.create ();
    ideltas = Slots.create ();
    free_deltas = [];
    nq = Queue.create ();
    npending = Util.Bitset.create ();
    iops;
    iop_recv;
    iop_args;
    iop_out;
    op_reads;
    children_readers = List.rev !children_readers;
    ids_readers = List.rev !ids_readers;
    roots_readers = List.rev !roots_readers;
    ichildren = Slots.create ();
    iparents = Slots.create ();
    idesc_cache = Hashtbl.create 64;
    idesc_hits = 0;
    idesc_misses = 0;
    iids = Slots.create ();
    iby_id = Slots.create ();
    iroots = Slots.create ();
    ilisteners = Slots.create ();
    iholder_ids = [];
    iholders_seen = Util.Bitset.create ();
    irc_children = false;
    irc_ids = false;
    irc_roots = false;
    ipropagations = 0;
    iop_applications = 0;
    idelta_pushes = 0;
    iunion_calls = 0;
  }

(* Write the final id-level solution back into the graph's structural
   tables so every downstream consumer sees exactly what the structural
   engines would have produced. *)
let imaterialize st =
  let g = st.igraph in
  let it = st.it in
  let view_set b =
    Util.Bitset.fold (fun wid acc -> Graph.View_set.add (Intern.view_of it wid) acc) b
      Graph.View_set.empty
  in
  let non_empty f nid b = if not (Util.Bitset.is_empty b) then f nid b in
  Graph.reset_solution_tables g;
  (* Points-to sets are solved per SCC representative; expand back to
     member nodes here — every member of a direct-edge cycle provably
     saturates to the same set, so each component's bitset is decoded
     once and the same structural [VS.t] is installed for all members
     (including ids minted mid-solve, which are their own reps). *)
  let decoded = Hashtbl.create 64 in
  let decode rid b =
    match Hashtbl.find_opt decoded rid with
    | Some vs -> vs
    | None ->
        let vs =
          Util.Bitset.fold
            (fun vid acc -> Graph.VS.add (Intern.value_of it vid) acc)
            b Graph.VS.empty
        in
        Hashtbl.add decoded rid vs;
        vs
  in
  for nid = 0 to Intern.node_count it - 1 do
    let rid = irep st nid in
    match Slots.find st.sols rid with
    | Some b when not (Util.Bitset.is_empty b) ->
        Graph.install_set g (Intern.node_of it nid) (decode rid b)
    | _ -> ()
  done;
  Slots.iteri
    (non_empty (fun wid b -> Graph.install_children g (Intern.view_of it wid) (view_set b)))
    st.ichildren;
  Slots.iteri
    (non_empty (fun wid b -> Graph.install_parents g (Intern.view_of it wid) (view_set b)))
    st.iparents;
  Slots.iteri
    (non_empty (fun wid b ->
         Graph.install_ids g (Intern.view_of it wid)
           (Util.Bitset.fold
              (fun sym acc -> Graph.Int_set.add (Intern.rid_of it sym) acc)
              b Graph.Int_set.empty)))
    st.iids;
  Slots.iteri
    (non_empty (fun sym b -> Graph.install_views_by_id g (Intern.rid_of it sym) (view_set b)))
    st.iby_id;
  Slots.iteri
    (non_empty (fun hid b -> Graph.install_roots g (Intern.holder_of it hid) (view_set b)))
    st.iroots;
  Slots.iteri
    (non_empty (fun wid b ->
         Graph.install_listeners g (Intern.view_of it wid)
           (Util.Bitset.fold
              (fun eid acc -> Graph.Listener_set.add (Intern.listener_of it eid) acc)
              b Graph.Listener_set.empty)))
    st.ilisteners

type iret_target = IT_op of int | IT_frags

let run_interned config (app : Framework.App.t) graph =
  let st = ifreeze config app graph in
  let op_wl = Queue.create () in
  let op_pending = Util.Bitset.create () in
  let schedule oi = if Util.Bitset.add op_pending oi then Queue.push oi op_wl in
  let pending_decl = ref true in
  let pending_frags = ref true in
  let ret_deps : (int, iret_target list) Hashtbl.t = Hashtbl.create 16 in
  (* [on_changed] fires with representative ids (the propagation
     worklist lives in rep space), so dynamic return dependencies are
     registered under the rep too. *)
  let note_ret target nid =
    let rid = irep st nid in
    let existing = Option.value (Hashtbl.find_opt ret_deps rid) ~default:[] in
    if not (List.mem target existing) then Hashtbl.replace ret_deps rid (target :: existing)
  in
  let on_changed nid =
    if nid < st.csr_n then List.iter schedule st.op_reads.(nid);
    match Hashtbl.find_opt ret_deps nid with
    | Some targets ->
        List.iter
          (function IT_op oi -> schedule oi | IT_frags -> pending_frags := true)
          targets
    | None -> ()
  in
  List.iter
    (fun (node, values) ->
      let nid = Intern.node st.it node in
      Graph.VS.iter (fun v -> ipush st nid (Intern.value st.it v)) values)
    (Graph.seeds graph);
  ipropagate st ~changed:on_changed;
  Array.iteri (fun oi _ -> schedule oi) st.iops;
  let iterations = ref 0 in
  let work_remaining () =
    (not (Queue.is_empty op_wl)) || !pending_decl || !pending_frags
  in
  while work_remaining () && !iterations < config.Config.max_iterations do
    incr iterations;
    while not (Queue.is_empty op_wl) do
      let oi = Queue.pop op_wl in
      Util.Bitset.remove op_pending oi;
      st.iop_applications <- st.iop_applications + 1;
      iapply_op st ~note_ret:(note_ret (IT_op oi)) oi
    done;
    if !pending_decl then begin
      pending_decl := false;
      iapply_declarative_handlers st
    end;
    if !pending_frags then begin
      pending_frags := false;
      iapply_declared_fragments st ~note_ret:(note_ret IT_frags)
    end;
    ipropagate st ~changed:on_changed;
    let rc = Graph.take_rel_changes graph in
    let rc_children = rc.Graph.rc_children || st.irc_children in
    let rc_ids = rc.Graph.rc_ids || st.irc_ids in
    let rc_roots = rc.Graph.rc_roots || st.irc_roots in
    st.irc_children <- false;
    st.irc_ids <- false;
    st.irc_roots <- false;
    if rc_children then begin
      List.iter schedule st.children_readers;
      pending_decl := true
    end;
    if rc_ids then List.iter schedule st.ids_readers;
    if rc_roots then begin
      List.iter schedule st.roots_readers;
      pending_decl := true
    end;
    if rc.Graph.rc_onclick then pending_decl := true;
    if rc.Graph.rc_fragments then pending_frags := true
  done;
  if work_remaining () then
    Logs.warn (fun m -> m "solver hit the iteration cap (%d); result may be partial" !iterations);
  imaterialize st;
  {
    iterations = !iterations;
    propagations = st.ipropagations;
    op_applications = st.iop_applications;
    delta_pushes = st.idelta_pushes;
    desc_cache_hits = st.idesc_hits;
    desc_cache_misses = st.idesc_misses;
    interned_values = Intern.value_count st.it;
    interned_nodes = Intern.node_count st.it;
    bitset_words = Slots.total_words st.sols;
    union_calls = st.iunion_calls;
    scc_count = st.iscc_count;
    largest_scc = st.ilargest_scc;
  }

let run config (app : Framework.App.t) graph =
  Graph.reset_sets graph;
  match config.Config.solver with
  | Config.Interned -> run_interned config app graph
  | (Config.Naive | Config.Delta) as solver ->
      let descend =
        match solver with
        | Config.Naive -> fun ~include_self view -> Graph.descendants graph ~include_self view
        | _ -> fun ~include_self view -> Graph.descendants_cached graph ~include_self view
      in
      let state =
        {
          config;
          app;
          graph;
          worklist = Util.Worklist.create ();
          descend;
          indexed_find = (solver = Config.Delta);
          propagations = 0;
          op_applications = 0;
          delta_pushes = 0;
          dirty = false;
        }
      in
      let iterations =
        match solver with Config.Naive -> run_naive state | _ -> run_delta state
      in
      let desc_cache_hits, desc_cache_misses = Graph.desc_cache_counters graph in
      {
        iterations;
        propagations = state.propagations;
        op_applications = state.op_applications;
        delta_pushes = state.delta_pushes;
        desc_cache_hits;
        desc_cache_misses;
        interned_values = 0;
        interned_nodes = 0;
        bitset_words = 0;
        union_calls = 0;
        scc_count = 0;
        largest_scc = 0;
      }
