(** The constraint solver (Section 4.2/4.3): graph reachability to
    propagate values, plus a fixed-point loop applying the inference
    rules at operation nodes — INFLATE1/2, ADDVIEW1/2, SETID,
    SETLISTENER, FINDVIEW1/2/3 — until no points-to set and no
    relationship edge changes. *)

type stats = {
  iterations : int;  (** operation-pass rounds until fixpoint *)
  propagations : int;  (** total worklist pops *)
  op_applications : int;
      (** op-node rule applications; the naive solver performs
          [iterations * |ops|], the delta solver only re-applies ops
          whose inputs grew *)
  delta_pushes : int;
      (** (value, edge) pushes attempted from delta sets; [0] under
          the naive solver *)
  desc_cache_hits : int;  (** descendants-closure memo hits *)
  desc_cache_misses : int;  (** descendants-closure memo misses *)
  interned_values : int;
      (** distinct abstract values hash-consed by the interned engine;
          [0] under the structural engines *)
  interned_nodes : int;  (** distinct interned locations; [0] under the structural engines *)
  bitset_words : int;
      (** words allocated across solution-set bitsets at fixpoint; [0]
          under the structural engines *)
  union_calls : int;
      (** word-level bitset unions performed on direct flow edges; [0]
          under the structural engines *)
  scc_count : int;
      (** strongly connected components of the direct-edge flow graph
          at freeze time (singletons included); [0] under the
          structural engines *)
  largest_scc : int;
      (** member count of the largest direct-edge SCC — every cycle
          this size collapses to one shared bitset; [0] under the
          structural engines *)
}

val run : Config.t -> Framework.App.t -> Graph.t -> stats
(** Mutates the graph's points-to sets and relations.  Safe to re-run:
    sets are reset from the seeds first.  The engine is selected by
    [config.solver]; both produce the same solution. *)
