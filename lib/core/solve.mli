(** The constraint solver (Section 4.2/4.3): graph reachability to
    propagate values, plus a fixed-point loop applying the inference
    rules at operation nodes — INFLATE1/2, ADDVIEW1/2, SETID,
    SETLISTENER, FINDVIEW1/2/3 — until no points-to set and no
    relationship edge changes. *)

type stats = {
  iterations : int;  (** operation-pass rounds until fixpoint *)
  propagations : int;  (** total worklist pops *)
  op_applications : int;
      (** op-node rule applications; the naive solver performs
          [iterations * |ops|], the delta solver only re-applies ops
          whose inputs grew *)
  delta_pushes : int;
      (** (value, edge) pushes attempted from delta sets; [0] under
          the naive solver *)
  desc_cache_hits : int;  (** descendants-closure memo hits *)
  desc_cache_misses : int;  (** descendants-closure memo misses *)
  interned_values : int;
      (** distinct abstract values hash-consed by the interned engine;
          [0] under the structural engines *)
  interned_nodes : int;  (** distinct interned locations; [0] under the structural engines *)
  bitset_words : int;
      (** words allocated across solution-set bitsets at fixpoint; [0]
          under the structural engines *)
  union_calls : int;
      (** word-level bitset unions performed on direct flow edges; [0]
          under the structural engines *)
  scc_count : int;
      (** strongly connected components of the direct-edge flow graph
          at freeze time (singletons included); [0] under the
          structural engines *)
  largest_scc : int;
      (** member count of the largest direct-edge SCC — every cycle
          this size collapses to one shared bitset; [0] under the
          structural engines *)
  ctx_count : int;
      (** distinct call-string contexts (clone numbers) minted by the
          context-keyed extraction; [0] under the structural engines or
          without [ctx_keyed] context sensitivity *)
  ctx_keys : int;
      (** distinct ⟨node, ctx⟩ keys interned by the context-keyed
          extraction (the id-space footprint context sensitivity added);
          [0] likewise *)
  warm_solve : bool;
      (** the solution was reached by the incremental (warm) path:
          previous component solutions restored, only dirty components
          re-solved *)
  dirty_comps : int;
      (** condensation components invalidated by the edit script and
          re-solved from scratch (warm solves, else [0]) *)
  reused_comps : int;
      (** components whose previous solution sets were restored by
          aliasing (warm solves, else [0]) *)
  fallback : string option;
      (** set when an incremental request could not warm-start (stale
          snapshot, changed configuration or hierarchy, corrupt state
          file) and a full solve ran instead; carries the reason *)
}

val run : Config.t -> Framework.App.t -> Graph.t -> stats
(** Mutates the graph's points-to sets and relations.  Safe to re-run:
    sets are reset from the seeds first.  The engine is selected by
    [config.solver]; both produce the same solution. *)

(** {1 Incremental re-analysis}

    A full solve can be captured as a {!solved}; when a patched version
    of the app is extracted over the same interner
    ([Extract.run ~interner]), {!Diff.edit_script} between the two
    {!shape}s drives {!run_incremental}: only the condensation
    components forward-reachable from the edits are re-solved, every
    other component's solution is restored by aliasing the previous
    bitsets.  The warm result is bit-identical to a from-scratch
    solve. *)

(** The diffable summary of a constraint graph: flow CSR, seeds, and
    operation nodes, all over interner ids. *)
type shape = {
  sh_nodes : int;  (** nodes covered by the flow CSR *)
  sh_row : int array;
  sh_edst : int array;
  sh_ekind : int array;  (** [-1] direct, else index into [sh_cast_names] *)
  sh_cast_names : string array;
  sh_seeds : (int * int) array;  (** sorted (node id, value id) pairs *)
  sh_ops : (Node.op_site * int * int array * int) array;
      (** per op: site, receiver id, argument ids, out id or [-1] *)
}

(** Edit script between two shapes sharing an interner (produced by
    {!Diff.edit_script}).  Edge kinds are in the NEW shape's
    cast-symbol space; removed edges whose cast class vanished carry a
    sentinel [<= -2]. *)
type edit_script = {
  es_removed_edges : (int * int * int) array;  (** (src, kind, dst) *)
  es_added_edges : (int * int * int) array;
  es_removed_seeds : (int * int) array;
  es_added_seeds : (int * int) array;
  es_old_to_new : int array;  (** old op index -> new, [-1] unmatched (removed) *)
  es_new_to_old : int array;  (** new op index -> old, [-1] unmatched (added) *)
}

(** Dynamic return-dependency kinds, as captured: a method-return
    location some op (or the declared-fragment pass) re-fires on when
    it grows. *)
type rd = RD_op of int | RD_frags

(** A captured solution.  The record is exposed for persistence
    ({!Snapshot}); treat every field as READ-ONLY — the bitsets are
    aliased by later warm solves, and [sd_graph] donates structural
    solution tables to warm materialisation, so it must never be
    re-solved. *)
type solved = {
  sd_config : Config.t;
  sd_app_name : string;
  sd_class_fp : string;
  sd_method_fp : string;
  sd_layout_fp : string;
  sd_package : Layouts.Package.t;
  sd_graph : Graph.t;
  sd_it : Intern.t;
  sd_node_total : int;  (** interned node count at capture *)
  sd_value_total : int;
  sd_csr_n : int;  (** nodes covered by the frozen CSR *)
  sd_nrep : int array;  (** node id -> SCC representative, sized [sd_csr_n] *)
  sd_row : int array;
  sd_edst : int array;
  sd_ekind : int array;
  sd_cast_names : string array;
  sd_seeds : (int * int) array;
  sd_ops : (Node.op_site * int * int array * int) array;
  sd_sols : Util.Bitset.t option array;  (** per representative; aliased, never mutated *)
  sd_sols_mask : Util.Bitset.t;  (** bits of the [Some] slots of [sd_sols] *)
  sd_children : Util.Bitset.t option array;
  sd_parents : Util.Bitset.t option array;
  sd_ids : Util.Bitset.t option array;
  sd_by_id : Util.Bitset.t option array;
  sd_roots : Util.Bitset.t option array;
  sd_listeners : Util.Bitset.t option array;
  sd_holder_ids : int list;  (** discovery order, newest first *)
  sd_ret_deps : (int * rd) list;  (** representative -> dynamic reader *)
  sd_targets : Util.Bitset.t array;
      (** per op, plus declarative and fragment pseudo-slots at
          [|ops|] and [|ops|+1]: representatives the writer pushed
          values to (transitive across warm restarts) *)
}

val class_fp : Framework.App.t -> string
(** Fingerprint of the class hierarchy (names, kinds, supertypes);
    a mismatch with a captured solve forces a full re-solve. *)

val method_fp : Framework.App.t -> string
(** Fingerprint of the method surface (names, arities, parameter
    names); a mismatch makes resolve-dependent ops suspect but keeps
    the warm path. *)

val layout_fp : Framework.App.t -> string
(** Fingerprint of the layout resources; a mismatch forces a full
    re-solve. *)

val passes_cast : Jir.Hierarchy.t -> string -> Node.value -> bool
(** Can [value] pass through a cast to the named class?  Sound
    filtering: the abstract object's dynamic class is known exactly, so
    the cast succeeds iff it is a subtype; unknown classes pass, id
    values never do.  Exposed for the demand-driven {!Query} engine,
    which must filter backward walks over cast edges exactly as the
    forward solver does. *)

val shape_of_graph : Graph.t -> shape

val shape_of_solved : solved -> shape

val solved_interner : solved -> Intern.t

val solved_rep : solved -> int -> int
(** SCC representative of a node id, with the same guard the solver
    applies: ids outside the frozen CSR (minted mid-solve or later) are
    their own singleton representatives. *)

val solved_app_name : solved -> string

val solved_config : solved -> Config.t

val solved_class_fp : solved -> string
(** Class-hierarchy fingerprint at capture; a registry reloading state
    from disk checks it against the freshly built app before trusting
    hierarchy-dependent answers (cast filtering). *)

val run_solved : ?fallback:string -> Config.t -> Framework.App.t -> Graph.t -> stats * solved
(** Full solve that also captures the solution for warm restarts.
    Always uses the interned engine regardless of [config.solver] (the
    captured state is id-level); the installed solution is identical
    either way.  [?fallback] is threaded into [stats.fallback] when
    this full solve is standing in for a refused warm start. *)

val run_incremental :
  prev:solved ->
  edits:edit_script ->
  ?new_shape:shape ->
  Config.t ->
  Framework.App.t ->
  Graph.t ->
  stats * solved
(** Warm re-solve.  [graph] must be the patched app's graph extracted
    over [prev]'s interner ([Extract.run ~interner]), [edits] the edit
    script from [shape_of_solved prev] to [shape_of_graph graph].
    Passing that same new shape as [?new_shape] lets the warm path
    reuse its seed pairs instead of re-deriving them from the graph.
    Falls back to {!run_solved} (with [stats.fallback] set) when the
    warm guard refuses: different interner, changed configuration,
    changed class hierarchy, or changed layout resources.  Not
    thread-safe against concurrent solves sharing the interner. *)

val warm_guard : solved -> Config.t -> Framework.App.t -> Graph.t -> string option
(** The reason {!run_incremental} would fall back, if any. *)
