module VS = Set.Make (struct
  type t = Node.value

  let compare = Node.compare_value
end)

module View_set = Set.Make (struct
  type t = Node.view_abs

  let compare = Node.compare_view
end)

module Listener_set = Set.Make (struct
  type t = Node.listener_abs * string

  let compare (l1, i1) (l2, i2) =
    let c = Node.compare_listener l1 l2 in
    if c <> 0 then c else String.compare i1 i2
end)

module Int_set = Set.Make (Int)

module String_set = Set.Make (String)

type edge_kind = E_direct | E_cast of string

(* Hashed-key tables with explicit equal/hash (the polymorphic hash
   walks whole nested records and caps its traversal; these reuse the
   explicit [Node] hashes).  Edge dedup runs over interned ids — the
   endpoints are hash-consed before the membership test, so the key is
   a flat int triple instead of two deep node structures. *)
module Edge_seen = Hashtbl.Make (struct
  type t = int * int * int  (** src id, cast sym (-1 = direct), dst id *)

  let equal (s1, k1, d1) (s2, k2, d2) = s1 = s2 && k1 = k2 && d1 = d2

  let hash (s, k, d) = Node.mix (Node.mix s k) d
end)

module Alloc_seen = Hashtbl.Make (struct
  type t = Node.alloc_site

  let equal a b = Node.compare_alloc a b = 0

  let hash = Node.hash_alloc
end)

type op = { site : Node.op_site; op_recv : Node.t; op_args : Node.t list; op_out : Node.t option }

(* Frozen flow snapshot: the full CSR plus the SCC condensation of its
   direct-edge subgraph.  Nodes minted after the snapshot ([fc_nodes])
   are implicitly singleton components with no edges. *)
type flow_csr = {
  fc_nodes : int;
  fc_row : int array;
  fc_edst : int array;
  fc_ekind : int array;
  fc_cast_names : string array;
  fc_rep : int array;
  fc_crow : int array;
  fc_cdst : int array;
  fc_ckind : int array;
  fc_scc_count : int;
  fc_largest_scc : int;
}

(* Dependency index for the delta solver: which ops read a given
   points-to set, and which ops read each view relation.  Built once
   from the (static) op list. *)
type dep_index = {
  di_node : (Node.t, op list) Hashtbl.t;  (** recv/arg node -> ops reading it *)
  di_children : op list;  (** ops reading the parent/child relation *)
  di_ids : op list;  (** ops reading view=>id associations *)
  di_roots : op list;  (** ops reading holder=>root associations *)
}

(* Which view relations grew since the last [take_rel_changes]. *)
type rel_changes = {
  rc_children : bool;
  rc_ids : bool;
  rc_roots : bool;
  rc_onclick : bool;
  rc_fragments : bool;
}

type t = {
  g_it : Intern.t;
      (** hash-consing interner: every node touched by an edge, seed,
          or op gets a dense id at construction time, so the interned
          solver's freeze step is pure integer work *)
  edges : (Node.t, (edge_kind * Node.t) list) Hashtbl.t;
  mutable isuccs : (int * int) list array;
      (** id-level mirror of [edges]: src id -> (cast sym, dst id),
          newest first *)
  icast_tbl : (string, int) Hashtbl.t;  (** cast class -> dense sym *)
  mutable icast_rev : string list;  (** newest first *)
  mutable frozen : (int * flow_csr) option;
      (** CSR snapshot memo, keyed by the edge count it was built at;
          flow edges only grow during extraction, so re-solving reuses
          the frozen arrays *)
  mutable iop_ids : (int * int array * int) list;
      (** per op, newest first: (recv id, arg ids, out id or -1) *)
  edge_seen : unit Edge_seen.t;
  mutable edge_total : int;
  seed_tbl : (Node.t, VS.t) Hashtbl.t;
  mutable sets : (Node.t, VS.t) Hashtbl.t;
  mutable sets_base : (Node.t, VS.t) Hashtbl.t option;
      (** read-only donor layer under [sets], adopted by warm
          materialisation: lookups fall through to it, writes land in
          [sets], removals leave a tombstone in [sets_dead] — O(1) to
          adopt a previous solve's table instead of O(app) to copy it *)
  sets_dead : (Node.t, unit) Hashtbl.t;
      (** base-layer rows deleted from this graph's view *)
  delta_tbl : (Node.t, Node.value list) Hashtbl.t;
      (** values added since the node's last drain, newest first; a
          list because [add_value] already guarantees uniqueness *)
  mutable track_deltas : bool;  (** delta bookkeeping on (delta solver only) *)
  mutable op_list : op list;  (** reversed creation order *)
  mutable dep_index : dep_index option;  (** lazily built, invalidated by [fresh_op] *)
  mutable alloc_list : Node.alloc_site list;  (** reversed creation order *)
  alloc_seen : unit Alloc_seen.t;
  mutable children_tbl : (Node.view_abs, View_set.t) Hashtbl.t;
  mutable parents_tbl : (Node.view_abs, View_set.t) Hashtbl.t;
  desc_cache : (Node.view_abs, View_set.t) Hashtbl.t;
      (** memoized strict descendants closures, invalidated by [add_child] *)
  mutable desc_hits : int;
  mutable desc_misses : int;
  mutable ids_tbl : (Node.view_abs, Int_set.t) Hashtbl.t;
  mutable views_by_id_tbl : (int, View_set.t) Hashtbl.t;  (** reverse of [ids_tbl] *)
  mutable roots_tbl : (Node.holder, View_set.t) Hashtbl.t;
  mutable listeners_tbl : (Node.view_abs, Listener_set.t) Hashtbl.t;
  root_layout_tbl : (Node.view_abs, Int_set.t) Hashtbl.t;
  inflations : (Node.site * string, Node.view_abs list) Hashtbl.t;
  transitions_tbl : (string * string, unit) Hashtbl.t;  (** activity transition edges *)
  onclick_tbl : (Node.view_abs, String_set.t) Hashtbl.t;  (** android:onClick handler names *)
  declared_fragments_tbl : (Node.view_abs, String_set.t) Hashtbl.t;  (** <fragment> classes *)
  mutable rc_children : bool;
  mutable rc_ids : bool;
  mutable rc_roots : bool;
  mutable rc_onclick : bool;
  mutable rc_fragments : bool;
  mutable g_has_top : bool;
      (** some seed introduced an unknown-id marker ([V_layout_top] /
          [V_view_id_top]); the warm guard refuses incremental starts
          over such graphs *)
  mutable taint_tbl : (Node.t, VS.t) Hashtbl.t;
      (** per-node subset of [sets] reached only through an unknown-id
          marker (the [imprecise] plane); diagnostic — solving never
          branches on it *)
}

(* [?interner] lets an incremental re-extraction mint ids in a
   pre-populated pool: every node/value/view already known from the
   previous solve keeps its id, so the warm solver can alias the old
   per-representative bitsets instead of translating them. *)
let create ?interner () =
  {
    g_it = (match interner with Some it -> it | None -> Intern.create ());
    edges = Hashtbl.create 256;
    isuccs = [||];
    icast_tbl = Hashtbl.create 8;
    icast_rev = [];
    frozen = None;
    iop_ids = [];
    edge_seen = Edge_seen.create 256;
    edge_total = 0;
    seed_tbl = Hashtbl.create 128;
    sets = Hashtbl.create 256;
    sets_base = None;
    sets_dead = Hashtbl.create 16;
    delta_tbl = Hashtbl.create 256;
    track_deltas = false;
    op_list = [];
    dep_index = None;
    alloc_list = [];
    alloc_seen = Alloc_seen.create 64;
    children_tbl = Hashtbl.create 64;
    parents_tbl = Hashtbl.create 64;
    desc_cache = Hashtbl.create 64;
    desc_hits = 0;
    desc_misses = 0;
    ids_tbl = Hashtbl.create 64;
    views_by_id_tbl = Hashtbl.create 64;
    roots_tbl = Hashtbl.create 16;
    listeners_tbl = Hashtbl.create 32;
    root_layout_tbl = Hashtbl.create 16;
    inflations = Hashtbl.create 16;
    transitions_tbl = Hashtbl.create 16;
    onclick_tbl = Hashtbl.create 16;
    declared_fragments_tbl = Hashtbl.create 16;
    rc_children = false;
    rc_ids = false;
    rc_roots = false;
    rc_onclick = false;
    rc_fragments = false;
    g_has_top = false;
    taint_tbl = Hashtbl.create 16;
  }

(* Idempotent per site: inlined clones of a statement denote the same
   allocation abstraction.  The dedup table ([alloc_seen]) is part of
   the graph, so concurrent extractions on separate domains — each
   owning its own graph — cannot interleave allocation lists. *)
let fresh_alloc t ~cls ~site =
  let alloc = { Node.a_site = site; a_cls = cls } in
  if not (Alloc_seen.mem t.alloc_seen alloc) then begin
    Alloc_seen.add t.alloc_seen alloc ();
    t.alloc_list <- alloc :: t.alloc_list
  end;
  alloc

let interner t = t.g_it

let node_id t node = Intern.node t.g_it node

let cast_sym t cls =
  match Hashtbl.find_opt t.icast_tbl cls with
  | Some sym -> sym
  | None ->
      let sym = Hashtbl.length t.icast_tbl in
      Hashtbl.add t.icast_tbl cls sym;
      t.icast_rev <- cls :: t.icast_rev;
      sym

let isuccs_ensure t i =
  let n = Array.length t.isuccs in
  if i >= n then begin
    let grown = Array.make (max 256 (max (i + 1) (2 * n))) [] in
    Array.blit t.isuccs 0 grown 0 n;
    t.isuccs <- grown
  end

let fresh_op t ~kind ~site ~recv ~args ~out =
  let op = { site = { Node.o_site = site; o_kind = kind }; op_recv = recv; op_args = args; op_out = out } in
  let rid = node_id t recv in
  let aids = Array.of_list (List.map (node_id t) args) in
  let oid = match out with Some n -> node_id t n | None -> -1 in
  t.iop_ids <- (rid, aids, oid) :: t.iop_ids;
  t.op_list <- op :: t.op_list;
  t.dep_index <- None;
  op

let add_edge t ?(kind = E_direct) src dst =
  let sid = node_id t src and did = node_id t dst in
  let ksym = match kind with E_direct -> -1 | E_cast cls -> cast_sym t cls in
  let key = (sid, ksym, did) in
  if not (Edge_seen.mem t.edge_seen key) then begin
    Edge_seen.add t.edge_seen key ();
    t.edge_total <- t.edge_total + 1;
    let existing = Option.value (Hashtbl.find_opt t.edges src) ~default:[] in
    Hashtbl.replace t.edges src ((kind, dst) :: existing);
    isuccs_ensure t sid;
    t.isuccs.(sid) <- (ksym, did) :: t.isuccs.(sid)
  end

let seed t node value =
  ignore (node_id t node);
  (match value with
  | Node.V_layout_top | Node.V_view_id_top -> t.g_has_top <- true
  | _ -> ());
  let existing = Option.value (Hashtbl.find_opt t.seed_tbl node) ~default:VS.empty in
  Hashtbl.replace t.seed_tbl node (VS.add value existing)

let has_top t = t.g_has_top

(* Id-level emission (context-keyed extraction).  Clone-body
   constraints write only the id-level mirrors — the edge dedup table,
   [isuccs], and the edge counter — never the structural [edges]
   table.  The frozen CSR is laid out from [isuccs], so the interned
   solver sees the context-expanded flow graph, while structural
   consumers ([succs], [locations], [pp_dot]) keep the
   context-insensitive skeleton; materialisation installs the clone
   rows structurally after the solve. *)
let add_edge_ids t ?(kind = E_direct) sid did =
  let ksym = match kind with E_direct -> -1 | E_cast cls -> cast_sym t cls in
  let key = (sid, ksym, did) in
  if not (Edge_seen.mem t.edge_seen key) then begin
    Edge_seen.add t.edge_seen key ();
    t.edge_total <- t.edge_total + 1;
    isuccs_ensure t sid;
    t.isuccs.(sid) <- (ksym, did) :: t.isuccs.(sid)
  end

(* Seed statements are rare (allocations, id constants); decoding the
   id back keeps the seed table structural and identical between the
   keyed and inlining paths. *)
let seed_id t nid value = seed t (Intern.node_of t.g_it nid) value

(* The op record still carries structural nodes (decoded from the ids,
   so clone receivers surface with their [$n]-suffixed names exactly as
   the inlining path records them); the id triple goes straight onto
   [iop_ids] without re-interning. *)
let fresh_op_ids t ~kind ~site ~recv ~args ~out =
  let node_of id = Intern.node_of t.g_it id in
  let op =
    {
      site = { Node.o_site = site; o_kind = kind };
      op_recv = node_of recv;
      op_args = List.map node_of args;
      op_out = Option.map node_of out;
    }
  in
  t.iop_ids <- (recv, Array.of_list args, Option.value out ~default:(-1)) :: t.iop_ids;
  t.op_list <- op :: t.op_list;
  t.dep_index <- None;
  op

(* Iterative Tarjan over the direct-edge subgraph ([ekind < 0]).  Cast
   edges are excluded: they filter, and collapsing a cast into a shared
   component set would let unfiltered values lap the filter.  Returns
   the node -> representative map (the smallest member id, so the
   choice is deterministic independently of traversal details), the
   component count, and the largest component size. *)
let condense_direct n row edst ekind =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let tstack = Array.make n 0 in
  let tsp = ref 0 in
  (* explicit DFS frames: node + next-edge cursor *)
  let dfs_v = Array.make n 0 in
  let dfs_e = Array.make n 0 in
  let dsp = ref 0 in
  let counter = ref 0 in
  let rep = Array.make n 0 in
  let scc_count = ref 0 in
  let largest = ref 0 in
  let push v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    tstack.(!tsp) <- v;
    incr tsp;
    on_stack.(v) <- true;
    dfs_v.(!dsp) <- v;
    dfs_e.(!dsp) <- row.(v);
    incr dsp
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push root;
      while !dsp > 0 do
        let v = dfs_v.(!dsp - 1) in
        let e = dfs_e.(!dsp - 1) in
        if e < row.(v + 1) then begin
          dfs_e.(!dsp - 1) <- e + 1;
          if ekind.(e) < 0 then begin
            let w = edst.(e) in
            if index.(w) < 0 then push w
            else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w)
          end
        end
        else begin
          decr dsp;
          if !dsp > 0 then begin
            let parent = dfs_v.(!dsp - 1) in
            if low.(v) < low.(parent) then low.(parent) <- low.(v)
          end;
          if low.(v) = index.(v) then begin
            incr scc_count;
            let size = ref 0 in
            let min_id = ref v in
            let more = ref true in
            while !more do
              decr tsp;
              let w = tstack.(!tsp) in
              on_stack.(w) <- false;
              rep.(w) <- v;
              incr size;
              if w < !min_id then min_id := w;
              if w = v then more := false
            done;
            if !size > !largest then largest := !size;
            (* [low] of a finished root is never read by the DFS again;
               reuse it to carry root -> smallest member. *)
            low.(v) <- !min_id
          end
        end
      done
    end
  done;
  for v = 0 to n - 1 do
    rep.(v) <- low.(rep.(v))
  done;
  (rep, !scc_count, !largest)

(* Condensed CSR: every edge mapped through [rep], intra-component
   edges dropped (direct ones are subsumed by the shared component set;
   a cast edge inside a direct cycle only re-adds a subset of what the
   direct path already carries), duplicates merged. *)
let build_condensed n row edst ekind rep =
  let seen = Edge_seen.create 256 in
  let lists = Array.make n [] in
  (* (kind, rep dst), newest first per rep *)
  let total = ref 0 in
  for u = 0 to n - 1 do
    let ru = rep.(u) in
    for e = row.(u) to row.(u + 1) - 1 do
      let rv = rep.(edst.(e)) in
      if ru <> rv then begin
        let k = ekind.(e) in
        let key = (ru, k, rv) in
        if not (Edge_seen.mem seen key) then begin
          Edge_seen.add seen key ();
          lists.(ru) <- (k, rv) :: lists.(ru);
          incr total
        end
      end
    done
  done;
  let crow = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    crow.(i + 1) <- crow.(i) + List.length lists.(i)
  done;
  let cdst = Array.make !total 0 in
  let ckind = Array.make !total (-1) in
  for i = 0 to n - 1 do
    let e = ref crow.(i + 1) in
    List.iter
      (fun (k, rv) ->
        decr e;
        cdst.(!e) <- rv;
        ckind.(!e) <- k)
      lists.(i)
  done;
  (crow, cdst, ckind)

(* CSR snapshot of the flow edges over the interned ids: [isuccs] keeps
   each adjacency newest-first, so laying entries out backward from the
   row boundary restores insertion order. *)
(* Copy-chain substitution over context clones (offline variable
   substitution, restricted to ids {!Intern.ctx_clone_ids} certifies
   as flow-only).  A clone variable with exactly one incoming direct
   edge, no incoming cast edge, no seed and no op writing it provably
   saturates to its predecessor's set, so it needs no bitset of its
   own: its rep is patched to the chain root's and the defining edge
   disappears from the condensed CSR.  Context expansion mass-produces
   exactly this shape (recv → this$n, arg → param$n, ret$n → out), so
   the solve over the expanded graph collapses back towards the
   context-insensitive size.  Materialisation still installs every
   clone node (from the shared root set), keeping the result
   bit-identical to the inlining path; non-keyed graphs have no clone
   ids and skip this entirely. *)
let clone_subst t n row edst ekind =
  match Intern.ctx_clone_ids t.g_it with
  | [] -> None
  | clone_ids ->
      let direct_in = Array.make n 0 in
      let cast_in = Array.make n false in
      let pred = Array.make n (-1) in
      for i = 0 to n - 1 do
        for e = row.(i) to row.(i + 1) - 1 do
          let d = edst.(e) in
          if ekind.(e) < 0 then begin
            direct_in.(d) <- direct_in.(d) + 1;
            pred.(d) <- i
          end
          else cast_in.(d) <- true
        done
      done;
      let blocked = Array.make n false in
      List.iter (fun (_, _, oid) -> if oid >= 0 && oid < n then blocked.(oid) <- true) t.iop_ids;
      Hashtbl.iter
        (fun node _ ->
          match Intern.find_node t.g_it node with
          | Some id when id < n -> blocked.(id) <- true
          | _ -> ())
        t.seed_tbl;
      let cand = Array.make n false in
      List.iter
        (fun id ->
          if
            id < n && direct_in.(id) = 1 && (not cast_in.(id)) && (not blocked.(id))
            && pred.(id) <> id
          then cand.(id) <- true)
        clone_ids;
      (* Chase chains to their first non-substituted node; a defining
         cycle (pure copy loop with no outside edge) demotes the link
         where it closes, which the solver then treats normally. *)
      let sub = Array.init n Fun.id in
      let state = Array.make n 0 in
      let rec resolve i =
        if not cand.(i) then i
        else if state.(i) = 2 then sub.(i)
        else if state.(i) = 1 then begin
          cand.(i) <- false;
          i
        end
        else begin
          state.(i) <- 1;
          let r = resolve pred.(i) in
          state.(i) <- 2;
          if cand.(i) then begin
            sub.(i) <- r;
            r
          end
          else i
        end
      in
      List.iter (fun id -> if id < n then ignore (resolve id)) clone_ids;
      let count = ref 0 in
      Array.iteri (fun i r -> if r <> i then incr count) sub;
      if !count = 0 then None else Some (sub, !count)

let build_frozen_flow t =
  let n = Intern.node_count t.g_it in
  let m = Array.length t.isuccs in
  let row = Array.make (n + 1) 0 in
  for i = 0 to min m n - 1 do
    row.(i + 1) <- List.length t.isuccs.(i)
  done;
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + row.(i + 1)
  done;
  let edst = Array.make row.(n) 0 in
  let ekind = Array.make row.(n) (-1) in
  for i = 0 to min m n - 1 do
    let e = ref row.(i + 1) in
    List.iter
      (fun (ksym, did) ->
        decr e;
        edst.(!e) <- did;
        ekind.(!e) <- ksym)
      t.isuccs.(i)
  done;
  (* [row]/[edst]/[ekind] stay the true edges — the incremental shape
     diff and solved capture read them; substitution only rewrites the
     condensation input and patches the rep table. *)
  let rep, scc_count, largest, crow, cdst, ckind =
    match clone_subst t n row edst ekind with
    | None ->
        let rep, scc_count, largest = condense_direct n row edst ekind in
        let crow, cdst, ckind = build_condensed n row edst ekind rep in
        (rep, scc_count, largest, crow, cdst, ckind)
    | Some (sub, subst_count) ->
        (* Rewritten edges: sources resolve through [sub]; edges into a
           substituted node (each one a chain's defining edge) and
           direct self-loops (no-op unions closed by the rewrite) are
           dropped. *)
        let row2 = Array.make (n + 1) 0 in
        for i = 0 to n - 1 do
          for e = row.(i) to row.(i + 1) - 1 do
            let d = edst.(e) in
            if sub.(d) = d && not (ekind.(e) < 0 && sub.(i) = d) then
              row2.(sub.(i) + 1) <- row2.(sub.(i) + 1) + 1
          done
        done;
        for i = 0 to n - 1 do
          row2.(i + 1) <- row2.(i) + row2.(i + 1)
        done;
        let edst2 = Array.make (max 1 row2.(n)) 0 in
        let ekind2 = Array.make (max 1 row2.(n)) (-1) in
        let cursor = Array.make n 0 in
        for i = 0 to n - 1 do
          for e = row.(i) to row.(i + 1) - 1 do
            let d = edst.(e) in
            if sub.(d) = d && not (ekind.(e) < 0 && sub.(i) = d) then begin
              let s = sub.(i) in
              let slot = row2.(s) + cursor.(s) in
              cursor.(s) <- cursor.(s) + 1;
              edst2.(slot) <- d;
              ekind2.(slot) <- ekind.(e)
            end
          done
        done;
        let rep, scc_count, largest = condense_direct n row2 edst2 ekind2 in
        let crow, cdst, ckind = build_condensed n row2 edst2 ekind2 rep in
        (* Substituted nodes alias their root's component: reads, op
           scheduling and materialisation all go through [fc_rep], so
           the aliasing is invisible outside the solver core.  They are
           not real components — keep the count honest. *)
        Array.iteri (fun i r -> if r <> i then rep.(i) <- rep.(r)) sub;
        (rep, scc_count - subst_count, largest, crow, cdst, ckind)
  in
  {
    fc_nodes = n;
    fc_row = row;
    fc_edst = edst;
    fc_ekind = ekind;
    fc_cast_names = Array.of_list (List.rev t.icast_rev);
    fc_rep = rep;
    fc_crow = crow;
    fc_cdst = cdst;
    fc_ckind = ckind;
    fc_scc_count = scc_count;
    fc_largest_scc = largest;
  }

(* Nodes minted after the snapshot (views discovered while solving)
   have no flow edges, so a memo built at the same edge count is still
   exact even though the interner has grown since.  The converse —
   serving a snapshot built over MORE nodes than the interner currently
   holds — can only happen if a future edge-removal/graph-reset API
   shrinks the pools without dropping the memo; the debug assert below
   turns that silent staleness into a crash at the memo hit. *)
let frozen_flow t =
  match t.frozen with
  | Some (at_edges, csr) when at_edges = t.edge_total ->
      assert (Intern.node_count t.g_it >= csr.fc_nodes);
      csr
  | _ ->
      let csr = build_frozen_flow t in
      t.frozen <- Some (t.edge_total, csr);
      csr

let ops_node_ids t = Array.of_list (List.rev t.iop_ids)

let set_of t node =
  match Hashtbl.find_opt t.sets node with
  | Some vs -> vs
  | None -> (
      match t.sets_base with
      | Some base when not (Hashtbl.mem t.sets_dead node) ->
          Option.value (Hashtbl.find_opt base node) ~default:VS.empty
      | _ -> VS.empty)

let add_value t node value =
  let existing = set_of t node in
  (* [Set.add] returns the argument physically when the element is
     already present: one traversal does membership test and insert. *)
  let updated = VS.add value existing in
  if updated == existing then false
  else begin
    Hashtbl.replace t.sets node updated;
    if t.track_deltas then begin
      let d = Option.value (Hashtbl.find_opt t.delta_tbl node) ~default:[] in
      Hashtbl.replace t.delta_tbl node (value :: d)
    end;
    true
  end

(* Taint plane: the subset of [sets t node] whose membership was
   justified (transitively) by an unknown-id marker.  Maintained by the
   solvers alongside the value sets; [add_taint] does not require the
   value to be present yet — structural engines may taint before the
   value lands, and the invariant taint ⊆ set holds at fixpoint. *)
let add_taint t node value =
  let existing = Option.value (Hashtbl.find_opt t.taint_tbl node) ~default:VS.empty in
  let updated = VS.add value existing in
  if updated == existing then false
  else begin
    Hashtbl.replace t.taint_tbl node updated;
    true
  end

let taints_of t node = Option.value (Hashtbl.find_opt t.taint_tbl node) ~default:VS.empty

let is_tainted t node value = VS.mem value (taints_of t node)

let install_taints t node vs =
  if VS.is_empty vs then Hashtbl.remove t.taint_tbl node else Hashtbl.replace t.taint_tbl node vs

let tainted_nodes t = Hashtbl.fold (fun node vs acc -> (node, vs) :: acc) t.taint_tbl []

let set_track_deltas t flag = t.track_deltas <- flag

let delta_of t node = Option.value (Hashtbl.find_opt t.delta_tbl node) ~default:[]

(* Consume a node's delta: the caller commits to having pushed every
   returned value, so the slate is wiped for the next round. *)
let take_delta t node =
  match Hashtbl.find_opt t.delta_tbl node with
  | None -> []
  | Some d ->
      Hashtbl.remove t.delta_tbl node;
      d

let views_of t node =
  VS.fold
    (fun v acc -> match Node.view_of_value v with Some view -> view :: acc | None -> acc)
    (set_of t node) []

let succs t node = Option.value (Hashtbl.find_opt t.edges node) ~default:[]

let seeds t = Hashtbl.fold (fun node vs acc -> (node, vs) :: acc) t.seed_tbl []

let reset_sets t =
  Hashtbl.reset t.sets;
  t.sets_base <- None;
  Hashtbl.reset t.sets_dead;
  Hashtbl.reset t.taint_tbl;
  Hashtbl.reset t.delta_tbl;
  t.track_deltas <- false;
  Hashtbl.reset t.children_tbl;
  Hashtbl.reset t.parents_tbl;
  Hashtbl.reset t.desc_cache;
  t.desc_hits <- 0;
  t.desc_misses <- 0;
  Hashtbl.reset t.ids_tbl;
  Hashtbl.reset t.views_by_id_tbl;
  Hashtbl.reset t.roots_tbl;
  Hashtbl.reset t.listeners_tbl;
  Hashtbl.reset t.root_layout_tbl;
  Hashtbl.reset t.inflations;
  Hashtbl.reset t.transitions_tbl;
  Hashtbl.reset t.onclick_tbl;
  Hashtbl.reset t.declared_fragments_tbl;
  t.rc_children <- false;
  t.rc_ids <- false;
  t.rc_roots <- false;
  t.rc_onclick <- false;
  t.rc_fragments <- false

(* Generic set-valued relation update returning whether it grew. *)
let add_to_set_tbl (type s elt) (module S : Set.S with type t = s and type elt = elt) tbl key v =
  let existing = Option.value (Hashtbl.find_opt tbl key) ~default:S.empty in
  let updated = S.add v existing in
  if updated == existing then false
  else begin
    Hashtbl.replace tbl key updated;
    true
  end

let children_of t view = Option.value (Hashtbl.find_opt t.children_tbl view) ~default:View_set.empty

let parents_of t view = Option.value (Hashtbl.find_opt t.parents_tbl view) ~default:View_set.empty

(* Reflexive upward closure over the parent relation (cycle-safe). *)
let ancestors t view =
  let visited = ref (View_set.singleton view) in
  let queue = Queue.create () in
  Queue.add view queue;
  while not (Queue.is_empty queue) do
    let current = Queue.take queue in
    View_set.iter
      (fun parent ->
        if not (View_set.mem parent !visited) then begin
          visited := View_set.add parent !visited;
          Queue.add parent queue
        end)
      (parents_of t current)
  done;
  !visited

let add_child t ~parent ~child =
  let grew = add_to_set_tbl (module View_set) t.children_tbl parent child in
  if grew then begin
    ignore (add_to_set_tbl (module View_set) t.parents_tbl child parent);
    t.rc_children <- true;
    (* Exactly the views whose descendant closure can now reach [child]
       are [parent] and the views above it; drop their cached closures.
       (The edge cannot create new paths *to* [parent], so the ancestor
       set read here is the same before and after the insertion.) *)
    if Hashtbl.length t.desc_cache > 0 then
      View_set.iter (fun v -> Hashtbl.remove t.desc_cache v) (ancestors t parent)
  end;
  grew

let descendants t ~include_self view =
  let visited = ref (if include_self then View_set.singleton view else View_set.empty) in
  let queue = Queue.create () in
  Queue.add view queue;
  while not (Queue.is_empty queue) do
    let current = Queue.take queue in
    View_set.iter
      (fun child ->
        if not (View_set.mem child !visited) then begin
          visited := View_set.add child !visited;
          Queue.add child queue
        end)
      (children_of t current)
  done;
  !visited

(* Memoized variant of [descendants].  The cache stores the *strict*
   closure (views reachable through at least one child edge, which under
   cycles may include [view] itself); both reflexive and strict results
   derive from it, matching [descendants] exactly. *)
let descendants_cached t ~include_self view =
  let strict =
    match Hashtbl.find_opt t.desc_cache view with
    | Some s ->
        t.desc_hits <- t.desc_hits + 1;
        s
    | None ->
        t.desc_misses <- t.desc_misses + 1;
        let s = descendants t ~include_self:false view in
        Hashtbl.replace t.desc_cache view s;
        s
  in
  if include_self then View_set.add view strict else strict

let desc_cache_counters t = (t.desc_hits, t.desc_misses)

let add_view_id t view id =
  let grew = add_to_set_tbl (module Int_set) t.ids_tbl view id in
  if grew then begin
    ignore (add_to_set_tbl (module View_set) t.views_by_id_tbl id view);
    t.rc_ids <- true
  end;
  grew

let ids_of_view t view = Option.value (Hashtbl.find_opt t.ids_tbl view) ~default:Int_set.empty

let views_by_id t id = Option.value (Hashtbl.find_opt t.views_by_id_tbl id) ~default:View_set.empty

let add_holder_root t holder root =
  let grew = add_to_set_tbl (module View_set) t.roots_tbl holder root in
  if grew then t.rc_roots <- true;
  grew

let roots_of_holder t holder = Option.value (Hashtbl.find_opt t.roots_tbl holder) ~default:View_set.empty

let holders t = Hashtbl.fold (fun h _ acc -> h :: acc) t.roots_tbl []

let add_view_listener t view listener ~iface =
  add_to_set_tbl (module Listener_set) t.listeners_tbl view (listener, iface)

let listeners_of_view t view =
  Option.value (Hashtbl.find_opt t.listeners_tbl view) ~default:Listener_set.empty

let views_with_listeners t = Hashtbl.fold (fun v _ acc -> v :: acc) t.listeners_tbl []

let add_root_layout t view id = add_to_set_tbl (module Int_set) t.root_layout_tbl view id

let layouts_of_root t view =
  Option.value (Hashtbl.find_opt t.root_layout_tbl view) ~default:Int_set.empty

let add_onclick t view handler =
  let grew = add_to_set_tbl (module String_set) t.onclick_tbl view handler in
  if grew then t.rc_onclick <- true;
  grew

let onclicks_of t view =
  match Hashtbl.find_opt t.onclick_tbl view with
  | Some s -> String_set.elements s
  | None -> []

let views_with_onclick t = Hashtbl.fold (fun v _ acc -> v :: acc) t.onclick_tbl []

let add_declared_fragment t view cls =
  let grew = add_to_set_tbl (module String_set) t.declared_fragments_tbl view cls in
  if grew then t.rc_fragments <- true;
  grew

let declared_fragments_of t view =
  match Hashtbl.find_opt t.declared_fragments_tbl view with
  | Some s -> String_set.elements s
  | None -> []

let views_with_declared_fragments t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.declared_fragments_tbl []

let add_transition t ~from_ ~to_ =
  if Hashtbl.mem t.transitions_tbl (from_, to_) then false
  else begin
    Hashtbl.add t.transitions_tbl (from_, to_) ();
    true
  end

let transitions t = Hashtbl.fold (fun edge () acc -> edge :: acc) t.transitions_tbl []

let find_inflation t ~site ~layout = Hashtbl.find_opt t.inflations (site, layout)

let record_inflation t ~site ~layout views = Hashtbl.replace t.inflations (site, layout) views

let inflated_views t = Hashtbl.fold (fun _ views acc -> views @ acc) t.inflations []

(* Enumeration of the cold relations (snapshot encoding and warm
   restore).  Hashtbl fold order — callers must not depend on it. *)
let inflation_entries t =
  Hashtbl.fold (fun (site, layout) views acc -> (site, layout, views) :: acc) t.inflations []

let onclick_entries t =
  Hashtbl.fold (fun v s acc -> (v, String_set.elements s) :: acc) t.onclick_tbl []

let declared_fragment_entries t =
  Hashtbl.fold (fun v s acc -> (v, String_set.elements s) :: acc) t.declared_fragments_tbl []

let root_layout_entries t =
  Hashtbl.fold (fun v s acc -> (v, Int_set.elements s) :: acc) t.root_layout_tbl []

let take_rel_changes t =
  let c : rel_changes =
    {
      rc_children = t.rc_children;
      rc_ids = t.rc_ids;
      rc_roots = t.rc_roots;
      rc_onclick = t.rc_onclick;
      rc_fragments = t.rc_fragments;
    }
  in
  t.rc_children <- false;
  t.rc_ids <- false;
  t.rc_roots <- false;
  t.rc_onclick <- false;
  t.rc_fragments <- false;
  c

(* Solution installation (interned solver): after solving on dense
   ids, the engine decodes its bitsets and writes the structural
   tables wholesale, so downstream consumers are engine-agnostic.
   [reset_solution_tables] clears exactly the tables the id-level
   stores mirror; the cold relations maintained structurally during
   interned solving (onclick, declared fragments, root layouts,
   inflations, transitions) are left untouched. *)
let reset_solution_tables t =
  Hashtbl.reset t.sets;
  t.sets_base <- None;
  Hashtbl.reset t.sets_dead;
  Hashtbl.reset t.taint_tbl;
  Hashtbl.reset t.children_tbl;
  Hashtbl.reset t.parents_tbl;
  Hashtbl.reset t.ids_tbl;
  Hashtbl.reset t.views_by_id_tbl;
  Hashtbl.reset t.roots_tbl;
  Hashtbl.reset t.listeners_tbl

let install_set t node vs = Hashtbl.replace t.sets node vs

let install_children t view ws = Hashtbl.replace t.children_tbl view ws

let install_parents t view ws = Hashtbl.replace t.parents_tbl view ws

let install_ids t view ids = Hashtbl.replace t.ids_tbl view ids

let install_views_by_id t id ws = Hashtbl.replace t.views_by_id_tbl id ws

let install_roots t holder ws = Hashtbl.replace t.roots_tbl holder ws

let install_listeners t view ls = Hashtbl.replace t.listeners_tbl view ls

(* Warm materialisation: seed [dst]'s solution tables from a previous
   solve's, then let the caller decode and re-install only the dirty
   rows.  Per-kind flags skip relations the warm solver rebuilds from
   scratch (their invalidation was too coarse to patch row-wise).  The
   copied tables share the immutable set values with [src]. *)
let copy_solution_tables ~children ~ids ~roots ~listeners ~src dst =
  (* The points-to table — by far the largest — is adopted as a
     read-only base layer instead of copied: [dst]'s own writes land in
     its overlay.  A layered donor is flattened first so layers never
     chain (a warm-of-warm pays one copy per generation; re-warming
     from the same donor pays none). *)
  (match src.sets_base with
  | Some base ->
      let flat = Hashtbl.copy base in
      Hashtbl.iter (fun n () -> Hashtbl.remove flat n) src.sets_dead;
      Hashtbl.iter (fun n vs -> Hashtbl.replace flat n vs) src.sets;
      src.sets <- flat;
      src.sets_base <- None;
      Hashtbl.reset src.sets_dead
  | None -> ());
  dst.sets <- Hashtbl.create 64;
  dst.sets_base <- Some src.sets;
  Hashtbl.reset dst.sets_dead;
  if children then begin
    dst.children_tbl <- Hashtbl.copy src.children_tbl;
    dst.parents_tbl <- Hashtbl.copy src.parents_tbl
  end;
  if ids then begin
    dst.ids_tbl <- Hashtbl.copy src.ids_tbl;
    dst.views_by_id_tbl <- Hashtbl.copy src.views_by_id_tbl
  end;
  if roots then dst.roots_tbl <- Hashtbl.copy src.roots_tbl;
  if listeners then dst.listeners_tbl <- Hashtbl.copy src.listeners_tbl

let remove_solution_row t node =
  Hashtbl.remove t.sets node;
  if Option.is_some t.sets_base then Hashtbl.replace t.sets_dead node ()

let ops t = List.rev t.op_list

let allocs t = List.rev t.alloc_list

(* Which relations an op's [apply] consults beyond its recv/arg sets:
   FindView resolves ids over holder roots and their descendants;
   FindOne/GetParent walk the hierarchy; SetListener re-injects handler
   flows over the receiver's children (list-item propagation);
   FragmentAdd resolves container ids over roots and hierarchies. *)
let reads_children op =
  match op.site.Node.o_kind with
  | Framework.Api.Find_view | Find_one _ | Get_parent | Set_listener _ | Fragment_add -> true
  | _ -> false

let reads_ids op =
  match op.site.Node.o_kind with Framework.Api.Find_view | Fragment_add -> true | _ -> false

let reads_roots op =
  match op.site.Node.o_kind with Framework.Api.Find_view | Fragment_add -> true | _ -> false

let dep_index t =
  match t.dep_index with
  | Some di -> di
  | None ->
      let di_node = Hashtbl.create 256 in
      let note node op =
        let existing = Option.value (Hashtbl.find_opt di_node node) ~default:[] in
        Hashtbl.replace di_node node (op :: existing)
      in
      let children = ref [] and ids = ref [] and roots = ref [] in
      List.iter
        (fun op ->
          note op.op_recv op;
          List.iter (fun arg -> note arg op) op.op_args;
          if reads_children op then children := op :: !children;
          if reads_ids op then ids := op :: !ids;
          if reads_roots op then roots := op :: !roots)
        (ops t);
      Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) di_node;
      let di =
        {
          di_node;
          di_children = List.rev !children;
          di_ids = List.rev !ids;
          di_roots = List.rev !roots;
        }
      in
      t.dep_index <- Some di;
      di

let ops_reading t node =
  Option.value (Hashtbl.find_opt (dep_index t).di_node node) ~default:[]

let ops_reading_children t = (dep_index t).di_children

let ops_reading_ids t = (dep_index t).di_ids

let ops_reading_roots t = (dep_index t).di_roots

let locations t =
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let add node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      out := node :: !out
    end
  in
  Hashtbl.iter
    (fun src targets ->
      add src;
      List.iter (fun (_, dst) -> add dst) targets)
    t.edges;
  Hashtbl.iter (fun node _ -> add node) t.seed_tbl;
  Hashtbl.iter (fun node _ -> add node) t.sets;
  (match t.sets_base with
  | Some base ->
      Hashtbl.iter (fun node _ -> if not (Hashtbl.mem t.sets_dead node) then add node) base
  | None -> ());
  List.iter
    (fun op ->
      add op.op_recv;
      List.iter add op.op_args;
      Option.iter add op.op_out)
    t.op_list;
  !out

let edge_count t = t.edge_total

(* Graphviz output: locations as ellipses, ops as boxes, views as gray
   boxes (Figure 3/4 style). *)
let pp_dot ppf t =
  let location_id node = Fmt.str "%S" (Fmt.str "%a" Node.pp node) in
  let view_id view = Fmt.str "%S" (Fmt.str "%a" Node.pp_view view) in
  Fmt.pf ppf "digraph constraint_graph {@\n  rankdir=LR;@\n";
  List.iter
    (fun node -> Fmt.pf ppf "  %s [shape=ellipse];@\n" (location_id node))
    (locations t);
  List.iter
    (fun op ->
      let op_node = Fmt.str "%S" (Fmt.str "%a" Node.pp_op_site op.site) in
      Fmt.pf ppf "  %s [shape=box,style=bold];@\n" op_node;
      Fmt.pf ppf "  %s -> %s [label=recv];@\n" (location_id op.op_recv) op_node;
      List.iteri
        (fun i arg -> Fmt.pf ppf "  %s -> %s [label=\"arg%d\"];@\n" (location_id arg) op_node i)
        op.op_args;
      Option.iter (fun out -> Fmt.pf ppf "  %s -> %s;@\n" op_node (location_id out)) op.op_out)
    (ops t);
  Hashtbl.iter
    (fun src targets ->
      List.iter
        (fun (kind, dst) ->
          match kind with
          | E_direct -> Fmt.pf ppf "  %s -> %s;@\n" (location_id src) (location_id dst)
          | E_cast c -> Fmt.pf ppf "  %s -> %s [label=\"(%s)\"];@\n" (location_id src) (location_id dst) c)
        targets)
    t.edges;
  Hashtbl.iter
    (fun parent children ->
      View_set.iter
        (fun child ->
          Fmt.pf ppf "  %s -> %s [style=dashed,label=child];@\n" (view_id parent) (view_id child))
        children)
    t.children_tbl;
  Hashtbl.iter
    (fun view ids ->
      Int_set.iter (fun id -> Fmt.pf ppf "  %s -> \"id:0x%x\" [style=dashed];@\n" (view_id view) id) ids)
    t.ids_tbl;
  Hashtbl.iter
    (fun holder roots ->
      View_set.iter
        (fun root ->
          Fmt.pf ppf "  \"%a\" -> %s [style=dashed,label=root];@\n" Node.pp_holder holder
            (view_id root))
        roots)
    t.roots_tbl;
  Hashtbl.iter
    (fun view listeners ->
      Listener_set.iter
        (fun (l, iface) ->
          Fmt.pf ppf "  %s -> \"%a\" [style=dashed,label=\"listener:%s\"];@\n" (view_id view)
            Node.pp_listener l iface)
        listeners)
    t.listeners_tbl;
  Fmt.pf ppf "}@\n"
