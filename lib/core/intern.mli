(** Hash-consing interner for the solver's abstract domains.

    Each {!Node.value}, {!Node.view_abs}, {!Node.t} location, listener
    entry and holder is mapped to a dense integer id the first time it
    is seen; the interned solver engine then keys every hot structure
    (solution sets, delta sets, relation tables, the CSR flow graph) by
    those ids, replacing structural [Set.Make] operations with bitset
    words ({!Util.Bitset}).

    {b Two tiers.} An interner optionally sits on top of a frozen
    {!shared} tier holding the framework resource vocabulary — the
    layout/view id windows every application's [R] constants are drawn
    from.  Frozen entries own the ids below a per-pool watermark and
    are immutable from construction, so one process-wide tier
    ({!shared_tier}) is read lock-free by every worker domain; ids the
    interner mints itself start at the watermark.  Analysis results
    are bit-identical whether a symbol resolves in the shared or the
    private tier (the watermark only relabels ids, and everything
    observable is materialized structurally); the differential
    batteries in [test/test_shared_intern.ml] pin this.

    Determinism contract: private ids are assigned in first-intern
    order, and the interned engine interns from deterministic sources
    only (the ordered [Graph.locations] / [Graph.ops] lists and
    solver-driven discovery, which is itself a deterministic function
    of the graph).  The frozen tier is a constant.  Combined with the
    Pool's apps-built-inside-tasks rule (private pools are never
    shared across domains) this keeps counters and outputs
    byte-identical across runs and across [--jobs] levels. *)

type t

(** {1 The frozen shared tier} *)

type shared
(** A frozen vocabulary tier: the contiguous layout-id and view-id
    windows starting at {!Layouts.Resource.layout_base} /
    [view_base], exposed both as value ids and as rid symbols, plus
    the two ⊤ markers ([V_layout_top], [V_view_id_top]) and the
    [Node.top_view_id_raw] rid sentinel at fixed indices past the
    windows.  Immutable after construction — there is no code path
    that writes it — hence safe to share across domains without
    locks. *)

val shared_tier : unit -> shared
(** The process-wide tier, built once at module initialization (on
    the main domain, before any worker domain can exist). *)

val default_layout_window : int
(** Layout ids covered by {!shared_tier}, counted from
    [Layouts.Resource.layout_base]. *)

val default_view_window : int
(** View ids covered by {!shared_tier}, counted from
    [Layouts.Resource.view_base].  Corpus apps with more view ids
    (e.g. Astrid's 230) overflow into their private pools — the
    watermark crossing the differential tests pin down. *)

val make_shared : layout_ids:int -> view_ids:int -> shared
(** A custom tier covering the first [layout_ids] layout ids and
    [view_ids] view ids; for tests (watermark-boundary cases).
    @raise Invalid_argument on negative window sizes. *)

val shared_counts : shared -> int * int
(** [(frozen value count, frozen rid count)] — the watermarks an
    interner created over this tier starts minting at.  Constant for
    a given tier; the no-write CI check pins it across a run. *)

val create : ?shared:shared -> unit -> t
(** A fresh interner; with [?shared], its private pools mint above
    the tier's watermarks and lookups hit the frozen windows first. *)

val shared_of : t -> shared option

val watermarks : t -> int * int
(** [(value watermark, rid watermark)]; [(0, 0)] without a shared
    tier.  Ids below a watermark decode in the frozen tier. *)

(** {1 Interning (minting)}

    Each call returns the dense id for the key, assigning the next id
    on first sight — except keys covered by the frozen tier, which
    resolve by arithmetic and never grow any pool.  Values and views
    intern each other: interning a view also interns its canonical
    [V_view] wrapping and vice versa, keeping the
    {!view_of_value_id}/{!value_of_view_id} cross maps total. *)

val value : t -> Node.value -> int

val view : t -> Node.view_abs -> int

val node : t -> Node.t -> int

val ctx_node : t -> base:int -> ctx:int -> int
(** The context clone of node [base] under context [ctx] (a clone
    number > 0): the id of the [N_var (mid, name ^ "$" ^ ctx)] node the
    inlining path would have interned for the same clone.  Clones live
    in the ordinary node pool — decoders, snapshots and materialization
    need no special handling — and repeat sightings of a ⟨base, ctx⟩
    pair resolve through a packed int-keyed cache with no string
    allocation.  Non-[N_var] bases (fields, returns) are
    context-insensitive and decay to [base]. *)

val listener : t -> Node.listener_abs * string -> int
(** Listener entries are keyed by (abstraction, interface name). *)

val holder : t -> Node.holder -> int

val rid : t -> int -> int
(** Raw resource int -> dense rid symbol. *)

(** {1 Non-minting lookups}

    Demand-side callers (the query engine, protocol parsers) must not
    grow a solved state's interner just because a client named an
    unknown key. *)

val find_node : t -> Node.t -> int option

val find_value : t -> Node.value -> int option

val rid_opt : t -> int -> int option

(** {1 Decoders}

    Partial inverses of the interning functions; ids must have been
    minted by this interner or lie below its watermarks. *)

val value_of : t -> int -> Node.value

val view_of : t -> int -> Node.view_abs

val node_of : t -> int -> Node.t

val listener_of : t -> int -> Node.listener_abs * string

val holder_of : t -> int -> Node.holder

val rid_of : t -> int -> int

(** {1 Cross maps} *)

val view_of_value_id : t -> int -> int
(** Value id -> view id when the value is a [V_view], else [-1]
    (frozen values are id constants, never views). *)

val value_of_view_id : t -> int -> int
(** View id -> id of its [V_view] wrapping (always set). *)

(** {1 Counters} (for {!Solve.stats} and snapshot sizing)

    Totals span both tiers: [value_count] counts the frozen window
    plus private mints, so [0 .. count-1] enumeration loops and
    snapshot dumps stay decodable. *)

val value_count : t -> int

val view_count : t -> int

val node_count : t -> int

val listener_count : t -> int

val holder_count : t -> int

val rid_count : t -> int

val ctx_count : t -> int
(** Distinct contexts (clone numbers) that minted at least one context
    clone via {!ctx_node}. *)

val ctx_key_count : t -> int
(** Distinct ⟨node, ctx⟩ keys interned via {!ctx_node}. *)

val ctx_clone_ids : t -> int list
(** Node ids minted by {!ctx_node} as renamed clone variables (decayed
    field/return keys excluded).  These ids are only ever written
    through their static flow edges, seeds, or op outputs — never by
    handler injection or the declarative passes, which target
    structural base nodes — so the solver may substitute single-pred
    members away.  Unordered. *)
