(** Hash-consing interner for the solver's abstract domains.

    Each {!Node.value}, {!Node.view_abs}, {!Node.t} location, listener
    entry and holder is mapped to a dense integer id the first time it
    is seen; the interned solver engine then keys every hot structure
    (solution sets, delta sets, relation tables, the CSR flow graph) by
    those ids, replacing structural [Set.Make] operations with bitset
    words ({!Util.Bitset}).

    Determinism contract: ids are assigned in first-intern order, and
    the interned engine interns from deterministic sources only (the
    ordered [Graph.locations] / [Graph.ops] lists and solver-driven
    discovery, which is itself a deterministic function of the graph).
    Combined with the Pool's apps-built-inside-tasks rule (interners
    are never shared across domains) this keeps counters and outputs
    byte-identical across runs and across [--jobs] levels. *)

type t

val create : unit -> t

(** {1 Interning (minting)}

    Each call returns the dense id for the key, assigning the next id
    on first sight.  Values and views intern each other: interning a
    view also interns its canonical [V_view] wrapping and vice versa,
    keeping the {!view_of_value_id}/{!value_of_view_id} cross maps
    total. *)

val value : t -> Node.value -> int

val view : t -> Node.view_abs -> int

val node : t -> Node.t -> int

val listener : t -> Node.listener_abs * string -> int
(** Listener entries are keyed by (abstraction, interface name). *)

val holder : t -> Node.holder -> int

val rid : t -> int -> int
(** Raw resource int -> dense rid symbol. *)

(** {1 Non-minting lookups}

    Demand-side callers (the query engine, protocol parsers) must not
    grow a solved state's interner just because a client named an
    unknown key. *)

val find_node : t -> Node.t -> int option

val find_value : t -> Node.value -> int option

val rid_opt : t -> int -> int option

(** {1 Decoders}

    Partial inverses of the interning functions; ids must have been
    minted by this interner. *)

val value_of : t -> int -> Node.value

val view_of : t -> int -> Node.view_abs

val node_of : t -> int -> Node.t

val listener_of : t -> int -> Node.listener_abs * string

val holder_of : t -> int -> Node.holder

val rid_of : t -> int -> int

(** {1 Cross maps} *)

val view_of_value_id : t -> int -> int
(** Value id -> view id when the value is a [V_view], else [-1]. *)

val value_of_view_id : t -> int -> int
(** View id -> id of its [V_view] wrapping (always set). *)

(** {1 Counters} (for {!Solve.stats} and snapshot sizing) *)

val value_count : t -> int

val view_count : t -> int

val node_count : t -> int

val listener_count : t -> int

val holder_count : t -> int

val rid_count : t -> int
