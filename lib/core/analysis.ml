type t = {
  app : Framework.App.t;
  config : Config.t;
  graph : Graph.t;
  stats : Solve.stats;
  solve_seconds : float;
}

let analyze ?(config = Config.default) app =
  let start = Unix.gettimeofday () in
  let graph = Extract.run config app in
  let stats = Solve.run config app graph in
  let solve_seconds = Unix.gettimeofday () -. start in
  { app; config; graph; stats; solve_seconds }

let make ~app ~config ~graph ~stats ~solve_seconds = { app; config; graph; stats; solve_seconds }

let var ~cls ~meth ~arity v =
  Node.N_var ({ Node.mid_cls = cls; mid_name = meth; mid_arity = arity }, v)

let values_at t node = Graph.VS.elements (Graph.set_of t.graph node)

let views_at t node = Graph.views_of t.graph node

let flows_to t value node = Graph.VS.mem value (Graph.set_of t.graph node)

let ops t = Graph.ops t.graph

let ops_of_kind t predicate =
  List.filter (fun (op : Graph.op) -> predicate op.site.o_kind) (ops t)

let op_receiver_views t (op : Graph.op) = Graph.views_of t.graph op.op_recv

let op_receiver_holders t (op : Graph.op) =
  Graph.VS.fold
    (fun v acc ->
      match v with
      | Node.V_act a -> Node.H_act a :: acc
      | Node.V_obj site when Framework.Views.is_dialog_class t.app.hierarchy site.a_cls ->
          Node.H_dialog site :: acc
      | _ -> acc)
    (Graph.set_of t.graph op.op_recv)
    []

let op_child_views t (op : Graph.op) =
  match op.op_args with [] -> [] | arg :: _ -> Graph.views_of t.graph arg

let op_result_views t (op : Graph.op) =
  match op.op_out with Some node -> Graph.views_of t.graph node | None -> []

let op_listeners t (op : Graph.op) =
  match (op.site.o_kind, op.op_args) with
  | Framework.Api.Set_listener iface, arg :: _ ->
      let implements cls =
        Jir.Hierarchy.subtype t.app.hierarchy cls iface.Framework.Listeners.i_name
      in
      Graph.VS.fold
        (fun v acc ->
          match v with
          | Node.V_obj site when implements site.a_cls -> Node.L_alloc site :: acc
          | Node.V_act a when implements a -> Node.L_act a :: acc
          | _ -> acc)
        (Graph.set_of t.graph arg) []
  | _ -> []

let all_views t =
  let inflated = Graph.inflated_views t.graph in
  let allocated =
    List.filter_map
      (fun (site : Node.alloc_site) ->
        if Framework.Views.is_view_class t.app.hierarchy site.a_cls then Some (Node.V_alloc site)
        else None)
      (Graph.allocs t.graph)
  in
  inflated @ allocated

let views_with_id t name =
  match Layouts.Resource.find_view_id (Layouts.Package.resources t.app.package) name with
  | None -> []
  | Some id ->
      (* a view whose id came from [SetId (v, ⊤)] carries the sentinel
         and may be any id, so it matches every concrete name *)
      List.filter
        (fun v ->
          let ids = Graph.ids_of_view t.graph v in
          Graph.Int_set.mem id ids || Graph.Int_set.mem Node.top_view_id_raw ids)
        (all_views t)

let pollution t =
  let polluted = ref 0 and nonempty = ref 0 in
  List.iter
    (fun node ->
      if not (Graph.VS.is_empty (Graph.set_of t.graph node)) then begin
        incr nonempty;
        if not (Graph.VS.is_empty (Graph.taints_of t.graph node)) then incr polluted
      end)
    (Graph.locations t.graph);
  (!polluted, !nonempty)

let roots_of_activity t activity =
  Graph.View_set.elements (Graph.roots_of_holder t.graph (Node.H_act activity))

let views_of_activity t activity =
  let sets =
    List.map (Graph.descendants t.graph ~include_self:true) (roots_of_activity t activity)
  in
  Graph.View_set.elements (List.fold_left Graph.View_set.union Graph.View_set.empty sets)

let listeners_of_view t view = Graph.Listener_set.elements (Graph.listeners_of_view t.graph view)

type interaction = {
  ix_activity : string;
  ix_view : Node.view_abs;
  ix_event : Framework.Listeners.event;
  ix_listener : Node.listener_abs;
  ix_handler : Node.mid;
}

let views_of_holder t holder =
  let sets =
    List.map
      (Graph.descendants t.graph ~include_self:true)
      (Graph.View_set.elements (Graph.roots_of_holder t.graph holder))
  in
  Graph.View_set.elements (List.fold_left Graph.View_set.union Graph.View_set.empty sets)

let interactions t =
  let hierarchy = t.app.Framework.App.hierarchy in
  (* every content holder contributes tuples: activities under their
     class name, dialogs (extension) under the dialog class *)
  let tuples_for_holder ~label holder_views =
    List.concat_map
      (fun view ->
        List.concat_map
          (fun (listener, iface_name) ->
            match Framework.Listeners.by_name iface_name with
            | None -> []
            | Some iface ->
                let listener_cls =
                  match listener with Node.L_alloc s -> s.Node.a_cls | Node.L_act a -> a
                in
                List.filter_map
                  (fun (h : Framework.Listeners.handler) ->
                    match
                      Jir.Hierarchy.resolve hierarchy listener_cls
                        { Jir.Ast.mk_name = h.h_name; mk_arity = h.h_arity }
                    with
                    | Some (owner, m) ->
                        Some
                          {
                            ix_activity = label;
                            ix_view = view;
                            ix_event = iface.i_event;
                            ix_listener = listener;
                            ix_handler = Node.mid_of_meth owner m;
                          }
                    | None -> None)
                  iface.Framework.Listeners.i_handlers)
          (listeners_of_view t view))
      holder_views
  in
  let activity_tuples =
    List.concat_map
      (fun (cls : Jir.Ast.cls) ->
        tuples_for_holder ~label:cls.c_name (views_of_activity t cls.c_name))
      (Framework.App.activity_classes t.app)
  in
  let dialog_tuples =
    List.concat_map
      (fun holder ->
        match holder with
        | Node.H_dialog site ->
            tuples_for_holder ~label:site.Node.a_cls (views_of_holder t holder)
        | Node.H_act _ -> [])
      (Graph.holders t.graph)
  in
  (* declarative android:onClick handlers: the holder is its own
     listener and the handler is the named method *)
  let declarative_tuples =
    List.concat_map
      (fun holder ->
        let label, listener =
          match holder with
          | Node.H_act a -> (a, Node.L_act a)
          | Node.H_dialog site -> (site.Node.a_cls, Node.L_alloc site)
        in
        List.concat_map
          (fun view ->
            List.filter_map
              (fun handler_name ->
                match
                  Jir.Hierarchy.resolve hierarchy label
                    { Jir.Ast.mk_name = handler_name; mk_arity = 1 }
                with
                | Some (owner, m) ->
                    Some
                      {
                        ix_activity = label;
                        ix_view = view;
                        ix_event = Framework.Listeners.Click;
                        ix_listener = listener;
                        ix_handler = Node.mid_of_meth owner m;
                      }
                | None -> None)
              (Graph.onclicks_of t.graph view))
          (views_of_holder t holder))
      (Graph.holders t.graph)
  in
  activity_tuples @ dialog_tuples @ declarative_tuples

let transitions t = List.sort_uniq compare (Graph.transitions t.graph)

let pp_interaction ppf ix =
  Fmt.pf ppf "(%s, %a, %s, %a)" ix.ix_activity Node.pp_view ix.ix_view
    (Framework.Listeners.event_name ix.ix_event)
    Node.pp_mid ix.ix_handler

let pp_summary ppf t =
  let op_count = List.length (ops t) in
  let inflated = List.length (Graph.inflated_views t.graph) in
  Fmt.pf ppf
    "@[<v>app %s: %d ops, %d allocation sites, %d inflated views,@ %d locations, %d flow edges,@ \
     solved in %d rounds (%d op applications, %d propagations, %.3fs)@]"
    t.app.Framework.App.name op_count
    (List.length (Graph.allocs t.graph))
    inflated
    (List.length (Graph.locations t.graph))
    (Graph.edge_count t.graph) t.stats.Solve.iterations t.stats.Solve.op_applications
    t.stats.Solve.propagations t.solve_seconds
