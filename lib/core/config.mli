(** Analysis configuration.

    The defaults reproduce the paper's implementation (including the
    FINDVIEW3 children-only refinement it mentions employing); each
    switch exists for the ablation benchmarks documented in
    DESIGN.md. *)

(** Fixed-point engine selection.  All three compute the same
    solution; [Naive] re-applies every operation against full sets
    each round (the executable specification), [Delta] schedules only
    ops whose inputs grew via the graph's dependency index and
    per-node delta sets, and [Interned] (the default) runs the same
    semi-naive schedule over hash-consed dense integer ids with bitset
    solution sets and a CSR flow graph. *)
type solver = Naive | Delta | Interned

val solver_name : solver -> string

type t = {
  cast_filtering : bool;
      (** Drop abstract objects that cannot pass a [(C) x] cast.  The
          baseline reference analysis keeps casts as plain copy edges;
          filtering is standard and sound. *)
  findone_refinement : bool;
      (** When on, [getCurrentView()]-style operations search direct
          children only; when off, every FINDVIEW3 operation
          conservatively returns all descendants. *)
  listener_callbacks : bool;
      (** Model the implicit [y.n(x)] callback of SETLISTENER (flows of
          listener into [this] and view into the handler parameter). *)
  model_dialogs : bool;
      (** Extension: treat [Dialog] like an activity-style content
          holder (the paper's implementation left dialogs
          unhandled). *)
  inline_depth : int;
      (** Inlining-based context sensitivity: clone uniquely-resolved
          small callees up to this depth, separating per-call-site
          value flow.  [0] (the default) reproduces the paper's
          context-insensitive analysis; the paper's Section 5 notes
          context sensitivity as the cure for the XBMC receivers
          outlier — see the ablation benches. *)
  inline_body_limit : int;
      (** Bound on the body size (statement count) of callees eligible
          for context-sensitive separation; larger callees share their
          locals context-insensitively. *)
  ctx_keyed : bool;
      (** Run context sensitivity natively on the interned engine:
          clone bodies are walked in id space (each ⟨variable, clone⟩
          pair interned once, edges emitted id-level only) instead of
          re-extracted as [$n]-suffixed program text.  Bit-identical to
          the inlining path at every depth — the differential batteries
          pin it — but skips the per-occurrence string mangling and
          structural table writes.  Only the [Interned] solver honours
          it; structural engines always take the inlining path.  [false]
          forces inlining everywhere, for the equivalence oracle and the
          bench head-to-head. *)
  max_iterations : int;  (** fixed-point safety valve *)
  solver : solver;  (** fixed-point engine; results are identical *)
  jobs : int;
      (** Cap on worker domains for batch (multi-app) drivers.  The
          pool size defaults to [Domain.recommended_domain_count ()]
          capped by this value; an explicit [--jobs N] on the batch
          CLIs overrides both.  Single-app analysis never spawns
          domains. *)
  incremental : bool;
      (** Drivers that own a state file (the CLI's [--incremental])
          set this to request warm re-solves against a persisted
          {!Solve.solved}.  The flag participates in the warm guard's
          configuration equality, so a warm solution can never leak
          into a non-incremental run's stats. *)
  shared_intern : bool;
      (** Build graphs over the process-wide frozen interner tier
          ({!Intern.shared_tier}), so the framework resource
          vocabulary is interned once instead of per task.  Results
          are bit-identical either way (only id labels move); [false]
          forces fully private interners, for the differential tests
          and the bench head-to-head. *)
}

val default : t

val baseline : t
(** Everything off — approximates a plain Andersen-style analysis with
    no Android modeling refinements. *)
