(** Demand-driven queries over a captured solution.

    A {!t} is a read-only view of a {!Solve.solved}: interner decode,
    per-representative bitset lookup, and a reverse index of the
    frozen CSR.  Point queries ({!points_to}) run the flow rules
    backward from the query node — RECON-style demand evaluation —
    reading the cached forward solution only at op-written
    representatives (the recorded {!Solve.solved}[.sd_targets]
    generator set), at condensed-graph cycles, and when the fuel
    budget runs out.  Every fallback substitutes the forward fixpoint
    itself, so answers are bit-identical to forward projections at any
    budget; [test/test_query.ml] checks this differentially.

    A query handle never mutates the solved state and never grows its
    interner (unknown keys use non-minting lookups), so handles over
    the same state are safe to interleave with reads; re-solving the
    app requires a fresh handle. *)

type t

type stats = {
  mutable q_queries : int;  (** point queries answered *)
  mutable q_memo_hits : int;  (** representatives answered from the handle's memo *)
  mutable q_expanded : int;  (** representatives expanded by the backward walk *)
  mutable q_edges : int;  (** reverse condensed edges traversed *)
  mutable q_generator_hits : int;
      (** op-written representatives answered from the cached forward fixpoint *)
  mutable q_cycle_fallbacks : int;  (** cast-edge cycles in the condensed graph *)
  mutable q_budget_fallbacks : int;  (** walks truncated by the fuel budget *)
}

val create : hierarchy:Jir.Hierarchy.t -> Solve.solved -> t
(** Build the reverse condensed-edge index, per-representative seed
    sets and generator set.  [hierarchy] drives cast filtering on
    backward walks and must describe the same classes the solve saw
    (guard with {!Solve.solved_class_fp} when it comes from a rebuilt
    app). *)

val stats : t -> stats
(** Cumulative counters since {!create}; the bench row uses these to
    prove a warm point query ran demand-driven (no solver, bounded
    expansions). *)

val solved : t -> Solve.solved

val interner : t -> Intern.t

val default_budget : int

val points_to : ?budget:int -> t -> Node.t -> Node.value list option
(** Values reaching the location, derived backward; [None] when the
    node was never interned (unknown to this app's graph — the
    protocol maps it to an [unknown-node] error).  [budget] caps
    representative expansions per query; any value yields the same
    answer, smaller budgets just read more from the cached solution.
    Results are sorted by {!Node.compare_value}, matching
    [Analysis.values_at]. *)

val points_to_bits : ?budget:int -> t -> Node.t -> Util.Bitset.t option
(** Id-level variant; the returned bitset is owned by the handle's
    memo — treat as read-only. *)

val views_of_listener : t -> Node.listener_abs -> Node.view_abs list
(** Views the listener is registered on (any interface), sorted by
    {!Node.compare_view}: the inverse of [Analysis.listeners_of_view],
    read demand-driven from the solved registration rows. *)

val activities_of_id : t -> string -> string list
(** Activity classes whose displayable view hierarchy (roots plus
    descendants) contains a view carrying the named id, sorted;
    unknown id names resolve to the empty list, matching the forward
    projection.  Views whose id came from [SetId (v, ⊤)] carry the
    unknown-id sentinel and match every queried name, known or not. *)
