(* Persistence of solved state (incremental re-analysis across
   processes).  A snapshot is a versioned JSON document: the interner
   pools in id order, the frozen flow CSR, per-representative solution
   bitsets, relation rows, dynamic return dependencies and per-op write
   targets, plus the donor graph's cold structural tables.  Replaying
   the value pool in id order recreates the value AND view pools
   exactly — interning a value and its paired view is atomic with
   respect to other interns, so the relative order of view allocations
   equals the relative order of their paired values. *)

module J = Util.Json

let magic = "GATOR-SNAP"

(* Version 2 adds the unknown-resource-id markers ([lidtop]/[vidtop]
   value tags) and the optional [taints] rows.  Version-1 snapshots —
   written before the markers existed — decode unchanged: they cannot
   contain the new tags, and a missing [taints] field means no node is
   tainted. *)
let version = 2

let min_version = 1

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* ------------------------------------------------------------------ *)
(* Structural encoders *)

let jmid (m : Node.mid) = J.List [ J.String m.mid_cls; J.String m.mid_name; J.Int m.mid_arity ]

let jsite (s : Node.site) = J.List [ jmid s.s_in; J.Int s.s_stmt ]

let jalloc (a : Node.alloc_site) = J.List [ jsite a.a_site; J.String a.a_cls ]

let jinfl (i : Node.infl_site) =
  J.List
    [
      jsite i.v_site;
      J.String i.v_layout;
      J.List (List.map (fun p -> J.Int p) i.v_path);
      J.String i.v_cls;
      (match i.v_vid with None -> J.Null | Some v -> J.String v);
    ]

let jview = function
  | Node.V_infl i -> J.List [ J.String "i"; jinfl i ]
  | Node.V_alloc a -> J.List [ J.String "a"; jalloc a ]

let jvalue = function
  | Node.V_view w -> J.List [ J.String "view"; jview w ]
  | Node.V_act a -> J.List [ J.String "act"; J.String a ]
  | Node.V_obj a -> J.List [ J.String "obj"; jalloc a ]
  | Node.V_layout_id n -> J.List [ J.String "lid"; J.Int n ]
  | Node.V_view_id n -> J.List [ J.String "vid"; J.Int n ]
  | Node.V_layout_top -> J.List [ J.String "lidtop" ]
  | Node.V_view_id_top -> J.List [ J.String "vidtop" ]

let jnode = function
  | Node.N_var (m, v) -> J.List [ J.String "var"; jmid m; J.String v ]
  | Node.N_field f -> J.List [ J.String "field"; J.String f ]
  | Node.N_ret m -> J.List [ J.String "ret"; jmid m ]

let jlistener_entry (l, iface) =
  let jl =
    match l with
    | Node.L_alloc a -> J.List [ J.String "alloc"; jalloc a ]
    | Node.L_act a -> J.List [ J.String "act"; J.String a ]
  in
  J.List [ jl; J.String iface ]

let jholder = function
  | Node.H_act a -> J.List [ J.String "act"; J.String a ]
  | Node.H_dialog d -> J.List [ J.String "dialog"; jalloc d ]

let jkind = function
  | Framework.Api.Inflate -> J.String "inflate"
  | Framework.Api.Set_content -> J.String "set_content"
  | Framework.Api.Add_view -> J.String "add_view"
  | Framework.Api.Set_id -> J.String "set_id"
  | Framework.Api.Set_listener iface ->
      J.List [ J.String "set_listener"; J.String iface.Framework.Listeners.i_name ]
  | Framework.Api.Find_view -> J.String "find_view"
  | Framework.Api.Find_one Framework.Api.Children -> J.String "find_one_children"
  | Framework.Api.Find_one Framework.Api.Descendants -> J.String "find_one_descendants"
  | Framework.Api.Get_parent -> J.String "get_parent"
  | Framework.Api.Start_activity -> J.String "start_activity"
  | Framework.Api.Pass_through -> J.String "pass_through"
  | Framework.Api.Fragment_add -> J.String "fragment_add"
  | Framework.Api.Menu_add -> J.String "menu_add"
  | Framework.Api.Set_adapter -> J.String "set_adapter"

let jop_site (o : Node.op_site) = J.List [ jsite o.o_site; jkind o.o_kind ]

let jconfig (c : Config.t) =
  J.Obj
    [
      ("cast_filtering", J.Bool c.cast_filtering);
      ("findone_refinement", J.Bool c.findone_refinement);
      ("listener_callbacks", J.Bool c.listener_callbacks);
      ("model_dialogs", J.Bool c.model_dialogs);
      ("inline_depth", J.Int c.inline_depth);
      ("inline_body_limit", J.Int c.inline_body_limit);
      ("ctx_keyed", J.Bool c.ctx_keyed);
      ("max_iterations", J.Int c.max_iterations);
      ("solver", J.String (Config.solver_name c.solver));
      ("jobs", J.Int c.jobs);
      ("incremental", J.Bool c.incremental);
      ("shared_intern", J.Bool c.shared_intern);
    ]

let jints a = J.List (Array.to_list (Array.map (fun i -> J.Int i) a))

let jstrings a = J.List (Array.to_list (Array.map (fun s -> J.String s) a))

let jbitset b = J.List (List.map (fun i -> J.Int i) (Util.Bitset.elements b))

let jrows rows =
  J.List
    (List.filter_map Fun.id
       (Array.to_list
          (Array.mapi
             (fun i o ->
               match o with Some b -> Some (J.List [ J.Int i; jbitset b ]) | None -> None)
             rows)))

let jpairs a = J.List (Array.to_list (Array.map (fun (x, y) -> J.List [ J.Int x; J.Int y ]) a))

let to_json (sd : Solve.solved) =
  let it = sd.Solve.sd_it in
  J.Obj
    [
      ("magic", J.String magic);
      ("version", J.Int version);
      ("config", jconfig sd.sd_config);
      ("app_name", J.String sd.sd_app_name);
      ("class_fp", J.String sd.sd_class_fp);
      ("method_fp", J.String sd.sd_method_fp);
      ("layout_fp", J.String sd.sd_layout_fp);
      ("values", J.List (List.init (Intern.value_count it) (fun i -> jvalue (Intern.value_of it i))));
      ("nodes", J.List (List.init (Intern.node_count it) (fun i -> jnode (Intern.node_of it i))));
      ( "pool_listeners",
        J.List
          (List.init (Intern.listener_count it) (fun i -> jlistener_entry (Intern.listener_of it i)))
      );
      ("pool_holders", J.List (List.init (Intern.holder_count it) (fun i -> jholder (Intern.holder_of it i))));
      ("rids", J.List (List.init (Intern.rid_count it) (fun i -> J.Int (Intern.rid_of it i))));
      ("node_total", J.Int sd.sd_node_total);
      ("value_total", J.Int sd.sd_value_total);
      ("csr_n", J.Int sd.sd_csr_n);
      ("nrep", jints sd.sd_nrep);
      ("row", jints sd.sd_row);
      ("edst", jints sd.sd_edst);
      ("ekind", jints sd.sd_ekind);
      ("cast_names", jstrings sd.sd_cast_names);
      ("seeds", jpairs sd.sd_seeds);
      ( "ops",
        J.List
          (Array.to_list
             (Array.map
                (fun (site, recv, args, out) ->
                  J.List [ jop_site site; J.Int recv; jints args; J.Int out ])
                sd.sd_ops)) );
      ("sols", jrows sd.sd_sols);
      ("children", jrows sd.sd_children);
      ("parents", jrows sd.sd_parents);
      ("ids", jrows sd.sd_ids);
      ("by_id", jrows sd.sd_by_id);
      ("roots", jrows sd.sd_roots);
      ("listeners", jrows sd.sd_listeners);
      ("holder_ids", J.List (List.map (fun i -> J.Int i) sd.sd_holder_ids));
      ( "ret_deps",
        J.List
          (List.map
             (fun (r, rd) ->
               J.List [ J.Int r; J.Int (match rd with Solve.RD_op i -> i | Solve.RD_frags -> -1) ])
             sd.sd_ret_deps) );
      ("targets", J.List (Array.to_list (Array.map jbitset sd.sd_targets)));
      ( "inflations",
        J.List
          (List.map
             (fun (site, layout, views) ->
               J.List [ jsite site; J.String layout; J.List (List.map jview views) ])
             (Graph.inflation_entries sd.sd_graph)) );
      ( "onclicks",
        J.List
          (List.map
             (fun (view, names) ->
               J.List [ jview view; J.List (List.map (fun n -> J.String n) names) ])
             (Graph.onclick_entries sd.sd_graph)) );
      ( "declared_fragments",
        J.List
          (List.map
             (fun (view, classes) ->
               J.List [ jview view; J.List (List.map (fun c -> J.String c) classes) ])
             (Graph.declared_fragment_entries sd.sd_graph)) );
      ( "root_layouts",
        J.List
          (List.map
             (fun (view, lids) -> J.List [ jview view; J.List (List.map (fun l -> J.Int l) lids) ])
             (Graph.root_layout_entries sd.sd_graph)) );
      ( "taints",
        J.List
          (List.map
             (fun (node, vs) ->
               J.List [ jnode node; J.List (List.map jvalue (Graph.VS.elements vs)) ])
             (Graph.tainted_nodes sd.sd_graph)) );
    ]

(* ------------------------------------------------------------------ *)
(* Structural decoders (exception-based; [of_json] catches [Bad]) *)

let dstr = function J.String s -> s | _ -> bad "expected string"

let dint = function J.Int n -> n | _ -> bad "expected int"

let dlist = function J.List l -> l | _ -> bad "expected list"

let dfield name j = match J.member name j with Some v -> v | None -> bad "missing field %s" name

let dmid = function
  | J.List [ c; n; a ] -> { Node.mid_cls = dstr c; mid_name = dstr n; mid_arity = dint a }
  | _ -> bad "bad mid"

let dsite = function
  | J.List [ m; s ] -> { Node.s_in = dmid m; s_stmt = dint s }
  | _ -> bad "bad site"

let dalloc = function
  | J.List [ s; c ] -> { Node.a_site = dsite s; a_cls = dstr c }
  | _ -> bad "bad alloc site"

let dinfl = function
  | J.List [ s; layout; path; cls; vid ] ->
      {
        Node.v_site = dsite s;
        v_layout = dstr layout;
        v_path = List.map dint (dlist path);
        v_cls = dstr cls;
        v_vid = (match vid with J.Null -> None | v -> Some (dstr v));
      }
  | _ -> bad "bad inflation site"

let dview = function
  | J.List [ J.String "i"; i ] -> Node.V_infl (dinfl i)
  | J.List [ J.String "a"; a ] -> Node.V_alloc (dalloc a)
  | _ -> bad "bad view"

let dvalue = function
  | J.List [ J.String "view"; w ] -> Node.V_view (dview w)
  | J.List [ J.String "act"; a ] -> Node.V_act (dstr a)
  | J.List [ J.String "obj"; a ] -> Node.V_obj (dalloc a)
  | J.List [ J.String "lid"; n ] -> Node.V_layout_id (dint n)
  | J.List [ J.String "vid"; n ] -> Node.V_view_id (dint n)
  | J.List [ J.String "lidtop" ] -> Node.V_layout_top
  | J.List [ J.String "vidtop" ] -> Node.V_view_id_top
  | _ -> bad "bad value"

let dnode = function
  | J.List [ J.String "var"; m; v ] -> Node.N_var (dmid m, dstr v)
  | J.List [ J.String "field"; f ] -> Node.N_field (dstr f)
  | J.List [ J.String "ret"; m ] -> Node.N_ret (dmid m)
  | _ -> bad "bad node"

let dlistener_entry = function
  | J.List [ l; iface ] ->
      let l =
        match l with
        | J.List [ J.String "alloc"; a ] -> Node.L_alloc (dalloc a)
        | J.List [ J.String "act"; a ] -> Node.L_act (dstr a)
        | _ -> bad "bad listener"
      in
      (l, dstr iface)
  | _ -> bad "bad listener entry"

let dholder = function
  | J.List [ J.String "act"; a ] -> Node.H_act (dstr a)
  | J.List [ J.String "dialog"; d ] -> Node.H_dialog (dalloc d)
  | _ -> bad "bad holder"

let dkind = function
  | J.String "inflate" -> Framework.Api.Inflate
  | J.String "set_content" -> Framework.Api.Set_content
  | J.String "add_view" -> Framework.Api.Add_view
  | J.String "set_id" -> Framework.Api.Set_id
  | J.List [ J.String "set_listener"; J.String name ] -> (
      match Framework.Listeners.by_name name with
      | Some iface -> Framework.Api.Set_listener iface
      | None -> bad "unknown listener interface %s" name)
  | J.String "find_view" -> Framework.Api.Find_view
  | J.String "find_one_children" -> Framework.Api.Find_one Framework.Api.Children
  | J.String "find_one_descendants" -> Framework.Api.Find_one Framework.Api.Descendants
  | J.String "get_parent" -> Framework.Api.Get_parent
  | J.String "start_activity" -> Framework.Api.Start_activity
  | J.String "pass_through" -> Framework.Api.Pass_through
  | J.String "fragment_add" -> Framework.Api.Fragment_add
  | J.String "menu_add" -> Framework.Api.Menu_add
  | J.String "set_adapter" -> Framework.Api.Set_adapter
  | _ -> bad "bad op kind"

let dop_site = function
  | J.List [ s; k ] -> { Node.o_site = dsite s; o_kind = dkind k }
  | _ -> bad "bad op site"

let dconfig j =
  let bool_field name = match dfield name j with J.Bool b -> b | _ -> bad "bad %s" name in
  {
    Config.cast_filtering = bool_field "cast_filtering";
    findone_refinement = bool_field "findone_refinement";
    listener_callbacks = bool_field "listener_callbacks";
    model_dialogs = bool_field "model_dialogs";
    inline_depth = dint (dfield "inline_depth" j);
    inline_body_limit =
      (* Fields below default like [shared_intern]: snapshots written
         before they existed decode to today's defaults. *)
      (match J.member "inline_body_limit" j with
      | None -> 24
      | Some v -> dint v);
    ctx_keyed =
      (match J.member "ctx_keyed" j with
      | None -> true
      | Some (J.Bool b) -> b
      | Some _ -> bad "bad ctx_keyed");
    max_iterations = dint (dfield "max_iterations" j);
    solver =
      (match dstr (dfield "solver" j) with
      | "naive" -> Config.Naive
      | "delta" -> Config.Delta
      | "interned" -> Config.Interned
      | s -> bad "unknown solver %s" s);
    jobs = dint (dfield "jobs" j);
    incremental = bool_field "incremental";
    shared_intern =
      (* Pre-split snapshots predate the field; default to the shared
         tier (today's default config) so they stay warm-compatible
         under it.  Loads replay into a private interner either way —
         ids are positional — so only the warm guard sees this. *)
      (match J.member "shared_intern" j with
      | None -> true
      | Some (J.Bool b) -> b
      | Some _ -> bad "bad shared_intern");
  }

let dints j = Array.of_list (List.map dint (dlist j))

let dstrings j = Array.of_list (List.map dstr (dlist j))

let dbitset j =
  let b = Util.Bitset.create () in
  List.iter (fun i -> ignore (Util.Bitset.add b (dint i))) (dlist j);
  b

let drows ~size j =
  let rows = List.map (function J.List [ i; b ] -> (dint i, dbitset b) | _ -> bad "bad row") (dlist j) in
  let n = List.fold_left (fun acc (i, _) -> max acc (i + 1)) size rows in
  let a = Array.make n None in
  List.iter (fun (i, b) -> a.(i) <- Some b) rows;
  a

let dpairs j =
  Array.of_list
    (List.map (function J.List [ x; y ] -> (dint x, dint y) | _ -> bad "bad pair") (dlist j))

let of_json j =
  try
    (match dfield "magic" j with
    | J.String m when m = magic -> ()
    | _ -> bad "not a snapshot (bad magic)");
    (match dint (dfield "version" j) with
    | v when v >= min_version && v <= version -> ()
    | v -> bad "unsupported snapshot version %d (expected %d..%d)" v min_version version);
    let config = dconfig (dfield "config" j) in
    let it = Intern.create () in
    (* Pool replay: ids are assigned densely in replay order, so each
       entry must come back with exactly the id it was serialized
       under. *)
    List.iteri
      (fun i v -> if Intern.value it (dvalue v) <> i then bad "value pool replay diverged at %d" i)
      (dlist (dfield "values" j));
    List.iteri
      (fun i n -> if Intern.node it (dnode n) <> i then bad "node pool replay diverged at %d" i)
      (dlist (dfield "nodes" j));
    List.iteri
      (fun i l ->
        if Intern.listener it (dlistener_entry l) <> i then
          bad "listener pool replay diverged at %d" i)
      (dlist (dfield "pool_listeners" j));
    List.iteri
      (fun i h -> if Intern.holder it (dholder h) <> i then bad "holder pool replay diverged at %d" i)
      (dlist (dfield "pool_holders" j));
    List.iteri
      (fun i r -> if Intern.rid it (dint r) <> i then bad "rid pool replay diverged at %d" i)
      (dlist (dfield "rids" j));
    let node_total = dint (dfield "node_total" j) in
    let value_total = dint (dfield "value_total" j) in
    if Intern.node_count it < node_total || Intern.value_count it < value_total then
      bad "pool counts below recorded totals";
    let csr_n = dint (dfield "csr_n" j) in
    let nrep = dints (dfield "nrep" j) in
    if Array.length nrep <> csr_n then bad "nrep size mismatch";
    let sols = drows ~size:node_total (dfield "sols" j) in
    let children = drows ~size:0 (dfield "children" j) in
    let parents = drows ~size:0 (dfield "parents" j) in
    let ids = drows ~size:0 (dfield "ids" j) in
    let by_id = drows ~size:0 (dfield "by_id" j) in
    let roots = drows ~size:0 (dfield "roots" j) in
    let listeners = drows ~size:0 (dfield "listeners" j) in
    (* Donor graph: structural solution tables decoded from the id
       level, plus the cold tables.  Never re-solved. *)
    let graph = Graph.create ~interner:it () in
    for nid = 0 to node_total - 1 do
      let rep = if nid < csr_n then nrep.(nid) else nid in
      match sols.(rep) with
      | Some b when not (Util.Bitset.is_empty b) ->
          Graph.install_set graph (Intern.node_of it nid)
            (Util.Bitset.fold
               (fun vid acc -> Graph.VS.add (Intern.value_of it vid) acc)
               b Graph.VS.empty)
      | _ -> ()
    done;
    let view_set b =
      Util.Bitset.fold (fun wid acc -> Graph.View_set.add (Intern.view_of it wid) acc) b
        Graph.View_set.empty
    in
    let each rows f = Array.iteri (fun i o -> match o with Some b -> f i b | None -> ()) rows in
    each children (fun wid b -> Graph.install_children graph (Intern.view_of it wid) (view_set b));
    each parents (fun wid b -> Graph.install_parents graph (Intern.view_of it wid) (view_set b));
    each ids (fun wid b ->
        Graph.install_ids graph (Intern.view_of it wid)
          (Util.Bitset.fold
             (fun sym acc -> Graph.Int_set.add (Intern.rid_of it sym) acc)
             b Graph.Int_set.empty));
    each by_id (fun sym b -> Graph.install_views_by_id graph (Intern.rid_of it sym) (view_set b));
    each roots (fun hid b -> Graph.install_roots graph (Intern.holder_of it hid) (view_set b));
    each listeners (fun wid b ->
        Graph.install_listeners graph (Intern.view_of it wid)
          (Util.Bitset.fold
             (fun eid acc -> Graph.Listener_set.add (Intern.listener_of it eid) acc)
             b Graph.Listener_set.empty));
    List.iter
      (function
        | J.List [ s; layout; views ] ->
            Graph.record_inflation graph ~site:(dsite s) ~layout:(dstr layout)
              (List.map dview (dlist views))
        | _ -> bad "bad inflation entry")
      (dlist (dfield "inflations" j));
    List.iter
      (function
        | J.List [ v; names ] ->
            let view = dview v in
            List.iter (fun n -> ignore (Graph.add_onclick graph view (dstr n))) (dlist names)
        | _ -> bad "bad onclick entry")
      (dlist (dfield "onclicks" j));
    List.iter
      (function
        | J.List [ v; classes ] ->
            let view = dview v in
            List.iter
              (fun c -> ignore (Graph.add_declared_fragment graph view (dstr c)))
              (dlist classes)
        | _ -> bad "bad declared-fragment entry")
      (dlist (dfield "declared_fragments" j));
    List.iter
      (function
        | J.List [ v; lids ] ->
            let view = dview v in
            List.iter (fun l -> ignore (Graph.add_root_layout graph view (dint l))) (dlist lids)
        | _ -> bad "bad root-layout entry")
      (dlist (dfield "root_layouts" j));
    (* Optional: absent in version-1 snapshots (nothing was tainted). *)
    (match J.member "taints" j with
    | None -> ()
    | Some rows ->
        List.iter
          (function
            | J.List [ n; vs ] ->
                Graph.install_taints graph (dnode n)
                  (List.fold_left
                     (fun acc v -> Graph.VS.add (dvalue v) acc)
                     Graph.VS.empty (dlist vs))
            | _ -> bad "bad taint entry")
          (dlist rows));
    (* Replay the seed pairs into the donor graph: the captured graph
       carried them, and [Graph.has_top] — which the warm guard and the
       taint pass key on — is reconstituted as a side effect. *)
    let seeds = dpairs (dfield "seeds" j) in
    Array.iter
      (fun (nid, vid) -> Graph.seed graph (Intern.node_of it nid) (Intern.value_of it vid))
      seeds;
    ignore (Graph.take_rel_changes graph);
    Ok
      {
        Solve.sd_config = config;
        sd_app_name = dstr (dfield "app_name" j);
        sd_class_fp = dstr (dfield "class_fp" j);
        sd_method_fp = dstr (dfield "method_fp" j);
        sd_layout_fp = dstr (dfield "layout_fp" j);
        (* a fresh empty package: physically distinct from any app's,
           so the warm guard always decides by layout fingerprint *)
        sd_package = Layouts.Package.create ();
        sd_graph = graph;
        sd_it = it;
        sd_node_total = node_total;
        sd_value_total = value_total;
        sd_csr_n = csr_n;
        sd_nrep = nrep;
        sd_row = dints (dfield "row" j);
        sd_edst = dints (dfield "edst" j);
        sd_ekind = dints (dfield "ekind" j);
        sd_cast_names = dstrings (dfield "cast_names" j);
        sd_seeds = seeds;
        sd_ops =
          Array.of_list
            (List.map
               (function
                 | J.List [ site; recv; args; out ] ->
                     (dop_site site, dint recv, dints args, dint out)
                 | _ -> bad "bad op")
               (dlist (dfield "ops" j)));
        sd_sols = sols;
        sd_sols_mask =
          (let mask = Util.Bitset.create () in
           Array.iteri
             (fun i o ->
               match o with Some _ -> ignore (Util.Bitset.add mask i) | None -> ())
             sols;
           mask);
        sd_children = children;
        sd_parents = parents;
        sd_ids = ids;
        sd_by_id = by_id;
        sd_roots = roots;
        sd_listeners = listeners;
        sd_holder_ids = List.map dint (dlist (dfield "holder_ids" j));
        sd_ret_deps =
          List.map
            (function
              | J.List [ r; rd ] ->
                  (dint r, if dint rd < 0 then Solve.RD_frags else Solve.RD_op (dint rd))
              | _ -> bad "bad return dependency")
            (dlist (dfield "ret_deps" j));
        sd_targets = Array.of_list (List.map dbitset (dlist (dfield "targets" j)));
      }
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error ("malformed snapshot: " ^ msg)

let save sd path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (J.to_string (to_json sd)))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match J.of_string contents with
      | Error msg -> Error ("snapshot is not valid JSON: " ^ msg)
      | Ok j -> of_json j)
