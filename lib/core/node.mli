(** Constraint-graph node and abstract-value definitions (Section 4.1
    of the paper).

    Design note: the paper draws allocation sites, id constants, and
    activity objects as graph nodes with outgoing flow edges.  Here
    those become {e abstract values} seeded into the points-to set of
    the location they flow into; the graph proper contains only
    locations (variables, fields, returns).  The two formulations
    compute the same [flowsTo] relation; this one avoids second-class
    "generator" nodes in the propagation core. *)

(** Identity of a method: defining class + name + arity. *)
type mid = { mid_cls : string; mid_name : string; mid_arity : int }

val mid : string -> Jir.Ast.meth_key -> mid

val mid_of_meth : string -> Jir.Ast.meth -> mid

val pp_mid : mid Fmt.t

(** A statement position: enclosing method + 0-based index in its
    body.  Sites are structural so that the static analysis and the
    dynamic semantics independently construct {e equal} abstractions
    for the same program point — the property the soundness tests rely
    on. *)
type site = { s_in : mid; s_stmt : int }

val pp_site : site Fmt.t

(** An allocation site [x = new C()]. *)
type alloc_site = {
  a_site : site;
  a_cls : string;  (** the instantiated class [C] *)
}

(** An operation site (one per recognized Android API call). *)
type op_site = { o_site : site; o_kind : Framework.Api.kind }

(** An inflated-view abstraction: one per (inflation operation, layout
    node) — the paper's "fresh set of graph nodes at each inflation
    site", subscripted [z.y] in Figure 4. *)
type infl_site = {
  v_site : site;  (** the inflating operation's site *)
  v_layout : string;  (** layout name *)
  v_path : int list;  (** layout-node path within the layout tree *)
  v_cls : string;  (** view class of the layout node *)
  v_vid : string option;  (** view-id name, if the node declares one *)
}

(** Abstract views: inflated or explicitly allocated. *)
type view_abs = V_infl of infl_site | V_alloc of alloc_site

(** Abstract values propagated by the analysis. *)
type value =
  | V_view of view_abs
  | V_act of string  (** the implicit instance of an activity class *)
  | V_obj of alloc_site  (** non-view allocation (listeners, dialogs, helpers) *)
  | V_layout_id of int
  | V_view_id of int
  | V_layout_top
      (** a layout id the analysis cannot resolve ([R.layout.?]):
          matches every layout in the package *)
  | V_view_id_top
      (** a view id the analysis cannot resolve ([R.id.?]): matches
          every candidate id in scope *)

val top_view_id_raw : int
(** Sentinel raw resource id ([-1]) standing for an unknown id in view
    id rows ([SetId(v, ⊤)]); never collides with a real resource id. *)

(** Abstract listeners: allocated listener objects, or activities
    acting as their own listeners (the "general case" the paper's
    implementation handles). *)
type listener_abs = L_alloc of alloc_site | L_act of string

(** Content holders — receivers of [setContentView]: activities, or
    (extension) dialog objects. *)
type holder = H_act of string | H_dialog of alloc_site

(** Graph locations. *)
type t =
  | N_var of mid * string  (** local variable of a method *)
  | N_field of string  (** field-based: one location per field name *)
  | N_ret of mid  (** return value of a method *)

val class_of_view : view_abs -> string

val menu_site : string -> alloc_site
(** The implicit options-menu object of the named activity class (menu
    extension); a synthetic allocation site shared by the static
    analysis and the dynamic semantics. *)

val menu_owner : alloc_site -> string option
(** Inverse of {!menu_site}: the owning activity, when the site is an
    implicit options menu. *)

val menu_item_site : site -> alloc_site
(** The MenuItem abstraction minted by a [Menu.add] operation site. *)

val declared_fragment_site : string -> infl_site -> alloc_site
(** The implicit instance of a [<fragment android:name="F" />] placed
    at the given inflated placeholder node. *)

val view_of_value : value -> view_abs option

(** {1 Comparisons}

    Explicit, field-by-field orderings for everything the solver keys
    sets and tables on.  They reproduce the ordering [Stdlib.compare]
    gave these concrete representations (fields and constructors in
    declaration order), so set iteration order is unchanged. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val compare_mid : mid -> mid -> int

val compare_site : site -> site -> int

val compare_alloc : alloc_site -> alloc_site -> int

val compare_view : view_abs -> view_abs -> int

val compare_value : value -> value -> int

val compare_listener : listener_abs -> listener_abs -> int

val compare_holder : holder -> holder -> int

val compare_op_site : op_site -> op_site -> int

val equal_view : view_abs -> view_abs -> bool

val equal_value : value -> value -> bool

val equal_listener : listener_abs -> listener_abs -> bool

val equal_holder : holder -> holder -> bool

(** {1 Hashes}

    Explicit hashes paired with the explicit equalities, for hashed
    containers (the interner pools, the graph's dedup tables); the
    polymorphic hash caps its traversal of nested records. *)

val mix : int -> int -> int
(** FNV-1a style combinator used by all the hashes below. *)

val hash_string : string -> int

val hash_mid : mid -> int

val hash_site : site -> int

val hash_alloc : alloc_site -> int

val hash_view : view_abs -> int

val hash_value : value -> int

val hash_listener : listener_abs -> int

val hash_holder : holder -> int

val pp : t Fmt.t

val pp_value : value Fmt.t

val pp_view : view_abs Fmt.t

val pp_alloc : alloc_site Fmt.t

val pp_listener : listener_abs Fmt.t

val pp_holder : holder Fmt.t

val pp_op_site : op_site Fmt.t
