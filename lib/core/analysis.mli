(** The analysis entry point and queries over the computed solution.

    This is the primary public API: run {!analyze} on an
    {!Framework.App.t}, then ask where views flow, which views carry
    which ids, which listeners handle events on which views, and the
    (activity, view, event, handler) interaction tuples that Section 6
    of the paper describes as input to testing and security tools. *)

type t = private {
  app : Framework.App.t;
  config : Config.t;
  graph : Graph.t;
  stats : Solve.stats;
  solve_seconds : float;  (** wall-clock time of extract + solve *)
}

val analyze : ?config:Config.t -> Framework.App.t -> t

val make :
  app:Framework.App.t ->
  config:Config.t ->
  graph:Graph.t ->
  stats:Solve.stats ->
  solve_seconds:float ->
  t
(** Wrap an already-solved graph (the incremental driver solves
    through {!Solve.run_solved}/{!Solve.run_incremental} itself). *)

(** {1 Location lookup} *)

val var : cls:string -> meth:string -> arity:int -> string -> Node.t

val values_at : t -> Node.t -> Node.value list

val views_at : t -> Node.t -> Node.view_abs list

val flows_to : t -> Node.value -> Node.t -> bool
(** The paper's [flowsTo] relation, restricted to locations. *)

(** {1 Operation-node solutions (the measurements of Table 2)} *)

val ops : t -> Graph.op list

val ops_of_kind : t -> (Framework.Api.kind -> bool) -> Graph.op list

val op_receiver_views : t -> Graph.op -> Node.view_abs list

val op_receiver_holders : t -> Graph.op -> Node.holder list

val op_child_views : t -> Graph.op -> Node.view_abs list
(** Views reaching the first argument (AddView's child,
    SetContent's view). *)

val op_result_views : t -> Graph.op -> Node.view_abs list
(** Views flowing out of the operation (only for ops with an lhs). *)

val op_listeners : t -> Graph.op -> Node.listener_abs list
(** Listeners reaching a SetListener operation's argument. *)

(** {1 Structural queries} *)

val views_with_id : t -> string -> Node.view_abs list
(** All abstract views associated with the named view id, including
    views whose id came from [SetId (v, ⊤)] (their concrete id is
    unknown, so they match every name). *)

val pollution : t -> int * int
(** [(polluted, nonempty)]: of the location nodes with a non-empty
    solution set, how many carry at least one value matched via an
    unknown-information marker (the [imprecise] taint of sound mode).
    [(0, n)] whenever the app has no ⊤ markers — the precision column
    of [experiments precision] divides the pair. *)

val roots_of_activity : t -> string -> Node.view_abs list

val views_of_activity : t -> string -> Node.view_abs list
(** Roots plus all their descendants: the GUI content the activity can
    display. *)

val listeners_of_view : t -> Node.view_abs -> (Node.listener_abs * string) list
(** Registrations with the interface name. *)

(** {1 Interaction model (Section 6)} *)

type interaction = {
  ix_activity : string;
      (** the content holder's class: an activity, or (extension) a
          dialog class *)
  ix_view : Node.view_abs;
  ix_event : Framework.Listeners.event;
  ix_listener : Node.listener_abs;
  ix_handler : Node.mid;  (** the application method handling the event *)
}

val interactions : t -> interaction list
(** All (holder, view, event, handler) tuples: for each activity (and,
    extension, each dialog), the views it can display, their registered
    listeners, and the resolved handler methods. *)

val transitions : t -> (string * string) list
(** Activity-transition edges (source activity, launched activity
    class) — the model SCanDroid/A3E-style tools consume (Section 6 of
    the paper).  Extension: requires [startActivity] calls with
    activity tokens. *)

val pp_interaction : interaction Fmt.t

val pp_summary : t Fmt.t
(** Human-readable solution overview. *)
