type solver = Naive | Delta | Interned

let solver_name = function Naive -> "naive" | Delta -> "delta" | Interned -> "interned"

type t = {
  cast_filtering : bool;
  findone_refinement : bool;
  listener_callbacks : bool;
  model_dialogs : bool;
  inline_depth : int;
  inline_body_limit : int;
  ctx_keyed : bool;
  max_iterations : int;
  solver : solver;
  jobs : int;
  incremental : bool;
  shared_intern : bool;
}

let default =
  {
    cast_filtering = true;
    findone_refinement = true;
    listener_callbacks = true;
    model_dialogs = true;
    inline_depth = 0;
    inline_body_limit = 24;
    ctx_keyed = true;
    max_iterations = 1000;
    solver = Interned;
    jobs = 8;
    incremental = false;
    shared_intern = true;
  }

let baseline =
  {
    cast_filtering = false;
    findone_refinement = false;
    listener_callbacks = false;
    model_dialogs = false;
    inline_depth = 0;
    inline_body_limit = 24;
    ctx_keyed = true;
    max_iterations = 1000;
    solver = Interned;
    jobs = 8;
    incremental = false;
    shared_intern = true;
  }
