(** Persistence of solved state: serialize a {!Solve.solved} to a
    versioned state file and restore it to a warm-start-ready value in
    another process ([gator --incremental --state FILE]).

    The file is a JSON document stamped with a magic string and format
    version.  {!load} never raises on hostile input: corruption, a
    stale version, or an unknown framework entity all come back as
    [Error reason], which drivers surface as a full solve with
    [stats.fallback] set.

    A loaded snapshot carries a fresh empty layout package, so the warm
    guard always compares layout fingerprints (never pointer equality)
    against the current app. *)

val save : Solve.solved -> string -> unit
(** Write the state file (overwrites). *)

val load : string -> (Solve.solved, string) result

val to_json : Solve.solved -> Util.Json.t

val of_json : Util.Json.t -> (Solve.solved, string) result
