(** Patch-style edits over corpus apps — the shared vocabulary of the
    incremental test-suite, the benchmarks, and the CLI's patched-app
    verification.

    A patch is a JSON list of edits:
    {v
      [{"edit": "rename_view_id", "from": "btn_old", "to": "btn_new"},
       {"edit": "remove_stmt", "cls": "C", "meth": "m", "arity": 0, "index": 3},
       {"edit": "add_stmt", "cls": "C", "meth": "m", "arity": 0,
        "stmt": {"copy": ["x", "y"]}},
       {"edit": "add_method", "cls": "C", "name": "onClick",
        "params": ["v"], "body": [{"return": null}]}]
    v}

    Statements use a one-field-object encoding mirroring
    {!Jir.Ast.stmt}; see the implementation header for the full list. *)

type edit =
  | Rename_view_id of { from_ : string; to_ : string }
      (** Retarget every [x = R.id.from_] read to another id. *)
  | Remove_stmt of { cls : string; meth : string; arity : int; index : int }
      (** Drop the statement at [index].  Later statements of the same
          method shift index, so their sites are treated as removed +
          added by the diff — sound, at some extra invalidation. *)
  | Add_stmt of { cls : string; meth : string; arity : int; stmt : Jir.Ast.stmt }
      (** Append a statement to the method body. *)
  | Add_method of { cls : string; name : string; params : string list; body : Jir.Ast.stmt list }

type t = edit list

val of_json : Util.Json.t -> (t, string) result

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a patch file. *)

val apply : Framework.App.t -> t -> (Framework.App.t, string) result
(** Apply the edits in order and rebuild the app.  The layout package
    is shared physically with the input, preserving the incremental
    warm guard's pointer-equality fast path. *)
