module B = Jir.Builder

(* ------------------------------------------------------------------ *)
(* Work items: the unit of operation-statement generation.  Each item
   expands to a self-contained statement block inside some activity
   setup method; views produced by earlier items are communicated
   through activity fields.  The number of operation statements each
   item emits is fixed, so quotas are met exactly. *)

type item =
  | I_find of string  (** inline findViewById of the named id: 1 FindView *)
  | I_current  (** getCurrentView() on a container: 1 FindOne (counted with FindView) *)
  | I_find_merged of int  (** call shared helper [find_k]: 0 ops here (the op lives in ViewOps) *)
  | I_extra_inflate of { layout : string; attach : bool }  (** 1 Inflate (+1 AddView if attach) *)
  | I_alloc_attach of { view_cls : string; with_id : string option; attach : bool }
      (** 1 view alloc (+1 SetId if id, +1 AddView if attach) *)
  | I_set_id of string  (** 1 SetId on a previously found view *)
  | I_add_view  (** 1 AddView of a previously found view into a container *)
  | I_listener_alloc of { cls : int; register : bool }  (** 1 listener alloc (+1 SetListener if register) *)
  | I_listener_reuse  (** 1 SetListener on an already-allocated listener *)
  | I_plain_alloc of string  (** 1 unattached view alloc *)
  | I_id_ref of string  (** reference an otherwise-unused view id: 0 ops *)

type layout_info = {
  li_name : string;
  li_def : Layouts.Layout.def;
  li_root_id : string;
  li_ids : (string * string) list;  (** (id, view class) pairs present *)
}

let container_classes = Framework.Views.concrete_container_classes

let leaf_classes = Framework.Views.concrete_view_classes

let listener_iface_cycle =
  [ "OnClickListener"; "OnLongClickListener"; "OnItemClickListener"; "OnTouchListener"; "OnKeyListener" ]

let nth_cycle xs n = List.nth xs (n mod List.length xs)

(* ------------------------------------------------------------------ *)
(* Layout generation *)

let gen_layouts rng (spec : Spec.t) =
  (* [used_ids] stays a list because [Prng.choose] draws from it (its
     order is part of the deterministic generation); [used_seen] gives
     O(1) membership for the leftover computation below. *)
  let used_ids = ref [] in
  let used_seen = Hashtbl.create 64 in
  let fresh_cursor = ref 0 in
  let fresh_id () =
    if !fresh_cursor < spec.sp_view_ids then begin
      let name = Printf.sprintf "vid_%d" !fresh_cursor in
      incr fresh_cursor;
      used_ids := name :: !used_ids;
      Hashtbl.replace used_seen name ();
      Some name
    end
    else None
  in
  let pick_id () =
    if (!used_ids <> [] && Util.Prng.chance rng spec.sp_id_sharing) || !fresh_cursor >= spec.sp_view_ids
    then if !used_ids = [] then None else Some (Util.Prng.choose rng !used_ids)
    else fresh_id ()
  in
  (* Node budget: one root per layout, the rest distributed randomly. *)
  let extra = Array.make spec.sp_layouts 0 in
  for _ = 1 to spec.sp_inflated_nodes - spec.sp_layouts do
    let i = Util.Prng.int rng spec.sp_layouts in
    extra.(i) <- extra.(i) + 1
  done;
  let module T = struct
    type tree = { cls : string; id : string option; mutable kids : tree list }
  end in
  let open T in
  let make_layout index =
    let name = Printf.sprintf "layout_%d" index in
    let root_id =
      match fresh_id () with
      | Some id -> id
      | None -> Printf.sprintf "vid_%d" (index mod spec.sp_view_ids)
    in
    let root = { cls = nth_cycle container_classes index; id = Some root_id; kids = [] } in
    let containers = ref [ root ] in
    let ids = ref [ (root_id, root.cls) ] in
    for _ = 1 to extra.(index) do
      let parent = Util.Prng.choose rng !containers in
      let is_container = Util.Prng.chance rng 0.3 in
      let cls =
        if is_container then Util.Prng.choose rng container_classes
        else Util.Prng.choose rng leaf_classes
      in
      let id = if Util.Prng.chance rng 0.8 then pick_id () else None in
      let node = { cls; id; kids = [] } in
      (* newest first; [freeze] restores insertion order *)
      parent.kids <- node :: parent.kids;
      if is_container then containers := node :: !containers;
      match id with Some i -> ids := (i, cls) :: !ids | None -> ()
    done;
    let rec freeze t = Layouts.Layout.node ?id:t.id ~children:(List.rev_map freeze t.kids) t.cls in
    {
      li_name = name;
      li_def = Layouts.Layout.def ~name (freeze root);
      li_root_id = root_id;
      li_ids = List.rev !ids;
    }
  in
  let layouts = List.init spec.sp_layouts make_layout in
  let leftover =
    List.filter
      (fun i -> not (Hashtbl.mem used_seen i))
      (List.init spec.sp_view_ids (Printf.sprintf "vid_%d"))
  in
  (layouts, leftover)

(* ------------------------------------------------------------------ *)
(* Item schedule.

   Operation accounting (kept exact):
   - FindView = activities (root lookups) + inline I_find + merged
     helpers (ops inside ViewOps) + handler finds (inside listeners);
   - Inflate = activities (setContentView) + extra layouts = layouts;
   - AddView = attach budget distributed to alloc-attach, extra-inflate
     and bare add-view items;
   - SetId = alloc-attach items with ids + bare set-id items;
   - SetListener = registering allocs + reuse items. *)

type plan = {
  pl_regular : item list;  (** shuffled non-listener items *)
  pl_listener_allocs : item list;
  pl_listener_reuses : int;
  pl_merged_fv : int;  (** shared-helper find ops in ViewOps *)
  pl_handler_fv : int;  (** find ops inside listener handler bodies *)
}

let schedule rng (spec : Spec.t) (layouts : layout_info list) leftover_ids =
  let all_ids = List.init spec.sp_view_ids (Printf.sprintf "vid_%d") in
  let fv_budget = max 0 (spec.sp_findview_ops - spec.sp_activities) in
  let merged_fv =
    min fv_budget
      (int_of_float (Float.round (float_of_int spec.sp_findview_ops *. spec.sp_receiver_merge)))
  in
  let handler_fv = min spec.sp_listener_classes (max 0 (fv_budget - merged_fv)) in
  let inline_fv = max 0 (fv_budget - merged_fv - handler_fv) in
  let attach_budget = ref spec.sp_addview_ops in
  let take_attach () =
    if !attach_budget > 0 then begin
      decr attach_budget;
      true
    end
    else false
  in
  let items = ref [] in
  let push i = items := i :: !items in
  let pick_find_id () =
    if leftover_ids <> [] && Util.Prng.chance rng 0.15 then Util.Prng.choose rng leftover_ids
    else Util.Prng.choose rng all_ids
  in
  for _ = 1 to inline_fv do
    if Util.Prng.chance rng (spec.sp_id_sharing *. 0.3) then push I_current else push (I_find (pick_find_id ()))
  done;
  let fanout = 1 + int_of_float (Float.round (spec.sp_receiver_merge *. 16.0)) in
  for k = 0 to merged_fv - 1 do
    for _ = 1 to fanout do
      push (I_find_merged k)
    done
  done;
  List.iteri
    (fun i li -> if i >= spec.sp_activities then push (I_extra_inflate { layout = li.li_name; attach = take_attach () }))
    layouts;
  let alloc_attach = min spec.sp_view_allocs spec.sp_setid_ops in
  for _ = 1 to alloc_attach do
    push
      (I_alloc_attach
         {
           view_cls = Util.Prng.choose rng leaf_classes;
           with_id = Some (Util.Prng.choose rng all_ids);
           attach = take_attach ();
         })
  done;
  for _ = 1 to spec.sp_setid_ops - alloc_attach do
    push (I_set_id (Util.Prng.choose rng all_ids))
  done;
  for _ = 1 to spec.sp_view_allocs - alloc_attach do
    if take_attach () then
      push (I_alloc_attach { view_cls = Util.Prng.choose rng leaf_classes; with_id = None; attach = true })
    else push (I_plain_alloc (Util.Prng.choose rng leaf_classes))
  done;
  for _ = 1 to !attach_budget do
    push I_add_view
  done;
  attach_budget := 0;
  List.iter (fun id -> push (I_id_ref id)) leftover_ids;
  let registered = min spec.sp_listener_allocs spec.sp_setlistener_ops in
  let allocs =
    List.init spec.sp_listener_allocs (fun k ->
        I_listener_alloc { cls = k mod max 1 spec.sp_listener_classes; register = k < registered })
  in
  {
    pl_regular = Util.Prng.shuffle rng (List.rev !items);
    pl_listener_allocs = allocs;
    pl_listener_reuses = max 0 (spec.sp_setlistener_ops - registered);
    pl_merged_fv = merged_fv;
    pl_handler_fv = handler_fv;
  }

(* ------------------------------------------------------------------ *)
(* Code emission *)

type activity_state = {
  act_name : string;
  act_layout : layout_info;
  mutable view_fields : (string * bool) list;  (** (field, is_container), newest first *)
  mutable listener_fields : (string * string) list;  (** (field, listener class), registration order *)
  mutable stmts : Jir.Ast.stmt list;  (** reversed buffer for the current chunk *)
  mutable chunks : Jir.Ast.stmt list list;  (** finished setup-method bodies, reversed *)
  mutable fields : (string * Jir.Ast.ty) list;
  mutable temp : int;
}

let fresh_temp act prefix =
  act.temp <- act.temp + 1;
  Printf.sprintf "%s%d" prefix act.temp

let emit act stmts = act.stmts <- List.rev_append stmts act.stmts

let chunk_limit = 14

let maybe_close_chunk act =
  if List.length act.stmts >= chunk_limit then begin
    act.chunks <- List.rev act.stmts :: act.chunks;
    act.stmts <- []
  end

(* Field names are unique per activity: the analysis is field-based
   (one location per field name), and real applications declare their
   fields in distinct classes.  Sharing names across activities would
   merge every activity's views artificially. *)
let add_view_field act ~is_container =
  let field = Printf.sprintf "%s_fv_%d" act.act_name (List.length act.view_fields) in
  act.fields <- (field, B.tclass "View") :: act.fields;
  act.view_fields <- (field, is_container) :: act.view_fields;
  field

let pick_view_field rng act ~prefer_container =
  match act.view_fields with
  | [] -> None
  | fields ->
      let containers = List.filter snd fields in
      let pool = if prefer_container && containers <> [] then containers else fields in
      Some (fst (Util.Prng.choose rng pool))

(* Built eagerly at module init (not [lazy]): a lazy forced for the
   first time by two domains at once is a race, and generation runs on
   pool workers.  Read-only afterward, so concurrent lookups are safe. *)
let container_class_set =
  let tbl = Hashtbl.create 16 in
  List.iter (fun cls -> Hashtbl.replace tbl cls ()) container_classes;
  tbl

let is_container_class cls = Hashtbl.mem container_class_set cls

let emit_item rng ~share act listener_classes item =
  (* Every activity starts with a root find, so a view field is always
     available; [load_view] therefore always emits its body, keeping
     operation counts exact. *)
  let load_view ~prefer_container body =
    match pick_view_field rng act ~prefer_container with
    | None -> assert false
    | Some field ->
        let v = fresh_temp act "u" in
        emit act (B.read v Jir.Ast.this_var field :: body v)
  in
  (match item with
  | I_find id ->
      let a = fresh_temp act "a" in
      let v = fresh_temp act "v" in
      (* When the id names a node of this activity's layout, downcast
         the result to that node's class, as real code does; cast
         filtering then prunes same-id views of other classes. *)
      let node_cls = List.assoc_opt id act.act_layout.li_ids in
      let is_container =
        match node_cls with Some cls -> is_container_class cls | None -> false
      in
      let field = add_view_field act ~is_container in
      let store =
        match node_cls with
        | Some cls ->
            let c = fresh_temp act "c" in
            [ B.cast c cls v; B.write Jir.Ast.this_var field c ]
        | None -> [ B.write Jir.Ast.this_var field v ]
      in
      emit act (B.view_id a id :: B.call ~into:v Jir.Ast.this_var "findViewById" [ a ] :: store)
  | I_current ->
      load_view ~prefer_container:true (fun v ->
          let w = fresh_temp act "w" in
          let field = add_view_field act ~is_container:false in
          [ B.call ~into:w v "getCurrentView" []; B.write Jir.Ast.this_var field w ])
  | I_find_merged k ->
      (* Containers (layout roots and inflated roots) are the views a
         real app hands to shared decoration helpers; they are also
         guaranteed non-empty, so each call site contributes a distinct
         receiver to the shared operation. *)
      load_view ~prefer_container:true (fun v ->
          let ops = fresh_temp act "o" in
          let w = fresh_temp act "w" in
          let field = add_view_field act ~is_container:false in
          [
            B.read ops Jir.Ast.this_var "f_ops";
            B.call ~into:w ops (Printf.sprintf "find_%d" k) [ v ];
            B.write Jir.Ast.this_var field w;
          ])
  | I_extra_inflate { layout; attach } ->
      let inf = fresh_temp act "inf" in
      let lid = fresh_temp act "lid" in
      let k = fresh_temp act "k" in
      let field = add_view_field act ~is_container:true in
      emit act
        [
          B.call ~into:inf Jir.Ast.this_var "getLayoutInflater" [];
          B.layout_id lid layout;
          B.call ~into:k inf "inflate" [ lid ];
          B.write Jir.Ast.this_var field k;
        ];
      if attach then
        load_view ~prefer_container:true (fun v ->
            let k2 = fresh_temp act "k" in
            [ B.read k2 Jir.Ast.this_var field; B.call v "addView" [ k2 ] ])
  | I_alloc_attach { view_cls; with_id; attach } ->
      let w = fresh_temp act "w" in
      let field = add_view_field act ~is_container:(is_container_class view_cls) in
      emit act [ B.new_ w view_cls; B.write Jir.Ast.this_var field w ];
      (match with_id with
      | Some id_name ->
          let x = fresh_temp act "x" in
          emit act [ B.view_id x id_name; B.call w "setId" [ x ] ]
      | None -> ());
      if attach then
        load_view ~prefer_container:true (fun v ->
            let w2 = fresh_temp act "w" in
            [ B.read w2 Jir.Ast.this_var field; B.call v "addView" [ w2 ] ])
  | I_set_id id ->
      load_view ~prefer_container:false (fun v ->
          let x = fresh_temp act "x" in
          [ B.view_id x id; B.call v "setId" [ x ] ])
  | I_add_view ->
      load_view ~prefer_container:true (fun parent ->
          let child_field =
            match pick_view_field rng act ~prefer_container:false with
            | Some f -> f
            | None -> assert false
          in
          let c = fresh_temp act "c" in
          [ B.read c Jir.Ast.this_var child_field; B.call parent "addView" [ c ] ])
  | I_listener_alloc { cls; register } ->
      let cls_name, iface = nth_cycle listener_classes cls in
      let l = fresh_temp act "l" in
      (* With probability [share], store into an existing field of the
         same class: both allocations then reach every setter using the
         field, modeling apps that overwrite listener fields. *)
      let reusable =
        if Util.Prng.chance rng share then
          List.find_opt (fun (_, c) -> c = cls_name) act.listener_fields
        else None
      in
      let field =
        match reusable with
        | Some (field, _) -> field
        | None ->
            let field = Printf.sprintf "%s_fl_%d" act.act_name (List.length act.listener_fields) in
            act.fields <- (field, B.tclass cls_name) :: act.fields;
            act.listener_fields <- act.listener_fields @ [ (field, cls_name) ];
            field
      in
      emit act [ B.new_ l cls_name; B.write Jir.Ast.this_var field l ];
      if register then
        load_view ~prefer_container:false (fun v ->
            let l2 = fresh_temp act "l" in
            [
              B.read l2 Jir.Ast.this_var field;
              B.call l2 "init" [ v ];
              B.call v iface.Framework.Listeners.i_setter [ l2 ];
            ])
  | I_listener_reuse -> (
      match act.listener_fields with
      | [] -> assert false
      | fields ->
          let field, cls_name = Util.Prng.choose rng fields in
          let iface =
            match List.find_opt (fun (name, _) -> name = cls_name) listener_classes with
            | Some (_, iface) -> iface
            | None -> snd (List.hd listener_classes)
          in
          load_view ~prefer_container:false (fun v ->
              let l = fresh_temp act "l" in
              [ B.read l Jir.Ast.this_var field; B.call v iface.Framework.Listeners.i_setter [ l ] ]))
  | I_plain_alloc view_cls ->
      let w = fresh_temp act "w" in
      let field = add_view_field act ~is_container:(is_container_class view_cls) in
      emit act [ B.new_ w view_cls; B.write Jir.Ast.this_var field w ]
  | I_id_ref id ->
      let x = fresh_temp act "x" in
      emit act [ B.view_id x id ]);
  maybe_close_chunk act

(* ------------------------------------------------------------------ *)

let build_activity_class act =
  let setups = List.rev (if act.stmts = [] then act.chunks else List.rev act.stmts :: act.chunks) in
  let setup_meths = List.mapi (fun i body -> B.meth (Printf.sprintf "setup_%d" i) body) setups in
  let on_create_body =
    B.layout_id "lid" act.act_layout.li_name
    :: B.call Jir.Ast.this_var "setContentView" [ "lid" ]
    :: B.new_ "ops0" "ViewOps"
    :: B.write Jir.Ast.this_var "f_ops" "ops0"
    :: List.mapi (fun i _ -> B.call Jir.Ast.this_var (Printf.sprintf "setup_%d" i) []) setups
  in
  let fields = ("f_ops", B.tclass "ViewOps") :: List.rev act.fields in
  B.cls ~extends:"Activity" ~fields
    ~methods:(B.meth "onCreate" on_create_body :: setup_meths)
    act.act_name

let build_listener_class rng all_ids ~with_find (name, iface) =
  (* Unique field name per class: see the note on [add_view_field]. *)
  let root_field = Printf.sprintf "%s_root" name in
  let first_handler = List.hd iface.Framework.Listeners.i_handlers in
  let handlers =
    List.map
      (fun (h : Framework.Listeners.handler) ->
        let params =
          List.init h.h_arity (fun i ->
              let ty = if h.h_view_param = Some i then B.tclass "View" else Jir.Ast.Tint in
              (Printf.sprintf "p%d" i, ty))
        in
        let body =
          if with_find && h.h_name = first_handler.h_name then
            [
              B.read "r" Jir.Ast.this_var root_field;
              B.view_id "x" (Util.Prng.choose rng all_ids);
              B.call ~into:"w" "r" "findViewById" [ "x" ];
            ]
          else []
        in
        B.meth ~params h.h_name body)
      iface.Framework.Listeners.i_handlers
  in
  let init =
    B.meth ~params:[ ("r0", B.tclass "View") ] "init" [ B.write Jir.Ast.this_var root_field "r0" ]
  in
  B.cls
    ~implements:[ iface.Framework.Listeners.i_name ]
    ~fields:[ (root_field, B.tclass "View") ]
    ~methods:(init :: handlers) name

let build_view_ops rng merged_fv all_ids =
  let meths =
    if merged_fv = 0 then
      [
        B.meth
          ~params:[ ("v", B.tclass "View") ]
          ~ret:(B.tclass "View") "passthrough"
          [ B.ret ~value:"v" () ];
      ]
    else
      List.init merged_fv (fun k ->
          B.meth
            ~params:[ ("v", B.tclass "View") ]
            ~ret:(B.tclass "View")
            (Printf.sprintf "find_%d" k)
            [
              B.view_id "a" (Util.Prng.choose rng all_ids);
              B.call ~into:"w" "v" "findViewById" [ "a" ];
              B.ret ~value:"w" ();
            ])
  in
  B.cls ~methods:meths "ViewOps"

let build_helpers (spec : Spec.t) ~used_classes ~used_methods =
  let n_helpers = max 0 (spec.sp_classes - used_classes) in
  let n_methods = max 0 (spec.sp_methods - used_methods) in
  if n_helpers = 0 then []
  else begin
    let per = n_methods / n_helpers in
    let extra = n_methods mod n_helpers in
    List.init n_helpers (fun i ->
        let count = per + if i < extra then 1 else 0 in
        let next = Printf.sprintf "Helper_%d" ((i + 1) mod n_helpers) in
        let peer_count = per + if (i + 1) mod n_helpers < extra then 1 else 0 in
        let meths =
          List.init count (fun j ->
              let name = Printf.sprintf "h%d_m%d" i j in
              if j > 0 && j mod 3 = 0 && n_helpers > 1 && j - 1 < peer_count then
                B.meth ~params:[ ("x", Jir.Ast.Tint) ] ~ret:Jir.Ast.Tint name
                  [
                    B.read "p" Jir.Ast.this_var "peer";
                    B.call ~into:"y" "p"
                      (Printf.sprintf "h%d_m%d" ((i + 1) mod n_helpers) (j - 1))
                      [ "x" ];
                    B.ret ~value:"y" ();
                  ]
              else
                B.meth ~params:[ ("x", Jir.Ast.Tint) ] ~ret:Jir.Ast.Tint name
                  [ B.copy "y" "x"; B.ret ~value:"y" () ])
        in
        B.cls ~fields:[ ("peer", B.tclass next) ] ~methods:meths (Printf.sprintf "Helper_%d" i))
  end

let count_methods classes =
  List.fold_left (fun acc (c : Jir.Ast.cls) -> acc + List.length c.c_methods) 0 classes

let generate (spec : Spec.t) =
  (match Spec.validate spec with Ok () -> () | Error e -> invalid_arg ("Gen.generate: " ^ e));
  let rng = Util.Prng.create spec.sp_seed in
  let layouts, leftover_ids = gen_layouts rng spec in
  let plan = schedule rng spec layouts leftover_ids in
  let all_ids = List.init spec.sp_view_ids (Printf.sprintf "vid_%d") in
  let listener_classes =
    List.init spec.sp_listener_classes (fun k ->
        let iface_name = nth_cycle listener_iface_cycle k in
        let iface = Option.get (Framework.Listeners.by_name iface_name) in
        (Printf.sprintf "Listener_%d" k, iface))
  in
  let layout_arr = Array.of_list layouts in
  let acts =
    List.init spec.sp_activities (fun i ->
        let layout = layout_arr.(i) in
        let act =
          {
            act_name = Printf.sprintf "Activity_%d" i;
            act_layout = layout;
            view_fields = [];
            listener_fields = [];
            stmts = [];
            chunks = [];
            fields = [];
            temp = 0;
          }
        in
        let field = add_view_field act ~is_container:true in
        emit act
          [
            B.view_id "a0" layout.li_root_id;
            B.call ~into:"v0" Jir.Ast.this_var "findViewById" [ "a0" ];
            B.write Jir.Ast.this_var field "v0";
          ];
        act)
  in
  let act_arr = Array.of_list acts in
  let nth_act i = act_arr.(i mod Array.length act_arr) in
  List.iteri (fun i item -> emit_item rng ~share:spec.sp_id_sharing (nth_act i) listener_classes item) plan.pl_regular;
  (* Listener allocations round-robin, then reuse registrations on
     activities that hold a listener. *)
  List.iteri (fun i item -> emit_item rng ~share:spec.sp_id_sharing (nth_act i) listener_classes item) plan.pl_listener_allocs;
  let holding = Array.of_list (List.filter (fun a -> a.listener_fields <> []) acts) in
  if plan.pl_listener_reuses > 0 && Array.length holding > 0 then
    for k = 0 to plan.pl_listener_reuses - 1 do
      emit_item rng ~share:spec.sp_id_sharing
        holding.(k mod Array.length holding)
        listener_classes I_listener_reuse
    done;
  let activity_classes = List.map build_activity_class acts in
  let listener_cls_defs =
    List.mapi
      (fun k lc -> build_listener_class rng all_ids ~with_find:(k < plan.pl_handler_fv) lc)
      listener_classes
  in
  let view_ops = build_view_ops rng plan.pl_merged_fv all_ids in
  let used_classes = List.length activity_classes + List.length listener_cls_defs + 1 in
  let used_methods = count_methods (view_ops :: (activity_classes @ listener_cls_defs)) in
  let helpers = build_helpers spec ~used_classes ~used_methods in
  (* With no helper classes left in the class budget, absorb the
     remaining method budget into ViewOps so Table 1's method count
     still lands exactly on the spec. *)
  let view_ops =
    if helpers = [] && spec.sp_methods > used_methods then
      let deficit = spec.sp_methods - used_methods in
      let pads =
        List.init deficit (fun j ->
            B.meth ~params:[ ("x", Jir.Ast.Tint) ] ~ret:Jir.Ast.Tint
              (Printf.sprintf "pass_%d" j)
              [ B.copy "y" "x"; B.ret ~value:"y" () ])
      in
      { view_ops with Jir.Ast.c_methods = view_ops.Jir.Ast.c_methods @ pads }
    else view_ops
  in
  let program = B.program (activity_classes @ listener_cls_defs @ [ view_ops ] @ helpers) in
  let package = Layouts.Package.create () in
  List.iter (fun li -> Layouts.Package.add package li.li_def) layouts;
  Framework.App.make ~name:spec.sp_name program package

let random_spec ?(name = "Random") rng =
  let activities = Util.Prng.int_in rng 1 3 in
  let layouts = activities + Util.Prng.int_in rng 0 2 in
  let view_ids = Util.Prng.int_in rng 2 10 in
  let listener_classes = Util.Prng.int_in rng 1 3 in
  let listener_allocs = Util.Prng.int_in rng 0 4 in
  let setlistener = if listener_allocs = 0 then 0 else Util.Prng.int_in rng 0 (listener_allocs + 2) in
  {
    Spec.sp_name = name;
    sp_seed = Int64.to_int (Util.Prng.next rng) land 0xFFFFFF;
    sp_classes = activities + listener_classes + 1 + Util.Prng.int_in rng 0 3;
    sp_methods = Util.Prng.int_in rng 10 60;
    sp_activities = activities;
    sp_layouts = layouts;
    sp_view_ids = view_ids;
    sp_inflated_nodes = layouts + Util.Prng.int_in rng 0 12;
    sp_view_allocs = Util.Prng.int_in rng 0 4;
    sp_listener_classes = listener_classes;
    sp_listener_allocs = listener_allocs;
    sp_findview_ops = activities + Util.Prng.int_in rng 0 8;
    sp_addview_ops = Util.Prng.int_in rng 0 5;
    sp_setid_ops = Util.Prng.int_in rng 0 3;
    sp_setlistener_ops = setlistener;
    sp_id_sharing = float_of_int (Util.Prng.int_in rng 0 5) /. 10.0;
    sp_receiver_merge = float_of_int (Util.Prng.int_in rng 0 5) /. 10.0;
  }

(* ------------------------------------------------------------------ *)
(* Cycle-heavy generator (SCC-condensation stress).

   The spec-driven generator above produces mostly acyclic flow; the
   apps built here maximize direct-edge cycles instead: long copy
   chains closed into rings, tight mutual-assignment 2-cycles, and
   cast statements bridging rings.  Casts stay *out* of the SCC
   condensation — a bridge between two rings is exactly the filtered
   inter-component edge shape the condensed CSR must keep, and a
   bridge landing back in its own ring is an intra-component cast
   edge the condensation is allowed to drop (the direct path already
   carries everything).  A few GUI operations read ring variables so
   operation scheduling interacts with shared component sets, and a
   listener whose handlers have empty bodies forces the solver to
   mint handler [this]/parameter node ids mid-solve. *)

let cyclic_app ?(name = "Cyclic") ~chains ~chain_len ~two_cycles ~bridges ~seed () =
  if chains < 1 || chain_len < 2 then
    invalid_arg "Gen.cyclic_app: chains >= 1 and chain_len >= 2 required";
  let rng = Util.Prng.create seed in
  let layout_name = name ^ "_main" in
  let root_id = "vid_root" and leaf_id = "vid_leaf" in
  let layout =
    Layouts.Layout.def ~name:layout_name
      (Layouts.Layout.node ~id:root_id
         ~children:[ Layouts.Layout.node ~id:leaf_id ~children:[] "Button" ]
         "LinearLayout")
  in
  let var c i = Printf.sprintf "ch%d_%d" c i in
  let rev_stmts = ref [] in
  let emit ss = rev_stmts := List.rev_append ss !rev_stmts in
  emit
    [
      B.layout_id "lid" layout_name;
      B.call Jir.Ast.this_var "setContentView" [ "lid" ];
      B.view_id "a0" root_id;
      B.call ~into:"v0" Jir.Ast.this_var "findViewById" [ "a0" ];
    ];
  (* Long alias chains closed into rings, each seeded from the root
     view; every ring collapses to one SCC under condensation. *)
  for c = 0 to chains - 1 do
    emit [ B.copy (var c 0) "v0" ];
    for i = 1 to chain_len - 1 do
      emit [ B.copy (var c i) (var c (i - 1)) ]
    done;
    emit [ B.copy (var c 0) (var c (chain_len - 1)) ]
  done;
  (* Tight mutual-assignment 2-cycles. *)
  for k = 0 to two_cycles - 1 do
    let a = Printf.sprintf "tw%d_a" k and b = Printf.sprintf "tw%d_b" k in
    emit [ B.copy a "v0"; B.copy b a; B.copy a b ]
  done;
  (* Cast edges from one ring into the next (or, with a single ring,
     back into itself); the class alternates between one the root view
     passes and one it does not, exercising the cast filter on both
     kept (inter-component) and dropped (intra-component) edges. *)
  for j = 0 to bridges - 1 do
    let src = j mod chains and tgt = (j + 1) mod chains in
    let cls = if Util.Prng.bool rng then "LinearLayout" else "Button" in
    emit [ B.cast (var tgt (1 mod chain_len)) cls (var src (chain_len / 2)) ]
  done;
  (* GUI operations reading ring variables: growth of a shared
     component set must reschedule them. *)
  emit
    [
      B.new_ "w0" "Button";
      B.call (var 0 (chain_len - 1)) "addView" [ "w0" ];
      B.view_id "a1" leaf_id;
      B.call ~into:"f0" (var 0 (chain_len / 2)) "findViewById" [ "a1" ];
      B.copy (var (chains - 1) 0) "f0";
    ];
  (* A listener with empty handler bodies: its [this] and parameters
     are only interned when handler flows are injected mid-solve. *)
  let iface = Option.get (Framework.Listeners.by_name "OnClickListener") in
  let listener_name = name ^ "_Listener" in
  let listener_cls =
    let handlers =
      List.map
        (fun (h : Framework.Listeners.handler) ->
          let params =
            List.init h.h_arity (fun i ->
                let ty = if h.h_view_param = Some i then B.tclass "View" else Jir.Ast.Tint in
                (Printf.sprintf "p%d" i, ty))
          in
          B.meth ~params h.h_name [])
        iface.Framework.Listeners.i_handlers
    in
    B.cls ~implements:[ iface.Framework.Listeners.i_name ] ~methods:handlers listener_name
  in
  emit
    [
      B.new_ "l0" listener_name;
      B.call (var 0 0) iface.Framework.Listeners.i_setter [ "l0" ];
    ];
  let activity =
    B.cls ~extends:"Activity"
      ~methods:[ B.meth "onCreate" (List.rev !rev_stmts) ]
      (name ^ "_Activity")
  in
  let program = B.program [ activity; listener_cls ] in
  let package = Layouts.Package.create () in
  Layouts.Package.add package layout;
  Framework.App.make ~name program package

let random_cyclic_app ?(name = "Cyclic") rng =
  let chains = Util.Prng.int_in rng 1 4 in
  let chain_len = Util.Prng.int_in rng 2 12 in
  let two_cycles = Util.Prng.int_in rng 0 4 in
  let bridges = Util.Prng.int_in rng 0 (2 * chains) in
  let seed = Int64.to_int (Util.Prng.next rng) land 0xFFFFFF in
  cyclic_app ~name ~chains ~chain_len ~two_cycles ~bridges ~seed ()

(* ------------------------------------------------------------------ *)
(* Alias-heavy generator (context-sensitivity precision stress).

   Many call sites dispatch DISTINCT views through a handful of shared
   small helper methods.  Context-insensitively each helper's parameter
   merges every caller's view, so the result flowing back to each call
   site carries the whole group's views; with inlining-based or
   context-keyed separation (Config.inline_depth > 0) each site keeps
   exactly its own.  The per-site results feed [setId] operations, so
   the merge shows up directly in Table 2's average receiver set size.
   Groups alternate between single-hop helpers (separated already at
   depth 1) and two-hop helpers whose inner call only separates at
   depth 2, grading the precision delta by depth. *)

let alias_heavy_app ?(name = "Alias") ~groups ~sites_per_group ~seed () =
  if groups < 1 || sites_per_group < 1 then
    invalid_arg "Gen.alias_heavy_app: groups >= 1 and sites_per_group >= 1 required";
  let rng = Util.Prng.create seed in
  let layout_name = name ^ "_main" in
  let root_id = "vid_root" in
  let child_ids = List.init 4 (Printf.sprintf "vid_%d") in
  let layout =
    Layouts.Layout.def ~name:layout_name
      (Layouts.Layout.node ~id:root_id
         ~children:(List.map (fun id -> Layouts.Layout.node ~id ~children:[] "Button") child_ids)
         "LinearLayout")
  in
  let rev_stmts = ref [] in
  let emit ss = rev_stmts := List.rev_append ss !rev_stmts in
  emit
    [
      B.layout_id "lid" layout_name;
      B.call Jir.Ast.this_var "setContentView" [ "lid" ];
      B.new_ "d0" "Deco";
      B.write Jir.Ast.this_var "f_deco" "d0";
    ];
  let fields = ref [ ("f_deco", B.tclass "Deco") ] in
  for k = 0 to groups - 1 do
    for s = 0 to sites_per_group - 1 do
      let w = Printf.sprintf "w%d_%d" k s in
      let d = Printf.sprintf "d%d_%d" k s in
      let r = Printf.sprintf "r%d_%d" k s in
      let x = Printf.sprintf "x%d_%d" k s in
      let field = Printf.sprintf "%s_f%d_%d" name k s in
      fields := (field, B.tclass "View") :: !fields;
      emit
        [
          (* distinct allocation site per call site: the helper's
             parameter is where the aliasing happens *)
          B.new_ w (Util.Prng.choose rng leaf_classes);
          B.read d Jir.Ast.this_var "f_deco";
          B.call ~into:r d (Printf.sprintf "deco_%d" k) [ w ];
          B.write Jir.Ast.this_var field r;
          B.view_id x (nth_cycle child_ids (k + s));
          B.call r "setId" [ x ];
        ]
    done
  done;
  let deco_meths =
    List.concat
      (List.init groups (fun k ->
           let mname = Printf.sprintf "deco_%d" k in
           let params = [ ("v", B.tclass "View") ] in
           let ret = B.tclass "View" in
           if k mod 2 = 0 then
             [ B.meth ~params ~ret mname [ B.copy "w" "v"; B.ret ~value:"w" () ] ]
           else
             [
               B.meth ~params ~ret mname
                 [
                   B.call ~into:"u" Jir.Ast.this_var (Printf.sprintf "inner_%d" k) [ "v" ];
                   B.ret ~value:"u" ();
                 ];
               B.meth ~params ~ret
                 (Printf.sprintf "inner_%d" k)
                 [ B.copy "w" "v"; B.ret ~value:"w" () ];
             ]))
  in
  let deco_cls = B.cls ~methods:deco_meths "Deco" in
  let activity =
    B.cls ~extends:"Activity" ~fields:(List.rev !fields)
      ~methods:[ B.meth "onCreate" (List.rev !rev_stmts) ]
      (name ^ "_Activity")
  in
  let program = B.program [ activity; deco_cls ] in
  let package = Layouts.Package.create () in
  Layouts.Package.add package layout;
  Framework.App.make ~name program package

let random_alias_heavy_app ?(name = "Alias") rng =
  let groups = Util.Prng.int_in rng 1 4 in
  let sites_per_group = Util.Prng.int_in rng 2 6 in
  let seed = Int64.to_int (Util.Prng.next rng) land 0xFFFFFF in
  alias_heavy_app ~name ~groups ~sites_per_group ~seed ()

(* ------------------------------------------------------------------ *)
(* Reflection-heavy generator (sound-mode stress).

   Resource ids arrive through reflection-style lookups the analysis
   cannot resolve ([R.layout.?] / [R.id.?]), so the sound engines must
   treat them as ⊤: [setContentView ⊤] inflates every layout of the
   package, [findViewById ⊤] matches every id in scope, and
   [setId (v, ⊤)] makes [v] answer every id query.  The dynamic oracle
   replays the app once per candidate resolution
   ([Interp.options.top_layout] / [top_view]); a sound static solution
   must cover all of those runs.  One activity stays fully concrete so
   the ⊤ taint is a strict subset of the solution — the precision
   table's pollution fraction depends on that. *)

let reflective_app ?(name = "Refl") ~layouts ~seed () =
  if layouts < 1 then invalid_arg "Gen.reflective_app: layouts >= 1 required";
  let rng = Util.Prng.create seed in
  let layout_name i = Printf.sprintf "%s_lyt%d" name i in
  let root_id i = Printf.sprintf "vid_root%d" i in
  let btn_id i = Printf.sprintf "vid_btn%d" i in
  let defs =
    List.init layouts (fun i ->
        Layouts.Layout.def ~name:(layout_name i)
          (Layouts.Layout.node ~id:(root_id i)
             ~children:[ Layouts.Layout.node ~id:(btn_id i) ~children:[] "Button" ]
             "LinearLayout"))
  in
  let iface = Option.get (Framework.Listeners.by_name "OnClickListener") in
  let listener_name = name ^ "_Listener" in
  let listener_cls =
    let handlers =
      List.map
        (fun (h : Framework.Listeners.handler) ->
          let params =
            List.init h.h_arity (fun i ->
                let ty = if h.h_view_param = Some i then B.tclass "View" else Jir.Ast.Tint in
                (Printf.sprintf "p%d" i, ty))
          in
          B.meth ~params h.h_name [])
        iface.Framework.Listeners.i_handlers
    in
    B.cls ~implements:[ iface.Framework.Listeners.i_name ] ~methods:handlers listener_name
  in
  (* the reflective activity: an unresolvable content layout, an
     unresolvable find, and an unresolvable setId *)
  let refl_body =
    [
      B.layout_top "lid";
      B.call Jir.Ast.this_var "setContentView" [ "lid" ];
      B.view_id_top "q";
      B.call ~into:"v" Jir.Ast.this_var "findViewById" [ "q" ];
      (* cast filtering still applies to ⊤-matched values *)
      B.cast "b" "Button" "v";
      B.new_ "w" (Util.Prng.choose rng leaf_classes);
      B.view_id_top "sid";
      B.call "w" "setId" [ "sid" ];
      B.call "v" "addView" [ "w" ];
      (* a concrete query in ⊤ scope: must still see the sentinel
         carrier [w] and every candidate the ⊤ inflation brought in *)
      B.view_id "a0" (btn_id 0);
      B.call ~into:"f" Jir.Ast.this_var "findViewById" [ "a0" ];
      B.new_ "l0" listener_name;
      B.call "f" iface.Framework.Listeners.i_setter [ "l0" ];
    ]
  in
  let refl_activity =
    B.cls ~extends:"Activity" ~methods:[ B.meth "onCreate" refl_body ] (name ^ "_Activity")
  in
  (* a fully concrete activity over layout 0: its solution sets must
     come out untainted *)
  let concrete_body =
    [
      B.layout_id "clid" (layout_name 0);
      B.call Jir.Ast.this_var "setContentView" [ "clid" ];
      B.view_id "ca0" (btn_id 0);
      B.call ~into:"x" Jir.Ast.this_var "findViewById" [ "ca0" ];
    ]
  in
  let concrete_activity =
    B.cls ~extends:"Activity" ~methods:[ B.meth "onCreate" concrete_body ] (name ^ "_Concrete")
  in
  let program = B.program [ refl_activity; concrete_activity; listener_cls ] in
  let package = Layouts.Package.create () in
  List.iter (Layouts.Package.add package) defs;
  Framework.App.make ~name program package

let random_reflective_app ?(name = "Refl") rng =
  let layouts = Util.Prng.int_in rng 1 4 in
  let seed = Int64.to_int (Util.Prng.next rng) land 0xFFFFFF in
  reflective_app ~name ~layouts ~seed ()

(* ------------------------------------------------------------------ *)
(* Streaming spec source.

   [stream_spec ~seed i] is a pure function of (seed, i): each index
   gets its own PRNG, so a streaming driver and a batch driver handed
   the same indices build byte-identical apps regardless of pull
   order, and a stream can be replayed from any offset. *)

let stream_spec ~seed i =
  if i < 0 then invalid_arg "Gen.stream_spec: negative index";
  let rng = Util.Prng.create ((seed * 0x9E3779B9) lxor (i * 0x85EBCA6B) lxor 0x5BD1E995) in
  random_spec ~name:(Printf.sprintf "Stream_%d_%d" seed i) rng
