(** Deterministic synthetic-application generator.

    Given a {!Spec.t}, emits a complete {!Framework.App.t}: XML-style
    layouts, activity classes whose lifecycle methods exercise the
    Android operations (inflation, find-view, add-view, set-id,
    set-listener), listener classes with real handlers, a shared
    view-helper class used to reproduce context-insensitivity receiver
    merging, and padding helper classes to reach the class/method
    totals.  Generation is a pure function of the spec (including its
    seed).

    Structural guarantees (relied on by tests):
    - the number of operation statements of each kind equals the
      spec's quota exactly;
    - every activity's [onCreate] starts with [setContentView] of its
      own layout, whose root carries a view id (so the generated app
      is actually runnable by the dynamic semantics);
    - every view-id name in the pool is referenced at least once, so
      the resource table has exactly [sp_view_ids] entries. *)

val generate : Spec.t -> Framework.App.t
(** @raise Invalid_argument when {!Spec.validate} rejects the spec. *)

val random_spec : ?name:string -> Util.Prng.t -> Spec.t
(** A small well-formed random spec, for property-based testing. *)

val cyclic_app :
  ?name:string ->
  chains:int ->
  chain_len:int ->
  two_cycles:int ->
  bridges:int ->
  seed:int ->
  unit ->
  Framework.App.t
(** Cycle-heavy app for stressing SCC condensation of the flow graph:
    [chains] copy chains of length [chain_len] each closed into a
    ring, [two_cycles] tight mutual-assignment pairs, and [bridges]
    cast statements from one ring into the next (alternating between
    filter-passing and filter-blocking classes, drawn from [seed]).
    All rings are seeded from the activity's root view, a couple of
    GUI operations read ring variables, and a listener with empty
    handler bodies forces mid-solve node interning.

    @raise Invalid_argument unless [chains >= 1] and [chain_len >= 2]. *)

val random_cyclic_app : ?name:string -> Util.Prng.t -> Framework.App.t
(** Random parameters for {!cyclic_app}, for property-based testing. *)

val alias_heavy_app :
  ?name:string -> groups:int -> sites_per_group:int -> seed:int -> unit -> Framework.App.t
(** Alias-heavy app for making context sensitivity's precision delta
    visible: [groups] shared helper methods, each called from
    [sites_per_group] sites with a distinct view allocation.  Without
    inlining every helper parameter merges its whole group, so each
    site's [setId] receiver carries [sites_per_group] views; with
    [Config.inline_depth > 0] each site keeps one.  Even-numbered
    groups use single-hop helpers (separated at depth 1); odd groups
    route through an inner helper call that only separates at depth 2.

    @raise Invalid_argument unless [groups >= 1] and
    [sites_per_group >= 1]. *)

val random_alias_heavy_app : ?name:string -> Util.Prng.t -> Framework.App.t
(** Random parameters for {!alias_heavy_app}, for property-based
    testing. *)

val reflective_app : ?name:string -> layouts:int -> seed:int -> unit -> Framework.App.t
(** Reflection-heavy app for the sound-mode (⊤ marker) battery: the
    content layout, a find-view id and a set-id id all arrive through
    unresolvable [R.layout.?] / [R.id.?] lookups, over [layouts]
    package layouts, plus one fully concrete activity whose solution
    sets must stay untainted.  The dynamic oracle replays it once per
    candidate resolution ({!Dynamic.Interp.options} [top_layout] /
    [top_view]); sound mode must cover every run.

    @raise Invalid_argument unless [layouts >= 1]. *)

val random_reflective_app : ?name:string -> Util.Prng.t -> Framework.App.t
(** Random parameters for {!reflective_app}, for property-based
    testing. *)

val stream_spec : seed:int -> int -> Spec.t
(** The [i]-th spec of the infinite generated stream with the given
    seed — a pure function of [(seed, i)] (each index owns its PRNG),
    so streaming and batch drivers handed the same indices build
    byte-identical apps regardless of pull order.
    @raise Invalid_argument on a negative index. *)
