(* Patch-style edits over corpus apps: the JSON vocabulary the
   incremental tests and the CLI's patched-app checks share.  Edits are
   source-level (statements and methods), so an applied patch exercises
   the whole incremental pipeline: re-extraction, shape diffing, warm
   re-solve. *)

type edit =
  | Rename_view_id of { from_ : string; to_ : string }
  | Remove_stmt of { cls : string; meth : string; arity : int; index : int }
  | Add_stmt of { cls : string; meth : string; arity : int; stmt : Jir.Ast.stmt }
  | Add_method of { cls : string; name : string; params : string list; body : Jir.Ast.stmt list }

type t = edit list

(* ------------------------------------------------------------------ *)
(* JSON decoding *)

let ( let* ) = Result.bind

let str = function Util.Json.String s -> Ok s | j -> Error (Util.Json.to_string j ^ ": not a string")

let int_ = function Util.Json.Int n -> Ok n | j -> Error (Util.Json.to_string j ^ ": not an int")

let field name j =
  match Util.Json.member name j with
  | Some v -> Ok v
  | None -> Error ("missing field " ^ name)

let str_field name j =
  let* v = field name j in
  str v

let int_field name j =
  let* v = field name j in
  int_ v

let opt_var = function Util.Json.Null -> Ok None | j -> Result.map Option.some (str j)

let rec map_m f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_m f rest in
      Ok (y :: ys)

(* Mini statement encoding: {"new": ["x", "C"]}, {"copy": ["x", "y"]},
   {"read_view_id": ["x", "name"]}, {"read_layout_id": ["x", "name"]},
   {"read_view_top": "x"}, {"read_layout_top": "x"},
   {"const_int": ["x", 7]}, {"const_null": "x"},
   {"read_field": ["x", "y", "f"]}, {"write_field": ["x", "f", "y"]},
   {"cast": ["x", "C", "y"]},
   {"invoke": [lhs-or-null, "recv", "meth", ["a1", ...]]},
   {"return": var-or-null}. *)
let stmt_of_json j =
  match j with
  | Util.Json.Obj [ (tag, payload) ] -> (
      let two f =
        match payload with
        | Util.Json.List [ a; b ] ->
            let* a = str a in
            let* b = str b in
            Ok (f a b)
        | _ -> Error (tag ^ ": expected two strings")
      in
      let three f =
        match payload with
        | Util.Json.List [ a; b; c ] ->
            let* a = str a in
            let* b = str b in
            let* c = str c in
            Ok (f a b c)
        | _ -> Error (tag ^ ": expected three strings")
      in
      match tag with
      | "new" -> two (fun x c -> Jir.Ast.New (x, c))
      | "copy" -> two (fun x y -> Jir.Ast.Copy (x, y))
      | "read_view_id" -> two (fun x n -> Jir.Ast.Read_view_id (x, n))
      | "read_layout_id" -> two (fun x n -> Jir.Ast.Read_layout_id (x, n))
      | "read_view_top" ->
          let* x = str payload in
          Ok (Jir.Ast.Read_view_top x)
      | "read_layout_top" ->
          let* x = str payload in
          Ok (Jir.Ast.Read_layout_top x)
      | "read_field" -> three (fun x y f -> Jir.Ast.Read_field (x, y, f))
      | "write_field" -> three (fun x f y -> Jir.Ast.Write_field (x, f, y))
      | "cast" -> three (fun x c y -> Jir.Ast.Cast (x, c, y))
      | "const_int" -> (
          match payload with
          | Util.Json.List [ a; b ] ->
              let* a = str a in
              let* b = int_ b in
              Ok (Jir.Ast.Const_int (a, b))
          | _ -> Error "const_int: expected [var, int]")
      | "const_null" ->
          let* x = str payload in
          Ok (Jir.Ast.Const_null x)
      | "invoke" -> (
          match payload with
          | Util.Json.List [ lhs; recv; name; Util.Json.List args ] ->
              let* lhs = opt_var lhs in
              let* recv = str recv in
              let* name = str name in
              let* args = map_m str args in
              Ok (Jir.Ast.Invoke (lhs, recv, name, args))
          | _ -> Error "invoke: expected [lhs, recv, name, [args]]")
      | "return" ->
          let* x = opt_var payload in
          Ok (Jir.Ast.Return x)
      | _ -> Error ("unknown statement tag " ^ tag))
  | _ -> Error "statement: expected a single-field object"

let edit_of_json j =
  let* tag = str_field "edit" j in
  match tag with
  | "rename_view_id" ->
      let* from_ = str_field "from" j in
      let* to_ = str_field "to" j in
      Ok (Rename_view_id { from_; to_ })
  | "remove_stmt" ->
      let* cls = str_field "cls" j in
      let* meth = str_field "meth" j in
      let* arity = int_field "arity" j in
      let* index = int_field "index" j in
      Ok (Remove_stmt { cls; meth; arity; index })
  | "add_stmt" ->
      let* cls = str_field "cls" j in
      let* meth = str_field "meth" j in
      let* arity = int_field "arity" j in
      let* sj = field "stmt" j in
      let* stmt = stmt_of_json sj in
      Ok (Add_stmt { cls; meth; arity; stmt })
  | "add_method" ->
      let* cls = str_field "cls" j in
      let* name = str_field "name" j in
      let* pj = field "params" j in
      let* params =
        match pj with Util.Json.List l -> map_m str l | _ -> Error "params: expected a list"
      in
      let* bj = field "body" j in
      let* body =
        match bj with Util.Json.List l -> map_m stmt_of_json l | _ -> Error "body: expected a list"
      in
      Ok (Add_method { cls; name; params; body })
  | _ -> Error ("unknown edit tag " ^ tag)

let of_json j =
  match j with
  | Util.Json.List l -> map_m edit_of_json l
  | _ -> Error "patch: expected a list of edits"

let of_string s =
  let* j = Util.Json.of_string s in
  of_json j

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> of_string contents

(* ------------------------------------------------------------------ *)
(* Application *)

let map_meth_body f (m : Jir.Ast.meth) = { m with Jir.Ast.m_body = f m.Jir.Ast.m_body }

let update_meth ~cls ~meth ~arity f (program : Jir.Ast.program) =
  let hit = ref false in
  let classes =
    List.map
      (fun (c : Jir.Ast.cls) ->
        if c.c_name <> cls then c
        else
          {
            c with
            Jir.Ast.c_methods =
              List.map
                (fun (m : Jir.Ast.meth) ->
                  if m.m_name = meth && List.length m.m_params = arity then begin
                    hit := true;
                    f m
                  end
                  else m)
                c.c_methods;
          })
      program.Jir.Ast.p_classes
  in
  if !hit then Ok { Jir.Ast.p_classes = classes }
  else Error (Printf.sprintf "no method %s.%s/%d" cls meth arity)

let apply_edit program = function
  | Rename_view_id { from_; to_ } ->
      let rename = function
        | Jir.Ast.Read_view_id (x, n) when n = from_ -> Jir.Ast.Read_view_id (x, to_)
        | s -> s
      in
      Ok
        {
          Jir.Ast.p_classes =
            List.map
              (fun (c : Jir.Ast.cls) ->
                {
                  c with
                  Jir.Ast.c_methods =
                    List.map (map_meth_body (List.map rename)) c.c_methods;
                })
              program.Jir.Ast.p_classes;
        }
  | Remove_stmt { cls; meth; arity; index } ->
      (* NOTE: removal shifts the statement indices of everything after
         it in the same method, so every later site changes name; the
         diff soundly treats those ops as removed + added. *)
      update_meth ~cls ~meth ~arity
        (map_meth_body (fun body -> List.filteri (fun i _ -> i <> index) body))
        program
  | Add_stmt { cls; meth; arity; stmt } ->
      update_meth ~cls ~meth ~arity (map_meth_body (fun body -> body @ [ stmt ])) program
  | Add_method { cls; name; params; body } ->
      let m =
        {
          Jir.Ast.m_name = name;
          m_params = List.map (fun p -> (p, Jir.Ast.Tclass "java.lang.Object")) params;
          m_ret = None;
          m_locals = [];
          m_body = body;
        }
      in
      let hit = ref false in
      let classes =
        List.map
          (fun (c : Jir.Ast.cls) ->
            if c.c_name <> cls then c
            else begin
              hit := true;
              { c with Jir.Ast.c_methods = c.c_methods @ [ m ] }
            end)
          program.Jir.Ast.p_classes
      in
      if !hit then Ok { Jir.Ast.p_classes = classes } else Error ("no class " ^ cls)

let apply (app : Framework.App.t) patch =
  let* program = List.fold_left (fun acc e -> Result.bind acc (fun p -> apply_edit p e)) (Ok app.Framework.App.program) patch in
  (* The package is shared physically: an unchanged layout side keeps
     the warm guard's pointer-equality fast path. *)
  Ok (Framework.App.make ~name:app.Framework.App.name program app.Framework.App.package)
