(** Classification of Android API calls into the semantic operation
    categories of Section 3 of the paper.

    A call in application code is an {e operation} only when it does
    not resolve to an application method (application definitions
    shadow the platform: Figure 1's [ConsoleActivity.findViewById] is
    an ordinary call).  That resolution happens in the analysis; this
    module only answers "if this call reaches the platform, what
    operation is it?". *)

type scope =
  | Descendants  (** e.g. [findFocus()] — any transitive child *)
  | Children  (** e.g. [getCurrentView()], [getChildAt(i)] — direct children only (the refinement the paper's implementation employs) *)

type kind =
  | Inflate  (** [LayoutInflater.inflate(id, ...)]: rule INFLATE1 — returns the fresh root *)
  | Set_content
      (** [Activity/Dialog.setContentView(x)]: with a layout id this is
          rule INFLATE2; with a view it is rule ADDVIEW1.  The solver
          discriminates by what flows to the argument. *)
  | Add_view  (** [ViewGroup.addView(child, ...)]: rule ADDVIEW2 *)
  | Set_id  (** [View.setId(id)]: rule SETID *)
  | Set_listener of Listeners.iface  (** rule SETLISTENER *)
  | Find_view
      (** [findViewById(id)] on a view (FINDVIEW1) or an activity/dialog
          (FINDVIEW2); discriminated by what flows to the receiver. *)
  | Find_one of scope  (** rule FINDVIEW3 *)
  | Get_parent  (** [View.getParent()] — extension beyond the paper *)
  | Start_activity
      (** [Context.startActivity(target)] — extension supporting the
          inter-component control-flow analyses of Section 6.  ALite
          abstracts intents as target-activity tokens: the argument's
          abstract objects of activity classes name the launched
          activities. *)
  | Pass_through
      (** [getFragmentManager()]/[beginTransaction()]: helper accessors
          whose result stands for their receiver.  The solver copies
          the receiver's values to the output, so the activity identity
          travels through the fragment-transaction chain. *)
  | Fragment_add
      (** [FragmentTransaction.add(containerId, fragment)] /
          [replace(...)] — fragment extension: triggers the fragment's
          [onCreateView] callback and attaches its returned views under
          the views carrying the container id in the (receiver)
          activity's hierarchy. *)
  | Menu_add
      (** [Menu.add(title)] / [Menu.add(group, itemId, order, title)] —
          options-menu extension: mints a fresh MenuItem abstraction per
          site, attaches it under the receiver menu, and feeds the
          owning activity's [onOptionsItemSelected] callback. *)
  | Set_adapter
      (** [AdapterView.setAdapter(a)] — adapter extension: the
          adapter's [getView] callback runs with the list view as its
          parent parameter, and the views it returns become children of
          the list view (the item views item-click listeners then
          receive). *)

val compare_kind : kind -> kind -> int
(** Explicit ordering (listener interfaces compare by name), so
    op-site keyed maps need no polymorphic compare. *)

val pp_kind : kind Fmt.t

val kind_label : kind -> string
(** Short label: ["Inflate"], ["FindView"], ["AddView"], ["SetId"],
    ["SetListener"], ["SetContent"], ["FindOne"], ["GetParent"]. *)

val classify : name:string -> arity:int -> kind option
(** Classify by method name and arity alone; receiver/argument kinds
    are resolved during constraint solving. *)

val return_ty : recv_ty:string option -> string -> int -> Jir.Ast.ty option
(** Declared return types of modeled platform APIs, for {!Jir.Typing}.
    Includes non-operation helpers such as
    [Activity.getLayoutInflater()]. *)

val platform_decls : Jir.Hierarchy.decl list
(** Everything the platform model declares: view classes
    ({!Views.decls}) plus listener interfaces ({!Listeners.decls}). *)

val hierarchy : Jir.Ast.program -> Jir.Hierarchy.t
(** Hierarchy of a program against the full platform model. *)
