type scope = Descendants | Children

type kind =
  | Inflate
  | Set_content
  | Add_view
  | Set_id
  | Set_listener of Listeners.iface
  | Find_view
  | Find_one of scope
  | Get_parent
  | Start_activity
  | Pass_through
  | Fragment_add
  | Menu_add
  | Set_adapter

let kind_label = function
  | Inflate -> "Inflate"
  | Set_content -> "SetContent"
  | Add_view -> "AddView"
  | Set_id -> "SetId"
  | Set_listener _ -> "SetListener"
  | Find_view -> "FindView"
  | Find_one _ -> "FindOne"
  | Get_parent -> "GetParent"
  | Start_activity -> "StartActivity"
  | Pass_through -> "PassThrough"
  | Fragment_add -> "FragmentAdd"
  | Menu_add -> "MenuAdd"
  | Set_adapter -> "SetAdapter"

(* Explicit ordering so op-site keyed maps need no polymorphic
   compare.  Interfaces are registry singletons identified by name. *)
let compare_kind a b =
  let tag = function
    | Inflate -> 0
    | Set_content -> 1
    | Add_view -> 2
    | Set_id -> 3
    | Set_listener _ -> 4
    | Find_view -> 5
    | Find_one Descendants -> 6
    | Find_one Children -> 7
    | Get_parent -> 8
    | Start_activity -> 9
    | Pass_through -> 10
    | Fragment_add -> 11
    | Menu_add -> 12
    | Set_adapter -> 13
  in
  match (a, b) with
  | Set_listener x, Set_listener y -> String.compare x.Listeners.i_name y.Listeners.i_name
  | a, b -> Int.compare (tag a) (tag b)

let pp_kind ppf = function
  | Set_listener i -> Fmt.pf ppf "SetListener(%s)" i.Listeners.i_name
  | Find_one Descendants -> Fmt.string ppf "FindOne(descendants)"
  | Find_one Children -> Fmt.string ppf "FindOne(children)"
  | k -> Fmt.string ppf (kind_label k)

let classify ~name ~arity =
  match (name, arity) with
  | "inflate", (1 | 2 | 3) -> Some Inflate
  | "setContentView", 1 -> Some Set_content
  | "addView", (1 | 2 | 3) -> Some Add_view
  | "setId", 1 -> Some Set_id
  | "findViewById", 1 -> Some Find_view
  | "findFocus", 0 -> Some (Find_one Descendants)
  | "getCurrentView", 0 -> Some (Find_one Children)
  | "getCurrentFocus", 0 -> Some (Find_one Descendants)
  | "getChildAt", 1 -> Some (Find_one Children)
  | "getFocusedChild", 0 -> Some (Find_one Children)
  | "getSelectedView", 0 -> Some (Find_one Children)
  | "getParent", 0 -> Some Get_parent
  | ("startActivity" | "startActivityForResult"), 1 -> Some Start_activity
  | ("getFragmentManager" | "getSupportFragmentManager" | "beginTransaction"), 0 -> Some Pass_through
  | ("add" | "replace"), 2 -> Some Fragment_add
  | "add", (1 | 4) -> Some Menu_add
  | "setAdapter", 1 -> Some Set_adapter
  | "findItem", 1 -> Some Find_view
  | _ -> (
      match Listeners.by_setter name with
      | Some iface when arity = 1 -> Some (Set_listener iface)
      | Some _ | None -> None)

let return_ty ~recv_ty:_ name arity =
  match (name, arity) with
  | "inflate", (1 | 2 | 3) -> Some (Jir.Ast.Tclass "View")
  | "findViewById", 1 -> Some (Jir.Ast.Tclass "View")
  | "findFocus", 0 | "getCurrentFocus", 0 -> Some (Jir.Ast.Tclass "View")
  | "getCurrentView", 0 | "getChildAt", 1 | "getFocusedChild", 0 | "getSelectedView", 0 ->
      Some (Jir.Ast.Tclass "View")
  | "getParent", 0 -> Some (Jir.Ast.Tclass "ViewGroup")
  | "getLayoutInflater", 0 | "getMenuInflater", 0 -> Some (Jir.Ast.Tclass "LayoutInflater")
  | ("getFragmentManager" | "getSupportFragmentManager"), 0 ->
      Some (Jir.Ast.Tclass "FragmentManager")
  | "beginTransaction", 0 -> Some (Jir.Ast.Tclass "FragmentTransaction")
  | "add", (1 | 4) | "findItem", 1 -> Some (Jir.Ast.Tclass "MenuItem")
  | "getContext", 0 -> Some (Jir.Ast.Tclass "Context")
  | "getId", 0 -> Some Jir.Ast.Tint
  | _ -> None

let platform_decls = Views.decls @ Listeners.decls

let hierarchy program = Jir.Hierarchy.create ~platform:platform_decls program
