(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (Sections 5; see DESIGN.md for the index) and then
   times the analysis phases with Bechamel — one Test.make per
   table/figure, plus ablation benches for the design knobs. *)

open Bechamel
open Toolkit

let app_named name = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name name))

(* The small patch the incremental benches re-solve: one added
   allocation in an activity's onCreate.  Flow/seed-only — a New
   statement contributes a fresh node, edge and seed but no
   relation-writing op, so the warm restart invalidates only the new
   component. *)
let xbmc_small_patch app =
  let patch =
    [
      Corpus.Patch.Add_stmt
        {
          cls = "Activity_0";
          meth = "onCreate";
          arity = 0;
          stmt = Jir.Ast.New ("inc_bench_tmp", "android.widget.Button");
        };
    ]
  in
  match Corpus.Patch.apply app patch with
  | Ok patched -> patched
  | Error msg -> failwith ("incremental bench patch failed: " ^ msg)

(* A deterministic mid-list variable for the point-query benches: far
   enough from the seeds that the backward walk has real work to do. *)
let query_probe (r : Gator.Analysis.t) =
  let locations = Gator.Graph.locations r.Gator.Analysis.graph in
  List.nth locations (List.length locations / 2)

(* ------------------------------------------------------------------ *)
(* Reproduction output: the rows/series the paper reports. *)

let print_reproduction () =
  let runs = Report.Experiments.run_corpus () in
  print_endline (Report.Experiments.table1 runs);
  print_newline ();
  print_endline (Report.Experiments.table2 runs);
  print_newline ();
  print_endline (Report.Experiments.solver_stats runs);
  print_newline ();
  print_endline (Report.Experiments.case_study ());
  print_newline ();
  print_endline (Report.Experiments.ablations ());
  print_newline ();
  print_endline (Report.Experiments.context_precision ());
  print_newline ();
  print_endline (Report.Experiments.scalability ());
  print_newline ();
  (* figures: print the fact checklist, not the full dot graph *)
  let figures = Report.Experiments.figures () in
  (match String.index_opt figures '\n' with
  | Some _ ->
      String.split_on_char '\n' figures
      |> List.filter (fun line ->
             String.length line > 2 && (String.sub line 0 3 = "Fig" || String.sub line 2 1 = "["))
      |> List.iter print_endline
  | None -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks. *)

let config_bench name config app =
  Test.make ~name (Staged.stage (fun () -> Gator.Analysis.analyze ~config app))

let tests () =
  (* Pre-generate apps so the benches time analysis, not generation. *)
  let connectbot = Corpus.Connectbot.app () in
  let apv = app_named "APV" in
  let mileage = app_named "Mileage" in
  let xbmc = app_named "XBMC" in
  let astrid = app_named "Astrid" in
  let spec_notepad = Option.get (Corpus.Apps.by_name "NotePad") in
  [
    (* Table 1: population measurement = generation + extraction + metrics *)
    Test.make ~name:"table1/generate+extract(NotePad)"
      (Staged.stage (fun () ->
           let app = Corpus.Gen.generate spec_notepad in
           Gator.Extract.run Gator.Config.default app));
    Test.make ~name:"table1/metrics(APV)"
      (Staged.stage
         (let r = Gator.Analysis.analyze apv in
          fun () -> Gator.Metrics.table1 r));
    (* Table 2: full analysis per representative app *)
    Test.make ~name:"table2/analyze(APV)" (Staged.stage (fun () -> Gator.Analysis.analyze apv));
    Test.make ~name:"table2/analyze(Mileage)"
      (Staged.stage (fun () -> Gator.Analysis.analyze mileage));
    Test.make ~name:"table2/analyze(XBMC)" (Staged.stage (fun () -> Gator.Analysis.analyze xbmc));
    Test.make ~name:"table2/analyze(Astrid)"
      (Staged.stage (fun () -> Gator.Analysis.analyze astrid));
    (* Case study: dynamic oracle execution + coverage check *)
    Test.make ~name:"casestudy/dynamic-oracle(APV)"
      (Staged.stage
         (let r = Gator.Analysis.analyze apv in
          fun () -> Dynamic.Oracle.check r (Dynamic.Interp.run apv)));
    (* Figures: the running example end to end *)
    Test.make ~name:"figures/connectbot-analysis"
      (Staged.stage (fun () -> Gator.Analysis.analyze connectbot));
    Test.make ~name:"figures/connectbot-dot"
      (Staged.stage
         (let r = Gator.Analysis.analyze connectbot in
          fun () -> Fmt.str "%a" Gator.Graph.pp_dot r.Gator.Analysis.graph));
    (* Solver engines head to head on the largest app: same extracted
       graph, naive re-iteration vs delta scheduling *)
    Test.make ~name:"analysis/naive(XBMC)"
      (Staged.stage
         (let graph = Gator.Extract.run Gator.Config.default xbmc in
          let config = { Gator.Config.default with solver = Gator.Config.Naive } in
          fun () -> Gator.Solve.run config xbmc graph));
    Test.make ~name:"analysis/delta(XBMC)"
      (Staged.stage
         (let graph = Gator.Extract.run Gator.Config.default xbmc in
          let config = { Gator.Config.default with solver = Gator.Config.Delta } in
          fun () -> Gator.Solve.run config xbmc graph));
    Test.make ~name:"analysis/interned(XBMC)"
      (Staged.stage
         (let graph = Gator.Extract.run Gator.Config.default xbmc in
          let config = { Gator.Config.default with solver = Gator.Config.Interned } in
          fun () -> Gator.Solve.run config xbmc graph));
    (* The interned engine solves over the SCC-condensed flow CSR;
       this row tracks the condensed path under its own name for
       regression greps.  XBMC's flow is nearly acyclic (every
       component a singleton), so it should sit at par with the row
       above — the cycle-heavy win is measured in the head-to-head. *)
    Test.make ~name:"analysis/scc(XBMC)"
      (Staged.stage
         (let graph = Gator.Extract.run Gator.Config.default xbmc in
          let config = { Gator.Config.default with solver = Gator.Config.Interned } in
          fun () -> Gator.Solve.run config xbmc graph));
    (* Sound mode: unknown-id markers and the taint post-pass.  XBMC
       is ⊤-free — its share of the row prices the [has_top] guard on
       the unchanged path — while the reflection-heavy app makes every
       marker rule and the taint lift actually fire. *)
    Test.make ~name:"analysis/reflection(XBMC+ReflHeavy)"
      (Staged.stage
         (let refl = Corpus.Gen.reflective_app ~name:"ReflHeavy" ~layouts:3 ~seed:2014 () in
          let xbmc_graph = Gator.Extract.run Gator.Config.default xbmc in
          let refl_graph = Gator.Extract.run Gator.Config.default refl in
          fun () ->
            ignore (Gator.Solve.run Gator.Config.default xbmc xbmc_graph);
            Gator.Solve.run Gator.Config.default refl refl_graph));
    (* Context sensitivity head to head, solve-only like the engine
       rows above: both graphs denote the same solution, but only the
       keyed extraction certifies which ids are context clones, so
       only its solve can run clone-chain substitution before
       condensing.  Read against analysis/interned(XBMC) for the
       solve-time cost of depth 2; the full extract+solve cost is
       tracked by ablation/context-sensitive-2 below. *)
    Test.make ~name:"analysis/cs2-interned(XBMC)"
      (Staged.stage
         (let config = { Gator.Config.default with inline_depth = 2 } in
          let graph = Gator.Extract.run config xbmc in
          fun () -> Gator.Solve.run config xbmc graph));
    Test.make ~name:"analysis/cs2-inlined(XBMC)"
      (Staged.stage
         (let config =
            { Gator.Config.default with inline_depth = 2; ctx_keyed = false }
          in
          let graph = Gator.Extract.run config xbmc in
          fun () -> Gator.Solve.run config xbmc graph));
    (* Incremental re-analysis: cold solve-and-capture vs warm re-solve
       of a one-statement patch over the same interner.  The patch adds
       a single allocation (flow/seed-only — no relation-writing op),
       so the warm path re-solves just the fresh component and restores
       everything else by aliasing. *)
    Test.make ~name:"analysis/incremental-cold(XBMC)"
      (Staged.stage
         (let graph = Gator.Extract.run Gator.Config.default xbmc in
          fun () -> Gator.Solve.run_solved Gator.Config.default xbmc graph));
    Test.make ~name:"analysis/incremental-warm-small-patch(XBMC)"
      (Staged.stage
         (let _, prev = Gator.Incremental.analyze_solved xbmc in
          let patched = xbmc_small_patch xbmc in
          let graph =
            Gator.Extract.run ~interner:(Gator.Solve.solved_interner prev) Gator.Config.default
              patched
          in
          let new_shape = Gator.Solve.shape_of_graph graph in
          let edits =
            Gator.Diff.edit_script ~old_:(Gator.Solve.shape_of_solved prev) ~new_:new_shape
          in
          fun () ->
            Gator.Solve.run_incremental ~prev ~edits ~new_shape Gator.Config.default patched
              graph));
    (* Demand-driven point query: reverse-index build + one backward
       walk on an already-solved XBMC — the daemon's cold-query cost,
       to be read against the full-solve rows above (the forward way
       to answer the same question). *)
    Test.make ~name:"query/backward-vs-forward(XBMC)"
      (Staged.stage
         (let r, solved = Gator.Incremental.analyze_solved xbmc in
          let hierarchy = xbmc.Framework.App.hierarchy in
          let probe = query_probe r in
          fun () ->
            let q = Gator.Query.create ~hierarchy solved in
            Gator.Query.points_to q probe));
    (* The daemon's steady state: resident query engine, memo warm. *)
    Test.make ~name:"query/warm-point(XBMC)"
      (Staged.stage
         (let r, solved = Gator.Incremental.analyze_solved xbmc in
          let hierarchy = xbmc.Framework.App.hierarchy in
          let probe = query_probe r in
          let q = Gator.Query.create ~hierarchy solved in
          let () = ignore (Gator.Query.points_to q probe) in
          fun () -> Gator.Query.points_to q probe));
    (* Ablations: each knob on the XBMC outlier *)
    config_bench "ablation/default(XBMC)" Gator.Config.default xbmc;
    config_bench "ablation/no-cast-filter(XBMC)"
      { Gator.Config.default with cast_filtering = false }
      xbmc;
    config_bench "ablation/no-findone-refinement(XBMC)"
      { Gator.Config.default with findone_refinement = false }
      xbmc;
    config_bench "ablation/baseline(XBMC)" Gator.Config.baseline xbmc;
    (* pinned to the extraction-time inlining path so the row keeps
       measuring the same work across commits; the context-keyed
       default is tracked by analysis/cs2-interned above *)
    config_bench "ablation/context-sensitive-2(XBMC)"
      { Gator.Config.default with inline_depth = 2; ctx_keyed = false }
      xbmc;
  ]

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel full-corpus head-to-head: the same 20-app
   batch (generation + analysis + metrics per app) on the exact
   sequential path and on the domain pool, with a byte-identity check
   on the regenerated tables. *)

let corpus_head_to_head () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_seconds = time (fun () -> Report.Experiments.run_corpus ~jobs:1 ()) in
  let entries =
    List.map
      (fun jobs ->
        let par, par_seconds = time (fun () -> Report.Experiments.run_corpus ~jobs ()) in
        let identical =
          Report.Experiments.table1 par = Report.Experiments.table1 seq
          && Report.Experiments.table2 ~timings:false par
             = Report.Experiments.table2 ~timings:false seq
          && Report.Experiments.solver_stats par = Report.Experiments.solver_stats seq
        in
        (jobs, par_seconds, identical))
      [ 2; 4 ]
  in
  Printf.printf "Full-corpus batch head-to-head (20 apps; %d core(s) recommended):\n"
    (Domain.recommended_domain_count ());
  Printf.printf "  jobs=1  %6.3f s\n" seq_seconds;
  List.iter
    (fun (jobs, seconds, identical) ->
      Printf.printf "  jobs=%d  %6.3f s  %.2fx  tables %s\n" jobs seconds (seq_seconds /. seconds)
        (if identical then "identical" else "DIFFER"))
    entries;
  print_newline ();
  (1, seq_seconds, true) :: entries

(* ------------------------------------------------------------------ *)
(* Solver-engine head-to-head over the whole corpus: every app is
   generated and extracted once up front, then each engine re-solves
   all 20 graphs — so the comparison isolates the fixpoint engines
   from parsing, extraction, and metrics. *)

let time_engines prepared =
  let time_engine solver =
    let config = { Gator.Config.default with solver } in
    let solve_all () =
      List.iter (fun (app, graph) -> ignore (Gator.Solve.run config app graph)) prepared
    in
    solve_all ();
    (* warm-up: inflation memos, allocators, frozen-flow CSRs *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      solve_all ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let delta_seconds = time_engine Gator.Config.Delta in
  let interned_seconds = time_engine Gator.Config.Interned in
  (delta_seconds, interned_seconds)

let engine_head_to_head () =
  let prepared =
    List.map
      (fun spec ->
        let app = Corpus.Gen.generate spec in
        (app, Gator.Extract.run Gator.Config.default app))
      Corpus.Apps.specs
  in
  let delta_seconds, interned_seconds = time_engines prepared in
  Printf.printf "Full-corpus solver head-to-head (solve phase only, %d apps, best of 3):\n"
    (List.length prepared);
  Printf.printf "  delta     %7.4f s\n" delta_seconds;
  Printf.printf "  interned  %7.4f s  %.2fx\n" interned_seconds (delta_seconds /. interned_seconds);
  print_newline ();
  (List.length prepared, delta_seconds, interned_seconds)

(* Cycle-heavy head-to-head: where the SCC condensation actually pays.
   Rings of copies make the structural delta engine chase values all
   the way around each ring, while the condensed engine keeps one
   shared set per component and never propagates inside it. *)
let cyclic_head_to_head () =
  let prepared =
    List.init 8 (fun i ->
        let app =
          Corpus.Gen.cyclic_app
            ~name:(Printf.sprintf "Cyc%d" i)
            ~chains:6
            ~chain_len:(120 + (24 * i))
            ~two_cycles:8 ~bridges:12 ~seed:(77 + i) ()
        in
        (app, Gator.Extract.run Gator.Config.default app))
  in
  let delta_seconds, interned_seconds = time_engines prepared in
  Printf.printf "Cycle-heavy solver head-to-head (solve phase only, %d apps, best of 3):\n"
    (List.length prepared);
  Printf.printf "  delta          %7.4f s\n" delta_seconds;
  Printf.printf "  interned (scc) %7.4f s  %.2fx\n" interned_seconds
    (delta_seconds /. interned_seconds);
  print_newline ();
  (List.length prepared, delta_seconds, interned_seconds)

(* Incremental head-to-head on XBMC: full interned solve of the
   patched app from scratch vs the warm delta restart from the
   previous solve's captured state, best of 5 each, with a
   bit-identity check on the resulting analyses. *)
let incremental_head_to_head () =
  let xbmc = app_named "XBMC" in
  let config = Gator.Config.default in
  let _, prev = Gator.Incremental.analyze_solved ~config xbmc in
  let patched = xbmc_small_patch xbmc in
  let best_of n f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* full: from-scratch interned solve of the patched graph *)
  let cold_graph = Gator.Extract.run config patched in
  let full_seconds = best_of 5 (fun () -> Gator.Solve.run_solved config patched cold_graph) in
  (* warm: delta restart over the shared interner *)
  let warm_graph =
    Gator.Extract.run ~interner:(Gator.Solve.solved_interner prev) config patched
  in
  let new_shape = Gator.Solve.shape_of_graph warm_graph in
  let edits = Gator.Diff.edit_script ~old_:(Gator.Solve.shape_of_solved prev) ~new_:new_shape in
  let warm_seconds =
    best_of 5 (fun () ->
        Gator.Solve.run_incremental ~prev ~edits ~new_shape config patched warm_graph)
  in
  let warm_stats, _ =
    Gator.Solve.run_incremental ~prev ~edits ~new_shape config patched warm_graph
  in
  (* bit-identity: the warm analysis must match a cold one exactly *)
  let cold_analysis, _ = Gator.Incremental.analyze_solved ~config patched in
  let warm_analysis, _ = Gator.Incremental.analyze_incremental ~config ~prev patched in
  let identical = Gator.Diff.is_empty (Gator.Diff.compare cold_analysis warm_analysis) in
  let ratio = warm_seconds /. full_seconds in
  Printf.printf "Incremental re-analysis on XBMC (solve phase, best of 5):\n";
  Printf.printf "  full (cold)        %9.6f s\n" full_seconds;
  Printf.printf "  warm small patch   %9.6f s  (%.2f%% of full)\n" warm_seconds (100. *. ratio);
  Printf.printf "  warm=%b fallback=%s dirty=%d reused=%d sccs=%d  bit-identical %s\n"
    warm_stats.Gator.Solve.warm_solve
    (Option.value ~default:"-" warm_stats.Gator.Solve.fallback)
    warm_stats.Gator.Solve.dirty_comps warm_stats.Gator.Solve.reused_comps
    warm_stats.Gator.Solve.scc_count
    (if identical then "yes" else "NO");
  print_newline ();
  (full_seconds, warm_seconds, ratio, warm_stats, identical)

(* Demand-driven query head-to-head on XBMC: answering one point query
   the forward way (a full analysis, then one lookup) vs the daemon's
   way (backward walk over the reverse index of an already-solved
   state), plus the warm steady state (resident engine, memo
   populated) amortised over every variable in the app.  The query
   stats counters prove the warm answers came from the backward walk —
   queries counted, nodes expanded, zero budget fallbacks — and every
   answer is checked bit-identical against the forward solution. *)
let query_head_to_head () =
  let xbmc = app_named "XBMC" in
  let config = Gator.Config.default in
  let r, solved = Gator.Incremental.analyze_solved ~config xbmc in
  let hierarchy = xbmc.Framework.App.hierarchy in
  let locations = Gator.Graph.locations r.Gator.Analysis.graph in
  let probe = query_probe r in
  let best_of n f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let forward_seconds =
    best_of 5 (fun () ->
        let r = Gator.Analysis.analyze ~config xbmc in
        Gator.Analysis.values_at r probe)
  in
  let cold_seconds =
    best_of 5 (fun () ->
        let q = Gator.Query.create ~hierarchy solved in
        Gator.Query.points_to q probe)
  in
  (* warm: one resident engine, every location queried; the first
     sweep populates the memo, the timed sweeps are the steady state *)
  let q = Gator.Query.create ~hierarchy solved in
  let sweep () = List.iter (fun node -> ignore (Gator.Query.points_to q node)) locations in
  let sweep_seconds = best_of 5 sweep in
  let warm_seconds = sweep_seconds /. float_of_int (List.length locations) in
  let stats = Gator.Query.stats q in
  let identical =
    List.for_all
      (fun node ->
        Gator.Query.points_to q node = Some (Gator.Analysis.values_at r node))
      locations
  in
  Printf.printf "Demand-driven point query on XBMC (best of 5):\n";
  Printf.printf "  forward (full solve + lookup)  %9.6f s\n" forward_seconds;
  Printf.printf "  backward cold (index + walk)   %9.6f s  (%.1fx)\n" cold_seconds
    (forward_seconds /. cold_seconds);
  Printf.printf "  backward warm (per query)      %9.6f s  (%d locations/sweep)\n" warm_seconds
    (List.length locations);
  Printf.printf
    "  counters: %d queries, %d expanded, %d memo hits, %d generator hits, %d cycle / %d budget \
     fallbacks  bit-identical %s\n"
    stats.Gator.Query.q_queries stats.Gator.Query.q_expanded stats.Gator.Query.q_memo_hits
    stats.Gator.Query.q_generator_hits stats.Gator.Query.q_cycle_fallbacks
    stats.Gator.Query.q_budget_fallbacks
    (if identical then "yes" else "NO");
  print_newline ();
  (forward_seconds, cold_seconds, warm_seconds, List.length locations, stats, identical)

(* Streaming ingestion head-to-head: the same generated stream driven
   through [Experiments.run_stream] on the shared frozen interner tier
   and again with per-app private interners (every task re-interns the
   framework id vocabulary from scratch), at several job counts.  The
   rows each run spills are compared order-normalized — tier choice
   and schedule may never leak into results — and the apps-per-second
   figures land in BENCH_results.json as the [stream] series. *)
let stream_head_to_head () =
  let apps = 600 and seed = 42 in
  let shared_config = Gator.Config.default in
  let private_config = { Gator.Config.default with shared_intern = false } in
  let run config jobs =
    let rows = ref [] in
    let t0 = Unix.gettimeofday () in
    ignore
      (Report.Experiments.run_stream ~config ~jobs ~timings:false ~seed ~apps
         ~emit:(fun row -> rows := row :: !rows)
         ());
    (Unix.gettimeofday () -. t0, List.sort compare !rows)
  in
  let best_of n config jobs =
    ignore (run config jobs);
    let best = ref infinity and rows = ref [] in
    for _ = 1 to n do
      let seconds, r = run config jobs in
      if seconds < !best then begin
        best := seconds;
        rows := r
      end
    done;
    (!best, !rows)
  in
  Printf.printf
    "Streaming ingestion head-to-head (%d generated apps, shared vs private tier, best of 3):\n"
    apps;
  let entries =
    List.map
      (fun jobs ->
        let shared_seconds, shared_rows = best_of 3 shared_config jobs in
        let private_seconds, private_rows = best_of 3 private_config jobs in
        let identical = shared_rows = private_rows in
        Printf.printf
          "  jobs=%d  shared %6.3f s (%6.1f apps/s)  private %6.3f s (%6.1f apps/s)  %.2fx  rows \
           %s\n"
          jobs shared_seconds
          (float_of_int apps /. shared_seconds)
          private_seconds
          (float_of_int apps /. private_seconds)
          (private_seconds /. shared_seconds)
          (if identical then "identical" else "DIFFER");
        (jobs, shared_seconds, private_seconds, identical))
      [ 1; 4; 8 ]
  in
  print_newline ();
  (apps, entries)

(* Machine-readable results: per-test median nanoseconds and GC words
   plus the solver work counters, for regression tracking across
   commits. *)
let write_json_results rows corpus_batch engines cyclic incremental queries stream =
  let solver_counters =
    let app = app_named "XBMC" in
    List.map
      (fun solver ->
        let config = { Gator.Config.default with solver } in
        let row = Gator.Metrics.solver_stats (Gator.Analysis.analyze ~config app) in
        Util.Json.Obj
          [
            ("app", Util.Json.String row.Gator.Metrics.sv_app);
            ("solver", Util.Json.String row.sv_solver);
            ("ops", Util.Json.Int row.sv_ops);
            ("iterations", Util.Json.Int row.sv_iterations);
            ("op_applications", Util.Json.Int row.sv_op_applications);
            ("naive_equivalent", Util.Json.Int row.sv_naive_equivalent);
            ("propagations", Util.Json.Int row.sv_propagations);
            ("delta_pushes", Util.Json.Int row.sv_delta_pushes);
            ("desc_cache_hits", Util.Json.Int row.sv_desc_hits);
            ("desc_cache_misses", Util.Json.Int row.sv_desc_misses);
            ("interned_values", Util.Json.Int row.sv_interned_values);
            ("bitset_words", Util.Json.Int row.sv_bitset_words);
            ("union_calls", Util.Json.Int row.sv_union_calls);
            ("scc_count", Util.Json.Int row.sv_scc_count);
            ("largest_scc", Util.Json.Int row.sv_largest_scc);
            ("ctx_count", Util.Json.Int row.sv_ctx_count);
            ("ctx_keys", Util.Json.Int row.sv_ctx_keys);
          ])
      [ Gator.Config.Naive; Gator.Config.Delta; Gator.Config.Interned ]
  in
  let seq_seconds =
    match corpus_batch with (_, s, _) :: _ -> s | [] -> Float.nan
  in
  let batch_entries =
    List.map
      (fun (jobs, seconds, identical) ->
        Util.Json.Obj
          [
            ("jobs", Util.Json.Int jobs);
            ("seconds", Util.Json.Float seconds);
            ("speedup", Util.Json.Float (seq_seconds /. seconds));
            ("tables_identical", Util.Json.Bool identical);
          ])
      corpus_batch
  in
  let engine_entry (apps, delta_seconds, interned_seconds) key =
    Util.Json.Obj
      [
        (key, Util.Json.Int apps);
        ("delta_seconds", Util.Json.Float delta_seconds);
        ("interned_seconds", Util.Json.Float interned_seconds);
        ("speedup", Util.Json.Float (delta_seconds /. interned_seconds));
      ]
  in
  let json =
    Util.Json.Obj
      [
        ( "benchmarks",
          Util.Json.List
            (List.map
               (fun (name, nanos, minor, major) ->
                 Util.Json.Obj
                   [
                     ("name", Util.Json.String name);
                     ("nanos", Util.Json.Float nanos);
                     ("minor_words", Util.Json.Float minor);
                     ("major_words", Util.Json.Float major);
                   ])
               rows) );
        ("solver_stats", Util.Json.List solver_counters);
        ("corpus_batch", Util.Json.List batch_entries);
        ("solver_head_to_head", engine_entry engines "corpus_apps");
        ("cycle_heavy_head_to_head", engine_entry cyclic "cyclic_apps");
        ( "incremental",
          let full_seconds, warm_seconds, ratio, warm_stats, identical = incremental in
          Util.Json.Obj
            [
              ("app", Util.Json.String "XBMC");
              ("full_seconds", Util.Json.Float full_seconds);
              ("warm_small_patch_seconds", Util.Json.Float warm_seconds);
              ("warm_over_full", Util.Json.Float ratio);
              ("warm_solve", Util.Json.Bool warm_stats.Gator.Solve.warm_solve);
              ("dirty_comps", Util.Json.Int warm_stats.Gator.Solve.dirty_comps);
              ("reused_comps", Util.Json.Int warm_stats.Gator.Solve.reused_comps);
              ("scc_count", Util.Json.Int warm_stats.Gator.Solve.scc_count);
              ("bit_identical", Util.Json.Bool identical);
            ] );
        ( "query",
          let forward_seconds, cold_seconds, warm_seconds, locations, stats, identical = queries in
          Util.Json.Obj
            [
              ("app", Util.Json.String "XBMC");
              ("forward_full_solve_seconds", Util.Json.Float forward_seconds);
              ("backward_cold_seconds", Util.Json.Float cold_seconds);
              ("warm_per_query_seconds", Util.Json.Float warm_seconds);
              ("locations", Util.Json.Int locations);
              ("queries", Util.Json.Int stats.Gator.Query.q_queries);
              ("expanded", Util.Json.Int stats.Gator.Query.q_expanded);
              ("memo_hits", Util.Json.Int stats.Gator.Query.q_memo_hits);
              ("generator_hits", Util.Json.Int stats.Gator.Query.q_generator_hits);
              ("cycle_fallbacks", Util.Json.Int stats.Gator.Query.q_cycle_fallbacks);
              ("budget_fallbacks", Util.Json.Int stats.Gator.Query.q_budget_fallbacks);
              ("bit_identical", Util.Json.Bool identical);
            ] );
        ( "stream",
          let stream_apps, entries = stream in
          Util.Json.List
            (List.map
               (fun (jobs, shared_seconds, private_seconds, identical) ->
                 Util.Json.Obj
                   [
                     ("jobs", Util.Json.Int jobs);
                     ("apps", Util.Json.Int stream_apps);
                     ("shared_seconds", Util.Json.Float shared_seconds);
                     ("private_seconds", Util.Json.Float private_seconds);
                     ( "shared_apps_per_sec",
                       Util.Json.Float (float_of_int stream_apps /. shared_seconds) );
                     ( "private_apps_per_sec",
                       Util.Json.Float (float_of_int stream_apps /. private_seconds) );
                     ("shared_over_private", Util.Json.Float (private_seconds /. shared_seconds));
                     ("rows_identical", Util.Json.Bool identical);
                   ])
               entries) );
      ]
  in
  let path = "BENCH_results.json" in
  let oc = open_out path in
  output_string oc (Util.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nWrote %s\n" path

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock; minor_allocated; major_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"gator" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some ols -> (
        match Analyze.OLS.estimates ols with Some [ est ] -> est | _ -> Float.nan)
    | None -> Float.nan
  in
  let nanos_by = Analyze.all ols Instance.monotonic_clock raw in
  let minor_by = Analyze.all ols Instance.minor_allocated raw in
  let major_by = Analyze.all ols Instance.major_allocated raw in
  let rows =
    Hashtbl.fold (fun name _ acc -> name :: acc) nanos_by []
    |> List.sort compare
    |> List.map (fun name ->
           (name, estimate nanos_by name, estimate minor_by name, estimate major_by name))
  in
  print_endline "Benchmarks (monotonic clock and GC words per run):";
  List.iter
    (fun (name, nanos, minor, major) ->
      let pretty =
        if nanos >= 1e9 then Printf.sprintf "%8.3f s " (nanos /. 1e9)
        else if nanos >= 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
        else Printf.sprintf "%8.3f us" (nanos /. 1e3)
      in
      Printf.printf "  %-45s %s  minor %12.0f w  major %10.0f w\n" name pretty minor major)
    rows;
  rows

let () =
  print_reproduction ();
  let corpus_batch = corpus_head_to_head () in
  let engines = engine_head_to_head () in
  let cyclic = cyclic_head_to_head () in
  let incremental = incremental_head_to_head () in
  let queries = query_head_to_head () in
  let stream = stream_head_to_head () in
  let rows = run_benchmarks () in
  write_json_results rows corpus_batch engines cyclic incremental queries stream
