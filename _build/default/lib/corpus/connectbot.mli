(** The running example of the paper (Figure 1), derived from
    ConnectBot: [ConsoleActivity] with its XML layouts [act_console]
    and [item_terminal], the [EscapeButtonListener], and the
    application-defined [TerminalView].

    Note on names: in the paper's narration the helper that queries the
    flipper is [findCurrentView(int)] (Section 2, "Event handlers");
    the activity-wide searches at lines 10/13 reach the platform's
    [findViewById].  We follow the narration. *)

val source : string
(** The ALite source text. *)

val act_console_xml : string

val item_terminal_xml : string

val app : unit -> Framework.App.t
(** Freshly parsed app.  @raise Failure if the embedded sources fail to
    parse (a programming error caught by the test suite). *)
