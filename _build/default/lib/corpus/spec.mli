(** Generation parameters for a synthetic corpus application.

    The fields mirror the columns of Table 1 of the paper: the
    generator emits exactly the requested population of classes,
    methods, resource ids, view allocations, listeners, and operation
    nodes, so the regenerated Table 1 matches the paper by
    construction.  Two {e shape} knobs control the precision profile
    measured in Table 2: [sp_id_sharing] (how often distinct layout
    nodes reuse a view id, diluting find-view results) and
    [sp_receiver_merge] (how many operations sit in shared helper
    methods whose receivers merge under context insensitivity — the
    effect behind the paper's XBMC outlier). *)

type t = {
  sp_name : string;
  sp_seed : int;
  sp_classes : int;  (** total application classes (Table 1 "classes") *)
  sp_methods : int;  (** total application methods (Table 1 "methods") *)
  sp_activities : int;
  sp_layouts : int;  (** layout ids (Table 1 "ids L"); also the Inflate op count *)
  sp_view_ids : int;  (** view id pool size (Table 1 "ids V") *)
  sp_inflated_nodes : int;  (** total layout-tree nodes (Table 1 "views I") *)
  sp_view_allocs : int;  (** programmatic view allocations (Table 1 "views A") *)
  sp_listener_classes : int;
  sp_listener_allocs : int;  (** Table 1 "listeners" *)
  sp_findview_ops : int;
  sp_addview_ops : int;
  sp_setid_ops : int;
  sp_setlistener_ops : int;
  sp_id_sharing : float;  (** probability a layout node reuses an already-used id *)
  sp_receiver_merge : float;  (** fraction of find-view ops routed through shared helpers *)
}

val default : t
(** A small, precise app ("Sample"): useful as a template. *)

val validate : t -> (unit, string) result
(** Internal consistency: activities <= layouts, listener allocs need a
    listener class, op quotas representable, etc. *)
