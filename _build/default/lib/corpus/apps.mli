(** The 20-application corpus of the paper's evaluation (Table 1).

    The specs reconstruct each app's feature population (classes,
    methods, resource ids, views, listeners, operation counts) and its
    precision profile (id sharing and helper-merging intensity chosen
    so the Table 2 shape — near-1 averages for most apps, elevated
    receivers for Astrid/Mileage/SuperGenPass, the XBMC outlier —
    reproduces).  EXPERIMENTS.md records paper-vs-measured values. *)

val specs : Spec.t list
(** In the paper's (alphabetical) order; exactly 20. *)

val names : string list

val by_name : string -> Spec.t option

val generate : Spec.t -> Framework.App.t
(** Alias of {!Gen.generate}. *)

val case_study_names : string list
(** APV, BarcodeScanner, SuperGenPass, XBMC — the Section 5 precision
    case study. *)
