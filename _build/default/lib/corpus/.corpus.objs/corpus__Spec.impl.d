lib/corpus/spec.ml: Printf
