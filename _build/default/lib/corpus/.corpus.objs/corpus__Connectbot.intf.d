lib/corpus/connectbot.mli: Framework
