lib/corpus/apps.ml: Gen List Spec
