lib/corpus/apps.mli: Framework Spec
