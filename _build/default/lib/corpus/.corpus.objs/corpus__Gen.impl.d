lib/corpus/gen.ml: Array Float Framework Int64 Jir Layouts List Option Printf Spec Util
