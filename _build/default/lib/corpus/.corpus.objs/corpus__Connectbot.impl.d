lib/corpus/connectbot.ml: Framework
