lib/corpus/spec.mli:
