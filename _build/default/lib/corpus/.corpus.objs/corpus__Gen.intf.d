lib/corpus/gen.mli: Framework Spec Util
