let source =
  {|
// Figure 1 of the paper, in ALite concrete syntax.
class ConsoleActivity extends Activity {
  field flip: ViewFlipper;

  // lines 3-7: helper querying the currently visible terminal
  method findCurrentView(a: int): View {
    b = this.flip;
    c = b.getCurrentView();     // FindOne (children)
    d = c.findViewById(a);      // FindView1
    return d;
  }

  // lines 8-16
  method onCreate(): void {
    lid = R.layout.act_console;
    this.setContentView(lid);   // Inflate2
    vid1 = R.id.console_flip;
    e = this.findViewById(vid1);  // FindView2 (activity hierarchy)
    f = (ViewFlipper) e;
    this.flip = f;
    vid2 = R.id.button_esc;
    g = this.findViewById(vid2);  // FindView2
    h = (ImageView) g;
    j = new EscapeButtonListener();
    j.init(this);
    h.setOnClickListener(j);    // SetListener
    this.addNewTerminalView();
  }

  // lines 17-25
  method addNewTerminalView(): void {
    inflater = this.getLayoutInflater();
    lid2 = R.layout.item_terminal;
    k = inflater.inflate(lid2); // Inflate1
    n = (RelativeLayout) k;
    m = new TerminalView();
    vid3 = R.id.console_flip;
    m.setId(vid3);              // SetId
    n.addView(m);               // AddView2: m becomes a child of n
    p = this.flip;
    p.addView(n);               // AddView2: n becomes a child of the flipper
  }
}

// lines 26-34
class EscapeButtonListener implements OnClickListener {
  field cact: ConsoleActivity;

  method init(q: ConsoleActivity): void {
    this.cact = q;
  }

  method onClick(r: View): void {
    s = this.cact;
    vid = R.id.console_flip;
    t = s.findCurrentView(vid); // application helper, not the platform API
    v = (TerminalView) t;
    // send ESC key to the terminal associated with v
  }
}

// application-defined view class providing the SSH terminal GUI
class TerminalView extends View {
}
|}

let act_console_xml =
  {|<RelativeLayout>
  <ViewFlipper android:id="@+id/console_flip" />
  <RelativeLayout android:id="@+id/keyboard_group">
    <ImageView android:id="@+id/button_esc" />
    <ImageView android:id="@+id/button_ctrl" />
    <ImageView android:id="@+id/button_up" />
    <ImageView android:id="@+id/button_down" />
  </RelativeLayout>
</RelativeLayout>|}

let item_terminal_xml =
  {|<RelativeLayout>
  <TextView android:id="@+id/terminal_overlay" />
</RelativeLayout>|}

let app () =
  match
    Framework.App.of_source ~name:"ConnectBot" ~code:source
      ~layouts:[ ("act_console", act_console_xml); ("item_terminal", item_terminal_xml) ]
  with
  | Ok app -> app
  | Error e -> failwith ("Connectbot.app: " ^ e)
