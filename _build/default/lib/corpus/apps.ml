(* One spec per Table 1 row.  Field order:
   name seed classes methods activities layouts(L) view_ids(V)
   inflated(I) view_allocs(A) listener_classes listener_allocs
   findview addview setid setlistener id_sharing receiver_merge *)
let spec name seed classes methods activities layouts view_ids inflated view_allocs
    listener_classes listener_allocs findview addview setid setlistener id_sharing receiver_merge
    =
  {
    Spec.sp_name = name;
    sp_seed = seed;
    sp_classes = classes;
    sp_methods = methods;
    sp_activities = activities;
    sp_layouts = layouts;
    sp_view_ids = view_ids;
    sp_inflated_nodes = inflated;
    sp_view_allocs = view_allocs;
    sp_listener_classes = listener_classes;
    sp_listener_allocs = listener_allocs;
    sp_findview_ops = findview;
    sp_addview_ops = addview;
    sp_setid_ops = setid;
    sp_setlistener_ops = setlistener;
    sp_id_sharing = id_sharing;
    sp_receiver_merge = receiver_merge;
  }

let specs =
  [
    spec "APV" 101 68 415 3 3 12 16 2 3 5 16 2 0 8 0.0 0.0;
    spec "Astrid" 102 1228 5782 25 95 230 300 46 20 40 150 40 6 46 0.25 0.35;
    spec "BarcodeScanner" 103 126 1224 5 9 33 31 0 6 12 40 0 0 14 0.0 0.0;
    spec "Beem" 104 284 1883 10 12 17 50 6 10 20 60 6 0 22 0.0 0.03;
    spec "ConnectBot" 105 371 2366 10 19 45 140 7 12 26 80 12 2 30 0.0 0.0;
    spec "FBReader" 106 954 5452 12 23 111 201 9 20 43 120 15 3 50 0.1 0.12;
    spec "K9" 107 815 5311 20 33 153 385 8 25 54 160 10 4 60 0.05 0.06;
    spec "KeePassDroid" 108 465 2784 12 19 70 213 12 14 29 90 15 2 35 0.15 0.18;
    spec "Mileage" 109 221 1223 10 25 64 150 30 12 30 80 25 3 40 0.3 0.3;
    spec "MyTracks" 110 485 2680 10 35 118 120 40 12 30 90 30 4 35 0.05 0.05;
    spec "NPR" 111 249 1359 8 15 88 90 9 8 17 60 12 2 25 0.2 0.22;
    spec "NotePad" 112 89 394 4 8 12 18 4 4 9 18 4 1 9 0.0 0.0;
    spec "OpenManager" 113 60 252 3 8 46 60 0 6 20 46 0 0 20 0.1 0.08;
    spec "OpenSudoku" 114 140 728 6 10 31 80 6 8 16 50 8 2 20 0.15 0.1;
    spec "SipDroid" 115 351 2683 8 12 36 75 4 6 11 50 6 1 15 0.0 0.0;
    spec "SuperGenPass" 116 65 268 2 3 9 37 0 4 12 20 0 0 12 0.1 0.15;
    spec "TippyTipper" 117 57 241 4 6 42 90 22 8 27 40 25 3 27 0.05 0.05;
    spec "VLC" 118 242 1374 8 10 91 150 11 15 45 80 15 5 45 0.05 0.05;
    spec "VuDroid" 119 69 385 2 5 8 11 6 2 4 8 6 1 4 0.0 0.0;
    spec "XBMC" 120 568 3012 15 24 151 350 23 20 88 180 25 8 88 0.3 0.95;
  ]

let names = List.map (fun s -> s.Spec.sp_name) specs

let by_name name = List.find_opt (fun s -> s.Spec.sp_name = name) specs

let generate = Gen.generate

let case_study_names = [ "APV"; "BarcodeScanner"; "SuperGenPass"; "XBMC" ]
