(** Deterministic synthetic-application generator.

    Given a {!Spec.t}, emits a complete {!Framework.App.t}: XML-style
    layouts, activity classes whose lifecycle methods exercise the
    Android operations (inflation, find-view, add-view, set-id,
    set-listener), listener classes with real handlers, a shared
    view-helper class used to reproduce context-insensitivity receiver
    merging, and padding helper classes to reach the class/method
    totals.  Generation is a pure function of the spec (including its
    seed).

    Structural guarantees (relied on by tests):
    - the number of operation statements of each kind equals the
      spec's quota exactly;
    - every activity's [onCreate] starts with [setContentView] of its
      own layout, whose root carries a view id (so the generated app
      is actually runnable by the dynamic semantics);
    - every view-id name in the pool is referenced at least once, so
      the resource table has exactly [sp_view_ids] entries. *)

val generate : Spec.t -> Framework.App.t
(** @raise Invalid_argument when {!Spec.validate} rejects the spec. *)

val random_spec : ?name:string -> Util.Prng.t -> Spec.t
(** A small well-formed random spec, for property-based testing. *)
