type t = {
  sp_name : string;
  sp_seed : int;
  sp_classes : int;
  sp_methods : int;
  sp_activities : int;
  sp_layouts : int;
  sp_view_ids : int;
  sp_inflated_nodes : int;
  sp_view_allocs : int;
  sp_listener_classes : int;
  sp_listener_allocs : int;
  sp_findview_ops : int;
  sp_addview_ops : int;
  sp_setid_ops : int;
  sp_setlistener_ops : int;
  sp_id_sharing : float;
  sp_receiver_merge : float;
}

let default =
  {
    sp_name = "Sample";
    sp_seed = 1;
    sp_classes = 10;
    sp_methods = 40;
    sp_activities = 2;
    sp_layouts = 3;
    sp_view_ids = 8;
    sp_inflated_nodes = 12;
    sp_view_allocs = 3;
    sp_listener_classes = 2;
    sp_listener_allocs = 3;
    sp_findview_ops = 6;
    sp_addview_ops = 3;
    sp_setid_ops = 2;
    sp_setlistener_ops = 3;
    sp_id_sharing = 0.0;
    sp_receiver_merge = 0.0;
  }

let validate spec =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if spec.sp_activities < 1 then err "%s: at least one activity required" spec.sp_name
  else if spec.sp_layouts < spec.sp_activities then
    err "%s: each activity needs its own content layout (layouts >= activities)" spec.sp_name
  else if spec.sp_view_ids < 1 then err "%s: need a non-empty view-id pool" spec.sp_name
  else if spec.sp_inflated_nodes < spec.sp_layouts then
    err "%s: each layout has at least a root node (inflated nodes >= layouts)" spec.sp_name
  else if spec.sp_listener_allocs > 0 && spec.sp_listener_classes < 1 then
    err "%s: listener allocations need at least one listener class" spec.sp_name
  else if spec.sp_setlistener_ops > 0 && spec.sp_listener_allocs < 1 then
    err "%s: set-listener operations need at least one listener object" spec.sp_name
  else if spec.sp_id_sharing < 0.0 || spec.sp_id_sharing > 1.0 then
    err "%s: id sharing must be a probability" spec.sp_name
  else if spec.sp_receiver_merge < 0.0 || spec.sp_receiver_merge > 1.0 then
    err "%s: receiver merge must be a probability" spec.sp_name
  else if spec.sp_classes < spec.sp_activities + spec.sp_listener_classes then
    err "%s: class budget smaller than activities + listener classes" spec.sp_name
  else if spec.sp_findview_ops < spec.sp_activities then
    err "%s: each activity performs a root find-view (findview ops >= activities)" spec.sp_name
  else Ok ()
