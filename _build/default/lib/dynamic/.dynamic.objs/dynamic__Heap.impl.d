lib/dynamic/heap.ml: Gator Hashtbl List Option Printf
