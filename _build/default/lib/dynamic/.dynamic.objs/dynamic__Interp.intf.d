lib/dynamic/interp.mli: Fmt Framework Gator Heap
