lib/dynamic/oracle.mli: Fmt Gator Interp
