lib/dynamic/interp.ml: Fmt Framework Gator Hashtbl Heap Jir Layouts List Option
