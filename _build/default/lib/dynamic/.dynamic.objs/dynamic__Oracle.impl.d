lib/dynamic/oracle.ml: Fmt Framework Gator Hashtbl Interp List Map Option Set Stdlib
