lib/dynamic/heap.mli: Gator Hashtbl
