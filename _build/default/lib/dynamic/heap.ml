type obj_id = int

type value = V_null | V_int of int | V_ref of obj_id

type provenance =
  | P_alloc of Gator.Node.alloc_site
  | P_infl of Gator.Node.infl_site
  | P_activity of string
  | P_internal of string

type obj = {
  id : obj_id;
  cls : string;
  provenance : provenance;
  fields : (string, value) Hashtbl.t;
  mutable vid : int option;
  mutable children : obj_id list;
  mutable parent : obj_id option;
  mutable listeners : (string * obj_id) list;
  mutable root : obj_id option;
  mutable displayed : int;
  mutable onclick : string option;  (** android:onClick handler name *)
}

type t = { table : (obj_id, obj) Hashtbl.t; mutable next : obj_id }

let create () = { table = Hashtbl.create 128; next = 0 }

let alloc t ~cls provenance =
  let obj =
    {
      id = t.next;
      cls;
      provenance;
      fields = Hashtbl.create 8;
      vid = None;
      children = [];
      parent = None;
      listeners = [];
      root = None;
      displayed = 0;
      onclick = None;
    }
  in
  Hashtbl.add t.table obj.id obj;
  t.next <- t.next + 1;
  obj

let get t id =
  match Hashtbl.find_opt t.table id with
  | Some obj -> obj
  | None -> invalid_arg (Printf.sprintf "Heap.get: dangling object id %d" id)

let deref t = function V_ref id -> Some (get t id) | V_null | V_int _ -> None

let objects t =
  List.init t.next (fun id -> Hashtbl.find_opt t.table id)
  |> List.filter_map (fun o -> o)

let read_field obj f = Option.value (Hashtbl.find_opt obj.fields f) ~default:V_null

let write_field obj f v = Hashtbl.replace obj.fields f v

let detach t child =
  match child.parent with
  | None -> ()
  | Some pid ->
      let parent = get t pid in
      parent.children <- List.filter (fun id -> id <> child.id) parent.children;
      child.parent <- None

(* The platform guarantees the view hierarchy stays a tree (Section
   3.2.2: "the parent-child relation corresponds to a tree"); adding a
   view under its own descendant would create a cycle and throws in
   real Android.  We model the throw as a no-op. *)
let creates_cycle t ~parent ~child =
  let rec ancestor o = o.id = child.id || (match o.parent with Some pid -> ancestor (get t pid) | None -> false) in
  ancestor parent

let add_child t ~parent ~child =
  if parent.id = child.id || creates_cycle t ~parent ~child then ()
  else begin
    detach t child;
    parent.children <- parent.children @ [ child.id ];
    child.parent <- Some parent.id
  end

let descendants t ?(include_self = true) obj =
  (* The heap keeps parent-child a forest, so plain preorder recursion
     terminates; a visited set guards against corruption anyway. *)
  let seen = Hashtbl.create 16 in
  let rec go acc o =
    if Hashtbl.mem seen o.id then acc
    else begin
      Hashtbl.add seen o.id ();
      List.fold_left (fun acc cid -> go acc (get t cid)) (o :: acc) o.children
    end
  in
  let all = List.rev (go [] obj) in
  if include_self then all else List.filter (fun o -> o.id <> obj.id) all

let find_by_vid t obj target =
  let rec dfs o =
    if o.vid = Some target then Some o
    else
      let rec first = function
        | [] -> None
        | cid :: rest -> ( match dfs (get t cid) with Some r -> Some r | None -> first rest)
      in
      first o.children
  in
  dfs obj

let abstraction ~is_view obj =
  match obj.provenance with
  | P_alloc site ->
      if is_view site.Gator.Node.a_cls then Some (Gator.Node.V_view (Gator.Node.V_alloc site))
      else Some (Gator.Node.V_obj site)
  | P_infl site -> Some (Gator.Node.V_view (Gator.Node.V_infl site))
  | P_activity a -> Some (Gator.Node.V_act a)
  | P_internal _ -> None

let view_abstraction obj =
  match obj.provenance with
  | P_alloc site -> Some (Gator.Node.V_alloc site)
  | P_infl site -> Some (Gator.Node.V_infl site)
  | P_activity _ | P_internal _ -> None
