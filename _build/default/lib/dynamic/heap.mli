(** Concrete runtime state for the dynamic semantics of Section 3.

    Objects carry the artificial fields of the paper's heap model:
    views have [vid], [children] (ordered), [listeners]; activities and
    dialogs have [root].  Every object records its {e provenance} — the
    static abstraction that describes it — so soundness of the static
    analysis can be checked mechanically: the provenance of every
    concrete object observed at an operation must appear in the static
    solution for that operation. *)

type obj_id = int

type value = V_null | V_int of int | V_ref of obj_id

(** Where an object came from; provenances are exactly the static
    abstractions of {!Gator.Node}. *)
type provenance =
  | P_alloc of Gator.Node.alloc_site  (** [new C()] in application code *)
  | P_infl of Gator.Node.infl_site  (** created by layout inflation *)
  | P_activity of string  (** implicit platform-created activity *)
  | P_internal of string  (** platform helper (e.g. the LayoutInflater); never GUI-relevant *)

type obj = {
  id : obj_id;
  cls : string;
  provenance : provenance;
  fields : (string, value) Hashtbl.t;
  (* view state *)
  mutable vid : int option;
  mutable children : obj_id list;  (** in attachment order *)
  mutable parent : obj_id option;
  mutable listeners : (string * obj_id) list;  (** (interface name, listener), registration order *)
  (* content-holder state *)
  mutable root : obj_id option;
  mutable displayed : int;  (** index of the currently visible child (ViewFlipper-style) *)
  mutable onclick : string option;  (** declarative android:onClick handler *)
}

type t

val create : unit -> t

val alloc : t -> cls:string -> provenance -> obj

val get : t -> obj_id -> obj

val deref : t -> value -> obj option
(** [None] for null/int values. *)

val objects : t -> obj list
(** In allocation order. *)

val read_field : obj -> string -> value
(** Unset fields read as null. *)

val write_field : obj -> string -> value -> unit

val add_child : t -> parent:obj -> child:obj -> unit
(** Appends; re-parenting detaches from the old parent first, keeping
    the forest well-formed (the platform invariant the paper notes). *)

val descendants : t -> ?include_self:bool -> obj -> obj list
(** Preorder. *)

val find_by_vid : t -> obj -> int -> obj option
(** Depth-first search from the view (inclusive) for the first
    descendant with the given view id — Android's [findViewById]
    order. *)

val abstraction : is_view:(string -> bool) -> obj -> Gator.Node.value option
(** The static abstract value describing this object; [None] for
    internal platform helpers.  [is_view] decides whether an allocated
    class is a view class (ask {!Framework.Views.is_view_class}). *)

val view_abstraction : obj -> Gator.Node.view_abs option
