(** Comparison of a dynamic trace against a static solution.

    This mechanizes the paper's Section 5 case study: the dynamic
    semantics provides (a prefix of) the "perfectly-precise" behavior,
    every element of which a sound static solution must cover; the gap
    between the two measures precision. *)

type miss = {
  miss_observation : Interp.observation;
  miss_reason : string;  (** e.g. "no static operation at this site" *)
}

type coverage = {
  cov_total : int;  (** observations checked *)
  cov_covered : int;
  cov_misses : miss list;  (** soundness violations — must be empty *)
}

val check : Gator.Analysis.t -> Interp.outcome -> coverage
(** Checks every observation, every listener registration, and every
    event firing of the trace against the static solution. *)

val is_sound : coverage -> bool

(** Per-role average solution-set sizes of the {e dynamic} trace —
    comparable with {!Gator.Metrics.table2}'s static averages (the
    "perfectly-precise measurements" of the case study). *)
type dynamic_averages = {
  dyn_receivers : float option;
  dyn_parameters : float option;
  dyn_results : float option;
  dyn_listeners : float option;
}

val dynamic_averages : Interp.outcome -> dynamic_averages

val pp_coverage : coverage Fmt.t
