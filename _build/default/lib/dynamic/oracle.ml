type miss = { miss_observation : Interp.observation; miss_reason : string }

type coverage = { cov_total : int; cov_covered : int; cov_misses : miss list }

let is_sound coverage = coverage.cov_misses = []

module Op_map = Map.Make (struct
  type t = Gator.Node.op_site

  let compare = Stdlib.compare
end)

(* All operation records at a site: inlining-based context sensitivity
   clones records, and a dynamic observation is covered if any clone
   covers it (the executed call chain corresponds to one clone). *)
let op_index (r : Gator.Analysis.t) =
  List.fold_left
    (fun acc (op : Gator.Graph.op) ->
      let existing = Option.value (Op_map.find_opt op.site acc) ~default:[] in
      Op_map.add op.site (op :: existing) acc)
    Op_map.empty (Gator.Analysis.ops r)

let listener_of_value = function
  | Gator.Node.V_obj site -> Some (Gator.Node.L_alloc site)
  | Gator.Node.V_view (Gator.Node.V_alloc site) -> Some (Gator.Node.L_alloc site)
  | Gator.Node.V_act a -> Some (Gator.Node.L_act a)
  | _ -> None

let check_observation r ops (ob : Interp.observation) =
  match Op_map.find_opt ob.ob_op ops with
  | None -> Some "no static operation at this site"
  | Some clones -> (
      let has_view views_of =
        match ob.ob_value with
        | Gator.Node.V_view va -> List.exists (fun op -> List.mem va (views_of op)) clones
        | _ -> false
      in
      match ob.ob_role with
      | Interp.R_receiver ->
          if has_view (Gator.Analysis.op_receiver_views r) then None
          else Some "receiver view not in static receiver set"
      | Interp.R_child ->
          if has_view (Gator.Analysis.op_child_views r) then None
          else Some "child view not in static argument set"
      | Interp.R_result ->
          if has_view (Gator.Analysis.op_result_views r) then None
          else Some "result view not in static result set"
      | Interp.R_listener -> (
          match listener_of_value ob.ob_value with
          | Some l ->
              if List.exists (fun op -> List.mem l (Gator.Analysis.op_listeners r op)) clones
              then None
              else Some "listener not in static listener set"
          | None -> Some "listener observation carries a non-listener value"))

let check (r : Gator.Analysis.t) (outcome : Interp.outcome) =
  let ops = op_index r in
  let total = ref 0 in
  let misses = ref [] in
  List.iter
    (fun ob ->
      incr total;
      match check_observation r ops ob with
      | None -> ()
      | Some reason -> misses := { miss_observation = ob; miss_reason = reason } :: !misses)
    outcome.observations;
  (* Listener registrations must appear in the view=>listener relation. *)
  List.iter
    (fun (view, listener, iface) ->
      incr total;
      let registered =
        List.exists
          (fun (l, i) -> l = listener && i = iface)
          (Gator.Analysis.listeners_of_view r view)
      in
      if not registered then
        misses :=
          {
            miss_observation =
              {
                Interp.ob_op =
                  {
                    Gator.Node.o_site =
                      { Gator.Node.s_in = { mid_cls = "<registration>"; mid_name = iface; mid_arity = 0 }; s_stmt = 0 };
                    o_kind = Framework.Api.Find_view;
                  };
                ob_role = Interp.R_listener;
                ob_value =
                  (match listener with
                  | Gator.Node.L_alloc site -> Gator.Node.V_obj site
                  | Gator.Node.L_act a -> Gator.Node.V_act a);
              };
            miss_reason = "registration missing from view=>listener relation";
          }
          :: !misses)
    outcome.registrations;
  (* Every executed activity launch must be a static transition edge. *)
  let static_transitions = Gator.Analysis.transitions r in
  List.iter
    (fun (from_, to_) ->
      incr total;
      if not (List.mem (from_, to_) static_transitions) then
        misses :=
          {
            miss_observation =
              {
                Interp.ob_op =
                  {
                    Gator.Node.o_site =
                      { Gator.Node.s_in = { mid_cls = from_; mid_name = "<transition>"; mid_arity = 0 }; s_stmt = 0 };
                    o_kind = Framework.Api.Start_activity;
                  };
                ob_role = Interp.R_result;
                ob_value = Gator.Node.V_act to_;
              };
            miss_reason = "executed transition missing from static transition relation";
          }
          :: !misses)
    outcome.transitions;
  (* Every firing with a containing activity must be an interaction tuple. *)
  let interactions = Gator.Analysis.interactions r in
  List.iter
    (fun (f : Interp.firing) ->
      List.iter
        (fun activity ->
          incr total;
          let covered =
            List.exists
              (fun (ix : Gator.Analysis.interaction) ->
                ix.ix_activity = activity && ix.ix_view = f.f_view && ix.ix_event = f.f_event
                && ix.ix_handler = f.f_handler)
              interactions
          in
          if not covered then
            misses :=
              {
                miss_observation =
                  {
                    Interp.ob_op =
                      {
                        Gator.Node.o_site =
                          {
                            Gator.Node.s_in =
                              { mid_cls = activity; mid_name = "<firing>"; mid_arity = 0 };
                            s_stmt = 0;
                          };
                        o_kind = Framework.Api.Find_view;
                      };
                    ob_role = Interp.R_result;
                    ob_value = Gator.Node.V_view f.f_view;
                  };
                miss_reason = "fired interaction missing from static interaction tuples";
              }
              :: !misses)
        f.f_activities)
    outcome.firings;
  { cov_total = !total; cov_covered = !total - List.length !misses; cov_misses = List.rev !misses }

type dynamic_averages = {
  dyn_receivers : float option;
  dyn_parameters : float option;
  dyn_results : float option;
  dyn_listeners : float option;
}

module Value_set = Set.Make (struct
  type t = Gator.Node.value

  let compare = Gator.Node.compare_value
end)

let dynamic_averages (outcome : Interp.outcome) =
  (* Distinct values per (op site, role). *)
  let tbl : (Gator.Node.op_site * Interp.role, Value_set.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ob : Interp.observation) ->
      let key = (ob.ob_op, ob.ob_role) in
      let existing = Option.value (Hashtbl.find_opt tbl key) ~default:Value_set.empty in
      Hashtbl.replace tbl key (Value_set.add ob.ob_value existing))
    outcome.observations;
  let sizes role =
    Hashtbl.fold
      (fun (_, r) values acc -> if r = role then Value_set.cardinal values :: acc else acc)
      tbl []
  in
  {
    dyn_receivers = Gator.Metrics.avg (sizes Interp.R_receiver);
    dyn_parameters = Gator.Metrics.avg (sizes Interp.R_child);
    dyn_results = Gator.Metrics.avg (sizes Interp.R_result);
    dyn_listeners = Gator.Metrics.avg (sizes Interp.R_listener);
  }

let pp_coverage ppf c =
  Fmt.pf ppf "%d/%d observations covered" c.cov_covered c.cov_total;
  if c.cov_misses <> [] then begin
    Fmt.pf ppf "; MISSES:@.";
    List.iter
      (fun m -> Fmt.pf ppf "  %a (%s)@." Interp.pp_observation m.miss_observation m.miss_reason)
      c.cov_misses
  end
