module VS = Set.Make (struct
  type t = Node.value

  let compare = Node.compare_value
end)

module View_set = Set.Make (struct
  type t = Node.view_abs

  let compare = Stdlib.compare
end)

module Listener_set = Set.Make (struct
  type t = Node.listener_abs * string

  let compare = Stdlib.compare
end)

module Int_set = Set.Make (Int)

module String_set = Set.Make (String)

type edge_kind = E_direct | E_cast of string

type op = { site : Node.op_site; op_recv : Node.t; op_args : Node.t list; op_out : Node.t option }

type t = {
  edges : (Node.t, (edge_kind * Node.t) list) Hashtbl.t;
  edge_seen : (Node.t * edge_kind * Node.t, unit) Hashtbl.t;
  mutable edge_total : int;
  seed_tbl : (Node.t, VS.t) Hashtbl.t;
  sets : (Node.t, VS.t) Hashtbl.t;
  mutable op_list : op list;  (** reversed creation order *)
  mutable alloc_list : Node.alloc_site list;  (** reversed creation order *)
  children_tbl : (Node.view_abs, View_set.t) Hashtbl.t;
  parents_tbl : (Node.view_abs, View_set.t) Hashtbl.t;
  ids_tbl : (Node.view_abs, Int_set.t) Hashtbl.t;
  roots_tbl : (Node.holder, View_set.t) Hashtbl.t;
  listeners_tbl : (Node.view_abs, Listener_set.t) Hashtbl.t;
  root_layout_tbl : (Node.view_abs, Int_set.t) Hashtbl.t;
  inflations : (Node.site * string, Node.view_abs list) Hashtbl.t;
  transitions_tbl : (string * string, unit) Hashtbl.t;  (** activity transition edges *)
  onclick_tbl : (Node.view_abs, String_set.t) Hashtbl.t;  (** android:onClick handler names *)
  declared_fragments_tbl : (Node.view_abs, String_set.t) Hashtbl.t;  (** <fragment> classes *)
}

let create () =
  {
    edges = Hashtbl.create 256;
    edge_seen = Hashtbl.create 256;
    edge_total = 0;
    seed_tbl = Hashtbl.create 128;
    sets = Hashtbl.create 256;
    op_list = [];
    alloc_list = [];
    children_tbl = Hashtbl.create 64;
    parents_tbl = Hashtbl.create 64;
    ids_tbl = Hashtbl.create 64;
    roots_tbl = Hashtbl.create 16;
    listeners_tbl = Hashtbl.create 32;
    root_layout_tbl = Hashtbl.create 16;
    inflations = Hashtbl.create 16;
    transitions_tbl = Hashtbl.create 16;
    onclick_tbl = Hashtbl.create 16;
    declared_fragments_tbl = Hashtbl.create 16;
  }

(* Idempotent per site: inlined clones of a statement denote the same
   allocation abstraction. *)
let fresh_alloc t ~cls ~site =
  let alloc = { Node.a_site = site; a_cls = cls } in
  if not (List.mem alloc t.alloc_list) then t.alloc_list <- alloc :: t.alloc_list;
  alloc

let fresh_op t ~kind ~site ~recv ~args ~out =
  let op = { site = { Node.o_site = site; o_kind = kind }; op_recv = recv; op_args = args; op_out = out } in
  t.op_list <- op :: t.op_list;
  op

let add_edge t ?(kind = E_direct) src dst =
  let key = (src, kind, dst) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.add t.edge_seen key ();
    t.edge_total <- t.edge_total + 1;
    let existing = Option.value (Hashtbl.find_opt t.edges src) ~default:[] in
    Hashtbl.replace t.edges src ((kind, dst) :: existing)
  end

let seed t node value =
  let existing = Option.value (Hashtbl.find_opt t.seed_tbl node) ~default:VS.empty in
  Hashtbl.replace t.seed_tbl node (VS.add value existing)

let set_of t node = Option.value (Hashtbl.find_opt t.sets node) ~default:VS.empty

let add_value t node value =
  let existing = set_of t node in
  if VS.mem value existing then false
  else begin
    Hashtbl.replace t.sets node (VS.add value existing);
    true
  end

let views_of t node =
  VS.fold
    (fun v acc -> match Node.view_of_value v with Some view -> view :: acc | None -> acc)
    (set_of t node) []

let succs t node = Option.value (Hashtbl.find_opt t.edges node) ~default:[]

let seeds t = Hashtbl.fold (fun node vs acc -> (node, vs) :: acc) t.seed_tbl []

let reset_sets t =
  Hashtbl.reset t.sets;
  Hashtbl.reset t.children_tbl;
  Hashtbl.reset t.parents_tbl;
  Hashtbl.reset t.ids_tbl;
  Hashtbl.reset t.roots_tbl;
  Hashtbl.reset t.listeners_tbl;
  Hashtbl.reset t.root_layout_tbl;
  Hashtbl.reset t.inflations;
  Hashtbl.reset t.transitions_tbl;
  Hashtbl.reset t.onclick_tbl;
  Hashtbl.reset t.declared_fragments_tbl

(* Generic set-valued relation update returning whether it grew. *)
let add_to_set_tbl (type s elt) (module S : Set.S with type t = s and type elt = elt) tbl key v =
  let existing = Option.value (Hashtbl.find_opt tbl key) ~default:S.empty in
  if S.mem v existing then false
  else begin
    Hashtbl.replace tbl key (S.add v existing);
    true
  end

let add_child t ~parent ~child =
  let grew = add_to_set_tbl (module View_set) t.children_tbl parent child in
  if grew then ignore (add_to_set_tbl (module View_set) t.parents_tbl child parent);
  grew

let children_of t view = Option.value (Hashtbl.find_opt t.children_tbl view) ~default:View_set.empty

let parents_of t view = Option.value (Hashtbl.find_opt t.parents_tbl view) ~default:View_set.empty

let descendants t ~include_self view =
  let visited = ref (if include_self then View_set.singleton view else View_set.empty) in
  let queue = Queue.create () in
  Queue.add view queue;
  while not (Queue.is_empty queue) do
    let current = Queue.take queue in
    View_set.iter
      (fun child ->
        if not (View_set.mem child !visited) then begin
          visited := View_set.add child !visited;
          Queue.add child queue
        end)
      (children_of t current)
  done;
  !visited

let add_view_id t view id = add_to_set_tbl (module Int_set) t.ids_tbl view id

let ids_of_view t view = Option.value (Hashtbl.find_opt t.ids_tbl view) ~default:Int_set.empty

let add_holder_root t holder root = add_to_set_tbl (module View_set) t.roots_tbl holder root

let roots_of_holder t holder = Option.value (Hashtbl.find_opt t.roots_tbl holder) ~default:View_set.empty

let holders t = Hashtbl.fold (fun h _ acc -> h :: acc) t.roots_tbl []

let add_view_listener t view listener ~iface =
  add_to_set_tbl (module Listener_set) t.listeners_tbl view (listener, iface)

let listeners_of_view t view =
  Option.value (Hashtbl.find_opt t.listeners_tbl view) ~default:Listener_set.empty

let views_with_listeners t = Hashtbl.fold (fun v _ acc -> v :: acc) t.listeners_tbl []

let add_root_layout t view id = add_to_set_tbl (module Int_set) t.root_layout_tbl view id

let layouts_of_root t view =
  Option.value (Hashtbl.find_opt t.root_layout_tbl view) ~default:Int_set.empty

let add_onclick t view handler = add_to_set_tbl (module String_set) t.onclick_tbl view handler

let onclicks_of t view =
  match Hashtbl.find_opt t.onclick_tbl view with
  | Some s -> String_set.elements s
  | None -> []

let add_declared_fragment t view cls =
  add_to_set_tbl (module String_set) t.declared_fragments_tbl view cls

let declared_fragments_of t view =
  match Hashtbl.find_opt t.declared_fragments_tbl view with
  | Some s -> String_set.elements s
  | None -> []

let views_with_declared_fragments t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.declared_fragments_tbl []

let add_transition t ~from_ ~to_ =
  if Hashtbl.mem t.transitions_tbl (from_, to_) then false
  else begin
    Hashtbl.add t.transitions_tbl (from_, to_) ();
    true
  end

let transitions t = Hashtbl.fold (fun edge () acc -> edge :: acc) t.transitions_tbl []

let find_inflation t ~site ~layout = Hashtbl.find_opt t.inflations (site, layout)

let record_inflation t ~site ~layout views = Hashtbl.replace t.inflations (site, layout) views

let inflated_views t = Hashtbl.fold (fun _ views acc -> views @ acc) t.inflations []

let ops t = List.rev t.op_list

let allocs t = List.rev t.alloc_list

let locations t =
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let add node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      out := node :: !out
    end
  in
  Hashtbl.iter
    (fun src targets ->
      add src;
      List.iter (fun (_, dst) -> add dst) targets)
    t.edges;
  Hashtbl.iter (fun node _ -> add node) t.seed_tbl;
  Hashtbl.iter (fun node _ -> add node) t.sets;
  List.iter
    (fun op ->
      add op.op_recv;
      List.iter add op.op_args;
      Option.iter add op.op_out)
    t.op_list;
  !out

let edge_count t = t.edge_total

(* Graphviz output: locations as ellipses, ops as boxes, views as gray
   boxes (Figure 3/4 style). *)
let pp_dot ppf t =
  let location_id node = Fmt.str "%S" (Fmt.str "%a" Node.pp node) in
  let view_id view = Fmt.str "%S" (Fmt.str "%a" Node.pp_view view) in
  Fmt.pf ppf "digraph constraint_graph {@\n  rankdir=LR;@\n";
  List.iter
    (fun node -> Fmt.pf ppf "  %s [shape=ellipse];@\n" (location_id node))
    (locations t);
  List.iter
    (fun op ->
      let op_node = Fmt.str "%S" (Fmt.str "%a" Node.pp_op_site op.site) in
      Fmt.pf ppf "  %s [shape=box,style=bold];@\n" op_node;
      Fmt.pf ppf "  %s -> %s [label=recv];@\n" (location_id op.op_recv) op_node;
      List.iteri
        (fun i arg -> Fmt.pf ppf "  %s -> %s [label=\"arg%d\"];@\n" (location_id arg) op_node i)
        op.op_args;
      Option.iter (fun out -> Fmt.pf ppf "  %s -> %s;@\n" op_node (location_id out)) op.op_out)
    (ops t);
  Hashtbl.iter
    (fun src targets ->
      List.iter
        (fun (kind, dst) ->
          match kind with
          | E_direct -> Fmt.pf ppf "  %s -> %s;@\n" (location_id src) (location_id dst)
          | E_cast c -> Fmt.pf ppf "  %s -> %s [label=\"(%s)\"];@\n" (location_id src) (location_id dst) c)
        targets)
    t.edges;
  Hashtbl.iter
    (fun parent children ->
      View_set.iter
        (fun child ->
          Fmt.pf ppf "  %s -> %s [style=dashed,label=child];@\n" (view_id parent) (view_id child))
        children)
    t.children_tbl;
  Hashtbl.iter
    (fun view ids ->
      Int_set.iter (fun id -> Fmt.pf ppf "  %s -> \"id:0x%x\" [style=dashed];@\n" (view_id view) id) ids)
    t.ids_tbl;
  Hashtbl.iter
    (fun holder roots ->
      View_set.iter
        (fun root ->
          Fmt.pf ppf "  \"%a\" -> %s [style=dashed,label=root];@\n" Node.pp_holder holder
            (view_id root))
        roots)
    t.roots_tbl;
  Hashtbl.iter
    (fun view listeners ->
      Listener_set.iter
        (fun (l, iface) ->
          Fmt.pf ppf "  %s -> \"%a\" [style=dashed,label=\"listener:%s\"];@\n" (view_id view)
            Node.pp_listener l iface)
        listeners)
    t.listeners_tbl;
  Fmt.pf ppf "}@\n"
