(** JSON export of the computed solution, for the downstream clients
    Section 6 of the paper lists (test generation, security analysis,
    profiling instrumentation, reverse engineering). *)

val view : Node.view_abs -> Util.Json.t

val value : Node.value -> Util.Json.t

val op : Analysis.t -> Graph.op -> Util.Json.t
(** Kind, site, and the receiver/argument/result/listener solution
    sets. *)

val interaction : Analysis.interaction -> Util.Json.t

val solution : Analysis.t -> Util.Json.t
(** The full document: app identity, configuration, operations with
    their solutions, view hierarchy facts (ids, children, activity
    roots), listener registrations, interaction tuples, and the
    activity-transition relation. *)

val to_string : ?pretty:bool -> Analysis.t -> string
