lib/core/node.mli: Fmt Framework Jir
