lib/core/analysis.mli: Config Fmt Framework Graph Node Solve
