lib/core/metrics.mli: Analysis
