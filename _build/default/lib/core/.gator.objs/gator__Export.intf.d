lib/core/export.mli: Analysis Graph Node Util
