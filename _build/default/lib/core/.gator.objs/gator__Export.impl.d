lib/core/export.ml: Analysis Config Framework Graph Jir Layouts List Node Option Util
