lib/core/config.ml:
