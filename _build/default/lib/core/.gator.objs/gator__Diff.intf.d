lib/core/diff.mli: Analysis Fmt Node
