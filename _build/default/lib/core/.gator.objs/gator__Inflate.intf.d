lib/core/inflate.mli: Graph Layouts Node
