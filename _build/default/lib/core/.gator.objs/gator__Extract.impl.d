lib/core/extract.ml: Config Framework Fun Graph Jir Layouts List Node Option Printf
