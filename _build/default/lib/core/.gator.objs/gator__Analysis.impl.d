lib/core/analysis.ml: Config Extract Fmt Framework Graph Jir Layouts List Node Solve Unix
