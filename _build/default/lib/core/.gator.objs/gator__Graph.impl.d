lib/core/graph.ml: Fmt Hashtbl Int List Node Option Queue Set Stdlib String
