lib/core/node.ml: Fmt Framework Hashtbl Jir List Printf Stdlib String
