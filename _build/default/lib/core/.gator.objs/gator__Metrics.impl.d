lib/core/metrics.ml: Analysis Framework Graph Jir Layouts List Node
