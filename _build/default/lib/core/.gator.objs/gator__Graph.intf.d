lib/core/graph.mli: Fmt Framework Node Set
