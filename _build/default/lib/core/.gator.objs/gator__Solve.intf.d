lib/core/solve.mli: Config Framework Graph
