lib/core/config.mli:
