lib/core/inflate.ml: Graph Hashtbl Layouts List Node
