lib/core/solve.ml: Config Framework Graph Inflate Jir Layouts List Logs Node Option Util
