lib/core/extract.mli: Config Framework Graph
