lib/core/diff.ml: Analysis Fmt Framework Graph List Map Node Stdlib
