(** Lazy layout inflation (rules INFLATE1/INFLATE2, Section 3.2.1 /
    4.2): when a layout id reaches an inflation operation, mint one
    inflated-view abstraction per layout node, with parent-child and
    view=>id relationship edges.  Minting is memoized per
    (operation, layout), making the solver's op transfers
    idempotent. *)

val instantiate :
  Graph.t -> resources:Layouts.Resource.t -> site:Node.site -> Layouts.Layout.def -> Node.view_abs list
(** Returns the minted views in preorder — the root first.  Subsequent
    calls with the same (op, layout) return the same list. *)

val root : Node.view_abs list -> Node.view_abs
(** Head of a non-empty preorder list.  @raise Invalid_argument on
    empty (a layout always has a root). *)
