let instantiate graph ~resources ~site (def : Layouts.Layout.def) =
  match Graph.find_inflation graph ~site ~layout:def.name with
  | Some views -> views
  | None ->
      let abs_of_path =
        let tbl = Hashtbl.create 16 in
        fun path (node : Layouts.Layout.node) ->
          match Hashtbl.find_opt tbl path with
          | Some v -> v
          | None ->
              let v =
                Node.V_infl
                  {
                    Node.v_site = site;
                    v_layout = def.name;
                    v_path = path;
                    v_cls = node.view_class;
                    v_vid = node.id;
                  }
              in
              Hashtbl.add tbl path v;
              v
      in
      let nodes = Layouts.Layout.nodes def in
      let views =
        List.map
          (fun (path, (node : Layouts.Layout.node)) ->
            let view = abs_of_path path node in
            (match node.id with
            | Some id_name ->
                ignore (Graph.add_view_id graph view (Layouts.Resource.view_id resources id_name))
            | None -> ());
            (match node.onclick with
            | Some handler -> ignore (Graph.add_onclick graph view handler)
            | None -> ());
            (match node.fragment_class with
            | Some cls -> ignore (Graph.add_declared_fragment graph view cls)
            | None -> ());
            view)
          nodes
      in
      List.iter
        (fun (parent_path, child_path) ->
          match
            ( Layouts.Layout.find def parent_path,
              Layouts.Layout.find def child_path )
          with
          | Some parent_node, Some child_node ->
              let parent = abs_of_path parent_path parent_node in
              let child = abs_of_path child_path child_node in
              ignore (Graph.add_child graph ~parent ~child)
          | _ -> assert false)
        (Layouts.Layout.edges def);
      Graph.record_inflation graph ~site ~layout:def.name views;
      views

let root = function
  | [] -> invalid_arg "Inflate.root: empty inflation"
  | r :: _ -> r
