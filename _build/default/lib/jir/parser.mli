(** Recursive-descent parser for ALite source text.

    Concrete syntax (see also {!Pp} which prints this syntax back):

    {v
    class ConsoleActivity extends Activity {
      field flip: ViewFlipper;
      method findViewById(a: int): View {
        var b: ViewFlipper;
        b = this.flip;
        c = b.getCurrentView();
        d = c.findViewById(a);
        return d;
      }
    }
    v}

    Local [var] declarations are optional; undeclared locals get their
    types inferred by {!Typing}.  Resource reads are written
    [x = R.layout.name;] and [x = R.id.name;]. *)

exception Parse_error of string * Lexer.pos

val parse_program : string -> Ast.program
(** @raise Parse_error on syntax errors, [Lexer.Lex_error] on lexical
    errors. *)

val parse_program_result : string -> (Ast.program, string) result
(** Like {!parse_program} but with errors rendered to a message
    including the source position. *)
