(** Printer for ALite that emits the concrete syntax accepted by
    {!Parser}.  [Parser.parse_program (Pp.program_to_string p)] yields a
    program equal to [p] (checked by property tests). *)

val pp_ty : Ast.ty Fmt.t

val pp_stmt : Ast.stmt Fmt.t

val pp_meth : Ast.meth Fmt.t

val pp_cls : Ast.cls Fmt.t

val pp_program : Ast.program Fmt.t

val program_to_string : Ast.program -> string
