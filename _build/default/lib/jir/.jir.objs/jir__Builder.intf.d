lib/jir/builder.pp.mli: Ast
