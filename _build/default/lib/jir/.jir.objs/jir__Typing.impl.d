lib/jir/typing.pp.ml: Ast Hashtbl Hierarchy List
