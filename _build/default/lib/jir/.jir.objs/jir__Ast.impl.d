lib/jir/ast.pp.ml: Hashtbl List Ppx_deriving_runtime
