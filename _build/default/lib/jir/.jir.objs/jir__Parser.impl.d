lib/jir/parser.pp.ml: Array Ast Fmt Lexer List
