lib/jir/pp.pp.ml: Ast Fmt List
