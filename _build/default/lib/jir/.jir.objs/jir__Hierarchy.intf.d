lib/jir/hierarchy.pp.mli: Ast
