lib/jir/parser.pp.mli: Ast Lexer
