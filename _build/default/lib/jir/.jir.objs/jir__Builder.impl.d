lib/jir/builder.pp.ml: Ast
