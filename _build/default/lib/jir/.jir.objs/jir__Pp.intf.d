lib/jir/pp.pp.mli: Ast Fmt
