lib/jir/hierarchy.pp.ml: Ast Hashtbl List Option Printf Set String
