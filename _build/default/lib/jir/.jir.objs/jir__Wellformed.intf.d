lib/jir/wellformed.pp.mli: Ast Fmt Hierarchy
