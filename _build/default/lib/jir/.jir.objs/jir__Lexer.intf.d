lib/jir/lexer.pp.mli: Fmt
