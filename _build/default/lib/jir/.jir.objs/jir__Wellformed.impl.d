lib/jir/wellformed.pp.ml: Ast Fmt Hashtbl Hierarchy List Printf Set String
