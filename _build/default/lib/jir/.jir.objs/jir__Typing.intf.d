lib/jir/typing.pp.mli: Ast Hashtbl Hierarchy
