lib/jir/lexer.pp.ml: Fmt List Printf String
