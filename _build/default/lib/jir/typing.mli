(** Best-effort static typing of ALite method variables.

    Declared parameter/local types are taken as-is; undeclared locals
    get a type inferred from their definition sites, joined to the
    least common superclass when definitions disagree.  The result
    seeds CHA call resolution; it is an over-approximation aid, never
    trusted for soundness (an unknown type simply widens the CHA
    answer to all methods with the key). *)

type env = (string, Ast.ty) Hashtbl.t

val least_common_superclass : Hierarchy.t -> string -> string -> string option
(** Most specific common supertype along superclass chains; [None] when
    the chains never meet (e.g. unrelated interfaces). *)

val infer :
  hierarchy:Hierarchy.t ->
  external_return:(recv_ty:string option -> string -> int -> Ast.ty option) ->
  owner:string ->
  Ast.meth ->
  env
(** [infer ~hierarchy ~external_return ~owner m] assigns a type to every
    variable of [m] it can.  [external_return ~recv_ty name arity] is
    consulted for calls that resolve to no application method —
    typically Android platform APIs whose return types the framework
    model knows. [owner] is the class defining [m] (gives [this] its
    type). *)

val ty_of : env -> string -> Ast.ty option

val class_of : env -> string -> string option
(** The class name when the variable has a reference type. *)
