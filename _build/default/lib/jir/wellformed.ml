type severity = Error | Warning

type diagnostic = { severity : severity; where : string; message : string }

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_diagnostic ppf d = Fmt.pf ppf "%a: %s: %s" pp_severity d.severity d.where d.message

module SS = Set.Make (String)

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun name ->
      if Hashtbl.mem seen name then true
      else begin
        Hashtbl.add seen name ();
        false
      end)
    names

let check_meth ~known_types cls_name (m : Ast.meth) =
  let where = Printf.sprintf "%s.%s" cls_name m.Ast.m_name in
  let out = ref [] in
  let report severity message = out := { severity; where; message } :: !out in
  let param_names = List.map fst m.m_params in
  let local_names = List.map fst m.m_locals in
  List.iter
    (fun d -> report Error (Printf.sprintf "duplicate parameter %s" d))
    (duplicates param_names);
  List.iter
    (fun d -> report Error (Printf.sprintf "duplicate local %s" d))
    (duplicates local_names);
  if List.mem Ast.this_var param_names || List.mem Ast.this_var local_names then
    report Error "'this' cannot be redeclared";
  (* Flow-insensitive def/use check. *)
  let defined =
    List.fold_left
      (fun acc s -> match Ast.stmt_def s with Some v -> SS.add v acc | None -> acc)
      (SS.of_list ((Ast.this_var :: param_names) @ local_names))
      m.m_body
  in
  List.iter
    (fun stmt ->
      List.iter
        (fun v ->
          if not (SS.mem v defined) then
            report Error (Printf.sprintf "variable %s is used but never defined" v))
        (Ast.stmt_vars stmt))
    m.m_body;
  (* Return-shape consistency. *)
  List.iter
    (fun stmt ->
      match (stmt, m.m_ret) with
      | Ast.Return (Some _), None -> report Error "value returned from a void method"
      | Ast.Return None, Some _ -> report Warning "bare return in a non-void method"
      | _ -> ())
    m.m_body;
  (* Types referenced by statements. *)
  let check_type_ref what name =
    if not (SS.mem name known_types) then
      report Warning (Printf.sprintf "%s references unknown type %s" what name)
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.New (_, c) -> check_type_ref "new" c
      | Ast.Cast (_, c, _) -> check_type_ref "cast" c
      | _ -> ())
    m.m_body;
  !out

let check ?(platform = []) (program : Ast.program) =
  let out = ref [] in
  let report severity where message = out := { severity; where; message } :: !out in
  let class_names = List.map (fun (c : Ast.cls) -> c.c_name) program.p_classes in
  List.iter
    (fun d -> report Error d (Printf.sprintf "duplicate type name %s" d))
    (duplicates class_names);
  let known_types =
    SS.union (SS.of_list class_names) (SS.of_list (List.map (fun d -> d.Hierarchy.d_name) platform))
  in
  let kind_of name =
    match List.find_opt (fun (c : Ast.cls) -> c.c_name = name) program.p_classes with
    | Some c -> Some c.c_kind
    | None -> (
        match List.find_opt (fun d -> d.Hierarchy.d_name = name) platform with
        | Some d -> Some d.Hierarchy.d_kind
        | None -> None)
  in
  (* Cycle detection mirrors Hierarchy.check_acyclic but reports instead
     of raising, so diagnostics can be collected for bad inputs. *)
  let parents name =
    match List.find_opt (fun (c : Ast.cls) -> c.c_name = name) program.p_classes with
    | Some c -> (match c.c_super with Some s -> [ s ] | None -> []) @ c.c_interfaces
    | None -> (
        match List.find_opt (fun d -> d.Hierarchy.d_name = name) platform with
        | Some d -> (match d.Hierarchy.d_super with Some s -> [ s ] | None -> []) @ d.d_interfaces
        | None -> [])
  in
  let in_cycle name =
    let rec walk fuel frontier =
      if fuel <= 0 then false
      else
        match frontier with
        | [] -> false
        | f :: rest -> f = name || walk (fuel - 1) (parents f @ rest)
    in
    walk 10_000 (parents name)
  in
  List.iter
    (fun (c : Ast.cls) ->
      let name = c.c_name in
      if in_cycle name then report Error name "inheritance cycle";
      (match c.c_super with
      | Some s -> (
          if not (SS.mem s known_types) then
            report Warning name (Printf.sprintf "unknown supertype %s" s)
          else
            match kind_of s with
            | Some `Interface -> report Error name (Printf.sprintf "extends interface %s" s)
            | Some `Class | None -> ())
      | None -> ());
      List.iter
        (fun i ->
          if not (SS.mem i known_types) then
            report Warning name (Printf.sprintf "unknown interface %s" i)
          else
            match kind_of i with
            | Some `Class -> report Error name (Printf.sprintf "implements class %s" i)
            | Some `Interface | None -> ())
        c.c_interfaces;
      List.iter
        (fun d -> report Error name (Printf.sprintf "duplicate field %s" d))
        (duplicates (List.map fst c.c_fields));
      List.iter
        (fun (key : Ast.meth_key) ->
          report Error name (Printf.sprintf "duplicate method %s/%d" key.mk_name key.mk_arity))
        (let keys = List.map Ast.key_of_meth c.c_methods in
         let seen = Hashtbl.create 8 in
         List.filter
           (fun (k : Ast.meth_key) ->
             if Hashtbl.mem seen k then true
             else begin
               Hashtbl.add seen k ();
               false
             end)
           keys);
      List.iter
        (fun (m : Ast.meth) ->
          List.iter
            (fun stmt ->
              match stmt with
              | Ast.New (_, target) -> (
                  match kind_of target with
                  | Some `Interface ->
                      report Error
                        (Printf.sprintf "%s.%s" name m.m_name)
                        (Printf.sprintf "cannot instantiate interface %s" target)
                  | Some `Class | None -> ())
              | _ -> ())
            m.m_body;
          List.iter (fun d -> out := d :: !out) (check_meth ~known_types name m))
        c.c_methods)
    program.p_classes;
  List.rev !out

let errors diagnostics = List.filter (fun d -> d.severity = Error) diagnostics

let is_clean diagnostics = errors diagnostics = []
