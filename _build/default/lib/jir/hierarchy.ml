type decl = {
  d_name : string;
  d_kind : [ `Class | `Interface ];
  d_super : string option;
  d_interfaces : string list;
}

exception Hierarchy_error of string

module SS = Set.Make (String)

type node = {
  n_name : string;
  n_kind : [ `Class | `Interface ];
  n_super : string option;
  n_interfaces : string list;
  n_cls : Ast.cls option;  (** [Some] iff application type *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable anc_cache : (string, SS.t) Hashtbl.t;
  mutable sub_cache : (string, string list) Hashtbl.t;
  program : Ast.program;
}

let add_node t node =
  if Hashtbl.mem t.nodes node.n_name then
    raise (Hierarchy_error (Printf.sprintf "duplicate type name %s" node.n_name));
  Hashtbl.add t.nodes node.n_name node

let parents node = (match node.n_super with Some s -> [ s ] | None -> []) @ node.n_interfaces

(* Detect cycles over the extends/implements graph. *)
let check_acyclic t =
  let module State = struct
    type mark = White | Gray | Black
  end in
  let marks : (string, State.mark) Hashtbl.t = Hashtbl.create 64 in
  let mark_of name = Option.value (Hashtbl.find_opt marks name) ~default:State.White in
  let rec visit name =
    match Hashtbl.find_opt t.nodes name with
    | None -> ()
    | Some node -> (
        match mark_of name with
        | State.Black -> ()
        | State.Gray -> raise (Hierarchy_error (Printf.sprintf "inheritance cycle through %s" name))
        | State.White ->
            Hashtbl.replace marks name State.Gray;
            List.iter visit (parents node);
            Hashtbl.replace marks name State.Black)
  in
  Hashtbl.iter (fun name _ -> visit name) t.nodes

let create ?(platform = []) program =
  let t =
    { nodes = Hashtbl.create 128; anc_cache = Hashtbl.create 128; sub_cache = Hashtbl.create 128; program }
  in
  List.iter
    (fun d ->
      add_node t
        { n_name = d.d_name; n_kind = d.d_kind; n_super = d.d_super; n_interfaces = d.d_interfaces; n_cls = None })
    platform;
  List.iter
    (fun (c : Ast.cls) ->
      add_node t
        {
          n_name = c.c_name;
          n_kind = c.c_kind;
          n_super = c.c_super;
          n_interfaces = c.c_interfaces;
          n_cls = Some c;
        })
    program.p_classes;
  check_acyclic t;
  t

let mem t name = Hashtbl.mem t.nodes name

let kind t name = Option.map (fun n -> n.n_kind) (Hashtbl.find_opt t.nodes name)

let is_application t name =
  match Hashtbl.find_opt t.nodes name with Some { n_cls = Some _; _ } -> true | _ -> false

let types t = Hashtbl.fold (fun name _ acc -> name :: acc) t.nodes []

let application_classes t = t.program.Ast.p_classes

let super t name =
  match Hashtbl.find_opt t.nodes name with Some n -> n.n_super | None -> None

let rec ancestors_set t name =
  match Hashtbl.find_opt t.anc_cache name with
  | Some s -> s
  | None ->
      (* Break cycles defensively even though [create] rejects them. *)
      Hashtbl.replace t.anc_cache name SS.empty;
      let s =
        match Hashtbl.find_opt t.nodes name with
        | None -> SS.empty
        | Some node ->
            List.fold_left
              (fun acc p -> SS.union acc (SS.add p (ancestors_set t p)))
              SS.empty (parents node)
      in
      Hashtbl.replace t.anc_cache name s;
      s

let ancestors t name = SS.elements (ancestors_set t name)

let superclass_chain t name =
  let rec go acc name =
    match super t name with Some s -> go (s :: acc) s | None -> List.rev acc
  in
  go [] name

let subtype t sub sup = sub = sup || SS.mem sup (ancestors_set t sub)

let subtypes t name =
  match Hashtbl.find_opt t.sub_cache name with
  | Some xs -> xs
  | None ->
      let xs =
        Hashtbl.fold (fun n _ acc -> if subtype t n name then n :: acc else acc) t.nodes []
      in
      Hashtbl.replace t.sub_cache name xs;
      xs

let rec field_ty t cls f =
  match Hashtbl.find_opt t.nodes cls with
  | None -> None
  | Some node -> (
      let own =
        match node.n_cls with
        | Some c -> List.assoc_opt f c.Ast.c_fields
        | None -> None
      in
      match own with
      | Some ty -> Some ty
      | None -> ( match node.n_super with Some s -> field_ty t s f | None -> None))

let own_meth t cls key =
  match Hashtbl.find_opt t.nodes cls with
  | Some { n_cls = Some c; _ } -> Ast.find_meth c key
  | _ -> None

let rec resolve t cls key =
  match own_meth t cls key with
  | Some m -> Some (cls, m)
  | None -> ( match super t cls with Some s -> resolve t s key | None -> None)

let methods_with_key t key =
  List.filter_map
    (fun (c : Ast.cls) -> Option.map (fun m -> (c.c_name, m)) (Ast.find_meth c key))
    t.program.Ast.p_classes

let cha_targets t ~recv_ty key =
  match recv_ty with
  | None -> methods_with_key t key
  | Some ty ->
      if not (mem t ty) then methods_with_key t key
      else
        let candidates = subtypes t ty in
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun sub ->
            match Hashtbl.find_opt t.nodes sub with
            | Some { n_kind = `Class; n_cls = Some _; _ } -> (
                match resolve t sub key with
                | Some (owner, m) when not (Hashtbl.mem seen owner) ->
                    Hashtbl.add seen owner ();
                    Some (owner, m)
                | _ -> None)
            | _ -> None)
          candidates

let iter_methods t f =
  List.iter
    (fun (c : Ast.cls) -> List.iter (fun m -> f c.c_name m) c.Ast.c_methods)
    t.program.Ast.p_classes
