(** Class-hierarchy information and class-hierarchy-analysis (CHA) call
    resolution for ALite programs.

    The hierarchy mixes {e application classes} (parsed, with bodies)
    and {e platform declarations} (name/kind/supertype only, no bodies),
    mirroring the paper's treatment: platform method bodies are not part
    of the analyzed program. *)

type decl = {
  d_name : string;
  d_kind : [ `Class | `Interface ];
  d_super : string option;
  d_interfaces : string list;
}
(** A body-less platform type declaration. *)

type t

exception Hierarchy_error of string
(** Raised by {!create} on duplicate type names or inheritance cycles. *)

val create : ?platform:decl list -> Ast.program -> t
(** Build the hierarchy for a program together with platform
    declarations.  Unknown supertypes are tolerated (treated as roots)
    so partially-known programs can still be analyzed; {!Wellformed}
    reports them as diagnostics.  @raise Hierarchy_error on duplicates
    or cycles. *)

val mem : t -> string -> bool

val kind : t -> string -> [ `Class | `Interface ] option

val is_application : t -> string -> bool
(** [true] iff the type came from the program (has bodies). *)

val types : t -> string list
(** All known type names, application and platform. *)

val application_classes : t -> Ast.cls list

val super : t -> string -> string option

val ancestors : t -> string -> string list
(** All strict supertypes, via [extends] and [implements], in no
    particular order. *)

val superclass_chain : t -> string -> string list
(** The [extends] chain from the type upward, excluding the type
    itself. *)

val subtype : t -> string -> string -> bool
(** [subtype t sub sup]: reflexive-transitive, across both [extends]
    and [implements]. *)

val subtypes : t -> string -> string list
(** All reflexive-transitive subtypes of a type. *)

val field_ty : t -> string -> string -> Ast.ty option
(** [field_ty t cls f] looks up the declared type of field [f] starting
    at [cls] and walking up the superclass chain. *)

val own_meth : t -> string -> Ast.meth_key -> Ast.meth option
(** A method defined directly in the given application class. *)

val resolve : t -> string -> Ast.meth_key -> (string * Ast.meth) option
(** Dynamic-dispatch lookup: the first definition of the method found
    on the superclass chain starting at the given (runtime) class.
    Returns the defining class and the method. *)

val cha_targets : t -> recv_ty:string option -> Ast.meth_key -> (string * Ast.meth) list
(** Possible targets of a virtual call, by class hierarchy analysis:
    for every application class that is a subtype of the receiver's
    static type, the dispatch result.  With [recv_ty = None] (statically
    untyped receiver) every application method with the key is a
    target.  Results are deduplicated by defining class. *)

val methods_with_key : t -> Ast.meth_key -> (string * Ast.meth) list
(** All application methods having the given key. *)

val iter_methods : t -> (string -> Ast.meth -> unit) -> unit
(** Iterate over all application methods with their defining class. *)
