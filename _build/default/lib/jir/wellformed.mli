(** Well-formedness diagnostics for ALite programs.

    Diagnostics never abort the analysis — the paper's setting is
    whole-app analysis of code that may reference platform types the
    model does not know — but they surface modeling gaps loudly. *)

type severity = Error | Warning

type diagnostic = { severity : severity; where : string; message : string }

val pp_diagnostic : diagnostic Fmt.t

val check : ?platform:Hierarchy.decl list -> Ast.program -> diagnostic list
(** Checks performed:
    - duplicate class/interface names;
    - unknown supertypes and interfaces (warning: treated as opaque);
    - [extends] on an interface target / [implements] on a class target;
    - inheritance cycles (error, reported rather than raised);
    - duplicate field names / duplicate method keys within a class;
    - duplicate parameter or local names within a method;
    - variables used but never defined, and not parameters/[this];
    - [return v] in a void method / bare [return] in a non-void one;
    - [new I()] where [I] is an interface. *)

val errors : diagnostic list -> diagnostic list

val is_clean : diagnostic list -> bool
(** No diagnostics of severity [Error]. *)
