(** A package bundles an application's layout definitions with its
    resource table — the static-resource half of an app, next to the
    ALite code half. *)

type t

val create : unit -> t

val resources : t -> Resource.t

val add : t -> Layout.def -> unit
(** Registers the layout and all its ids in the resource table.
    @raise Invalid_argument on a duplicate layout name. *)

val add_xml : t -> name:string -> string -> (unit, string) result
(** Parse XML text and {!add} it. *)

val find : t -> string -> Layout.def option
(** The include/merge-expanded definition ({!Expand}); falls back to
    the raw tree when expansion fails (see {!expansion_errors}). *)

val find_raw : t -> string -> Layout.def option
(** The definition as added, includes unexpanded. *)

val find_by_layout_id : t -> int -> Layout.def option
(** Look up a layout through its [R.layout] constant — what an
    inflater call does.  Expanded, like {!find}. *)

val layouts : t -> Layout.def list
(** Expanded definitions, in addition order. *)

val raw_layouts : t -> Layout.def list

val expansion_errors : t -> (string * string) list
(** (layout, error) pairs for definitions whose includes could not be
    expanded (unknown references, cycles). *)

val total_nodes : t -> int
(** Sum of (expanded) layout sizes: an upper bound on views created
    per full inflation pass. *)
