(** Layout definitions: rooted trees of [(view class, optional id)]
    nodes — the abstraction of Section 3.2.1 of the paper.

    A {e path} (child-index list from the root) gives each layout node
    a stable identity; the static analysis mints one inflated-view
    abstraction per (inflation site, layout node), keyed by these
    paths. *)

type node = {
  view_class : string;
  id : string option;
  children : node list;
  include_of : string option;
      (** [Some l]: an [<include layout="@layout/l" />] element, to be
          substituted by {!Expand}. *)
  onclick : string option;
      (** [android:onClick="name"]: the activity method handling clicks
          on this view (declarative listener registration). *)
  fragment_class : string option;
      (** [<fragment android:name="F" />]: a declaratively placed
          fragment; the node inflates to a placeholder container that
          receives [F.onCreateView]'s views. *)
}

type def = { name : string; root : node }

type path = int list
(** [[]] is the root; [[0; 1]] is the second child of the first child. *)

val node : ?id:string -> ?onclick:string -> ?fragment:string -> ?children:node list -> string -> node

val include_node : ?id:string -> string -> node
(** [include_node ~id "detail"] is [<include layout="@layout/detail"
    android:id="@+id/..." />]. *)

val merge_root : string
(** The tag of a [<merge>] root element. *)

val def : name:string -> node -> def

val of_xml : name:string -> Axml.t -> (def, string) result
(** Interpret an XML document as a layout: tags are view classes,
    [android:id="@+id/n"] (or ["@id/n"]) attributes are view ids.
    Other attributes are ignored, as the paper's abstraction keeps
    only classes and ids. *)

val parse : name:string -> string -> (def, string) result
(** Parse XML text directly. *)

val parse_exn : name:string -> string -> def

val to_xml : def -> Axml.t

val pp : def Fmt.t
(** Renders the XML form. *)

val fold : def -> init:'a -> f:('a -> path -> node -> 'a) -> 'a
(** Preorder fold over all nodes with their paths. *)

val nodes : def -> (path * node) list
(** Preorder list of all nodes. *)

val size : def -> int
(** Number of nodes. *)

val find : def -> path -> node option

val ids : def -> string list
(** All view-id names mentioned, preorder, duplicates preserved. *)

val find_by_id : def -> string -> (path * node) list
(** All nodes carrying the given id. *)

val edges : def -> (path * path) list
(** Parent-child pairs — the layout edges of the paper's semantics. *)

val register : Resource.t -> def -> unit
(** Enter the layout's name and every id it mentions into the resource
    table (what compiling the XML to the [R] class does in the SDK). *)
