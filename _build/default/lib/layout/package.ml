type t = {
  res : Resource.t;
  defs : (string, Layout.def) Hashtbl.t;
  expanded : (string, Layout.def) Hashtbl.t;  (** memoized include/merge expansion *)
  mutable expansion_errs : (string * string) list;
  mutable order : string list;  (** reversed addition order *)
}

let create () =
  {
    res = Resource.create ();
    defs = Hashtbl.create 16;
    expanded = Hashtbl.create 16;
    expansion_errs = [];
    order = [];
  }

let resources t = t.res

let add t (d : Layout.def) =
  if Hashtbl.mem t.defs d.name then
    invalid_arg (Printf.sprintf "Package.add: duplicate layout %s" d.name);
  Hashtbl.add t.defs d.name d;
  t.order <- d.name :: t.order;
  (* new definitions can change earlier expansions (an include may now
     resolve); recompute lazily *)
  Hashtbl.reset t.expanded;
  t.expansion_errs <- [];
  Layout.register t.res d

let add_xml t ~name src =
  match Layout.parse ~name src with
  | Ok d -> (
      match add t d with () -> Ok () | exception Invalid_argument e -> Error e)
  | Error e -> Error e

let find_raw t name = Hashtbl.find_opt t.defs name

(* Inflation (static and dynamic alike) sees the include/merge-expanded
   tree; on expansion errors the raw definition is used and the error
   recorded. *)
let find t name =
  match Hashtbl.find_opt t.expanded name with
  | Some d -> Some d
  | None -> (
      match find_raw t name with
      | None -> None
      | Some raw ->
          let resolved =
            match Expand.expand ~lookup:(find_raw t) raw with
            | Ok d ->
                (* expansion can introduce ids from included layouts *)
                Layout.register t.res d;
                d
            | Error e ->
                t.expansion_errs <- (name, e) :: t.expansion_errs;
                raw
          in
          Hashtbl.replace t.expanded name resolved;
          Some resolved)

let expansion_errors t =
  List.iter (fun name -> ignore (find t name)) (List.rev t.order);
  List.rev t.expansion_errs

let find_by_layout_id t id =
  match Resource.layout_name t.res id with Some name -> find t name | None -> None

let layouts t = List.rev_map (fun name -> Option.get (find t name)) t.order

let raw_layouts t = List.rev_map (fun name -> Hashtbl.find t.defs name) t.order

let total_nodes t = List.fold_left (fun acc d -> acc + Layout.size d) 0 (layouts t)
