(** Layout composition: [<include>] and [<merge>] (a real Android
    resource-system feature the paper's layout abstraction folds away).

    Expansion happens before inflation, mirroring what the platform's
    LayoutInflater does at run time:
    - an [<include layout="@layout/l" />] node is replaced by [l]'s
      (recursively expanded) root; an [android:id] on the include
      overrides the root's id;
    - a [<merge>] root of an included layout is spliced: its children
      are attached directly to the include's parent;
    - a [<merge>] root of a directly-inflated layout behaves as a
      [FrameLayout] (the platform requires a parent in that case; we
      model the attachment container). *)

val expand :
  lookup:(string -> Layout.def option) -> Layout.def -> (Layout.def, string) result
(** [expand ~lookup def] substitutes every include.  Errors on unknown
    layout references, include cycles, and [<merge>] with an id used as
    an include target's override carrier when it has no single root. *)
