let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

(* Expand a node into the list of nodes that replace it (an include of
   a <merge> layout expands to several siblings). *)
let rec expand_node ~lookup ~seen (node : Layout.node) =
  match node.include_of with
  | None ->
      let* children = expand_children ~lookup ~seen node.children in
      Ok [ { node with children; include_of = None } ]
  | Some ref_name -> (
      if List.mem ref_name seen then
        Error (Printf.sprintf "include cycle through layout %s" ref_name)
      else
        match lookup ref_name with
        | None -> Error (Printf.sprintf "include of unknown layout %s" ref_name)
        | Some (target : Layout.def) ->
            let seen = ref_name :: seen in
            if target.root.view_class = Layout.merge_root then
              (* splice the merge's children into the parent *)
              expand_children ~lookup ~seen target.root.children
            else
              let* expanded = expand_node ~lookup ~seen target.root in
              let override_id root =
                match node.id with Some _ -> { root with Layout.id = node.id } | None -> root
              in
              Ok (List.map override_id expanded))

and expand_children ~lookup ~seen children =
  let* expanded = map_result (expand_node ~lookup ~seen) children in
  Ok (List.concat expanded)

let expand ~lookup (def : Layout.def) =
  let* roots = expand_node ~lookup ~seen:[ def.name ] def.root in
  match roots with
  | [ root ] ->
      let root =
        if root.Layout.view_class = Layout.merge_root then
          (* a directly-inflated <merge> root acts as its attachment
             container; model it as a FrameLayout *)
          { root with view_class = "FrameLayout" }
        else root
      in
      Ok { def with root }
  | _ -> Error (Printf.sprintf "layout %s: root expansion did not yield a single node" def.name)
