type node = {
  view_class : string;
  id : string option;
  children : node list;
  include_of : string option;
  onclick : string option;
  fragment_class : string option;
}

type def = { name : string; root : node }

type path = int list

let node ?id ?onclick ?fragment ?(children = []) view_class =
  { view_class; id; children; include_of = None; onclick; fragment_class = fragment }

let include_node ?id layout =
  {
    view_class = "include";
    id;
    children = [];
    include_of = Some layout;
    onclick = None;
    fragment_class = None;
  }

let merge_root = "merge"

let def ~name root = { name; root }

let id_of_attr value =
  let strip prefix =
    if String.length value > String.length prefix && String.sub value 0 (String.length prefix) = prefix
    then Some (String.sub value (String.length prefix) (String.length value - String.length prefix))
    else None
  in
  match strip "@+id/" with
  | Some name -> Ok (Some name)
  | None -> (
      match strip "@id/" with
      | Some name -> Ok (Some name)
      | None -> Error (Printf.sprintf "malformed android:id value %S" value))

let layout_ref_of_attr value =
  let prefix = "@layout/" in
  if String.length value > String.length prefix && String.sub value 0 (String.length prefix) = prefix
  then Ok (String.sub value (String.length prefix) (String.length value - String.length prefix))
  else Error (Printf.sprintf "malformed layout reference %S" value)

let rec node_of_xml (xml : Axml.t) =
  let ( let* ) = Result.bind in
  let* id =
    match Axml.attr xml "android:id" with
    | None -> Ok None
    | Some value -> id_of_attr value
  in
  let* include_of =
    if xml.Axml.tag <> "include" then Ok None
    else
      match Axml.attr xml "layout" with
      | Some value -> Result.map Option.some (layout_ref_of_attr value)
      | None -> Error "<include> element without a layout attribute"
  in
  let rec convert_children acc = function
    | [] -> Ok (List.rev acc)
    | child :: rest ->
        let* c = node_of_xml child in
        convert_children (c :: acc) rest
  in
  let* children = convert_children [] xml.Axml.children in
  let* fragment_class =
    if xml.Axml.tag <> "fragment" then Ok None
    else
      match (Axml.attr xml "android:name", Axml.attr xml "class") with
      | Some cls, _ | None, Some cls -> Ok (Some cls)
      | None, None -> Error "<fragment> element without android:name"
  in
  (* a <fragment> placeholder behaves as a simple container *)
  let view_class = if fragment_class <> None then "FrameLayout" else xml.Axml.tag in
  Ok
    {
      view_class;
      id;
      children;
      include_of;
      onclick = Axml.attr xml "android:onClick";
      fragment_class;
    }

let of_xml ~name xml = Result.map (fun root -> { name; root }) (node_of_xml xml)

let parse ~name src =
  match Axml.parse src with Ok xml -> of_xml ~name xml | Error e -> Error e

let parse_exn ~name src =
  match parse ~name src with Ok d -> d | Error e -> failwith (Printf.sprintf "layout %s: %s" name e)

let rec node_to_xml n =
  let attrs = match n.id with Some i -> [ ("android:id", "@+id/" ^ i) ] | None -> [] in
  let attrs =
    match n.include_of with Some l -> attrs @ [ ("layout", "@layout/" ^ l) ] | None -> attrs
  in
  let attrs =
    match n.onclick with Some h -> attrs @ [ ("android:onClick", h) ] | None -> attrs
  in
  match n.fragment_class with
  | Some cls ->
      Axml.element
        ~attrs:(attrs @ [ ("android:name", cls) ])
        ~children:(List.map node_to_xml n.children) "fragment"
  | None -> Axml.element ~attrs ~children:(List.map node_to_xml n.children) n.view_class

let to_xml d = node_to_xml d.root

let pp ppf d = Axml.pp ppf (to_xml d)

let fold d ~init ~f =
  let rec go acc path n =
    let acc = f acc (List.rev path) n in
    List.fold_left
      (fun (acc, i) child -> (go acc (i :: path) child, i + 1))
      (acc, 0) n.children
    |> fst
  in
  go init [] d.root

let nodes d = List.rev (fold d ~init:[] ~f:(fun acc path n -> (path, n) :: acc))

let size d = fold d ~init:0 ~f:(fun acc _ _ -> acc + 1)

let find d path =
  let rec go n = function
    | [] -> Some n
    | i :: rest -> ( match List.nth_opt n.children i with Some c -> go c rest | None -> None)
  in
  go d.root path

let ids d =
  List.rev
    (fold d ~init:[] ~f:(fun acc _ n -> match n.id with Some i -> i :: acc | None -> acc))

let find_by_id d target =
  List.filter (fun (_, n) -> n.id = Some target) (nodes d)

let edges d =
  List.rev
    (fold d ~init:[] ~f:(fun acc path n ->
         List.fold_left
           (fun (acc, i) _ -> ((path, path @ [ i ]) :: acc, i + 1))
           (acc, 0) n.children
         |> fst))

let register resources d =
  ignore (Resource.layout_id resources d.name);
  List.iter (fun i -> ignore (Resource.view_id resources i)) (ids d)
