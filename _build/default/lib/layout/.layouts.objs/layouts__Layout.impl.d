lib/layout/layout.ml: Axml List Option Printf Resource Result String
