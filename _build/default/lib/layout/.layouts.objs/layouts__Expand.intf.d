lib/layout/expand.mli: Layout
