lib/layout/resource.mli:
