lib/layout/package.mli: Layout Resource
