lib/layout/layout.mli: Axml Fmt Resource
