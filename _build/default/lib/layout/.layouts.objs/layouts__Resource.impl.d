lib/layout/resource.ml: Hashtbl List
