lib/layout/expand.ml: Layout List Printf Result
