lib/layout/package.ml: Expand Hashtbl Layout List Option Printf Resource
