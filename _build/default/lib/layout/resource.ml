let layout_base = 0x7f030000

let view_base = 0x7f080000

type table = {
  forward : (string, int) Hashtbl.t;
  backward : (int, string) Hashtbl.t;
  mutable order : string list;  (** reversed assignment order *)
  base : int;
}

type t = { layouts : table; views : table }

let create_table base = { forward = Hashtbl.create 32; backward = Hashtbl.create 32; order = []; base }

let create () = { layouts = create_table layout_base; views = create_table view_base }

let assign table name =
  match Hashtbl.find_opt table.forward name with
  | Some id -> id
  | None ->
      let id = table.base + Hashtbl.length table.forward in
      Hashtbl.add table.forward name id;
      Hashtbl.add table.backward id name;
      table.order <- name :: table.order;
      id

let layout_id t name = assign t.layouts name

let view_id t name = assign t.views name

let find_layout_id t name = Hashtbl.find_opt t.layouts.forward name

let find_view_id t name = Hashtbl.find_opt t.views.forward name

let layout_name t id = Hashtbl.find_opt t.layouts.backward id

let view_name t id = Hashtbl.find_opt t.views.backward id

let is_layout_id id = id >= layout_base && id < layout_base + 0x10000

let is_view_id id = id >= view_base && id < view_base + 0x10000

let layout_names t = List.rev t.layouts.order

let view_names t = List.rev t.views.order

let counts t = (Hashtbl.length t.layouts.forward, Hashtbl.length t.views.forward)
