(** Resource table: the model of the auto-generated Android [R] class.

    Each layout name and each view-id name gets a unique integer
    constant, in the same address ranges real Android uses
    ([0x7f03xxxx] for [R.layout], [0x7f08xxxx] for [R.id]).  Reads of
    [R.layout.f] / [R.id.f] in ALite code evaluate to these constants
    both in the dynamic semantics and in the static analysis. *)

type t

val layout_base : int
(** [0x7f030000] *)

val view_base : int
(** [0x7f080000] *)

val create : unit -> t

val layout_id : t -> string -> int
(** Assign-or-lookup the constant for [R.layout.<name>]. *)

val view_id : t -> string -> int
(** Assign-or-lookup the constant for [R.id.<name>]. *)

val find_layout_id : t -> string -> int option
(** Lookup without assignment. *)

val find_view_id : t -> string -> int option

val layout_name : t -> int -> string option
(** Inverse of {!layout_id}. *)

val view_name : t -> int -> string option

val is_layout_id : int -> bool
(** Purely range-based test. *)

val is_view_id : int -> bool

val layout_names : t -> string list
(** In assignment order. *)

val view_names : t -> string list

val counts : t -> int * int
(** [(number of layout ids, number of view ids)] — the "ids L/V" column
    of Table 1. *)
