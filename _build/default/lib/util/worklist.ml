type 'a t = { queue : 'a Queue.t; pending : ('a, unit) Hashtbl.t }

let create () = { queue = Queue.create (); pending = Hashtbl.create 64 }

let add t x =
  if not (Hashtbl.mem t.pending x) then begin
    Hashtbl.add t.pending x ();
    Queue.add x t.queue
  end

let add_all t xs = List.iter (add t) xs

let pop t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some x ->
      Hashtbl.remove t.pending x;
      Some x

let is_empty t = Queue.is_empty t.queue

let length t = Queue.length t.queue

let rec drain t f =
  match pop t with
  | None -> ()
  | Some x ->
      f x;
      drain t f
