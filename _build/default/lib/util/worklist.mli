(** FIFO worklist with membership-based deduplication.

    The fixed-point solver repeatedly schedules constraint-graph nodes;
    a node already pending must not be enqueued twice.  Elements are
    compared with structural equality via [Hashtbl]. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a -> unit
(** Enqueue unless already pending. *)

val add_all : 'a t -> 'a list -> unit

val pop : 'a t -> 'a option
(** Dequeue the oldest pending element, or [None] when empty. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val drain : 'a t -> ('a -> unit) -> unit
(** [drain t f] pops and applies [f] until the worklist is empty.
    [f] may add further elements. *)
