let pp_comma_list pp = Fmt.list ~sep:(Fmt.any ", ") pp

let pp_lines pp = Fmt.list ~sep:Fmt.cut pp

let pp_set pp ppf xs = Fmt.pf ppf "{%a}" (pp_comma_list pp) xs

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let truncate_string n s =
  if String.length s <= n then s
  else if n <= 3 then String.sub s 0 n
  else String.sub s 0 (n - 3) ^ "..."
