(** String interning.

    Class names, method names, and field names occur millions of times in
    constraint-graph keys; interning turns string comparison into integer
    comparison and bounds memory. *)

type t

type sym = private int
(** Interned symbol.  Symbols from different interner instances must not
    be mixed; in this project a single global table per category is
    used. *)

val create : unit -> t

val intern : t -> string -> sym
(** Idempotent: equal strings map to equal symbols. *)

val name : t -> sym -> string
(** Inverse of {!intern}.  @raise Not_found for foreign symbols. *)

val mem : t -> string -> bool

val count : t -> int
(** Number of distinct symbols interned so far. *)

val compare_sym : sym -> sym -> int

val sym_to_int : sym -> int
