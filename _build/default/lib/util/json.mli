(** Minimal JSON tree, printer, and parser.

    No third-party JSON library is vendored in this sealed environment;
    the analysis exports its solution as JSON for downstream tools
    (Section 6 clients: testing, security analyses), and the test suite
    round-trips through this parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string

val pp : t Fmt.t
(** Pretty (indented) form. *)

val of_string : string -> (t, string) result
(** Parses the full JSON value grammar (numbers are read as [Int] when
    they are exact integers, [Float] otherwise; no unicode escapes
    beyond [\uXXXX] for the BMP). *)

val equal : t -> t -> bool

val member : string -> t -> t option
(** Field lookup on [Obj]. *)

val to_list : t -> t list option
