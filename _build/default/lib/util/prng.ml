type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit logical
     shift could still wrap negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else
    let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    (* 53 significand bits, uniform in [0,1) *)
    v /. 9007199254740992.0 < p

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 pairs in
  if total <= 0 then invalid_arg "Prng.choose_weighted: no positive weight";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Prng.choose_weighted: empty list"
    | (w, x) :: rest ->
        let w = max 0 w in
        if k < w then x else pick (k - w) rest
  in
  pick k pairs

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = next t }
