(** Shared pretty-printing helpers built on {!Fmt}. *)

val pp_comma_list : 'a Fmt.t -> 'a list Fmt.t
(** Comma-separated list. *)

val pp_lines : 'a Fmt.t -> 'a list Fmt.t
(** Newline-separated list. *)

val pp_set : 'a Fmt.t -> 'a list Fmt.t
(** [{a, b, c}] notation. *)

val quote : string -> string
(** Double-quote with minimal escaping of backslash and quote. *)

val truncate_string : int -> string -> string
(** [truncate_string n s] is [s] if it fits in [n] characters, otherwise
    a prefix followed by ["..."]. *)
