lib/util/worklist.mli:
