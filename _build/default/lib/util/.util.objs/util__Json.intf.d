lib/util/json.mli: Fmt
