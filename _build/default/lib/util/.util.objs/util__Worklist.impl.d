lib/util/worklist.ml: Hashtbl List Queue
