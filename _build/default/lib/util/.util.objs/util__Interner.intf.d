lib/util/interner.mli:
