lib/util/json.ml: Buffer Char Float Fmt List Option Printf String
