lib/util/prng.mli:
