lib/util/pretty.ml: Buffer Fmt String
