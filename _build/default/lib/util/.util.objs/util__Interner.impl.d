lib/util/interner.ml: Array Hashtbl Int
