lib/util/pretty.mli: Fmt
