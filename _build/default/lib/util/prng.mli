(** Deterministic pseudo-random number generation.

    All randomized components of the project (the synthetic corpus
    generator, property-based test generators that need auxiliary
    randomness) draw from this splitmix64 generator so that every
    experiment is reproducible from a seed.  The interface deliberately
    avoids [Random] from the standard library: benches and tests must not
    depend on global mutable state they do not control. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    stream as [t] from this point on. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on an
    empty list. *)

val choose_weighted : t -> (int * 'a) list -> 'a
(** [choose_weighted t pairs] picks an element with probability
    proportional to its (positive) weight.  @raise Invalid_argument if
    all weights are nonpositive or the list is empty. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a fresh independent generator, advancing [t]. *)
