type sym = int

type t = { forward : (string, sym) Hashtbl.t; mutable backward : string array; mutable size : int }

let create () = { forward = Hashtbl.create 256; backward = Array.make 256 ""; size = 0 }

let grow t =
  let capacity = Array.length t.backward in
  if t.size >= capacity then begin
    let bigger = Array.make (capacity * 2) "" in
    Array.blit t.backward 0 bigger 0 capacity;
    t.backward <- bigger
  end

let intern t s =
  match Hashtbl.find_opt t.forward s with
  | Some sym -> sym
  | None ->
      grow t;
      let sym = t.size in
      t.backward.(sym) <- s;
      t.size <- t.size + 1;
      Hashtbl.add t.forward s sym;
      sym

let name t sym = if sym < 0 || sym >= t.size then raise Not_found else t.backward.(sym)

let mem t s = Hashtbl.mem t.forward s

let count t = t.size

let compare_sym = Int.compare

let sym_to_int s = s
