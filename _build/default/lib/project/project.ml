let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let files_with_ext dir ext =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ext)
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []

let source_files dir =
  match files_with_ext (Filename.concat dir "src") ".alite" with
  | [] -> files_with_ext dir ".alite"
  | files -> files

let layout_files dir =
  match files_with_ext (Filename.concat (Filename.concat dir "res") "layout") ".xml" with
  | [] -> files_with_ext dir ".xml"
  | files -> files

let load dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s is not a directory" dir)
  else
    let sources = source_files dir in
    if sources = [] then Error (Printf.sprintf "%s contains no .alite sources" dir)
    else
      let code =
        String.concat "\n" (List.map (fun path -> "// file: " ^ path ^ "\n" ^ read_file path) sources)
      in
      let layouts =
        List.map
          (fun path -> (Filename.remove_extension (Filename.basename path), read_file path))
          (layout_files dir)
      in
      Framework.App.of_source ~name:(Filename.basename dir) ~code ~layouts
