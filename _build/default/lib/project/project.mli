(** Directory-based application loading, mirroring an Android project
    layout:

    {v
    myapp/
      src/*.alite          ALite source files (concatenated)
      res/layout/*.xml     layout definitions (file basename = layout name)
    v}

    Also accepts a flat directory of [*.alite] and [*.xml] files. *)

val load : string -> (Framework.App.t, string) result
(** [load dir] reads every source and layout file under [dir].  The app
    is named after the directory's basename. *)

val source_files : string -> string list
(** The [.alite] files {!load} would read, in load order (sorted). *)

val layout_files : string -> string list
