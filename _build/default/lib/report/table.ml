type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let columns = List.length header in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.init columns (fun i -> if i = 0 then Left else Right)
  in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth header i))
      rows
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell) row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let cell_float = function None -> "-" | Some v -> Printf.sprintf "%.2f" v

let cell_int = string_of_int

let cell_seconds v = Printf.sprintf "%.2f" v
