type table2 = { p2_seconds : float; p2_receivers : float }

let values =
  [
    ("APV", (0.39, 1.00));
    ("Astrid", (4.92, 3.09));
    ("BarcodeScanner", (0.65, 1.00));
    ("Beem", (1.17, 1.04));
    ("ConnectBot", (1.21, 1.00));
    ("FBReader", (3.28, 1.54));
    ("K9", (4.30, 1.15));
    ("KeePassDroid", (2.09, 1.80));
    ("Mileage", (0.41, 2.55));
    ("MyTracks", (1.55, 1.12));
    ("NPR", (0.87, 1.89));
    ("NotePad", (0.63, 1.00));
    ("OpenManager", (0.39, 1.31));
    ("OpenSudoku", (0.66, 1.40));
    ("SipDroid", (0.88, 1.00));
    ("SuperGenPass", (0.31, 2.07));
    ("TippyTipper", (0.18, 1.15));
    ("VLC", (1.15, 1.13));
    ("VuDroid", (0.30, 1.00));
    ("XBMC", (1.74, 8.81));
  ]

let table2 name =
  Option.map
    (fun (p2_seconds, p2_receivers) -> { p2_seconds; p2_receivers })
    (List.assoc_opt name values)

let xbmc_perfect_receivers = 3.59

let xbmc_perfect_results = 1.63

let case_study_perfect name = List.mem name [ "APV"; "BarcodeScanner"; "SuperGenPass" ]
