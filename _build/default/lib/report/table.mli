(** Plain-text table rendering for experiment output. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** Pads columns to their widest cell; [aligns] defaults to [Left] for
    the first column and [Right] for the rest. *)

val cell_float : float option -> string
(** ["-"] for [None] (the paper's notation for "no such operations"),
    two decimals otherwise. *)

val cell_int : int -> string

val cell_seconds : float -> string
