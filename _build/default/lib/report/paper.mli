(** The numbers the paper reports, for paper-vs-measured comparison.

    Table 1 targets are the corpus spec parameters themselves (the
    generator reproduces them by construction; see
    {!Corpus.Apps.specs}).  Table 2 values here are the analysis
    running time and the "receivers" average, which are legible in the
    source text; the remaining Table 2 columns are only characterized
    by the paper's narration ("less than 2 for all but one
    application") and are compared against those bounds instead. *)

type table2 = { p2_seconds : float; p2_receivers : float }

val table2 : string -> table2 option
(** Per-app Table 2 values as published. *)

(** Section 5 case-study: the manually computed "perfectly-precise"
    values for XBMC (other case-study apps were perfectly precise). *)
val xbmc_perfect_receivers : float

val xbmc_perfect_results : float

val case_study_perfect : string -> bool
(** [true] for apps where the paper found the analysis perfectly
    precise (APV, BarcodeScanner, SuperGenPass). *)
