lib/report/paper.mli:
