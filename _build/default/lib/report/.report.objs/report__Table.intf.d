lib/report/table.mli:
