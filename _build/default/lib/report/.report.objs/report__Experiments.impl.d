lib/report/experiments.ml: Buffer Corpus Dynamic Fmt Framework Gator Jir List Option Paper Printf Table Util
