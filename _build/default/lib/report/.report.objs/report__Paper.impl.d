lib/report/paper.ml: List Option
