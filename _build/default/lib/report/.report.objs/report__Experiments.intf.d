lib/report/experiments.mli: Corpus Gator
