type t = {
  name : string;
  program : Jir.Ast.program;
  package : Layouts.Package.t;
  hierarchy : Jir.Hierarchy.t;
}

let make ~name program package =
  { name; program; package; hierarchy = Api.hierarchy program }

let of_source ~name ~code ~layouts =
  match Jir.Parser.parse_program_result code with
  | Error e -> Error e
  | Ok program -> (
      let package = Layouts.Package.create () in
      let rec add_layouts = function
        | [] -> Ok ()
        | (layout_name, xml) :: rest -> (
            match Layouts.Package.add_xml package ~name:layout_name xml with
            | Ok () -> add_layouts rest
            | Error e -> Error (Printf.sprintf "layout %s: %s" layout_name e))
      in
      match add_layouts layouts with
      | Error e -> Error e
      | Ok () -> (
          match make ~name program package with
          | app -> Ok app
          | exception Jir.Hierarchy.Hierarchy_error e -> Error e))

let filter_classes t predicate =
  List.filter (fun (c : Jir.Ast.cls) -> predicate t.hierarchy c.c_name) t.program.p_classes

let activity_classes t = filter_classes t Views.is_activity_class

let dialog_classes t = filter_classes t Views.is_dialog_class

let listener_classes t = filter_classes t Listeners.is_listener_class

let view_classes t = filter_classes t Views.is_view_class

let typing_env t ~owner m =
  Jir.Typing.infer ~hierarchy:t.hierarchy ~external_return:Api.return_ty ~owner m

let diagnostics t = Jir.Wellformed.check ~platform:Api.platform_decls t.program
