(** An application under analysis: ALite code plus layout resources,
    with a hierarchy built against the platform model.  This is the
    input type of both the static analysis and the dynamic
    semantics. *)

type t = private {
  name : string;
  program : Jir.Ast.program;
  package : Layouts.Package.t;
  hierarchy : Jir.Hierarchy.t;
}

val make : name:string -> Jir.Ast.program -> Layouts.Package.t -> t
(** @raise Jir.Hierarchy.Hierarchy_error on duplicate/cyclic classes. *)

val of_source : name:string -> code:string -> layouts:(string * string) list -> (t, string) result
(** Build an app from ALite source text and named XML layout texts. *)

val activity_classes : t -> Jir.Ast.cls list
(** Application classes that are (transitive) subclasses of
    [Activity]. *)

val dialog_classes : t -> Jir.Ast.cls list

val listener_classes : t -> Jir.Ast.cls list

val view_classes : t -> Jir.Ast.cls list
(** Application-defined view classes (like Figure 1's
    [TerminalView]). *)

val typing_env : t -> owner:string -> Jir.Ast.meth -> Jir.Typing.env
(** Typing with platform API return types plugged in. *)

val diagnostics : t -> Jir.Wellformed.diagnostic list
