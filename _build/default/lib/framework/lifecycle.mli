(** Activity/dialog lifecycle callbacks.

    The paper models the implicit platform-driven creation of an
    activity as [t = new a()] followed by calls [t.m()] for every
    Android-defined callback [m] the application overrides.  This
    module enumerates the modeled callbacks. *)

val activity_callbacks : (string * int) list
(** [(name, arity)] pairs the platform may invoke on an activity. *)

val dialog_callbacks : (string * int) list

val on_create_options_menu : string * int
(** [("onCreateOptionsMenu", 1)] — invoked with the activity's implicit
    options-menu object (menu extension). *)

val on_options_item_selected : string * int
(** [("onOptionsItemSelected", 1)] — invoked with any item of the
    activity's options menu. *)

val is_activity_callback : name:string -> arity:int -> bool

val ordered_for : Jir.Ast.cls -> Jir.Ast.meth list
(** The lifecycle callbacks a class actually defines, in canonical
    lifecycle order ([onCreate] before [onStart] before [onResume],
    ...).  Used by both the static callback modeling and the dynamic
    semantics. *)
