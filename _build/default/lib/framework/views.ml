let root_view_class = "View"

let root_activity_class = "Activity"

let root_dialog_class = "Dialog"

let container_class = "ViewGroup"

let cls ?super ?(interfaces = []) name =
  { Jir.Hierarchy.d_name = name; d_kind = `Class; d_super = super; d_interfaces = interfaces }

let decls =
  [
    cls "Object";
    (* core component classes *)
    cls ~super:"Object" "Context";
    cls ~super:"Context" "Activity";
    cls ~super:"Activity" "ListActivity";
    cls ~super:"Activity" "TabActivity";
    cls ~super:"Activity" "PreferenceActivity";
    cls ~super:"Object" "Dialog";
    cls ~super:"Dialog" "AlertDialog";
    cls ~super:"Dialog" "ProgressDialog";
    cls ~super:"Object" "LayoutInflater";
    cls ~super:"Object" "Adapter";
    cls ~super:"Adapter" "BaseAdapter";
    cls ~super:"BaseAdapter" "ArrayAdapter";
    cls ~super:"BaseAdapter" "CursorAdapter";
    cls ~super:"Object" "Fragment";
    cls ~super:"Fragment" "ListFragment";
    cls ~super:"Fragment" "DialogFragment";
    cls ~super:"Object" "FragmentManager";
    cls ~super:"Object" "FragmentTransaction";
    cls ~super:"Object" "MotionEvent";
    cls ~super:"Object" "KeyEvent";
    cls ~super:"Object" "Bundle";
    cls ~super:"Object" "Intent";
    (* Options menus are modeled as a view-like hierarchy: a Menu is a
       container of MenuItem leaves, so the parent-child and find-item
       machinery of the core analysis applies unchanged (extension; the
       paper does not treat menus). *)
    cls ~super:"ViewGroup" "Menu";
    cls ~super:"Menu" "SubMenu";
    cls ~super:"View" "MenuItem";
    (* view hierarchy *)
    cls ~super:"Object" "View";
    cls ~super:"View" "ViewGroup";
    cls ~super:"View" "TextView";
    cls ~super:"TextView" "EditText";
    cls ~super:"TextView" "Button";
    cls ~super:"Button" "CompoundButton";
    cls ~super:"CompoundButton" "CheckBox";
    cls ~super:"CompoundButton" "RadioButton";
    cls ~super:"CompoundButton" "ToggleButton";
    cls ~super:"View" "ImageView";
    cls ~super:"ImageView" "ImageButton";
    cls ~super:"View" "ProgressBar";
    cls ~super:"ProgressBar" "SeekBar";
    cls ~super:"View" "SurfaceView";
    cls ~super:"ViewGroup" "LinearLayout";
    cls ~super:"LinearLayout" "TableLayout";
    cls ~super:"LinearLayout" "TableRow";
    cls ~super:"LinearLayout" "RadioGroup";
    cls ~super:"ViewGroup" "RelativeLayout";
    cls ~super:"ViewGroup" "FrameLayout";
    cls ~super:"FrameLayout" "ScrollView";
    cls ~super:"FrameLayout" "TabHost";
    cls ~super:"FrameLayout" "ViewAnimator";
    cls ~super:"ViewAnimator" "ViewFlipper";
    cls ~super:"ViewAnimator" "ViewSwitcher";
    cls ~super:"ViewGroup" "AdapterView";
    cls ~super:"AdapterView" "AbsListView";
    cls ~super:"AbsListView" "ListView";
    cls ~super:"AbsListView" "GridView";
    cls ~super:"AdapterView" "Spinner";
    cls ~super:"AdapterView" "Gallery";
    cls ~super:"ViewGroup" "WebView";
  ]

let is_view_class hierarchy name = Jir.Hierarchy.subtype hierarchy name root_view_class

let is_activity_class hierarchy name = Jir.Hierarchy.subtype hierarchy name root_activity_class

let is_dialog_class hierarchy name = Jir.Hierarchy.subtype hierarchy name root_dialog_class

let is_container_class hierarchy name = Jir.Hierarchy.subtype hierarchy name container_class

let root_fragment_class = "Fragment"

let is_fragment_class hierarchy name = Jir.Hierarchy.subtype hierarchy name root_fragment_class

let concrete_view_classes =
  [
    "TextView";
    "EditText";
    "Button";
    "CheckBox";
    "RadioButton";
    "ToggleButton";
    "ImageView";
    "ImageButton";
    "ProgressBar";
    "SeekBar";
  ]

let concrete_container_classes =
  [
    "LinearLayout";
    "RelativeLayout";
    "FrameLayout";
    "TableLayout";
    "ScrollView";
    "ViewFlipper";
    "ListView";
    "RadioGroup";
  ]
