type event =
  | Click
  | Long_click
  | Touch
  | Key
  | Focus_change
  | Item_click
  | Item_selected
  | Seek_bar_change
  | Checked_change
  | Editor_action

type handler = { h_name : string; h_arity : int; h_view_param : int option; h_item_param : int option }

type iface = { i_name : string; i_event : event; i_setter : string; i_handlers : handler list }

let handler ?view_param ?item_param name arity =
  { h_name = name; h_arity = arity; h_view_param = view_param; h_item_param = item_param }

let all =
  [
    {
      i_name = "OnClickListener";
      i_event = Click;
      i_setter = "setOnClickListener";
      i_handlers = [ handler ~view_param:0 "onClick" 1 ];
    };
    {
      i_name = "OnLongClickListener";
      i_event = Long_click;
      i_setter = "setOnLongClickListener";
      i_handlers = [ handler ~view_param:0 "onLongClick" 1 ];
    };
    {
      i_name = "OnTouchListener";
      i_event = Touch;
      i_setter = "setOnTouchListener";
      i_handlers = [ handler ~view_param:0 "onTouch" 2 ];
    };
    {
      i_name = "OnKeyListener";
      i_event = Key;
      i_setter = "setOnKeyListener";
      i_handlers = [ handler ~view_param:0 "onKey" 3 ];
    };
    {
      i_name = "OnFocusChangeListener";
      i_event = Focus_change;
      i_setter = "setOnFocusChangeListener";
      i_handlers = [ handler ~view_param:0 "onFocusChange" 2 ];
    };
    {
      i_name = "OnItemClickListener";
      i_event = Item_click;
      i_setter = "setOnItemClickListener";
      i_handlers = [ handler ~view_param:0 ~item_param:1 "onItemClick" 4 ];
    };
    {
      i_name = "OnItemSelectedListener";
      i_event = Item_selected;
      i_setter = "setOnItemSelectedListener";
      i_handlers = [ handler ~view_param:0 ~item_param:1 "onItemSelected" 4; handler ~view_param:0 "onNothingSelected" 1 ];
    };
    {
      i_name = "OnSeekBarChangeListener";
      i_event = Seek_bar_change;
      i_setter = "setOnSeekBarChangeListener";
      i_handlers =
        [
          handler ~view_param:0 "onProgressChanged" 3;
          handler ~view_param:0 "onStartTrackingTouch" 1;
          handler ~view_param:0 "onStopTrackingTouch" 1;
        ];
    };
    {
      i_name = "OnCheckedChangeListener";
      i_event = Checked_change;
      i_setter = "setOnCheckedChangeListener";
      i_handlers = [ handler ~view_param:0 "onCheckedChanged" 2 ];
    };
    {
      i_name = "OnEditorActionListener";
      i_event = Editor_action;
      i_setter = "setOnEditorActionListener";
      i_handlers = [ handler ~view_param:0 "onEditorAction" 3 ];
    };
  ]

let decls =
  List.map
    (fun i ->
      { Jir.Hierarchy.d_name = i.i_name; d_kind = `Interface; d_super = None; d_interfaces = [] })
    all

let by_setter setter = List.find_opt (fun i -> i.i_setter = setter) all

let by_name name = List.find_opt (fun i -> i.i_name = name) all

let implemented_ifaces hierarchy cls =
  List.filter (fun i -> cls <> i.i_name && Jir.Hierarchy.subtype hierarchy cls i.i_name) all

let is_listener_class hierarchy cls = implemented_ifaces hierarchy cls <> []

let event_name = function
  | Click -> "click"
  | Long_click -> "long-click"
  | Touch -> "touch"
  | Key -> "key"
  | Focus_change -> "focus-change"
  | Item_click -> "item-click"
  | Item_selected -> "item-selected"
  | Seek_bar_change -> "seek-bar-change"
  | Checked_change -> "checked-change"
  | Editor_action -> "editor-action"
