(* Canonical order matters: the dynamic semantics drives an activity
   through these in sequence, and the static modeling adds a call for
   each.  Arity 0: ALite drops the Bundle/Menu parameters real Android
   passes, as they play no role in GUI-object flow. *)
let activity_callbacks =
  [
    ("onCreate", 0);
    ("onStart", 0);
    ("onRestoreInstanceState", 0);
    ("onResume", 0);
    ("onPause", 0);
    ("onSaveInstanceState", 0);
    ("onStop", 0);
    ("onRestart", 0);
    ("onDestroy", 0);
    ("onBackPressed", 0);
    ("onLowMemory", 0);
  ]

let dialog_callbacks = [ ("onCreate", 0); ("onStart", 0); ("onStop", 0) ]

(* Menu callbacks carry arguments (the menu / the selected item), so
   they are modeled specially rather than through the generic zero-arg
   callback list. *)
let on_create_options_menu = ("onCreateOptionsMenu", 1)

let on_options_item_selected = ("onOptionsItemSelected", 1)

let is_activity_callback ~name ~arity = List.mem (name, arity) activity_callbacks

let ordered_for (cls : Jir.Ast.cls) =
  List.filter_map
    (fun (name, arity) -> Jir.Ast.find_meth cls { Jir.Ast.mk_name = name; mk_arity = arity })
    activity_callbacks
