(** The modeled Android view/activity class hierarchy.

    The paper's analysis needs to know which classes are view classes
    (subtypes of [android.view.View]), which are activity classes, and
    which views are containers.  Package prefixes are dropped: the
    modeled type is ["View"], not ["android.view.View"]. *)

val decls : Jir.Hierarchy.decl list
(** Declarations of all modeled platform GUI classes, rooted at
    [Object]. *)

val root_view_class : string
(** ["View"] *)

val root_activity_class : string
(** ["Activity"] *)

val root_dialog_class : string
(** ["Dialog"] — dialogs are an extension beyond the paper's
    implementation, which left them unhandled. *)

val container_class : string
(** ["ViewGroup"] *)

val is_view_class : Jir.Hierarchy.t -> string -> bool

val is_activity_class : Jir.Hierarchy.t -> string -> bool

val is_dialog_class : Jir.Hierarchy.t -> string -> bool

val is_container_class : Jir.Hierarchy.t -> string -> bool

val root_fragment_class : string
(** ["Fragment"] — fragments are an extension beyond the paper's
    implementation, which left them unhandled. *)

val is_fragment_class : Jir.Hierarchy.t -> string -> bool

val concrete_view_classes : string list
(** Platform view classes suitable for layout leaves/containers, used
    by the corpus generator. *)

val concrete_container_classes : string list
