lib/framework/views.mli: Jir
