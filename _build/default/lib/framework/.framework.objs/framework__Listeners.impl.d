lib/framework/listeners.ml: Jir List
