lib/framework/api.mli: Fmt Jir Listeners
