lib/framework/listeners.mli: Jir
