lib/framework/app.mli: Jir Layouts
