lib/framework/lifecycle.ml: Jir List
