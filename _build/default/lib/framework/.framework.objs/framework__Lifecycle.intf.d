lib/framework/lifecycle.mli: Jir
