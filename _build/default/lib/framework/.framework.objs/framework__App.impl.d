lib/framework/app.ml: Api Jir Layouts List Listeners Printf Views
