lib/framework/views.ml: Jir
