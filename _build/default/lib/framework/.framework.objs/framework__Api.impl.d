lib/framework/api.ml: Fmt Jir Listeners Views
