(** The modeled event-listener interfaces.

    A listener class (paper: [ListenerClass]) is an application class
    implementing one of these interfaces.  For a set-listener call
    [x.m(y)], the interface determines the handler methods [n] and the
    position at which the view [x] flows into the callback [y.n(x)]
    (end of Section 3 in the paper). *)

type event =
  | Click
  | Long_click
  | Touch
  | Key
  | Focus_change
  | Item_click
  | Item_selected
  | Seek_bar_change
  | Checked_change
  | Editor_action

type handler = {
  h_name : string;
  h_arity : int;
  h_view_param : int option;
      (** 0-based index of the parameter that receives the view the
          event occurred on; [None] if the callback takes no view. *)
  h_item_param : int option;
      (** for adapter-view events: the parameter receiving the item
          view (a child of the registered view), e.g. [onItemClick]'s
          second parameter. *)
}

type iface = {
  i_name : string;
  i_event : event;
  i_setter : string;  (** the [View] method that registers this listener *)
  i_handlers : handler list;
}

val all : iface list

val decls : Jir.Hierarchy.decl list
(** Interface declarations for the hierarchy. *)

val by_setter : string -> iface option
(** Look up by registration method name, e.g.
    ["setOnClickListener"]. *)

val by_name : string -> iface option

val is_listener_class : Jir.Hierarchy.t -> string -> bool
(** Does the class (transitively) implement any modeled listener
    interface? *)

val implemented_ifaces : Jir.Hierarchy.t -> string -> iface list
(** All modeled interfaces a class implements, transitively. *)

val event_name : event -> string
