(** A minimal XML reader/writer sufficient for Android layout files.

    This replaces the Android SDK's resource tooling (see DESIGN.md,
    substitutions): layout definitions are ordinary XML documents whose
    elements are view classes and whose [android:id] attributes carry
    view ids.  Text content is not meaningful in layouts and is
    ignored; comments, XML declarations, and the usual five character
    entities are handled. *)

type t = { tag : string; attrs : (string * string) list; children : t list }

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t

val attr : t -> string -> string option

val parse : string -> (t, string) result
(** Parse a document with a single root element.  Errors carry a
    line:column position. *)

val parse_exn : string -> t
(** @raise Failure with the rendered error. *)

val pp : t Fmt.t
(** Indented rendering, reparsable by {!parse}. *)

val to_string : t -> string

val equal : t -> t -> bool
