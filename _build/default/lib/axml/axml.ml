type t = { tag : string; attrs : (string * string) list; children : t list }

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let attr t name = List.assoc_opt name t.attrs

exception Error of string * int * int

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let error cur message = raise (Error (message, cur.line, cur.col))

let peek cur = if cur.off < String.length cur.src then Some cur.src.[cur.off] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.off <- cur.off + 1

let looking_at cur s =
  let n = String.length s in
  cur.off + n <= String.length cur.src && String.sub cur.src cur.off n = s

let skip_string cur s = String.iter (fun _ -> advance cur) s

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let rec skip_space cur =
  match peek cur with
  | Some c when is_space c ->
      advance cur;
      skip_space cur
  | _ -> ()

let rec skip_misc cur =
  skip_space cur;
  if looking_at cur "<!--" then begin
    skip_string cur "<!--";
    let rec to_close () =
      if looking_at cur "-->" then skip_string cur "-->"
      else if cur.off >= String.length cur.src then error cur "unterminated comment"
      else begin
        advance cur;
        to_close ()
      end
    in
    to_close ();
    skip_misc cur
  end
  else if looking_at cur "<?" then begin
    skip_string cur "<?";
    let rec to_close () =
      if looking_at cur "?>" then skip_string cur "?>"
      else if cur.off >= String.length cur.src then error cur "unterminated processing instruction"
      else begin
        advance cur;
        to_close ()
      end
    in
    to_close ();
    skip_misc cur
  end

let name cur =
  match peek cur with
  | Some c when is_name_start c ->
      let start = cur.off in
      while (match peek cur with Some c -> is_name_char c | None -> false) do
        advance cur
      done;
      String.sub cur.src start (cur.off - start)
  | _ -> error cur "expected a name"

let decode_entities cur s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> error cur "unterminated entity"
        | Some j ->
            let entity = String.sub s (!i + 1) (j - !i - 1) in
            let repl =
              match entity with
              | "amp" -> "&"
              | "lt" -> "<"
              | "gt" -> ">"
              | "quot" -> "\""
              | "apos" -> "'"
              | other -> error cur (Printf.sprintf "unknown entity &%s;" other)
            in
            Buffer.add_string buf repl;
            i := j + 1
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let attr_value cur =
  let quote =
    match peek cur with
    | Some (('"' | '\'') as q) ->
        advance cur;
        q
    | _ -> error cur "expected a quoted attribute value"
  in
  let start = cur.off in
  while (match peek cur with Some c -> c <> quote | None -> false) do
    advance cur
  done;
  if peek cur = None then error cur "unterminated attribute value";
  let raw = String.sub cur.src start (cur.off - start) in
  advance cur;
  decode_entities cur raw

let rec parse_element cur =
  if not (looking_at cur "<") then error cur "expected '<'";
  advance cur;
  let tag = name cur in
  let rec attrs acc =
    skip_space cur;
    match peek cur with
    | Some '>' ->
        advance cur;
        let children = parse_children cur tag in
        { tag; attrs = List.rev acc; children }
    | Some '/' ->
        advance cur;
        if peek cur = Some '>' then begin
          advance cur;
          { tag; attrs = List.rev acc; children = [] }
        end
        else error cur "expected '>' after '/'"
    | Some c when is_name_start c ->
        let key = name cur in
        skip_space cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> error cur "expected '=' in attribute");
        skip_space cur;
        let value = attr_value cur in
        attrs ((key, value) :: acc)
    | Some c -> error cur (Printf.sprintf "unexpected character %C in tag" c)
    | None -> error cur "unterminated tag"
  in
  attrs []

and parse_children cur tag =
  let out = ref [] in
  let rec loop () =
    skip_misc cur;
    if looking_at cur "</" then begin
      skip_string cur "</";
      let closing = name cur in
      skip_space cur;
      if peek cur = Some '>' then advance cur else error cur "expected '>'";
      if closing <> tag then
        error cur (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag)
    end
    else if looking_at cur "<" then begin
      out := parse_element cur :: !out;
      loop ()
    end
    else if cur.off >= String.length cur.src then
      error cur (Printf.sprintf "unterminated element <%s>" tag)
    else begin
      (* Layouts carry no meaningful text content; skip it. *)
      advance cur;
      loop ()
    end
  in
  loop ();
  List.rev !out

let parse src =
  let cur = { src; off = 0; line = 1; col = 1 } in
  match
    skip_misc cur;
    let root = parse_element cur in
    skip_misc cur;
    if cur.off < String.length cur.src then error cur "trailing content after root element";
    root
  with
  | root -> Ok root
  | exception Error (message, line, col) -> Error (Printf.sprintf "%d:%d: %s" line col message)

let parse_exn src = match parse src with Ok t -> t | Error e -> failwith e

let encode_entities s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf t =
  let pp_attr ppf (k, v) = Fmt.pf ppf " %s=\"%s\"" k (encode_entities v) in
  match t.children with
  | [] -> Fmt.pf ppf "<%s%a />" t.tag (Fmt.list ~sep:Fmt.nop pp_attr) t.attrs
  | children ->
      Fmt.pf ppf "@[<v 2><%s%a>@,%a@]@,</%s>" t.tag
        (Fmt.list ~sep:Fmt.nop pp_attr)
        t.attrs
        (Fmt.list ~sep:Fmt.cut pp)
        children t.tag

let to_string t = Fmt.str "%a@." pp t

let rec equal a b =
  a.tag = b.tag && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children
