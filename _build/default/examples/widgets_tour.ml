(* A tour of the modeled GUI-object categories beyond the paper's
   implementation: dialogs, options menus, list adapters, fragments,
   and <include> layout composition — all in one app.  The example
   prints the derived GUI model and verifies it against the dynamic
   semantics. *)

let code =
  {|
class MainActivity extends Activity {
  field list: ListView;
  method onCreate(): void {
    l = R.layout.main;
    this.setContentView(l);
    // adapter-backed list
    i = R.id.list;
    v0 = this.findViewById(i);
    lv = (ListView) v0;
    this.list = lv;
    ad = new RowAdapter();
    lv.setAdapter(ad);
    rc = new RowClick();
    lv.setOnItemClickListener(rc);
    // a fragment in the toolbar container
    fm = this.getFragmentManager();
    ft = fm.beginTransaction();
    f = new StatusFragment();
    cid = R.id.status_slot;
    ft.add(cid, f);
    // a confirmation dialog
    d = new ConfirmDialog();
  }
  method onCreateOptionsMenu(menu: Menu): void {
    t = 1;
    refresh = menu.add(t);
    g = 0;
    o = 0;
    did = R.id.action_delete;
    del = menu.add(g, did, o, t);
  }
  method onOptionsItemSelected(item: MenuItem): void {
    m = item.getParent();
  }
}

class RowAdapter extends BaseAdapter {
  method getView(pos: int, convert: View, parent: ViewGroup): View {
    inf = parent.getLayoutInflater();
    l = R.layout.row;
    w = inf.inflate(l);
    return w;
  }
}

class RowClick implements OnItemClickListener {
  method onItemClick(p: View, item: View, pos: int, rid: int): void {
    x = R.id.row_text;
    t = item.findViewById(x);
  }
}

class StatusFragment extends Fragment {
  method onCreateView(): View {
    inf = this.getLayoutInflater();
    l = R.layout.status;
    w = inf.inflate(l);
    return w;
  }
}

class ConfirmDialog extends Dialog {
  method onCreate(): void {
    l = R.layout.confirm;
    this.setContentView(l);
    i = R.id.yes;
    b = this.findViewById(i);
    j = new Confirm();
    b.setOnClickListener(j);
  }
}

class Confirm implements OnClickListener {
  method onClick(v: View): void { }
}
|}

let layouts =
  [
    ( "main",
      {|<LinearLayout>
          <include layout="@layout/toolbar" />
          <ListView android:id="@+id/list" />
        </LinearLayout>|} );
    ("toolbar", {|<FrameLayout android:id="@+id/status_slot" />|});
    ("row", {|<LinearLayout><TextView android:id="@+id/row_text" /></LinearLayout>|});
    ("status", {|<TextView android:id="@+id/status_text" />|});
    ("confirm", {|<LinearLayout><Button android:id="@+id/yes" /><Button android:id="@+id/no" /></LinearLayout>|});
  ]

let () =
  let app =
    match Framework.App.of_source ~name:"WidgetsTour" ~code ~layouts with
    | Ok app -> app
    | Error e -> failwith e
  in
  let r = Gator.Analysis.analyze app in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  (* the activity's displayable content, across include + adapter +
     fragment boundaries *)
  Fmt.pr "MainActivity can display:@.";
  List.iter
    (fun v -> Fmt.pr "  %a@." Gator.Node.pp_view v)
    (Gator.Analysis.views_of_activity r "MainActivity");
  Fmt.pr "@.interaction tuples (including dialog content):@.";
  List.iter
    (fun ix -> Fmt.pr "  %a@." Gator.Analysis.pp_interaction ix)
    (Gator.Analysis.interactions r);
  (* menu items *)
  Fmt.pr "@.menu items of MainActivity:@.";
  let menu = Gator.Node.V_alloc (Gator.Node.menu_site "MainActivity") in
  Gator.Graph.View_set.iter
    (fun item -> Fmt.pr "  %a@." Gator.Node.pp_view item)
    (Gator.Graph.children_of r.graph menu);
  let outcome = Dynamic.Interp.run app in
  Fmt.pr "@.dynamic oracle: %a@." Dynamic.Oracle.pp_coverage (Dynamic.Oracle.check r outcome)
