(* Event/interaction profiling (Section 6): the static interaction
   model predicts which (activity, view, event, handler) tuples can
   occur; a run-time exploration then measures which ones actually
   fired.  Tools like A3E use exactly this static model to drive
   exploration toward unexercised handlers.

   This example computes the static model of a corpus app, executes the
   dynamic semantics as the "exploration", and reports coverage. *)

let () =
  let name = match Sys.argv with [| _; n |] -> n | _ -> "ConnectBot" in
  let app =
    match Corpus.Apps.by_name name with
    | Some spec -> Corpus.Gen.generate spec
    | None -> failwith (Printf.sprintf "unknown corpus app %s (try: %s)" name
                          (String.concat ", " Corpus.Apps.names))
  in
  let r = Gator.Analysis.analyze app in
  let predicted = Gator.Analysis.interactions r in
  let outcome = Dynamic.Interp.run app in
  let fired (ix : Gator.Analysis.interaction) =
    List.exists
      (fun (f : Dynamic.Interp.firing) ->
        f.f_view = ix.ix_view && f.f_event = ix.ix_event && f.f_handler = ix.ix_handler
        && List.mem ix.ix_activity f.f_activities)
      outcome.firings
  in
  let hit, missed = List.partition fired predicted in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  Fmt.pr "static interaction model: %d tuples@." (List.length predicted);
  Fmt.pr "fired during exploration: %d@." (List.length hit);
  Fmt.pr "unexercised (exploration targets):@.";
  List.iteri
    (fun i ix -> if i < 12 then Fmt.pr "  %a@." Gator.Analysis.pp_interaction ix)
    missed;
  if List.length missed > 12 then Fmt.pr "  ... and %d more@." (List.length missed - 12);
  let total = List.length predicted in
  if total > 0 then
    Fmt.pr "@.coverage: %.1f%%@." (100.0 *. float_of_int (List.length hit) /. float_of_int total)
