(* Quickstart: analyze the paper's running example (Figure 1, derived
   from ConnectBot) and print every solution fact the paper narrates in
   Sections 2 and 4:

   - the activity's content hierarchy comes from inflating act_console;
   - flow-insensitively, [e] holds both the ViewFlipper and the
     retagged TerminalView; the cast to ViewFlipper filters [f];
   - [g] resolves precisely to the ESC ImageView;
   - the onClick handler's parameter receives that ImageView via the
     SETLISTENER callback modeling;
   - [v] in the handler resolves to the programmatic TerminalView
     through getCurrentView + findViewById + setId + addView;
   - the (activity, view, event, handler) interaction tuple follows. *)

let show r name node = Fmt.pr "%-28s = {%a}@." name
    (Fmt.list ~sep:(Fmt.any ", ") Gator.Node.pp_view)
    (Gator.Analysis.views_at r node)

let () =
  let app = Corpus.Connectbot.app () in
  let r = Gator.Analysis.analyze app in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  Fmt.pr "%-28s = {%a}@." "roots(ConsoleActivity)"
    (Fmt.list ~sep:(Fmt.any ", ") Gator.Node.pp_view)
    (Gator.Analysis.roots_of_activity r "ConsoleActivity");
  let on_create = Gator.Analysis.var ~cls:"ConsoleActivity" ~meth:"onCreate" ~arity:0 in
  show r "e (onCreate)" (on_create "e");
  show r "f (after cast)" (on_create "f");
  show r "g (onCreate)" (on_create "g");
  let on_click = Gator.Analysis.var ~cls:"EscapeButtonListener" ~meth:"onClick" ~arity:1 in
  show r "r (onClick param)" (on_click "r");
  show r "v (onClick, after cast)" (on_click "v");
  Fmt.pr "@.views associated with id console_flip (SETID makes two):@.";
  List.iter
    (fun v -> Fmt.pr "  %a@." Gator.Node.pp_view v)
    (Gator.Analysis.views_with_id r "console_flip");
  Fmt.pr "@.interaction tuples:@.";
  List.iter
    (fun ix -> Fmt.pr "  %a@." Gator.Analysis.pp_interaction ix)
    (Gator.Analysis.interactions r);
  (* the same app also passes the dynamic-semantics oracle *)
  let coverage = Dynamic.Oracle.check r (Dynamic.Interp.run app) in
  Fmt.pr "@.dynamic oracle: %a@." Dynamic.Oracle.pp_coverage coverage
