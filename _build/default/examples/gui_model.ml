(* Section 6 of the paper describes downstream tools that need the set
   of tuples (activity, GUI object, event, handler) — e.g. the
   GUI-model input of concolic test generators, which the paper says
   were constructed manually.  This example derives that model fully
   automatically for a small multi-screen app. *)

let code =
  {|
class MainActivity extends Activity {
  field browse: Button;
  field settings: Button;
  method onCreate(): void {
    l = R.layout.main_screen;
    this.setContentView(l);
    a = R.id.browse;
    b0 = this.findViewById(a);
    b1 = (Button) b0;
    this.browse = b1;
    c = R.id.settings;
    s0 = this.findViewById(c);
    s1 = (Button) s0;
    this.settings = s1;
    j = new OpenBrowser();
    b1.setOnClickListener(j);
    k = new OpenSettings();
    s1.setOnClickListener(k);
    s1.setOnLongClickListener(m);
    m = new ResetSettings();
  }
}

class BrowseActivity extends Activity {
  method onCreate(): void {
    l = R.layout.browse_screen;
    this.setContentView(l);
    a = R.id.items;
    v0 = this.findViewById(a);
    lv = (ListView) v0;
    j = new OpenItem();
    lv.setOnItemClickListener(j);
  }
}

class SettingsActivity extends Activity {
  method onCreate(): void {
    l = R.layout.settings_screen;
    this.setContentView(l);
    a = R.id.volume;
    v0 = this.findViewById(a);
    sb = (SeekBar) v0;
    j = new VolumeChanged();
    sb.setOnSeekBarChangeListener(j);
  }
}

class OpenBrowser implements OnClickListener {
  method onClick(v: View): void { }
}
class OpenSettings implements OnClickListener {
  method onClick(v: View): void { }
}
class ResetSettings implements OnLongClickListener {
  method onLongClick(v: View): void { }
}
class OpenItem implements OnItemClickListener {
  method onItemClick(p: View, v: View, pos: int, row: int): void { }
}
class VolumeChanged implements OnSeekBarChangeListener {
  method onProgressChanged(s: View, p: int, fromUser: int): void { }
  method onStartTrackingTouch(s: View): void { }
  method onStopTrackingTouch(s: View): void { }
}
|}

let layouts =
  [
    ( "main_screen",
      {|<LinearLayout>
          <TextView android:id="@+id/title" />
          <Button android:id="@+id/browse" />
          <Button android:id="@+id/settings" />
        </LinearLayout>|} );
    ( "browse_screen",
      {|<FrameLayout><ListView android:id="@+id/items" /></FrameLayout>|} );
    ( "settings_screen",
      {|<LinearLayout><SeekBar android:id="@+id/volume" /></LinearLayout>|} );
  ]

let () =
  let app =
    match Framework.App.of_source ~name:"GuiModel" ~code ~layouts with
    | Ok app -> app
    | Error e -> failwith e
  in
  let r = Gator.Analysis.analyze app in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  Fmt.pr "GUI model: (activity, view, event, handler) tuples@.";
  let interactions = Gator.Analysis.interactions r in
  List.iter (fun ix -> Fmt.pr "  %a@." Gator.Analysis.pp_interaction ix) interactions;
  (* Per-activity event alphabet: what a test generator must exercise *)
  Fmt.pr "@.Per-activity event alphabet:@.";
  List.iter
    (fun (cls : Jir.Ast.cls) ->
      let events =
        List.filter (fun (ix : Gator.Analysis.interaction) -> ix.ix_activity = cls.c_name) interactions
        |> List.map (fun (ix : Gator.Analysis.interaction) ->
               Framework.Listeners.event_name ix.ix_event)
        |> List.sort_uniq compare
      in
      Fmt.pr "  %-18s {%s}@." cls.c_name (String.concat ", " events))
    (Framework.App.activity_classes app)
