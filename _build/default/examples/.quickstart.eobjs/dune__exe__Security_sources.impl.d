examples/security_sources.ml: Fmt Framework Gator Jir Layouts List String
