examples/gui_model.mli:
