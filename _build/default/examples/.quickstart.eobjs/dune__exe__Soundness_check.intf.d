examples/soundness_check.mli:
