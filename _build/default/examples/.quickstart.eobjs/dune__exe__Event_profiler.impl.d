examples/event_profiler.ml: Corpus Dynamic Fmt Gator List Printf String Sys
