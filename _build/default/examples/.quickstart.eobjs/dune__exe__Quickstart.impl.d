examples/quickstart.ml: Corpus Dynamic Fmt Gator List
