examples/widgets_tour.mli:
