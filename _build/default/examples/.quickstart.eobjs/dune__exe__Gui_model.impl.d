examples/gui_model.ml: Fmt Framework Gator Jir List String
