examples/soundness_check.ml: Corpus Dynamic Fmt Gator List
