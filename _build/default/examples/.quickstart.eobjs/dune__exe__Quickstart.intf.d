examples/quickstart.mli:
