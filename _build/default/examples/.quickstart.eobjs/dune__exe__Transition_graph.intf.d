examples/transition_graph.mli:
