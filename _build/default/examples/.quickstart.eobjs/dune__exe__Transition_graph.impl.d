examples/transition_graph.ml: Dynamic Fmt Framework Gator List
