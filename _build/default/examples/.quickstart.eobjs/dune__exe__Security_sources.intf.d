examples/security_sources.mli:
