examples/event_profiler.mli:
