examples/widgets_tour.ml: Dynamic Fmt Framework Gator List
