(* Run the dynamic semantics on the Figure 1 example and verify the
   static solution covers every observed behavior. *)
let () =
  let app = Corpus.Connectbot.app () in
  let r = Gator.Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Fmt.pr "dynamic: %d observations, %d registrations, %d firings, truncated=%b@."
    (List.length outcome.observations)
    (List.length outcome.registrations)
    (List.length outcome.firings) outcome.truncated;
  List.iter (fun ob -> Fmt.pr "  %a@." Dynamic.Interp.pp_observation ob) outcome.observations;
  let coverage = Dynamic.Oracle.check r outcome in
  Fmt.pr "%a@." Dynamic.Oracle.pp_coverage coverage;
  if not (Dynamic.Oracle.is_sound coverage) then exit 1
