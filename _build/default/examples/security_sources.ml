(* Security-analysis client (Section 6): taint analyses such as
   FlowDroid need to know which GUI objects carry sensitive user input
   (passwords, PINs) and which code can read them.  The paper's
   analysis provides exactly the needed map: sensitive views, the
   handlers that receive them, and the activities that display them.

   This example marks password/PIN fields as taint sources and reports
   every handler method into which such a view can flow — the entry
   points a taint analysis must seed. *)

let code =
  {|
class LoginActivity extends Activity {
  field user: EditText;
  field pass: EditText;
  method onCreate(): void {
    l = R.layout.login;
    this.setContentView(l);
    a = R.id.username;
    u0 = this.findViewById(a);
    u1 = (EditText) u0;
    this.user = u1;
    b = R.id.password;
    p0 = this.findViewById(b);
    p1 = (EditText) p0;
    this.pass = p1;
    c = R.id.submit;
    s0 = this.findViewById(c);
    j = new SubmitListener();
    j.init(this);
    s0.setOnClickListener(j);
    k = new PasswordWatcher();
    p1.setOnFocusChangeListener(k);
  }
}

class PinActivity extends Activity {
  method onCreate(): void {
    l = R.layout.pin;
    this.setContentView(l);
    a = R.id.pin_entry;
    p0 = this.findViewById(a);
    j = new PinListener();
    p0.setOnEditorActionListener(j);
  }
}

class SubmitListener implements OnClickListener {
  field owner: LoginActivity;
  method init(o: LoginActivity): void { this.owner = o; }
  method onClick(v: View): void {
    o = this.owner;
    p = o.pass;
    // p's text would be read and sent over the network here
  }
}

class PasswordWatcher implements OnFocusChangeListener {
  method onFocusChange(v: View, has: int): void { }
}

class PinListener implements OnEditorActionListener {
  method onEditorAction(v: View, action: int, ev: int): void { }
}
|}

let layouts =
  [
    ( "login",
      {|<LinearLayout>
          <EditText android:id="@+id/username" />
          <EditText android:id="@+id/password" />
          <Button android:id="@+id/submit" />
        </LinearLayout>|} );
    ("pin", {|<LinearLayout><EditText android:id="@+id/pin_entry" /></LinearLayout>|});
  ]

let sensitive_id name =
  List.exists
    (fun marker ->
      let n = String.length marker in
      let rec go i = i + n <= String.length name && (String.sub name i n = marker || go (i + 1)) in
      go 0)
    [ "password"; "pass"; "pin"; "secret" ]

let () =
  let app =
    match Framework.App.of_source ~name:"Security" ~code ~layouts with
    | Ok app -> app
    | Error e -> failwith e
  in
  let r = Gator.Analysis.analyze app in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  let resources = Layouts.Package.resources app.package in
  let sensitive_views =
    List.filter_map
      (fun name -> if sensitive_id name then Some (name, Gator.Analysis.views_with_id r name) else None)
      (Layouts.Resource.view_names resources)
  in
  Fmt.pr "sensitive input views (taint sources):@.";
  List.iter
    (fun (name, views) ->
      List.iter (fun v -> Fmt.pr "  #%s = %a@." name Gator.Node.pp_view v) views)
    sensitive_views;
  (* 1. handlers that receive a sensitive view directly as a callback
        parameter (via its listeners) *)
  Fmt.pr "@.handlers receiving sensitive views as parameters:@.";
  List.iter
    (fun (_, views) ->
      List.iter
        (fun v ->
          List.iter
            (fun (listener, iface_name) ->
              Fmt.pr "  %a --%s--> %a@." Gator.Node.pp_view v iface_name Gator.Node.pp_listener
                listener)
            (Gator.Analysis.listeners_of_view r v))
        views)
    sensitive_views;
  (* 2. handler methods into whose scope a sensitive view flows at all
        (e.g. through activity fields) — the seeding set for a taint
        analysis *)
  Fmt.pr "@.handler variables a sensitive view can reach:@.";
  let sensitive = List.concat_map snd sensitive_views in
  List.iter
    (fun (ix : Gator.Analysis.interaction) ->
      let handler = ix.ix_handler in
      let handler_cls = handler.mid_cls in
      (* check every variable of the handler's class methods *)
      List.iter
        (fun (cls : Jir.Ast.cls) ->
          if cls.c_name = handler_cls then
            List.iter
              (fun (m : Jir.Ast.meth) ->
                List.iter
                  (fun var_name ->
                    let node =
                      Gator.Analysis.var ~cls:cls.c_name ~meth:m.m_name
                        ~arity:(List.length m.m_params) var_name
                    in
                    let reaching = Gator.Analysis.views_at r node in
                    List.iter
                      (fun v ->
                        if List.mem v sensitive then
                          Fmt.pr "  %s.%s: %s <- %a@." cls.c_name m.m_name var_name
                            Gator.Node.pp_view v)
                      reaching)
                  (Jir.Ast.meth_vars m))
              cls.c_methods)
        app.program.p_classes)
    (Gator.Analysis.interactions r)
