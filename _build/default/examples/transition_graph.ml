(* Activity transition graph (Section 6): SCanDroid and A3E build a
   static graph of activities and possible transitions to drive
   run-time exploration.  The paper argues a GUI-object analysis is
   needed to do this correctly: transitions happen inside event
   handlers registered on views, outside the activity classes.

   This example is exactly that scenario: every launch happens in an
   OnClickListener, reachable only through the view/listener model. *)

let code =
  {|
class HomeActivity extends Activity {
  method onCreate(): void {
    l = R.layout.home;
    this.setContentView(l);
    a = R.id.go_list;
    b0 = this.findViewById(a);
    j = new GoList();
    j.init(this);
    b0.setOnClickListener(j);
    c = R.id.go_about;
    b1 = this.findViewById(c);
    k = new GoAbout();
    k.init(this);
    b1.setOnClickListener(k);
  }
}

class ListActivityScreen extends Activity {
  method onCreate(): void {
    l = R.layout.list_screen;
    this.setContentView(l);
    a = R.id.item;
    v = this.findViewById(a);
    j = new GoDetail();
    j.init(this);
    v.setOnClickListener(j);
  }
}

class DetailActivity extends Activity {
  method onCreate(): void {
    l = R.layout.detail_screen;
    this.setContentView(l);
  }
}

class AboutActivity extends Activity {
  method onCreate(): void {
    l = R.layout.about_screen;
    this.setContentView(l);
  }
}

// listeners: the transitions live here, outside the activity classes
class GoList implements OnClickListener {
  field src: HomeActivity;
  method init(a: HomeActivity): void { this.src = a; }
  method onClick(v: View): void {
    s = this.src;
    t = new ListActivityScreen();
    s.startActivity(t);
  }
}
class GoAbout implements OnClickListener {
  field src2: HomeActivity;
  method init(a: HomeActivity): void { this.src2 = a; }
  method onClick(v: View): void {
    s = this.src2;
    t = new AboutActivity();
    s.startActivity(t);
  }
}
class GoDetail implements OnClickListener {
  field src3: ListActivityScreen;
  method init(a: ListActivityScreen): void { this.src3 = a; }
  method onClick(v: View): void {
    s = this.src3;
    t = new DetailActivity();
    s.startActivity(t);
  }
}
|}

let layouts =
  [
    ( "home",
      {|<LinearLayout><Button android:id="@+id/go_list" /><Button android:id="@+id/go_about" /></LinearLayout>|}
    );
    ("list_screen", {|<ListView android:id="@+id/item" />|});
    ("detail_screen", {|<LinearLayout><TextView /></LinearLayout>|});
    ("about_screen", {|<LinearLayout><TextView /></LinearLayout>|});
  ]

let () =
  let app =
    match Framework.App.of_source ~name:"Transitions" ~code ~layouts with
    | Ok app -> app
    | Error e -> failwith e
  in
  let r = Gator.Analysis.analyze app in
  Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
  Fmt.pr "activity transition graph:@.";
  List.iter (fun (a, b) -> Fmt.pr "  %s -> %s@." a b) (Gator.Analysis.transitions r);
  (* cross-check against the dynamic semantics *)
  let outcome = Dynamic.Interp.run app in
  Fmt.pr "@.transitions that executed during exploration:@.";
  List.iter (fun (a, b) -> Fmt.pr "  %s -> %s@." a b)
    (List.sort_uniq compare outcome.transitions);
  let coverage = Dynamic.Oracle.check r outcome in
  Fmt.pr "@.%a@." Dynamic.Oracle.pp_coverage coverage;
  (* dot output for the transition graph *)
  Fmt.pr "@.digraph transitions {@.";
  List.iter (fun (a, b) -> Fmt.pr "  %S -> %S;@." a b) (Gator.Analysis.transitions r);
  Fmt.pr "}@."
