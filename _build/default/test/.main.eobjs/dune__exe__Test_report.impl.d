test/test_report.ml: Alcotest Corpus List Report String
