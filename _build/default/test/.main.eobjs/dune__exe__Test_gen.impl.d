test/test_gen.ml: Corpus Fmt Framework Gator Gen Jir List QCheck QCheck_alcotest Util
