test/test_isomorphism.ml: Dynamic Fmt Framework Gator Jir Layouts List Option Printf QCheck QCheck_alcotest
