test/test_interp.ml: Alcotest Corpus Dynamic Framework List
