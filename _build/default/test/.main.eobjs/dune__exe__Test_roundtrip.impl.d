test/test_roundtrip.ml: Alcotest Corpus Gen Jir List Printf QCheck QCheck_alcotest Test
