test/test_wellformed.ml: Alcotest Corpus Framework Jir List Parser String Wellformed
