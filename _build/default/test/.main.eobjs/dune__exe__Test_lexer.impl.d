test/test_lexer.ml: Alcotest Jir List String
