test/test_framework.ml: Alcotest Framework Jir Layouts List Option String
