test/test_axml.ml: Alcotest Axml Hashtbl List Printf QCheck QCheck_alcotest String
