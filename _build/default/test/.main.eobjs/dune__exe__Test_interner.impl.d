test/test_interner.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Util
