test/main.mli:
