test/test_inflate.ml: Alcotest Gator Graph Inflate Layouts List Node
