test/test_typing.ml: Alcotest Ast Framework Hierarchy Jir List Option Parser Printf Typing
