test/test_extract.ml: Alcotest Config Extract Framework Gator Graph Jir Layouts List Node Option Printf
