test/test_project.ml: Alcotest Array Filename Fmt Framework Fun Gator Layouts List Project String Sys Unix
