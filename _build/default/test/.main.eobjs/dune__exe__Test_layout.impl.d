test/test_layout.ml: Alcotest Fmt Layouts List Option
