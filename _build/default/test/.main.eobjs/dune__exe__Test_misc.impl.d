test/test_misc.ml: Alcotest Corpus Dynamic Fmt Framework Gator Jir List Option Report String
