test/test_oracle.ml: Alcotest Corpus Dynamic Fmt Framework Gator Gen List Option QCheck QCheck_alcotest Util
