test/test_parser.ml: Alcotest Ast Jir List Parser Printf String
