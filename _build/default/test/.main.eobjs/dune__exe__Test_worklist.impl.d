test/test_worklist.ml: Alcotest List Util
