test/test_corpus.ml: Alcotest Corpus Fmt Framework Gator Gen Jir List Option Printf QCheck QCheck_alcotest Util
