test/test_metrics.ml: Alcotest Analysis Corpus Framework Gator Metrics
