test/test_graph.ml: Alcotest Fmt Framework Gator Graph List Node String
