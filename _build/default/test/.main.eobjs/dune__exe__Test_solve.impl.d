test/test_solve.ml: Alcotest Analysis Config Corpus Dynamic Framework Gator Graph Jir List Metrics Node Option Report String
