test/test_pretty.ml: Alcotest Fmt Gen QCheck QCheck_alcotest String Util
