test/test_hierarchy.ml: Alcotest Ast Hierarchy Jir List Parser
