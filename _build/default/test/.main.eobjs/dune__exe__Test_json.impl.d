test/test_json.ml: Alcotest Corpus Framework Gator List Option Printf QCheck QCheck_alcotest Util
