let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_render_alignment () =
  let out =
    Report.Table.render ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.check Alcotest.int "header + rule + rows" 4 (List.length lines);
  (* all lines equally wide *)
  match lines with
  | first :: rest ->
      List.iter
        (fun line -> Alcotest.check Alcotest.int "width" (String.length first) (String.length line))
        rest
  | [] -> Alcotest.fail "no output"

let test_cells () =
  Alcotest.check Alcotest.string "float" "3.14" (Report.Table.cell_float (Some 3.1415));
  Alcotest.check Alcotest.string "dash" "-" (Report.Table.cell_float None);
  Alcotest.check Alcotest.string "int" "7" (Report.Table.cell_int 7);
  Alcotest.check Alcotest.string "seconds" "0.50" (Report.Table.cell_seconds 0.5)

let test_paper_values () =
  (match Report.Paper.table2 "XBMC" with
  | Some p ->
      Alcotest.check (Alcotest.float 0.001) "receivers" 8.81 p.p2_receivers;
      Alcotest.check (Alcotest.float 0.001) "time" 1.74 p.p2_seconds
  | None -> Alcotest.fail "XBMC missing");
  Alcotest.check Alcotest.bool "all 20 present" true
    (List.for_all (fun n -> Report.Paper.table2 n <> None) Corpus.Apps.names);
  Alcotest.check Alcotest.bool "perfect apps" true (Report.Paper.case_study_perfect "APV");
  Alcotest.check Alcotest.bool "xbmc not perfect" false (Report.Paper.case_study_perfect "XBMC")

let test_figures_driver () =
  let out = Report.Experiments.figures () in
  Alcotest.check Alcotest.bool "facts pass" false (contains out "FAIL");
  Alcotest.check Alcotest.bool "dot graph included" true (contains out "digraph")

let test_case_study_driver () =
  let out = Report.Experiments.case_study () in
  Alcotest.check Alcotest.bool "sound everywhere" false (contains out "NO");
  List.iter
    (fun name -> Alcotest.check Alcotest.bool name true (contains out name))
    Corpus.Apps.case_study_names

let test_tables_drivers () =
  (* Table drivers on a small slice: run the full corpus pipeline once
     and check all 20 rows appear in both tables. *)
  let runs = Report.Experiments.run_corpus () in
  let t1 = Report.Experiments.table1 runs in
  let t2 = Report.Experiments.table2 runs in
  List.iter
    (fun name ->
      Alcotest.check Alcotest.bool ("t1 has " ^ name) true (contains t1 name);
      Alcotest.check Alcotest.bool ("t2 has " ^ name) true (contains t2 name))
    Corpus.Apps.names

let test_ablations_driver () =
  let out = Report.Experiments.ablations () in
  Alcotest.check Alcotest.bool "has default row" true (contains out "default");
  Alcotest.check Alcotest.bool "has baseline row" true (contains out "baseline")

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_render_alignment;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "paper values" `Quick test_paper_values;
    Alcotest.test_case "figures driver" `Quick test_figures_driver;
    Alcotest.test_case "case study driver" `Slow test_case_study_driver;
    Alcotest.test_case "table drivers (full corpus)" `Slow test_tables_drivers;
    Alcotest.test_case "ablations driver" `Slow test_ablations_driver;
  ]
