(* Property: static inflation and dynamic inflation build isomorphic
   structures.  For a random layout L and an activity that just calls
   setContentView(L):
   - the static analysis mints one abstract view per layout node, and
   - the dynamic semantics creates one concrete view per layout node,
   with identical classes, ids, and parent-child edges, related by the
   provenance map. *)

let layout_gen =
  let open QCheck.Gen in
  let cls = oneofl Framework.Views.concrete_view_classes in
  let container = oneofl Framework.Views.concrete_container_classes in
  let id k = Printf.sprintf "gid_%d" k in
  fix
    (fun self depth ->
      if depth = 0 then
        map2 (fun c k -> Layouts.Layout.node ~id:(id k) c) cls (int_range 0 30)
      else
        map3
          (fun c k children -> Layouts.Layout.node ~id:(id k) ~children c)
          container (int_range 0 30)
          (list_size (0 -- 3) (self (depth - 1))))
    2

let app_with_layout root =
  let def = Layouts.Layout.def ~name:"main" root in
  let package = Layouts.Package.create () in
  Layouts.Package.add package def;
  let program =
    Jir.Builder.(
      program
        [
          cls ~extends:"Activity"
            ~methods:
              [
                meth "onCreate"
                  [ layout_id "l" "main"; call Jir.Ast.this_var "setContentView" [ "l" ] ];
              ]
            "A";
        ])
  in
  Framework.App.make ~name:"Iso" program package

let isomorphism =
  QCheck.Test.make ~name:"static and dynamic inflation are isomorphic" ~count:60
    (QCheck.make
       ~print:(fun root -> Fmt.str "%a" Layouts.Layout.pp (Layouts.Layout.def ~name:"main" root))
       layout_gen)
    (fun root ->
      let app = app_with_layout root in
      let size = Layouts.Layout.size (Option.get (Layouts.Package.find app.package "main")) in
      let r = Gator.Analysis.analyze app in
      let static_views = Gator.Graph.inflated_views r.graph in
      let outcome = Dynamic.Interp.run app in
      let concrete_views =
        List.filter
          (fun (o : Dynamic.Heap.obj) ->
            match o.provenance with Dynamic.Heap.P_infl _ -> true | _ -> false)
          (Dynamic.Heap.objects outcome.heap)
      in
      (* same population *)
      if List.length static_views <> size then
        QCheck.Test.fail_reportf "static views %d <> layout size %d" (List.length static_views) size
      else if List.length concrete_views <> size then
        QCheck.Test.fail_reportf "concrete views %d <> layout size %d" (List.length concrete_views)
          size
      else begin
        (* every concrete view maps to a static abstraction with the
           same class, ids, and children *)
        let ok =
          List.for_all
            (fun (o : Dynamic.Heap.obj) ->
              match Dynamic.Heap.view_abstraction o with
              | Some abs ->
                  List.mem abs static_views
                  && Gator.Node.class_of_view abs = o.Dynamic.Heap.cls
                  && (match o.Dynamic.Heap.vid with
                     | Some vid ->
                         Gator.Graph.Int_set.mem vid (Gator.Graph.ids_of_view r.graph abs)
                     | None -> Gator.Graph.Int_set.is_empty (Gator.Graph.ids_of_view r.graph abs))
                  && List.length o.Dynamic.Heap.children
                     = Gator.Graph.View_set.cardinal (Gator.Graph.children_of r.graph abs)
              | None -> false)
            concrete_views
        in
        ok
      end)

let roots_match =
  QCheck.Test.make ~name:"activity root matches layout root" ~count:40
    (QCheck.make layout_gen)
    (fun root ->
      let app = app_with_layout root in
      let r = Gator.Analysis.analyze app in
      match Gator.Analysis.roots_of_activity r "A" with
      | [ abs ] -> Gator.Node.class_of_view abs = root.Layouts.Layout.view_class
      | _ -> false)

let suite = [ QCheck_alcotest.to_alcotest isomorphism; QCheck_alcotest.to_alcotest roots_match ]
