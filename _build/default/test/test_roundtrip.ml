(* Property: pretty-printing an ALite program and reparsing it yields a
   structurally equal program. *)

open QCheck

let ident_gen =
  (* keyword-free lowercase identifiers *)
  Gen.map (Printf.sprintf "v%d") (Gen.int_range 0 20)

let cls_ident_gen = Gen.map (Printf.sprintf "Cls%d") (Gen.int_range 0 8)

let field_ident_gen = Gen.map (Printf.sprintf "fld%d") (Gen.int_range 0 8)

let meth_ident_gen = Gen.map (Printf.sprintf "mth%d") (Gen.int_range 0 8)

let res_ident_gen = Gen.map (Printf.sprintf "res%d") (Gen.int_range 0 8)

let ty_gen = Gen.oneof [ Gen.return Jir.Ast.Tint; Gen.map (fun c -> Jir.Ast.Tclass c) cls_ident_gen ]

let stmt_gen =
  let open Gen in
  oneof
    [
      map2 (fun x c -> Jir.Ast.New (x, c)) ident_gen cls_ident_gen;
      map2 (fun x y -> Jir.Ast.Copy (x, y)) ident_gen ident_gen;
      map3 (fun x y f -> Jir.Ast.Read_field (x, y, f)) ident_gen ident_gen field_ident_gen;
      map3 (fun x f y -> Jir.Ast.Write_field (x, f, y)) ident_gen field_ident_gen ident_gen;
      map2 (fun x r -> Jir.Ast.Read_layout_id (x, r)) ident_gen res_ident_gen;
      map2 (fun x r -> Jir.Ast.Read_view_id (x, r)) ident_gen res_ident_gen;
      map2 (fun x n -> Jir.Ast.Const_int (x, n)) ident_gen (int_range 0 100000);
      map (fun x -> Jir.Ast.Const_null x) ident_gen;
      map3 (fun x c y -> Jir.Ast.Cast (x, c, y)) ident_gen cls_ident_gen ident_gen;
      map3
        (fun lhs (recv, m) args -> Jir.Ast.Invoke (lhs, recv, m, args))
        (opt ident_gen) (pair ident_gen meth_ident_gen) (list_size (int_range 0 3) ident_gen);
      map (fun v -> Jir.Ast.Return v) (opt ident_gen);
    ]

let meth_gen =
  let open Gen in
  map3
    (fun (name, params) (ret, locals) body ->
      { Jir.Ast.m_name = name; m_params = params; m_ret = ret; m_locals = locals; m_body = body })
    (pair meth_ident_gen (list_size (int_range 0 3) (pair ident_gen ty_gen)))
    (pair (opt ty_gen) (list_size (int_range 0 2) (pair ident_gen ty_gen)))
    (list_size (int_range 0 8) stmt_gen)

(* Distinct parameter/local names are not required for the printer;
   parsing does not dedup either, so duplicates still roundtrip. *)

let cls_gen index =
  let open Gen in
  map3
    (fun (kind, super) interfaces (fields, methods) ->
      {
        Jir.Ast.c_name = Printf.sprintf "Top%d" index;
        c_kind = kind;
        c_super = super;
        c_interfaces = interfaces;
        c_fields = fields;
        c_methods = methods;
      })
    (pair (oneofl [ `Class; `Interface ]) (opt cls_ident_gen))
    (list_size (int_range 0 2) cls_ident_gen)
    (pair
       (list_size (int_range 0 3) (pair field_ident_gen ty_gen))
       (list_size (int_range 0 3) meth_gen))

let program_gen =
  let open Gen in
  int_range 0 4 >>= fun n ->
  map (fun classes -> { Jir.Ast.p_classes = classes }) (flatten_l (List.init n cls_gen))

let program_arbitrary = make ~print:(fun p -> Jir.Pp.program_to_string p) program_gen

let roundtrip =
  Test.make ~name:"pp then parse is identity" ~count:300 program_arbitrary (fun program ->
      let text = Jir.Pp.program_to_string program in
      match Jir.Parser.parse_program_result text with
      | Ok reparsed -> Jir.Ast.equal_program program reparsed
      | Error e -> Test.fail_reportf "reparse failed: %s\n%s" e text)

let double_print =
  Test.make ~name:"printing is stable" ~count:200 program_arbitrary (fun program ->
      let once = Jir.Pp.program_to_string program in
      match Jir.Parser.parse_program_result once with
      | Ok reparsed -> Jir.Pp.program_to_string reparsed = once
      | Error e -> Test.fail_reportf "reparse failed: %s" e)

let connectbot_roundtrip () =
  let program = Jir.Parser.parse_program Corpus.Connectbot.source in
  let text = Jir.Pp.program_to_string program in
  match Jir.Parser.parse_program_result text with
  | Ok reparsed ->
      Alcotest.check Alcotest.bool "equal" true (Jir.Ast.equal_program program reparsed)
  | Error e -> Alcotest.failf "reparse failed: %s" e

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip;
    QCheck_alcotest.to_alcotest double_print;
    Alcotest.test_case "ConnectBot roundtrips" `Quick connectbot_roundtrip;
  ]
