(* Corpus tests: the generator must hit Table 1's populations exactly
   and deterministically. *)

let test_twenty_specs () =
  Alcotest.check Alcotest.int "20 applications" 20 (List.length Corpus.Apps.specs)

let test_specs_validate () =
  List.iter
    (fun spec ->
      match Corpus.Spec.validate spec with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Corpus.Apps.specs

let test_by_name () =
  Alcotest.check Alcotest.bool "present" true (Corpus.Apps.by_name "ConnectBot" <> None);
  Alcotest.check Alcotest.bool "absent" true (Corpus.Apps.by_name "Nope" = None);
  Alcotest.check Alcotest.int "case-study subset" 4 (List.length Corpus.Apps.case_study_names)

let test_validate_rejects () =
  let bad field =
    match Corpus.Spec.validate field with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected validation error"
  in
  let d = Corpus.Spec.default in
  bad { d with sp_activities = 0 };
  bad { d with sp_layouts = d.sp_activities - 1 };
  bad { d with sp_inflated_nodes = d.sp_layouts - 1 };
  bad { d with sp_listener_classes = 0; sp_listener_allocs = 1 };
  bad { d with sp_listener_allocs = 0; sp_setlistener_ops = 1 };
  bad { d with sp_id_sharing = 1.5 };
  bad { d with sp_classes = 1 };
  bad { d with sp_findview_ops = 0 }

let row_of spec =
  let app = Corpus.Gen.generate spec in
  Gator.Metrics.table1 (Gator.Analysis.analyze app)

(* The load-bearing property: generated populations equal the spec. *)
let check_row (spec : Corpus.Spec.t) =
  let row = row_of spec in
  let eq what expected actual =
    Alcotest.check Alcotest.int (Printf.sprintf "%s/%s" spec.sp_name what) expected actual
  in
  eq "classes" spec.sp_classes row.t1_classes;
  eq "layout ids" spec.sp_layouts row.t1_layout_ids;
  eq "view ids" spec.sp_view_ids row.t1_view_ids;
  eq "inflated views" spec.sp_inflated_nodes row.t1_views_inflated;
  eq "allocated views" spec.sp_view_allocs row.t1_views_allocated;
  eq "listeners" spec.sp_listener_allocs row.t1_listeners;
  eq "activities" spec.sp_activities row.t1_activities;
  eq "inflate ops" spec.sp_layouts row.t1_inflate_ops;
  eq "findview ops" spec.sp_findview_ops row.t1_findview_ops;
  eq "addview ops" spec.sp_addview_ops row.t1_addview_ops;
  eq "setid ops" spec.sp_setid_ops row.t1_setid_ops;
  eq "setlistener ops" spec.sp_setlistener_ops row.t1_setlistener_ops;
  eq "methods" spec.sp_methods row.t1_methods

let test_small_apps_exact () =
  List.iter check_row
    (List.filter_map Corpus.Apps.by_name
       [ "APV"; "NotePad"; "VuDroid"; "SuperGenPass"; "TippyTipper"; "OpenManager" ])

let test_large_apps_exact () =
  List.iter check_row
    (List.filter_map Corpus.Apps.by_name [ "Astrid"; "XBMC"; "K9"; "Mileage" ])

let test_determinism () =
  let spec = Option.get (Corpus.Apps.by_name "NotePad") in
  let a = Corpus.Gen.generate spec in
  let b = Corpus.Gen.generate spec in
  Alcotest.check Alcotest.bool "same program" true
    (Jir.Ast.equal_program a.program b.program)

let test_seed_changes_program () =
  let spec = Option.get (Corpus.Apps.by_name "NotePad") in
  let a = Corpus.Gen.generate spec in
  let b = Corpus.Gen.generate { spec with sp_seed = spec.sp_seed + 1 } in
  Alcotest.check Alcotest.bool "different programs" false
    (Jir.Ast.equal_program a.program b.program)

let test_generated_wellformed () =
  List.iter
    (fun name ->
      let spec = Option.get (Corpus.Apps.by_name name) in
      let app = Corpus.Gen.generate spec in
      let diagnostics = Framework.App.diagnostics app in
      let errors = Jir.Wellformed.errors diagnostics in
      if errors <> [] then
        Alcotest.failf "%s: %s" name
          (Fmt.str "%a" (Fmt.list Jir.Wellformed.pp_diagnostic) errors))
    [ "APV"; "NotePad"; "ConnectBot" ]

let test_generated_parses_back () =
  (* generated programs survive printing + reparsing *)
  let spec = Option.get (Corpus.Apps.by_name "NotePad") in
  let app = Corpus.Gen.generate spec in
  let text = Jir.Pp.program_to_string app.program in
  match Jir.Parser.parse_program_result text with
  | Ok p -> Alcotest.check Alcotest.bool "roundtrip" true (Jir.Ast.equal_program p app.program)
  | Error e -> Alcotest.failf "reparse: %s" e

let test_xbmc_is_outlier () =
  let receivers name =
    let spec = Option.get (Corpus.Apps.by_name name) in
    let t2 = Gator.Metrics.table2 (Gator.Analysis.analyze (Corpus.Gen.generate spec)) in
    Option.get t2.t2_receivers
  in
  let xbmc = receivers "XBMC" in
  Alcotest.check Alcotest.bool "XBMC >> APV" true (xbmc > 3.0 *. receivers "APV");
  Alcotest.check Alcotest.bool "XBMC above 5" true (xbmc > 5.0)

let random_specs_validate =
  QCheck.Test.make ~name:"random specs validate and generate" ~count:30
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec rng in
      match Corpus.Spec.validate spec with
      | Error e -> QCheck.Test.fail_reportf "invalid spec: %s" e
      | Ok () ->
          let app = Corpus.Gen.generate spec in
          List.length app.program.p_classes > 0)

let suite =
  [
    Alcotest.test_case "twenty specs" `Quick test_twenty_specs;
    Alcotest.test_case "specs validate" `Quick test_specs_validate;
    Alcotest.test_case "lookup by name" `Quick test_by_name;
    Alcotest.test_case "validate rejects bad specs" `Quick test_validate_rejects;
    Alcotest.test_case "small apps match Table 1 exactly" `Quick test_small_apps_exact;
    Alcotest.test_case "large apps match Table 1 exactly" `Slow test_large_apps_exact;
    Alcotest.test_case "generation is deterministic" `Quick test_determinism;
    Alcotest.test_case "seed matters" `Quick test_seed_changes_program;
    Alcotest.test_case "generated apps are well-formed" `Quick test_generated_wellformed;
    Alcotest.test_case "generated apps reparse" `Quick test_generated_parses_back;
    Alcotest.test_case "XBMC is the receivers outlier" `Slow test_xbmc_is_outlier;
    QCheck_alcotest.to_alcotest random_specs_validate;
  ]
