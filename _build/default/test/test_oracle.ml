(* Soundness: everything the dynamic semantics observes must be in the
   static solution — on the running example, on targeted programs, on
   the 20-app corpus, and on random apps (property-based). *)

let app_of ?(layouts = []) code =
  match Framework.App.of_source ~name:"T" ~code ~layouts with
  | Ok app -> app
  | Error e -> Alcotest.failf "app_of: %s" e

let coverage ?config app =
  let r = Gator.Analysis.analyze ?config app in
  Dynamic.Oracle.check r (Dynamic.Interp.run app)

let assert_sound ?config app =
  let c = coverage ?config app in
  if not (Dynamic.Oracle.is_sound c) then
    Alcotest.failf "unsound: %a" (fun ppf -> Dynamic.Oracle.pp_coverage ppf) c

let test_connectbot_sound () = assert_sound (Corpus.Connectbot.app ())

let test_connectbot_nontrivial () =
  let c = coverage (Corpus.Connectbot.app ()) in
  Alcotest.check Alcotest.bool "checked a real trace" true (c.cov_total > 10)

let handler_param_code =
  {|class A extends Activity {
      method onCreate(): void {
        p = new LinearLayout();
        c = new Button();
        p.addView(c);
        this.setContentView(p);
        j = new L();
        c.setOnClickListener(j);
      } }
    class L implements OnClickListener {
      method onClick(v: View): void { q = v.getParent(); } }|}

let test_handler_param_needs_callback_modeling () =
  (* With callback modeling the handler's use of its view parameter is
     covered; without it the GetParent receiver is missed — showing the
     SETLISTENER [y.n(x)] modeling is load-bearing for soundness. *)
  assert_sound (app_of handler_param_code);
  let off = { Gator.Config.default with listener_callbacks = false } in
  let c = coverage ~config:off (app_of handler_param_code) in
  Alcotest.check Alcotest.bool "unsound without callbacks" false (Dynamic.Oracle.is_sound c)

let test_dialog_needs_modeling () =
  let code =
    {|class A extends Activity { method onCreate(): void { d = new MyDialog(); } }
      class MyDialog extends Dialog {
        method onCreate(): void {
          b = new Button();
          this.setContentView(b);
          b.setId(i);
          i = 5;
        } }|}
  in
  assert_sound (app_of code)

let test_findone_refinement_sound () =
  (* children-only refinement must still cover the dynamic behavior *)
  let code =
    {|class A extends Activity {
        method onCreate(): void {
          f = new ViewFlipper();
          a = new Button();
          f.addView(a);
          v = f.getCurrentView();
          w = f.findFocus();
        } }|}
  in
  assert_sound (app_of code);
  assert_sound ~config:{ Gator.Config.default with findone_refinement = false } (app_of code)

let test_corpus_sound () =
  List.iter
    (fun spec -> assert_sound (Corpus.Gen.generate spec))
    (List.filter_map Corpus.Apps.by_name [ "APV"; "NotePad"; "VuDroid"; "TippyTipper"; "SuperGenPass" ])

let test_corpus_xbmc_sound () =
  assert_sound (Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")))

let random_soundness =
  QCheck.Test.make ~name:"random apps: dynamic trace covered by static solution" ~count:40
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec rng in
      let app = Corpus.Gen.generate spec in
      let r = Gator.Analysis.analyze app in
      let c = Dynamic.Oracle.check r (Dynamic.Interp.run app) in
      if Dynamic.Oracle.is_sound c then true
      else
        QCheck.Test.fail_reportf "seed %d unsound: %s" seed
          (Fmt.str "%a" Dynamic.Oracle.pp_coverage c))

let random_soundness_baselineish =
  (* the sound core must stay sound under precision refinements *)
  QCheck.Test.make ~name:"random apps: soundness with refinements toggled" ~count:15
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec rng in
      let app = Corpus.Gen.generate spec in
      List.for_all
        (fun config ->
          let r = Gator.Analysis.analyze ~config app in
          Dynamic.Oracle.is_sound (Dynamic.Oracle.check r (Dynamic.Interp.run app)))
        [
          Gator.Config.default;
          { Gator.Config.default with findone_refinement = false };
          { Gator.Config.default with cast_filtering = false };
          { Gator.Config.default with inline_depth = 1 };
          { Gator.Config.default with inline_depth = 2 };
        ])

let test_dynamic_averages () =
  let app = Corpus.Connectbot.app () in
  let outcome = Dynamic.Interp.run app in
  let dyn = Dynamic.Oracle.dynamic_averages outcome in
  (match dyn.dyn_receivers with
  | Some v -> Alcotest.check Alcotest.bool "receivers >= 1" true (v >= 1.0)
  | None -> Alcotest.fail "expected receiver observations");
  match dyn.dyn_results with
  | Some v -> Alcotest.check Alcotest.bool "results >= 1" true (v >= 1.0)
  | None -> Alcotest.fail "expected result observations"

let test_coverage_counts () =
  let app = Corpus.Connectbot.app () in
  let r = Gator.Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  let c = Dynamic.Oracle.check r outcome in
  Alcotest.check Alcotest.int "covered = total when sound"
    c.cov_total c.cov_covered

let suite =
  [
    Alcotest.test_case "ConnectBot sound" `Quick test_connectbot_sound;
    Alcotest.test_case "ConnectBot trace non-trivial" `Quick test_connectbot_nontrivial;
    Alcotest.test_case "handler params need callback modeling" `Quick
      test_handler_param_needs_callback_modeling;
    Alcotest.test_case "dialogs covered" `Quick test_dialog_needs_modeling;
    Alcotest.test_case "FindOne refinement stays sound" `Quick test_findone_refinement_sound;
    Alcotest.test_case "corpus apps sound (sample)" `Quick test_corpus_sound;
    Alcotest.test_case "XBMC sound" `Slow test_corpus_xbmc_sound;
    QCheck_alcotest.to_alcotest random_soundness;
    QCheck_alcotest.to_alcotest random_soundness_baselineish;
    Alcotest.test_case "dynamic averages" `Quick test_dynamic_averages;
    Alcotest.test_case "coverage counts" `Quick test_coverage_counts;
  ]
