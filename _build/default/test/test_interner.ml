let test_idempotent () =
  let t = Util.Interner.create () in
  let a = Util.Interner.intern t "hello" in
  let b = Util.Interner.intern t "hello" in
  Alcotest.check Alcotest.int "same symbol" 0 (Util.Interner.compare_sym a b)

let test_distinct () =
  let t = Util.Interner.create () in
  let a = Util.Interner.intern t "a" in
  let b = Util.Interner.intern t "b" in
  Alcotest.check Alcotest.bool "distinct" true (Util.Interner.compare_sym a b <> 0)

let test_roundtrip () =
  let t = Util.Interner.create () in
  let names = List.init 1000 (Printf.sprintf "sym_%d") in
  let syms = List.map (Util.Interner.intern t) names in
  List.iter2
    (fun name sym -> Alcotest.check Alcotest.string "name roundtrip" name (Util.Interner.name t sym))
    names syms;
  Alcotest.check Alcotest.int "count" 1000 (Util.Interner.count t)

let test_mem () =
  let t = Util.Interner.create () in
  ignore (Util.Interner.intern t "x");
  Alcotest.check Alcotest.bool "mem interned" true (Util.Interner.mem t "x");
  Alcotest.check Alcotest.bool "mem foreign" false (Util.Interner.mem t "y")

let test_foreign_symbol () =
  let t = Util.Interner.create () in
  Alcotest.check_raises "foreign" Not_found (fun () ->
      let other = Util.Interner.create () in
      let sym = Util.Interner.intern other "z" in
      ignore (Util.Interner.name t sym))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"intern/name roundtrip" ~count:500
    QCheck.(small_list (string_of_size Gen.(1 -- 20)))
    (fun names ->
      let t = Util.Interner.create () in
      List.for_all
        (fun name -> Util.Interner.name t (Util.Interner.intern t name) = name)
        names)

let suite =
  [
    Alcotest.test_case "idempotent" `Quick test_idempotent;
    Alcotest.test_case "distinct strings distinct symbols" `Quick test_distinct;
    Alcotest.test_case "roundtrip 1000 symbols (growth)" `Quick test_roundtrip;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "foreign symbol raises" `Quick test_foreign_symbol;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
