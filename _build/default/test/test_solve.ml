(* End-to-end solver tests: the Figure 1 facts the paper narrates, plus
   targeted behaviors of each inference rule. *)
open Gator

let analyze ?config ?(layouts = []) code =
  match Framework.App.of_source ~name:"T" ~code ~layouts with
  | Ok app -> Analysis.analyze ?config app
  | Error e -> Alcotest.failf "analyze: %s" e

let views r cls meth arity v = Analysis.views_at r (Analysis.var ~cls ~meth ~arity v)

let view_classes views = List.sort compare (List.map Node.class_of_view views)

let check_classes msg expected actual =
  Alcotest.check (Alcotest.list Alcotest.string) msg (List.sort compare expected)
    (view_classes actual)

let test_connectbot_facts () =
  let r = Analysis.analyze (Corpus.Connectbot.app ()) in
  (* e sees both candidates (flow-insensitive), f is cast-filtered. *)
  check_classes "e" [ "TerminalView"; "ViewFlipper" ] (views r "ConsoleActivity" "onCreate" 0 "e");
  check_classes "f" [ "ViewFlipper" ] (views r "ConsoleActivity" "onCreate" 0 "f");
  check_classes "g" [ "ImageView" ] (views r "ConsoleActivity" "onCreate" 0 "g");
  check_classes "r param" [ "ImageView" ] (views r "EscapeButtonListener" "onClick" 1 "r");
  check_classes "v" [ "TerminalView" ] (views r "EscapeButtonListener" "onClick" 1 "v");
  (* the ESC button carries listener and id associations *)
  (match Analysis.views_with_id r "button_esc" with
  | [ esc ] ->
      Alcotest.check Alcotest.int "one click registration" 1
        (List.length (Analysis.listeners_of_view r esc))
  | other -> Alcotest.failf "expected one ESC view, got %d" (List.length other));
  Alcotest.check Alcotest.int "one interaction tuple" 1 (List.length (Analysis.interactions r))

let test_connectbot_narrated_facts_catalog () =
  (* the full checklist used by the figures driver must pass *)
  let output = Report.Experiments.figures () in
  Alcotest.check Alcotest.bool "no FAIL in figure facts" false
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains output "FAIL")

let simple_layout = ("main", {|<LinearLayout android:id="@+id/root"><Button android:id="@+id/b" /></LinearLayout>|})

let test_set_content_and_find () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.main;
            this.setContentView(l);
            i = R.id.b;
            v = this.findViewById(i);
          } }|}
  in
  check_classes "find result" [ "Button" ] (views r "A" "onCreate" 0 "v");
  check_classes "activity root" [ "LinearLayout" ]
    (Analysis.roots_of_activity r "A")

let test_find_view_self () =
  (* findViewById returns the receiver itself when its id matches *)
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.main;
            this.setContentView(l);
            i = R.id.root;
            v = this.findViewById(i);
            w = v.findViewById(i);
          } }|}
  in
  check_classes "self lookup" [ "LinearLayout" ] (views r "A" "onCreate" 0 "w")

let test_set_id_affects_find () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.main; this.setContentView(l);
            w = new TextView();
            i = R.id.b;
            w.setId(i);
            r0 = R.id.root;
            c = this.findViewById(r0);
            c.addView(w);
            v = this.findViewById(i);
          } }|}
  in
  check_classes "find sees both button and retagged TextView" [ "Button"; "TextView" ]
    (views r "A" "onCreate" 0 "v")

let test_add_view_hierarchy () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.main; this.setContentView(l);
            p = new LinearLayout();
            c = new Button();
            p.addView(c);
            i = R.id.root;
            root = this.findViewById(i);
            root.addView(p);
          } }|}
  in
  match Analysis.roots_of_activity r "A" with
  | [ root ] ->
      (* root + its layout Button + programmatic LinearLayout + Button *)
      let all = Graph.descendants r.graph ~include_self:true root in
      Alcotest.check Alcotest.int "four views reachable" 4 (Graph.View_set.cardinal all)
  | _ -> Alcotest.fail "expected one root"

let test_set_content_view_arg () =
  let r =
    analyze
      {|class A extends Activity {
          method onCreate(): void {
            v = new LinearLayout();
            this.setContentView(v);
          } }|}
  in
  check_classes "programmatic root" [ "LinearLayout" ] (Analysis.roots_of_activity r "A")

let test_inflate_returns_root () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            inf = this.getLayoutInflater();
            l = R.layout.main;
            k = inf.inflate(l);
          } }|}
  in
  check_classes "inflate result" [ "LinearLayout" ] (views r "A" "onCreate" 0 "k")

let test_inflate_with_parent_attaches () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          method onCreate(): void {
            c = new FrameLayout();
            inf = this.getLayoutInflater();
            l = R.layout.main;
            k = inf.inflate(l, c);
          } }|}
  in
  let c_views = views r "A" "onCreate" 0 "c" in
  match c_views with
  | [ container ] ->
      Alcotest.check Alcotest.int "root attached under container" 1
        (Graph.View_set.cardinal (Graph.children_of r.graph container))
  | _ -> Alcotest.fail "expected one container"

let test_get_parent () =
  let r =
    analyze
      {|class A extends Activity {
          method onCreate(): void {
            p = new LinearLayout();
            c = new Button();
            p.addView(c);
            q = c.getParent();
          } }|}
  in
  check_classes "parent" [ "LinearLayout" ] (views r "A" "onCreate" 0 "q")

let test_findone_refinement_toggle () =
  let code =
    {|class A extends Activity {
        method onCreate(): void {
          a = new ViewFlipper();
          b = new LinearLayout();
          c = new Button();
          a.addView(b);
          b.addView(c);
          v = a.getCurrentView();
        } }|}
  in
  let refined = analyze code in
  check_classes "children only" [ "LinearLayout" ] (views refined "A" "onCreate" 0 "v");
  let unrefined = analyze ~config:{ Config.default with findone_refinement = false } code in
  check_classes "all descendants" [ "Button"; "LinearLayout" ]
    (views unrefined "A" "onCreate" 0 "v")

let test_cast_filtering_toggle () =
  let code =
    {|class A extends Activity {
        field f: View;
        method onCreate(): void {
          x = new Button();
          this.f = x;
          y = new LinearLayout();
          this.f = y;
          u = this.f;
          w = (Button) u;
        } }|}
  in
  let filtered = analyze code in
  check_classes "filtered" [ "Button" ] (views filtered "A" "onCreate" 0 "w");
  let plain = analyze ~config:{ Config.default with cast_filtering = false } code in
  check_classes "unfiltered" [ "Button"; "LinearLayout" ] (views plain "A" "onCreate" 0 "w")

let test_listener_callback_flow () =
  let r =
    analyze
      {|class A extends Activity {
          method onCreate(): void {
            b = new Button();
            j = new L();
            b.setOnClickListener(j);
          } }
        class L implements OnClickListener {
          method onClick(v: View): void { w = v; } }|}
  in
  check_classes "view flows into handler" [ "Button" ] (views r "L" "onClick" 1 "v");
  (* and the listener object flows into the handler's this *)
  Alcotest.check Alcotest.bool "listener in this" true
    (List.exists
       (function Node.V_obj a -> a.a_cls = "L" | _ -> false)
       (Analysis.values_at r (Analysis.var ~cls:"L" ~meth:"onClick" ~arity:1 Jir.Ast.this_var)))

let test_activity_as_listener () =
  let r =
    analyze
      {|class A extends Activity implements OnClickListener {
          method onCreate(): void {
            b = new Button();
            b.setOnClickListener(this);
          }
          method onClick(v: View): void { } }|}
  in
  check_classes "view reaches handler" [ "Button" ] (views r "A" "onClick" 1 "v");
  match Analysis.interactions r with
  | [ ix ] -> (
      match ix.ix_listener with
      | Node.L_act "A" -> ()
      | _ -> Alcotest.fail "listener should be the activity itself")
  | _ ->
      (* the button is not attached to the activity's hierarchy, so no
         interaction tuple is required; accept zero *)
      ()

let test_dialog_modeling () =
  let code =
    {|class A extends Activity {
        method onCreate(): void { d = new MyDialog(); } }
      class MyDialog extends Dialog {
        method onCreate(): void {
          v = new Button();
          this.setContentView(v);
          i = R.id.whatever;
          w = this.findViewById(i);
          v.setId(i);
        } }|}
  in
  let on = analyze code in
  check_classes "dialog content searched" [ "Button" ] (views on "MyDialog" "onCreate" 0 "w");
  let off = analyze ~config:{ Config.default with model_dialogs = false } code in
  check_classes "no dialog modeling: nothing flows" [] (views off "MyDialog" "onCreate" 0 "w")

let shared_helper_code =
  {|class A extends Activity {
      method onCreate(): void {
        i = R.id.k;
        x = new Button();
        x.setId(i);
        y = new TextView();
        y.setId(i);
        h = new Helper();
        r1 = h.deco(x, i);
        r2 = h.deco(y, i);
      } }
    class Helper {
      method deco(v: View, i: int): View {
        w = v.findViewById(i);
        return w;
      } }|}

let test_context_sensitivity_separates_callsites () =
  (* Context-insensitively the shared helper merges both receivers;
     with inlining each call site keeps its own flow (the paper's
     Section 5 remedy for the XBMC outlier). *)
  let insensitive = analyze shared_helper_code in
  let helper_v = views insensitive "Helper" "deco" 2 "v" in
  check_classes "insensitive: merged receivers" [ "Button"; "TextView" ] helper_v;
  check_classes "insensitive: merged results at r1" [ "Button"; "TextView" ]
    (views insensitive "A" "onCreate" 0 "r1");
  let sensitive = analyze ~config:{ Config.default with inline_depth = 1 } shared_helper_code in
  (* the call-site result r1 now only sees views found under x *)
  check_classes "sensitive: r1 narrows to x's lookup" [ "Button" ]
    (views sensitive "A" "onCreate" 0 "r1");
  check_classes "sensitive: r2 narrows to y's lookup" [ "TextView" ]
    (views sensitive "A" "onCreate" 0 "r2");
  let t2_insensitive = Metrics.table2 insensitive in
  let t2_sensitive = Metrics.table2 sensitive in
  Alcotest.check Alcotest.bool "receivers improve" true
    (Option.get t2_sensitive.t2_receivers < Option.get t2_insensitive.t2_receivers)

let test_context_sensitivity_same_population () =
  (* Table 1 populations are per-site and must not change under
     cloning. *)
  let spec = Option.get (Corpus.Apps.by_name "NotePad") in
  let app = Corpus.Gen.generate spec in
  let base = Metrics.table1 (Analysis.analyze app) in
  let inlined =
    Metrics.table1 (Analysis.analyze ~config:{ Config.default with inline_depth = 2 } app)
  in
  Alcotest.check Alcotest.int "findview sites" base.t1_findview_ops inlined.t1_findview_ops;
  Alcotest.check Alcotest.int "alloc sites" base.t1_views_allocated inlined.t1_views_allocated;
  Alcotest.check Alcotest.int "listener sites" base.t1_listeners inlined.t1_listeners

let test_context_sensitivity_recursion_safe () =
  let r =
    analyze ~config:{ Config.default with inline_depth = 3 }
      {|class A extends Activity {
          method onCreate(): void { v = new Button(); w = this.spin(v); }
          method spin(v: View): View { w = this.spin(v); return w; } }|}
  in
  Alcotest.check Alcotest.bool "terminates" true (r.stats.iterations >= 1)

let test_activity_transitions () =
  let r =
    analyze
      {|class A extends Activity {
          method onCreate(): void {
            b = new Button();
            this.setContentView(b);
            j = new Go();
            j.init(this);
            b.setOnClickListener(j);
          } }
        class B extends Activity { method onCreate(): void { } }
        class Go implements OnClickListener {
          field src: A;
          method init(a: A): void { this.src = a; }
          method onClick(v: View): void {
            s = this.src;
            t = new B();
            s.startActivity(t);
          } }|}
  in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "transition edge" [ ("A", "B") ] (Analysis.transitions r)

let test_transitions_dynamic_covered () =
  let app =
    match
      Framework.App.of_source ~name:"T" ~layouts:[]
        ~code:
          {|class A extends Activity {
              method onCreate(): void {
                t = new B();
                this.startActivity(t);
              } }
            class B extends Activity { method onCreate(): void { } }|}
    with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "dynamic transition" [ ("A", "B") ]
    (List.sort_uniq compare outcome.transitions);
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome))

let declarative_code =
  {|class A extends Activity {
      field hit: View;
      method onCreate(): void {
        l = R.layout.main;
        this.setContentView(l);
      }
      method submitClicked(v: View): void {
        this.hit = v;
      } }|}

let declarative_layouts =
  [ ("main", {|<LinearLayout><Button android:id="@+id/go" android:onClick="submitClicked" /></LinearLayout>|}) ]

let test_declarative_onclick () =
  let r = analyze ~layouts:declarative_layouts declarative_code in
  (* the button flows into the declared handler's parameter *)
  check_classes "handler param" [ "Button" ] (views r "A" "submitClicked" 1 "v");
  (* and the interaction tuple is derived with the activity as listener *)
  match Analysis.interactions r with
  | [ ix ] ->
      Alcotest.check Alcotest.string "handler" "submitClicked" ix.ix_handler.mid_name;
      Alcotest.check Alcotest.bool "activity is the listener" true (ix.ix_listener = Gator.Node.L_act "A")
  | other -> Alcotest.failf "expected one tuple, got %d" (List.length other)

let test_declarative_onclick_dynamic () =
  let app =
    match
      Framework.App.of_source ~name:"T" ~code:declarative_code ~layouts:declarative_layouts
    with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
  Alcotest.check Alcotest.bool "handler fired" true
    (List.exists
       (fun (f : Dynamic.Interp.firing) -> f.f_handler.mid_name = "submitClicked")
       outcome.firings)

let adapter_code =
  {|class A extends Activity {
      method onCreate(): void {
        l = R.layout.screen;
        this.setContentView(l);
        i = R.id.list;
        v0 = this.findViewById(i);
        lv = (ListView) v0;
        ad = new RowAdapter();
        lv.setAdapter(ad);
        j = new RowClick();
        lv.setOnItemClickListener(j);
      } }
    class RowAdapter extends BaseAdapter {
      method getView(pos: int, convert: View, parent: ViewGroup): View {
        inf = parent.getLayoutInflater();
        l = R.layout.row;
        w = inf.inflate(l);
        return w;
      } }
    class RowClick implements OnItemClickListener {
      method onItemClick(p: View, item: View, pos: int, rid: int): void { } }|}

let adapter_layouts =
  [
    ("screen", {|<LinearLayout><ListView android:id="@+id/list" /></LinearLayout>|});
    ("row", {|<LinearLayout><TextView android:id="@+id/row_text" /></LinearLayout>|});
  ]

let test_adapter_item_views () =
  let r = analyze ~layouts:adapter_layouts adapter_code in
  (* getView's parent parameter receives the list view *)
  check_classes "parent param" [ "ListView" ] (views r "RowAdapter" "getView" 3 "parent");
  (* the inflated row became a child of the list *)
  (match views r "A" "onCreate" 0 "lv" with
  | [ lv ] ->
      let children = Gator.Graph.children_of r.graph lv in
      Alcotest.check Alcotest.int "one row child" 1 (Gator.Graph.View_set.cardinal children)
  | _ -> Alcotest.fail "expected one list view");
  (* item-click handler: param 0 = the list, param 1 = the row *)
  check_classes "handler parent param" [ "ListView" ] (views r "RowClick" "onItemClick" 4 "p");
  check_classes "handler item param" [ "LinearLayout" ] (views r "RowClick" "onItemClick" 4 "item")

let test_adapter_dynamic_covered () =
  let app =
    match Framework.App.of_source ~name:"T" ~code:adapter_code ~layouts:adapter_layouts with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
  (* the item-click actually fired with a concrete row *)
  Alcotest.check Alcotest.bool "item-click fired" true
    (List.exists
       (fun (f : Dynamic.Interp.firing) -> f.f_event = Framework.Listeners.Item_click)
       outcome.firings)

let menu_code =
  {|class A extends Activity {
      field last: MenuItem;
      method onCreate(): void { }
      method onCreateOptionsMenu(menu: Menu): void {
        t = 1;
        save = menu.add(t);
        g = 0;
        o = 0;
        iid = R.id.action_delete;
        del = menu.add(g, iid, o, t);
      }
      method onOptionsItemSelected(item: MenuItem): void {
        this.last = item;
        m = item.getParent();
        i = R.id.action_delete;
        d = m.findItem(i);
      } }|}

let test_options_menu () =
  let r = analyze menu_code in
  (* onCreateOptionsMenu receives the implicit menu *)
  check_classes "menu param" [ "Menu" ] (views r "A" "onCreateOptionsMenu" 1 "menu");
  (* both added items flow into the selection callback *)
  check_classes "selected item" [ "MenuItem"; "MenuItem" ]
    (views r "A" "onOptionsItemSelected" 1 "item");
  (* findItem resolves by item id to the id-carrying item only *)
  (match views r "A" "onOptionsItemSelected" 1 "d" with
  | [ Gator.Node.V_alloc a ] -> Alcotest.check Alcotest.string "one item" "MenuItem" a.a_cls
  | other -> Alcotest.failf "expected one MenuItem, got %d views" (List.length other));
  (* getParent on the item recovers the menu *)
  check_classes "item's parent menu" [ "Menu" ] (views r "A" "onOptionsItemSelected" 1 "m")

let test_options_menu_dynamic () =
  let app =
    match Framework.App.of_source ~name:"T" ~code:menu_code ~layouts:[] with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
  (* the selection callback actually ran and stored an item *)
  let activity =
    List.find
      (fun (o : Dynamic.Heap.obj) -> o.provenance = Dynamic.Heap.P_activity "A")
      (Dynamic.Heap.objects outcome.heap)
  in
  Alcotest.check Alcotest.bool "item selected dynamically" true
    (Dynamic.Heap.read_field activity "last" <> Dynamic.Heap.V_null)

let fragment_code =
  {|class A extends Activity {
      method onCreate(): void {
        l = R.layout.screen;
        this.setContentView(l);
        fm = this.getFragmentManager();
        ft = fm.beginTransaction();
        f = new TermFragment();
        cid = R.id.container;
        ft.add(cid, f);
        i = R.id.frag_text;
        v = this.findViewById(i);
      } }
    class TermFragment extends Fragment {
      method onCreateView(): View {
        inf = this.getLayoutInflater();
        l = R.layout.frag;
        w = inf.inflate(l);
        return w;
      } }|}

let fragment_layouts =
  [
    ("screen", {|<LinearLayout><FrameLayout android:id="@+id/container" /></LinearLayout>|});
    ("frag", {|<LinearLayout><TextView android:id="@+id/frag_text" /></LinearLayout>|});
  ]

let test_fragment_view_attachment () =
  let r = analyze ~layouts:fragment_layouts fragment_code in
  (* the fragment's inflated TextView is found through the activity's
     hierarchy, across the FragmentTransaction chain *)
  check_classes "find reaches fragment content" [ "TextView" ] (views r "A" "onCreate" 0 "v")

let test_fragment_dynamic_covered () =
  let app =
    match Framework.App.of_source ~name:"T" ~code:fragment_code ~layouts:fragment_layouts with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  (* dynamically the find succeeds too, and is covered *)
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
  Alcotest.check Alcotest.bool "dynamic found the fragment view" true
    (List.exists
       (fun (ob : Dynamic.Interp.observation) ->
         ob.ob_op.o_kind = Framework.Api.Find_view
         && ob.ob_role = Dynamic.Interp.R_result
         &&
         match ob.ob_value with
         | Gator.Node.V_view v -> Gator.Node.class_of_view v = "TextView"
         | _ -> false)
       outcome.observations)

let declared_fragment_code =
  {|class A extends Activity {
      method onCreate(): void {
        l = R.layout.screen;
        this.setContentView(l);
        i = R.id.status_text;
        v = this.findViewById(i);
      } }
    class StatusFragment extends Fragment {
      method onCreateView(): View {
        inf = this.getLayoutInflater();
        l = R.layout.status;
        w = inf.inflate(l);
        return w;
      } }|}

let declared_fragment_layouts =
  [
    ("screen", {|<LinearLayout><fragment android:name="StatusFragment" android:id="@+id/slot" /></LinearLayout>|});
    ("status", {|<TextView android:id="@+id/status_text" />|});
  ]

let test_declared_fragment () =
  let r = analyze ~layouts:declared_fragment_layouts declared_fragment_code in
  (* the fragment's TextView is reachable through the activity's
     hierarchy via the <fragment> placeholder *)
  check_classes "find through declared fragment" [ "TextView" ] (views r "A" "onCreate" 0 "v")

let test_declared_fragment_dynamic () =
  let app =
    match
      Framework.App.of_source ~name:"T" ~code:declared_fragment_code
        ~layouts:declared_fragment_layouts
    with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Analysis.analyze app in
  let outcome = Dynamic.Interp.run app in
  Alcotest.check Alcotest.bool "covered" true
    (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
  Alcotest.check Alcotest.bool "fragment view found dynamically" true
    (List.exists
       (fun (ob : Dynamic.Interp.observation) ->
         ob.ob_role = Dynamic.Interp.R_result
         &&
         match ob.ob_value with
         | Gator.Node.V_view v -> Gator.Node.class_of_view v = "TextView"
         | _ -> false)
       outcome.observations)

let test_include_layout_end_to_end () =
  let r =
    analyze
      ~layouts:
        [
          ("toolbar", {|<LinearLayout android:id="@+id/bar"><Button android:id="@+id/back" /></LinearLayout>|});
          ("screen", {|<FrameLayout><include layout="@layout/toolbar" /><TextView android:id="@+id/body" /></FrameLayout>|});
        ]
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.screen;
            this.setContentView(l);
            i = R.id.back;
            v = this.findViewById(i);
          } }|}
  in
  (* the Button lives in the included layout but is found through the
     including screen's hierarchy *)
  check_classes "find through include" [ "Button" ] (views r "A" "onCreate" 0 "v")

let test_idempotent_reanalysis () =
  let app = Corpus.Connectbot.app () in
  let a = Analysis.analyze app in
  let b = Analysis.analyze app in
  Alcotest.check Alcotest.int "same op count" (List.length (Analysis.ops a))
    (List.length (Analysis.ops b));
  let key (op : Graph.op) = op.site in
  List.iter2
    (fun oa ob ->
      Alcotest.check Alcotest.bool "same sites" true (key oa = key ob);
      Alcotest.check Alcotest.int "same receiver sets"
        (List.length (Analysis.op_receiver_views a oa))
        (List.length (Analysis.op_receiver_views b ob)))
    (Analysis.ops a) (Analysis.ops b)

let test_resolve_through_fields_interprocedural () =
  let r =
    analyze ~layouts:[ simple_layout ]
      {|class A extends Activity {
          field stash: View;
          method onCreate(): void {
            l = R.layout.main; this.setContentView(l);
            i = R.id.b;
            v = this.findViewById(i);
            this.stash = v;
            this.use();
          }
          method use(): void {
            u = this.stash;
            j = new L();
            u.setOnClickListener(j);
          } }
        class L implements OnClickListener { method onClick(v: View): void { } }|}
  in
  check_classes "handler param via field + call" [ "Button" ] (views r "L" "onClick" 1 "v")

let suite =
  [
    Alcotest.test_case "Figure 1 facts" `Quick test_connectbot_facts;
    Alcotest.test_case "Figure 1 catalog (figures driver)" `Quick test_connectbot_narrated_facts_catalog;
    Alcotest.test_case "setContentView + findViewById" `Quick test_set_content_and_find;
    Alcotest.test_case "findViewById can return the receiver" `Quick test_find_view_self;
    Alcotest.test_case "setId feeds find-view (SETID rule)" `Quick test_set_id_affects_find;
    Alcotest.test_case "addView builds hierarchy (ADDVIEW2)" `Quick test_add_view_hierarchy;
    Alcotest.test_case "setContentView(View) (ADDVIEW1)" `Quick test_set_content_view_arg;
    Alcotest.test_case "inflate returns root (INFLATE1)" `Quick test_inflate_returns_root;
    Alcotest.test_case "inflate(id, parent) attaches" `Quick test_inflate_with_parent_attaches;
    Alcotest.test_case "getParent" `Quick test_get_parent;
    Alcotest.test_case "FindOne refinement toggle" `Quick test_findone_refinement_toggle;
    Alcotest.test_case "cast filtering toggle" `Quick test_cast_filtering_toggle;
    Alcotest.test_case "SETLISTENER callback flow" `Quick test_listener_callback_flow;
    Alcotest.test_case "activity as its own listener" `Quick test_activity_as_listener;
    Alcotest.test_case "dialog modeling toggle" `Quick test_dialog_modeling;
    Alcotest.test_case "declarative android:onClick" `Quick test_declarative_onclick;
    Alcotest.test_case "declarative onClick covered dynamically" `Quick
      test_declarative_onclick_dynamic;
    Alcotest.test_case "adapter item views" `Quick test_adapter_item_views;
    Alcotest.test_case "adapter covered dynamically" `Quick test_adapter_dynamic_covered;
    Alcotest.test_case "options menu modeling" `Quick test_options_menu;
    Alcotest.test_case "options menu covered dynamically" `Quick test_options_menu_dynamic;
    Alcotest.test_case "fragment view attachment" `Quick test_fragment_view_attachment;
    Alcotest.test_case "declared <fragment> tags" `Quick test_declared_fragment;
    Alcotest.test_case "declared fragments covered dynamically" `Quick test_declared_fragment_dynamic;
    Alcotest.test_case "fragments covered dynamically" `Quick test_fragment_dynamic_covered;
    Alcotest.test_case "activity transitions via handler" `Quick test_activity_transitions;
    Alcotest.test_case "transitions covered dynamically" `Quick test_transitions_dynamic_covered;
    Alcotest.test_case "include layouts end to end" `Quick test_include_layout_end_to_end;
    Alcotest.test_case "context sensitivity separates call sites" `Quick
      test_context_sensitivity_separates_callsites;
    Alcotest.test_case "context sensitivity keeps Table 1 populations" `Quick
      test_context_sensitivity_same_population;
    Alcotest.test_case "context sensitivity bounded on recursion" `Quick
      test_context_sensitivity_recursion_safe;
    Alcotest.test_case "re-analysis is deterministic" `Quick test_idempotent_reanalysis;
    Alcotest.test_case "interprocedural flow through fields" `Quick test_resolve_through_fields_interprocedural;
  ]
