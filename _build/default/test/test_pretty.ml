let test_truncate_short () =
  Alcotest.check Alcotest.string "fits" "abc" (Util.Pretty.truncate_string 5 "abc")

let test_truncate_long () =
  Alcotest.check Alcotest.string "ellipsis" "ab..." (Util.Pretty.truncate_string 5 "abcdefgh")

let test_truncate_tiny () =
  Alcotest.check Alcotest.string "hard cut" "ab" (Util.Pretty.truncate_string 2 "abcdefgh")

let test_quote_plain () = Alcotest.check Alcotest.string "plain" "\"abc\"" (Util.Pretty.quote "abc")

let test_quote_escapes () =
  Alcotest.check Alcotest.string "escapes" "\"a\\\"b\\\\c\"" (Util.Pretty.quote "a\"b\\c")

let test_pp_set () =
  Alcotest.check Alcotest.string "set notation" "{1, 2, 3}"
    (Fmt.str "%a" (Util.Pretty.pp_set Fmt.int) [ 1; 2; 3 ])

let qcheck_truncate_bound =
  QCheck.Test.make ~name:"truncate never exceeds bound" ~count:500
    QCheck.(pair (int_range 0 30) (string_of_size Gen.(0 -- 60)))
    (fun (n, s) -> String.length (Util.Pretty.truncate_string n s) <= max n (min n (String.length s)))

let suite =
  [
    Alcotest.test_case "truncate short" `Quick test_truncate_short;
    Alcotest.test_case "truncate long" `Quick test_truncate_long;
    Alcotest.test_case "truncate tiny" `Quick test_truncate_tiny;
    Alcotest.test_case "quote plain" `Quick test_quote_plain;
    Alcotest.test_case "quote escapes" `Quick test_quote_escapes;
    Alcotest.test_case "pp_set" `Quick test_pp_set;
    QCheck_alcotest.to_alcotest qcheck_truncate_bound;
  ]
