open Jir

let decl ?super ?(interfaces = []) ?(kind = `Class) name =
  { Hierarchy.d_name = name; d_kind = kind; d_super = super; d_interfaces = interfaces }

let platform =
  [
    decl "Object";
    decl ~super:"Object" "View";
    decl ~super:"View" "ViewGroup";
    decl ~super:"View" "TextView";
    decl ~super:"TextView" "Button";
    decl ~kind:`Interface "OnClickListener";
  ]

let program_src =
  {|
class A extends View { field f: int; field g: Button;
  method m(x: int): int { return x; } }
class B extends A implements OnClickListener {
  method m(x: int): int { return x; }
  method onClick(v: View): void { } }
class C extends B { }
class D extends Object { method m(x: int): int { return x; } }
|}

let hierarchy () = Hierarchy.create ~platform (Parser.parse_program program_src)

let test_mem_kind () =
  let h = hierarchy () in
  Alcotest.check Alcotest.bool "app class" true (Hierarchy.mem h "A");
  Alcotest.check Alcotest.bool "platform class" true (Hierarchy.mem h "View");
  Alcotest.check Alcotest.bool "absent" false (Hierarchy.mem h "Nope");
  Alcotest.check Alcotest.bool "interface kind" true
    (Hierarchy.kind h "OnClickListener" = Some `Interface)

let test_application () =
  let h = hierarchy () in
  Alcotest.check Alcotest.bool "A is application" true (Hierarchy.is_application h "A");
  Alcotest.check Alcotest.bool "View is platform" false (Hierarchy.is_application h "View")

let test_subtype_reflexive () =
  let h = hierarchy () in
  List.iter
    (fun t -> Alcotest.check Alcotest.bool t true (Hierarchy.subtype h t t))
    (Hierarchy.types h)

let test_subtype_chain () =
  let h = hierarchy () in
  Alcotest.check Alcotest.bool "C <= A" true (Hierarchy.subtype h "C" "A");
  Alcotest.check Alcotest.bool "C <= View" true (Hierarchy.subtype h "C" "View");
  Alcotest.check Alcotest.bool "C <= Object" true (Hierarchy.subtype h "C" "Object");
  Alcotest.check Alcotest.bool "A </= B" false (Hierarchy.subtype h "A" "B");
  Alcotest.check Alcotest.bool "D </= View" false (Hierarchy.subtype h "D" "View")

let test_subtype_interface () =
  let h = hierarchy () in
  Alcotest.check Alcotest.bool "B implements" true (Hierarchy.subtype h "B" "OnClickListener");
  Alcotest.check Alcotest.bool "C inherits interface" true
    (Hierarchy.subtype h "C" "OnClickListener");
  Alcotest.check Alcotest.bool "A does not" false (Hierarchy.subtype h "A" "OnClickListener")

let test_subtypes_set () =
  let h = hierarchy () in
  let subs = List.sort compare (Hierarchy.subtypes h "A") in
  Alcotest.check (Alcotest.list Alcotest.string) "subtypes of A" [ "A"; "B"; "C" ] subs

let test_superclass_chain () =
  let h = hierarchy () in
  Alcotest.check (Alcotest.list Alcotest.string) "chain of C"
    [ "B"; "A"; "View"; "Object" ]
    (Hierarchy.superclass_chain h "C")

let test_field_ty () =
  let h = hierarchy () in
  Alcotest.check Alcotest.bool "own field" true (Hierarchy.field_ty h "A" "f" = Some Ast.Tint);
  Alcotest.check Alcotest.bool "inherited field" true
    (Hierarchy.field_ty h "C" "g" = Some (Ast.Tclass "Button"));
  Alcotest.check Alcotest.bool "missing field" true (Hierarchy.field_ty h "C" "nope" = None)

let key name arity = { Ast.mk_name = name; mk_arity = arity }

let test_resolve () =
  let h = hierarchy () in
  (match Hierarchy.resolve h "C" (key "m" 1) with
  | Some ("B", _) -> ()
  | Some (owner, _) -> Alcotest.failf "resolved to %s" owner
  | None -> Alcotest.fail "no resolution");
  (match Hierarchy.resolve h "A" (key "m" 1) with
  | Some ("A", _) -> ()
  | _ -> Alcotest.fail "A.m should resolve to A");
  Alcotest.check Alcotest.bool "arity matters" true (Hierarchy.resolve h "C" (key "m" 2) = None);
  Alcotest.check Alcotest.bool "platform has no bodies" true
    (Hierarchy.resolve h "Button" (key "m" 1) = None)

let test_cha_targets () =
  let h = hierarchy () in
  let owners recv_ty = List.map fst (Hierarchy.cha_targets h ~recv_ty (key "m" 1)) in
  Alcotest.check (Alcotest.list Alcotest.string) "on A" [ "A"; "B" ]
    (List.sort compare (owners (Some "A")));
  Alcotest.check (Alcotest.list Alcotest.string) "on B" [ "B" ] (owners (Some "B"));
  Alcotest.check (Alcotest.list Alcotest.string) "unknown type: all" [ "A"; "B"; "D" ]
    (List.sort compare (owners None));
  Alcotest.check (Alcotest.list Alcotest.string) "foreign type: all" [ "A"; "B"; "D" ]
    (List.sort compare (owners (Some "Unknown")))

let test_cha_on_interface () =
  let h = hierarchy () in
  let owners = List.map fst (Hierarchy.cha_targets h ~recv_ty:(Some "OnClickListener") (key "onClick" 1)) in
  Alcotest.check (Alcotest.list Alcotest.string) "interface dispatch" [ "B" ] owners

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Hierarchy.Hierarchy_error "duplicate type name A") (fun () ->
      ignore (Hierarchy.create ~platform (Parser.parse_program "class A { } class A { }")))

let test_cycle_rejected () =
  match Hierarchy.create (Parser.parse_program "class A extends B { } class B extends A { }") with
  | exception Hierarchy.Hierarchy_error _ -> ()
  | _ -> Alcotest.fail "expected a cycle error"

let test_unknown_super_tolerated () =
  let h = Hierarchy.create (Parser.parse_program "class A extends Mystery { }") in
  Alcotest.check Alcotest.bool "A known" true (Hierarchy.mem h "A");
  Alcotest.check Alcotest.bool "not subtype of unknown... except reflexivity" true
    (Hierarchy.subtype h "A" "Mystery")

let test_iter_methods () =
  let h = hierarchy () in
  let count = ref 0 in
  Hierarchy.iter_methods h (fun _ _ -> incr count);
  Alcotest.check Alcotest.int "method count" 4 !count

let suite =
  [
    Alcotest.test_case "mem and kind" `Quick test_mem_kind;
    Alcotest.test_case "application vs platform" `Quick test_application;
    Alcotest.test_case "subtype reflexive" `Quick test_subtype_reflexive;
    Alcotest.test_case "subtype chains" `Quick test_subtype_chain;
    Alcotest.test_case "subtype via interfaces" `Quick test_subtype_interface;
    Alcotest.test_case "subtypes set" `Quick test_subtypes_set;
    Alcotest.test_case "superclass chain" `Quick test_superclass_chain;
    Alcotest.test_case "field type lookup" `Quick test_field_ty;
    Alcotest.test_case "dynamic resolve" `Quick test_resolve;
    Alcotest.test_case "CHA targets" `Quick test_cha_targets;
    Alcotest.test_case "CHA on interface type" `Quick test_cha_on_interface;
    Alcotest.test_case "duplicate types rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "cycles rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "unknown supertype tolerated" `Quick test_unknown_super_tolerated;
    Alcotest.test_case "iter_methods" `Quick test_iter_methods;
  ]
