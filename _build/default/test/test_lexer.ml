open Jir.Lexer

let tokens src = List.map (fun l -> l.token) (tokenize src)

let token_testable = Alcotest.testable pp_token ( = )

let check_tokens msg expected src =
  Alcotest.check (Alcotest.list token_testable) msg expected (tokens src)

let test_keywords () =
  check_tokens "keywords"
    [ KW_CLASS; KW_INTERFACE; KW_EXTENDS; KW_IMPLEMENTS; KW_FIELD; KW_METHOD; KW_VAR; KW_NEW;
      KW_RETURN; KW_NULL; KW_INT; KW_VOID; KW_R ]
    "class interface extends implements field method var new return null int void R"

let test_identifiers () =
  check_tokens "identifiers"
    [ IDENT "foo"; IDENT "Bar_9"; IDENT "_x"; IDENT "$y"; IDENT "Rx" ]
    "foo Bar_9 _x $y Rx"

let test_numbers () = check_tokens "decimal and hex" [ INT 42; INT 0x7f030000 ] "42 0x7f030000"

let test_punctuation () =
  check_tokens "punctuation"
    [ LBRACE; RBRACE; LPAREN; RPAREN; SEMI; COLON; COMMA; DOT; EQUALS ]
    "{ } ( ) ; : , . ="

let test_line_comment () = check_tokens "line comment" [ IDENT "a"; IDENT "b" ] "a // c d e\nb"

let test_block_comment () = check_tokens "block comment" [ IDENT "a"; IDENT "b" ] "a /* x\ny */ b"

let test_unterminated_comment () =
  match tokenize "a /* never closed" with
  | exception Lex_error (_, _) -> ()
  | _ -> Alcotest.fail "expected a lexical error"

let test_illegal_char () =
  match tokenize "a # b" with
  | exception Lex_error (msg, pos) ->
      Alcotest.check Alcotest.int "column" 3 pos.col;
      Alcotest.check Alcotest.bool "mentions char" true (String.contains msg '#')
  | _ -> Alcotest.fail "expected a lexical error"

let test_positions () =
  match tokenize "ab\n  cd" with
  | [ a; b ] ->
      Alcotest.check Alcotest.(pair int int) "first" (1, 1) (a.pos.line, a.pos.col);
      Alcotest.check Alcotest.(pair int int) "second" (2, 3) (b.pos.line, b.pos.col)
  | _ -> Alcotest.fail "expected two tokens"

let test_no_space_needed () =
  check_tokens "tight statement"
    [ IDENT "x"; EQUALS; IDENT "y"; DOT; IDENT "f"; SEMI ]
    "x=y.f;"

let test_empty () = check_tokens "empty input" [] "   \n\t  "

let suite =
  [
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "identifiers" `Quick test_identifiers;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "punctuation" `Quick test_punctuation;
    Alcotest.test_case "line comment" `Quick test_line_comment;
    Alcotest.test_case "block comment" `Quick test_block_comment;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "illegal character" `Quick test_illegal_char;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "no whitespace needed" `Quick test_no_space_needed;
    Alcotest.test_case "empty input" `Quick test_empty;
  ]
