let sample_xml =
  {|<RelativeLayout>
  <ViewFlipper android:id="@+id/flip" />
  <LinearLayout android:id="@+id/group">
    <Button android:id="@+id/ok" />
    <Button android:id="@+id/cancel" />
    <TextView />
  </LinearLayout>
</RelativeLayout>|}

let sample () = Layouts.Layout.parse_exn ~name:"sample" sample_xml

let test_parse_classes_and_ids () =
  let d = sample () in
  Alcotest.check Alcotest.string "root class" "RelativeLayout" d.root.view_class;
  Alcotest.check Alcotest.(option string) "root has no id" None d.root.id;
  Alcotest.check (Alcotest.list Alcotest.string) "ids preorder"
    [ "flip"; "group"; "ok"; "cancel" ]
    (Layouts.Layout.ids d)

let test_size_and_nodes () =
  let d = sample () in
  Alcotest.check Alcotest.int "size" 6 (Layouts.Layout.size d);
  Alcotest.check Alcotest.int "nodes list" 6 (List.length (Layouts.Layout.nodes d))

let test_paths () =
  let d = sample () in
  let paths = List.map fst (Layouts.Layout.nodes d) in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "preorder paths"
    [ []; [ 0 ]; [ 1 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ]
    paths

let test_find () =
  let d = sample () in
  (match Layouts.Layout.find d [ 1; 0 ] with
  | Some n -> Alcotest.check Alcotest.(option string) "ok button" (Some "ok") n.id
  | None -> Alcotest.fail "path missing");
  Alcotest.check Alcotest.bool "bad path" true (Layouts.Layout.find d [ 9 ] = None)

let test_find_by_id () =
  let d = sample () in
  match Layouts.Layout.find_by_id d "cancel" with
  | [ (path, node) ] ->
      Alcotest.check (Alcotest.list Alcotest.int) "path" [ 1; 1 ] path;
      Alcotest.check Alcotest.string "class" "Button" node.view_class
  | _ -> Alcotest.fail "expected exactly one node"

let test_edges () =
  let d = sample () in
  Alcotest.check Alcotest.int "edge count = nodes - 1" 5 (List.length (Layouts.Layout.edges d));
  Alcotest.check Alcotest.bool "root->group edge" true
    (List.mem ([], [ 1 ]) (Layouts.Layout.edges d))

let test_xml_roundtrip () =
  let d = sample () in
  let text = Fmt.str "%a" Layouts.Layout.pp d in
  let d' = Layouts.Layout.parse_exn ~name:"sample" text in
  Alcotest.check Alcotest.bool "roundtrip" true (d = d')

let test_at_id_syntax () =
  let d = Layouts.Layout.parse_exn ~name:"x" {|<View android:id="@id/existing" />|} in
  Alcotest.check Alcotest.(option string) "@id form" (Some "existing") d.root.id

let test_malformed_id () =
  match Layouts.Layout.parse ~name:"x" {|<View android:id="bogus" />|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected malformed-id error"

let test_resource_table () =
  let r = Layouts.Resource.create () in
  let l1 = Layouts.Resource.layout_id r "main" in
  let l1' = Layouts.Resource.layout_id r "main" in
  let l2 = Layouts.Resource.layout_id r "other" in
  let v1 = Layouts.Resource.view_id r "btn" in
  Alcotest.check Alcotest.int "stable" l1 l1';
  Alcotest.check Alcotest.bool "distinct" true (l1 <> l2);
  Alcotest.check Alcotest.bool "ranges" true
    (Layouts.Resource.is_layout_id l1 && Layouts.Resource.is_view_id v1);
  Alcotest.check Alcotest.bool "no overlap" true
    (not (Layouts.Resource.is_view_id l1) && not (Layouts.Resource.is_layout_id v1));
  Alcotest.check Alcotest.(option string) "inverse layout" (Some "main")
    (Layouts.Resource.layout_name r l1);
  Alcotest.check Alcotest.(option string) "inverse view" (Some "btn")
    (Layouts.Resource.view_name r v1);
  Alcotest.check Alcotest.(pair int int) "counts" (2, 1) (Layouts.Resource.counts r);
  Alcotest.check (Alcotest.list Alcotest.string) "order" [ "main"; "other" ]
    (Layouts.Resource.layout_names r)

let test_register () =
  let r = Layouts.Resource.create () in
  Layouts.Layout.register r (sample ());
  Alcotest.check Alcotest.(pair int int) "registered counts" (1, 4) (Layouts.Resource.counts r)

let test_package () =
  let p = Layouts.Package.create () in
  Layouts.Package.add p (sample ());
  let lid = Option.get (Layouts.Resource.find_layout_id (Layouts.Package.resources p) "sample") in
  (match Layouts.Package.find_by_layout_id p lid with
  | Some d -> Alcotest.check Alcotest.string "lookup by id" "sample" d.name
  | None -> Alcotest.fail "layout not found by id");
  Alcotest.check Alcotest.int "total nodes" 6 (Layouts.Package.total_nodes p);
  Alcotest.check Alcotest.bool "duplicate rejected" true
    (match Layouts.Package.add p (sample ()) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_package_add_xml_error () =
  let p = Layouts.Package.create () in
  match Layouts.Package.add_xml p ~name:"bad" "<oops" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected parse error"

(* ------------- include/merge expansion ------------- *)

let package_with defs =
  let p = Layouts.Package.create () in
  List.iter (fun (name, xml) -> Layouts.Package.add p (Layouts.Layout.parse_exn ~name xml)) defs;
  p

let test_include_expansion () =
  let p =
    package_with
      [
        ("detail", {|<LinearLayout android:id="@+id/detail_root"><TextView android:id="@+id/txt" /></LinearLayout>|});
        ("main", {|<FrameLayout><include layout="@layout/detail" /></FrameLayout>|});
      ]
  in
  let d = Option.get (Layouts.Package.find p "main") in
  Alcotest.check Alcotest.int "expanded size" 3 (Layouts.Layout.size d);
  (match Layouts.Layout.find d [ 0 ] with
  | Some n ->
      Alcotest.check Alcotest.string "substituted root" "LinearLayout" n.view_class;
      Alcotest.check Alcotest.(option string) "kept id" (Some "detail_root") n.id
  | None -> Alcotest.fail "missing child");
  Alcotest.check Alcotest.int "no expansion errors" 0
    (List.length (Layouts.Package.expansion_errors p))

let test_include_id_override () =
  let p =
    package_with
      [
        ("detail", {|<LinearLayout android:id="@+id/detail_root" />|});
        ("main", {|<FrameLayout><include layout="@layout/detail" android:id="@+id/slot" /></FrameLayout>|});
      ]
  in
  let d = Option.get (Layouts.Package.find p "main") in
  match Layouts.Layout.find d [ 0 ] with
  | Some n -> Alcotest.check Alcotest.(option string) "id overridden" (Some "slot") n.id
  | None -> Alcotest.fail "missing child"

let test_merge_splice () =
  let p =
    package_with
      [
        ("rows", {|<merge><TextView android:id="@+id/a" /><TextView android:id="@+id/b" /></merge>|});
        ("main", {|<LinearLayout><include layout="@layout/rows" /><Button /></LinearLayout>|});
      ]
  in
  let d = Option.get (Layouts.Package.find p "main") in
  (* merge children spliced: root has 3 children (a, b, Button) *)
  Alcotest.check Alcotest.int "spliced arity" 3 (List.length d.root.children);
  Alcotest.check Alcotest.int "size" 4 (Layouts.Layout.size d)

let test_merge_direct_root () =
  let p = package_with [ ("m", {|<merge><Button /></merge>|}) ] in
  let d = Option.get (Layouts.Package.find p "m") in
  Alcotest.check Alcotest.string "acts as FrameLayout" "FrameLayout" d.root.view_class

let test_nested_includes () =
  let p =
    package_with
      [
        ("leaf", {|<TextView android:id="@+id/deep" />|});
        ("mid", {|<LinearLayout><include layout="@layout/leaf" /></LinearLayout>|});
        ("top", {|<FrameLayout><include layout="@layout/mid" /></FrameLayout>|});
      ]
  in
  let d = Option.get (Layouts.Package.find p "top") in
  Alcotest.check Alcotest.int "size" 3 (Layouts.Layout.size d);
  Alcotest.check Alcotest.int "deep id findable" 1
    (List.length (Layouts.Layout.find_by_id d "deep"))

let test_include_cycle_reported () =
  let p =
    package_with
      [
        ("a", {|<LinearLayout><include layout="@layout/b" /></LinearLayout>|});
        ("b", {|<LinearLayout><include layout="@layout/a" /></LinearLayout>|});
      ]
  in
  Alcotest.check Alcotest.bool "errors recorded" true
    (Layouts.Package.expansion_errors p <> []);
  (* falls back to the raw tree *)
  Alcotest.check Alcotest.bool "raw fallback" true (Layouts.Package.find p "a" <> None)

let test_unknown_include_reported () =
  let p = package_with [ ("a", {|<LinearLayout><include layout="@layout/ghost" /></LinearLayout>|}) ] in
  Alcotest.check Alcotest.bool "unknown include error" true
    (List.exists (fun (name, _) -> name = "a") (Layouts.Package.expansion_errors p))

let test_include_without_layout_attr () =
  match Layouts.Layout.parse ~name:"x" "<LinearLayout><include /></LinearLayout>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for include without layout"

let test_onclick_attr () =
  let d =
    Layouts.Layout.parse_exn ~name:"x"
      {|<LinearLayout><Button android:onClick="doIt" /></LinearLayout>|}
  in
  (match Layouts.Layout.find d [ 0 ] with
  | Some n -> Alcotest.check Alcotest.(option string) "handler" (Some "doIt") n.onclick
  | None -> Alcotest.fail "missing child");
  (* roundtrips through printing *)
  let d2 = Layouts.Layout.parse_exn ~name:"x" (Fmt.str "%a" Layouts.Layout.pp d) in
  Alcotest.check Alcotest.bool "roundtrip" true (d = d2)

let test_fragment_tag_parse () =
  let d =
    Layouts.Layout.parse_exn ~name:"x"
      {|<LinearLayout><fragment android:name="MyFrag" android:id="@+id/slot" /></LinearLayout>|}
  in
  (match Layouts.Layout.find d [ 0 ] with
  | Some n ->
      Alcotest.check Alcotest.(option string) "class" (Some "MyFrag") n.fragment_class;
      Alcotest.check Alcotest.string "placeholder container" "FrameLayout" n.view_class;
      Alcotest.check Alcotest.(option string) "id kept" (Some "slot") n.id
  | None -> Alcotest.fail "missing child");
  let d2 = Layouts.Layout.parse_exn ~name:"x" (Fmt.str "%a" Layouts.Layout.pp d) in
  Alcotest.check Alcotest.bool "roundtrip" true (d = d2)

let test_fragment_tag_requires_name () =
  match Layouts.Layout.parse ~name:"x" "<LinearLayout><fragment /></LinearLayout>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nameless fragment accepted"

let suite =
  [
    Alcotest.test_case "classes and ids" `Quick test_parse_classes_and_ids;
    Alcotest.test_case "include expansion" `Quick test_include_expansion;
    Alcotest.test_case "include id override" `Quick test_include_id_override;
    Alcotest.test_case "merge splice" `Quick test_merge_splice;
    Alcotest.test_case "direct merge root" `Quick test_merge_direct_root;
    Alcotest.test_case "nested includes" `Quick test_nested_includes;
    Alcotest.test_case "include cycles reported" `Quick test_include_cycle_reported;
    Alcotest.test_case "unknown include reported" `Quick test_unknown_include_reported;
    Alcotest.test_case "include without layout attr" `Quick test_include_without_layout_attr;
    Alcotest.test_case "android:onClick attribute" `Quick test_onclick_attr;
    Alcotest.test_case "fragment tag parse" `Quick test_fragment_tag_parse;
    Alcotest.test_case "fragment tag requires name" `Quick test_fragment_tag_requires_name;
    Alcotest.test_case "size and nodes" `Quick test_size_and_nodes;
    Alcotest.test_case "preorder paths" `Quick test_paths;
    Alcotest.test_case "find by path" `Quick test_find;
    Alcotest.test_case "find by id" `Quick test_find_by_id;
    Alcotest.test_case "edges" `Quick test_edges;
    Alcotest.test_case "xml roundtrip" `Quick test_xml_roundtrip;
    Alcotest.test_case "@id syntax" `Quick test_at_id_syntax;
    Alcotest.test_case "malformed android:id" `Quick test_malformed_id;
    Alcotest.test_case "resource table" `Quick test_resource_table;
    Alcotest.test_case "register" `Quick test_register;
    Alcotest.test_case "package" `Quick test_package;
    Alcotest.test_case "package xml errors" `Quick test_package_add_xml_error;
  ]
